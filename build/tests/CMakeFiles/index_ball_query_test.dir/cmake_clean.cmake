file(REMOVE_RECURSE
  "CMakeFiles/index_ball_query_test.dir/index_ball_query_test.cc.o"
  "CMakeFiles/index_ball_query_test.dir/index_ball_query_test.cc.o.d"
  "index_ball_query_test"
  "index_ball_query_test.pdb"
  "index_ball_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_ball_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
