file(REMOVE_RECURSE
  "CMakeFiles/eval_throughput_test.dir/eval_throughput_test.cc.o"
  "CMakeFiles/eval_throughput_test.dir/eval_throughput_test.cc.o.d"
  "eval_throughput_test"
  "eval_throughput_test.pdb"
  "eval_throughput_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_throughput_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
