file(REMOVE_RECURSE
  "CMakeFiles/index_rstar_test.dir/index_rstar_test.cc.o"
  "CMakeFiles/index_rstar_test.dir/index_rstar_test.cc.o.d"
  "index_rstar_test"
  "index_rstar_test.pdb"
  "index_rstar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_rstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
