# Empty dependencies file for geometry_point_test.
# This may be replaced when dependencies are built.
