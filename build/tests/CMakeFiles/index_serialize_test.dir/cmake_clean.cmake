file(REMOVE_RECURSE
  "CMakeFiles/index_serialize_test.dir/index_serialize_test.cc.o"
  "CMakeFiles/index_serialize_test.dir/index_serialize_test.cc.o.d"
  "index_serialize_test"
  "index_serialize_test.pdb"
  "index_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
