file(REMOVE_RECURSE
  "CMakeFiles/parallel_range_query_test.dir/parallel_range_query_test.cc.o"
  "CMakeFiles/parallel_range_query_test.dir/parallel_range_query_test.cc.o.d"
  "parallel_range_query_test"
  "parallel_range_query_test.pdb"
  "parallel_range_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_range_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
