file(REMOVE_RECURSE
  "CMakeFiles/index_node_test.dir/index_node_test.cc.o"
  "CMakeFiles/index_node_test.dir/index_node_test.cc.o.d"
  "index_node_test"
  "index_node_test.pdb"
  "index_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
