file(REMOVE_RECURSE
  "CMakeFiles/declustering_property_test.dir/declustering_property_test.cc.o"
  "CMakeFiles/declustering_property_test.dir/declustering_property_test.cc.o.d"
  "declustering_property_test"
  "declustering_property_test.pdb"
  "declustering_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/declustering_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
