# Empty compiler generated dependencies file for declustering_property_test.
# This may be replaced when dependencies are built.
