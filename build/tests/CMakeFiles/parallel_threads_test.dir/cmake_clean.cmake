file(REMOVE_RECURSE
  "CMakeFiles/parallel_threads_test.dir/parallel_threads_test.cc.o"
  "CMakeFiles/parallel_threads_test.dir/parallel_threads_test.cc.o.d"
  "parallel_threads_test"
  "parallel_threads_test.pdb"
  "parallel_threads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_threads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
