file(REMOVE_RECURSE
  "CMakeFiles/index_bulk_load_test.dir/index_bulk_load_test.cc.o"
  "CMakeFiles/index_bulk_load_test.dir/index_bulk_load_test.cc.o.d"
  "index_bulk_load_test"
  "index_bulk_load_test.pdb"
  "index_bulk_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
