# Empty compiler generated dependencies file for core_recursive_test.
# This may be replaced when dependencies are built.
