file(REMOVE_RECURSE
  "CMakeFiles/core_recursive_test.dir/core_recursive_test.cc.o"
  "CMakeFiles/core_recursive_test.dir/core_recursive_test.cc.o.d"
  "core_recursive_test"
  "core_recursive_test.pdb"
  "core_recursive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recursive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
