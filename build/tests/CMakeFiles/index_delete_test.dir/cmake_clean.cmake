file(REMOVE_RECURSE
  "CMakeFiles/index_delete_test.dir/index_delete_test.cc.o"
  "CMakeFiles/index_delete_test.dir/index_delete_test.cc.o.d"
  "index_delete_test"
  "index_delete_test.pdb"
  "index_delete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
