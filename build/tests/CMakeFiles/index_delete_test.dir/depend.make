# Empty dependencies file for index_delete_test.
# This may be replaced when dependencies are built.
