file(REMOVE_RECURSE
  "CMakeFiles/index_xtree_test.dir/index_xtree_test.cc.o"
  "CMakeFiles/index_xtree_test.dir/index_xtree_test.cc.o.d"
  "index_xtree_test"
  "index_xtree_test.pdb"
  "index_xtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_xtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
