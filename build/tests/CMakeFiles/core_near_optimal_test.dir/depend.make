# Empty dependencies file for core_near_optimal_test.
# This may be replaced when dependencies are built.
