file(REMOVE_RECURSE
  "CMakeFiles/geometry_metric_test.dir/geometry_metric_test.cc.o"
  "CMakeFiles/geometry_metric_test.dir/geometry_metric_test.cc.o.d"
  "geometry_metric_test"
  "geometry_metric_test.pdb"
  "geometry_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
