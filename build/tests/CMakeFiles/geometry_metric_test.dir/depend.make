# Empty dependencies file for geometry_metric_test.
# This may be replaced when dependencies are built.
