# Empty dependencies file for index_knn_test.
# This may be replaced when dependencies are built.
