# Empty compiler generated dependencies file for core_coloring_test.
# This may be replaced when dependencies are built.
