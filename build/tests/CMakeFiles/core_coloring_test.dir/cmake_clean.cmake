file(REMOVE_RECURSE
  "CMakeFiles/core_coloring_test.dir/core_coloring_test.cc.o"
  "CMakeFiles/core_coloring_test.dir/core_coloring_test.cc.o.d"
  "core_coloring_test"
  "core_coloring_test.pdb"
  "core_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
