file(REMOVE_RECURSE
  "CMakeFiles/io_disk_test.dir/io_disk_test.cc.o"
  "CMakeFiles/io_disk_test.dir/io_disk_test.cc.o.d"
  "io_disk_test"
  "io_disk_test.pdb"
  "io_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
