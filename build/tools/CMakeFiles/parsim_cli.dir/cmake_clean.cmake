file(REMOVE_RECURSE
  "CMakeFiles/parsim_cli.dir/parsim_cli.cc.o"
  "CMakeFiles/parsim_cli.dir/parsim_cli.cc.o.d"
  "parsim_cli"
  "parsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
