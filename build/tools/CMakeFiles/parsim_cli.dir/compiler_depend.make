# Empty compiler generated dependencies file for parsim_cli.
# This may be replaced when dependencies are built.
