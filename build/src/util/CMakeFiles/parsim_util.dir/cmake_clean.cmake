file(REMOVE_RECURSE
  "CMakeFiles/parsim_util.dir/random.cc.o"
  "CMakeFiles/parsim_util.dir/random.cc.o.d"
  "CMakeFiles/parsim_util.dir/status.cc.o"
  "CMakeFiles/parsim_util.dir/status.cc.o.d"
  "CMakeFiles/parsim_util.dir/table.cc.o"
  "CMakeFiles/parsim_util.dir/table.cc.o.d"
  "libparsim_util.a"
  "libparsim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
