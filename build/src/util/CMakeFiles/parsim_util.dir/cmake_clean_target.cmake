file(REMOVE_RECURSE
  "libparsim_util.a"
)
