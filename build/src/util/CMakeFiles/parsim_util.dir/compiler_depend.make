# Empty compiler generated dependencies file for parsim_util.
# This may be replaced when dependencies are built.
