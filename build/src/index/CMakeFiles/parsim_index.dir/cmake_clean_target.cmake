file(REMOVE_RECURSE
  "libparsim_index.a"
)
