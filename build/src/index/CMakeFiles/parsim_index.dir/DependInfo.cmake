
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/knn.cc" "src/index/CMakeFiles/parsim_index.dir/knn.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/knn.cc.o.d"
  "/root/repo/src/index/node.cc" "src/index/CMakeFiles/parsim_index.dir/node.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/node.cc.o.d"
  "/root/repo/src/index/rstar_tree.cc" "src/index/CMakeFiles/parsim_index.dir/rstar_tree.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/rstar_tree.cc.o.d"
  "/root/repo/src/index/serialize.cc" "src/index/CMakeFiles/parsim_index.dir/serialize.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/serialize.cc.o.d"
  "/root/repo/src/index/tree_base.cc" "src/index/CMakeFiles/parsim_index.dir/tree_base.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/tree_base.cc.o.d"
  "/root/repo/src/index/xtree.cc" "src/index/CMakeFiles/parsim_index.dir/xtree.cc.o" "gcc" "src/index/CMakeFiles/parsim_index.dir/xtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/parsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/parsim_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/parsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/hilbert/CMakeFiles/parsim_hilbert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
