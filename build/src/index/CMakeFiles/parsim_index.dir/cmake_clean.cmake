file(REMOVE_RECURSE
  "CMakeFiles/parsim_index.dir/knn.cc.o"
  "CMakeFiles/parsim_index.dir/knn.cc.o.d"
  "CMakeFiles/parsim_index.dir/node.cc.o"
  "CMakeFiles/parsim_index.dir/node.cc.o.d"
  "CMakeFiles/parsim_index.dir/rstar_tree.cc.o"
  "CMakeFiles/parsim_index.dir/rstar_tree.cc.o.d"
  "CMakeFiles/parsim_index.dir/serialize.cc.o"
  "CMakeFiles/parsim_index.dir/serialize.cc.o.d"
  "CMakeFiles/parsim_index.dir/tree_base.cc.o"
  "CMakeFiles/parsim_index.dir/tree_base.cc.o.d"
  "CMakeFiles/parsim_index.dir/xtree.cc.o"
  "CMakeFiles/parsim_index.dir/xtree.cc.o.d"
  "libparsim_index.a"
  "libparsim_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
