# Empty compiler generated dependencies file for parsim_index.
# This may be replaced when dependencies are built.
