file(REMOVE_RECURSE
  "CMakeFiles/parsim_workload.dir/generators.cc.o"
  "CMakeFiles/parsim_workload.dir/generators.cc.o.d"
  "libparsim_workload.a"
  "libparsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
