# Empty compiler generated dependencies file for parsim_workload.
# This may be replaced when dependencies are built.
