file(REMOVE_RECURSE
  "libparsim_workload.a"
)
