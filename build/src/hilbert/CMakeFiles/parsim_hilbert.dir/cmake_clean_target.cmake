file(REMOVE_RECURSE
  "libparsim_hilbert.a"
)
