file(REMOVE_RECURSE
  "CMakeFiles/parsim_hilbert.dir/hilbert.cc.o"
  "CMakeFiles/parsim_hilbert.dir/hilbert.cc.o.d"
  "libparsim_hilbert.a"
  "libparsim_hilbert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_hilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
