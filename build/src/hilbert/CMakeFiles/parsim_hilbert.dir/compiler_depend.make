# Empty compiler generated dependencies file for parsim_hilbert.
# This may be replaced when dependencies are built.
