file(REMOVE_RECURSE
  "CMakeFiles/parsim_cost.dir/model.cc.o"
  "CMakeFiles/parsim_cost.dir/model.cc.o.d"
  "libparsim_cost.a"
  "libparsim_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
