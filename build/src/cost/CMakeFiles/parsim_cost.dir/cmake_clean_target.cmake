file(REMOVE_RECURSE
  "libparsim_cost.a"
)
