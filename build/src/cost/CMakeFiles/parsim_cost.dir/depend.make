# Empty dependencies file for parsim_cost.
# This may be replaced when dependencies are built.
