# Empty dependencies file for parsim_eval.
# This may be replaced when dependencies are built.
