file(REMOVE_RECURSE
  "libparsim_eval.a"
)
