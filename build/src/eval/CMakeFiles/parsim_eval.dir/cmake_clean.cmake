file(REMOVE_RECURSE
  "CMakeFiles/parsim_eval.dir/experiment.cc.o"
  "CMakeFiles/parsim_eval.dir/experiment.cc.o.d"
  "CMakeFiles/parsim_eval.dir/throughput.cc.o"
  "CMakeFiles/parsim_eval.dir/throughput.cc.o.d"
  "libparsim_eval.a"
  "libparsim_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
