file(REMOVE_RECURSE
  "CMakeFiles/parsim_parallel.dir/engine.cc.o"
  "CMakeFiles/parsim_parallel.dir/engine.cc.o.d"
  "libparsim_parallel.a"
  "libparsim_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
