file(REMOVE_RECURSE
  "libparsim_parallel.a"
)
