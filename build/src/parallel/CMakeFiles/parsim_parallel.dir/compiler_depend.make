# Empty compiler generated dependencies file for parsim_parallel.
# This may be replaced when dependencies are built.
