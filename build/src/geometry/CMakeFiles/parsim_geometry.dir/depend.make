# Empty dependencies file for parsim_geometry.
# This may be replaced when dependencies are built.
