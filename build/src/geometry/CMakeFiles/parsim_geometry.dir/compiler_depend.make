# Empty compiler generated dependencies file for parsim_geometry.
# This may be replaced when dependencies are built.
