file(REMOVE_RECURSE
  "libparsim_geometry.a"
)
