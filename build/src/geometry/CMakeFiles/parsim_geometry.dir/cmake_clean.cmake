file(REMOVE_RECURSE
  "CMakeFiles/parsim_geometry.dir/metric.cc.o"
  "CMakeFiles/parsim_geometry.dir/metric.cc.o.d"
  "CMakeFiles/parsim_geometry.dir/point.cc.o"
  "CMakeFiles/parsim_geometry.dir/point.cc.o.d"
  "CMakeFiles/parsim_geometry.dir/rect.cc.o"
  "CMakeFiles/parsim_geometry.dir/rect.cc.o.d"
  "libparsim_geometry.a"
  "libparsim_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
