file(REMOVE_RECURSE
  "libparsim_core.a"
)
