
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/parsim_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/bucket.cc" "src/core/CMakeFiles/parsim_core.dir/bucket.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/bucket.cc.o.d"
  "/root/repo/src/core/coloring.cc" "src/core/CMakeFiles/parsim_core.dir/coloring.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/coloring.cc.o.d"
  "/root/repo/src/core/declusterer.cc" "src/core/CMakeFiles/parsim_core.dir/declusterer.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/declusterer.cc.o.d"
  "/root/repo/src/core/disk_assignment_graph.cc" "src/core/CMakeFiles/parsim_core.dir/disk_assignment_graph.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/disk_assignment_graph.cc.o.d"
  "/root/repo/src/core/folding.cc" "src/core/CMakeFiles/parsim_core.dir/folding.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/folding.cc.o.d"
  "/root/repo/src/core/near_optimal.cc" "src/core/CMakeFiles/parsim_core.dir/near_optimal.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/near_optimal.cc.o.d"
  "/root/repo/src/core/neighborhood.cc" "src/core/CMakeFiles/parsim_core.dir/neighborhood.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/neighborhood.cc.o.d"
  "/root/repo/src/core/quantile.cc" "src/core/CMakeFiles/parsim_core.dir/quantile.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/quantile.cc.o.d"
  "/root/repo/src/core/recursive.cc" "src/core/CMakeFiles/parsim_core.dir/recursive.cc.o" "gcc" "src/core/CMakeFiles/parsim_core.dir/recursive.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/parsim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/parsim_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/hilbert/CMakeFiles/parsim_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/parsim_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
