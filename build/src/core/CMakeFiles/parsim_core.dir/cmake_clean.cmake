file(REMOVE_RECURSE
  "CMakeFiles/parsim_core.dir/baselines.cc.o"
  "CMakeFiles/parsim_core.dir/baselines.cc.o.d"
  "CMakeFiles/parsim_core.dir/bucket.cc.o"
  "CMakeFiles/parsim_core.dir/bucket.cc.o.d"
  "CMakeFiles/parsim_core.dir/coloring.cc.o"
  "CMakeFiles/parsim_core.dir/coloring.cc.o.d"
  "CMakeFiles/parsim_core.dir/declusterer.cc.o"
  "CMakeFiles/parsim_core.dir/declusterer.cc.o.d"
  "CMakeFiles/parsim_core.dir/disk_assignment_graph.cc.o"
  "CMakeFiles/parsim_core.dir/disk_assignment_graph.cc.o.d"
  "CMakeFiles/parsim_core.dir/folding.cc.o"
  "CMakeFiles/parsim_core.dir/folding.cc.o.d"
  "CMakeFiles/parsim_core.dir/near_optimal.cc.o"
  "CMakeFiles/parsim_core.dir/near_optimal.cc.o.d"
  "CMakeFiles/parsim_core.dir/neighborhood.cc.o"
  "CMakeFiles/parsim_core.dir/neighborhood.cc.o.d"
  "CMakeFiles/parsim_core.dir/quantile.cc.o"
  "CMakeFiles/parsim_core.dir/quantile.cc.o.d"
  "CMakeFiles/parsim_core.dir/recursive.cc.o"
  "CMakeFiles/parsim_core.dir/recursive.cc.o.d"
  "libparsim_core.a"
  "libparsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
