# Empty dependencies file for parsim_core.
# This may be replaced when dependencies are built.
