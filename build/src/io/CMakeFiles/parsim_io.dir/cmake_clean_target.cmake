file(REMOVE_RECURSE
  "libparsim_io.a"
)
