# Empty compiler generated dependencies file for parsim_io.
# This may be replaced when dependencies are built.
