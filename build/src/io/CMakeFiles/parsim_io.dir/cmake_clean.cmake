file(REMOVE_RECURSE
  "CMakeFiles/parsim_io.dir/disk.cc.o"
  "CMakeFiles/parsim_io.dir/disk.cc.o.d"
  "CMakeFiles/parsim_io.dir/disk_array.cc.o"
  "CMakeFiles/parsim_io.dir/disk_array.cc.o.d"
  "libparsim_io.a"
  "libparsim_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsim_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
