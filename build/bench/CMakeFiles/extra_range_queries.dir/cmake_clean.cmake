file(REMOVE_RECURSE
  "CMakeFiles/extra_range_queries.dir/extra_range_queries.cc.o"
  "CMakeFiles/extra_range_queries.dir/extra_range_queries.cc.o.d"
  "extra_range_queries"
  "extra_range_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
