# Empty compiler generated dependencies file for extra_range_queries.
# This may be replaced when dependencies are built.
