# Empty compiler generated dependencies file for fig07_nearoptimality_violations.
# This may be replaced when dependencies are built.
