file(REMOVE_RECURSE
  "CMakeFiles/fig07_nearoptimality_violations.dir/fig07_nearoptimality_violations.cc.o"
  "CMakeFiles/fig07_nearoptimality_violations.dir/fig07_nearoptimality_violations.cc.o.d"
  "fig07_nearoptimality_violations"
  "fig07_nearoptimality_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nearoptimality_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
