# Empty dependencies file for fig03_hilbert_vs_roundrobin.
# This may be replaced when dependencies are built.
