file(REMOVE_RECURSE
  "CMakeFiles/fig03_hilbert_vs_roundrobin.dir/fig03_hilbert_vs_roundrobin.cc.o"
  "CMakeFiles/fig03_hilbert_vs_roundrobin.dir/fig03_hilbert_vs_roundrobin.cc.o.d"
  "fig03_hilbert_vs_roundrobin"
  "fig03_hilbert_vs_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_hilbert_vs_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
