# Empty dependencies file for fig12_speedup_uniform.
# This may be replaced when dependencies are built.
