file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup_uniform.dir/fig12_speedup_uniform.cc.o"
  "CMakeFiles/fig12_speedup_uniform.dir/fig12_speedup_uniform.cc.o.d"
  "fig12_speedup_uniform"
  "fig12_speedup_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
