file(REMOVE_RECURSE
  "CMakeFiles/extra_cost_model.dir/extra_cost_model.cc.o"
  "CMakeFiles/extra_cost_model.dir/extra_cost_model.cc.o.d"
  "extra_cost_model"
  "extra_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
