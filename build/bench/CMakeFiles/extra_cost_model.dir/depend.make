# Empty dependencies file for extra_cost_model.
# This may be replaced when dependencies are built.
