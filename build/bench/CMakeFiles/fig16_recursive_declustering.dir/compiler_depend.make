# Empty compiler generated dependencies file for fig16_recursive_declustering.
# This may be replaced when dependencies are built.
