file(REMOVE_RECURSE
  "CMakeFiles/fig16_recursive_declustering.dir/fig16_recursive_declustering.cc.o"
  "CMakeFiles/fig16_recursive_declustering.dir/fig16_recursive_declustering.cc.o.d"
  "fig16_recursive_declustering"
  "fig16_recursive_declustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_recursive_declustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
