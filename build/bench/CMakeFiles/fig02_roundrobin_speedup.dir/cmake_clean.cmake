file(REMOVE_RECURSE
  "CMakeFiles/fig02_roundrobin_speedup.dir/fig02_roundrobin_speedup.cc.o"
  "CMakeFiles/fig02_roundrobin_speedup.dir/fig02_roundrobin_speedup.cc.o.d"
  "fig02_roundrobin_speedup"
  "fig02_roundrobin_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_roundrobin_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
