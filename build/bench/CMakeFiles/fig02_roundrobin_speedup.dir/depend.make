# Empty dependencies file for fig02_roundrobin_speedup.
# This may be replaced when dependencies are built.
