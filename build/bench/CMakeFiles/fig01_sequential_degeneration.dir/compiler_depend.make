# Empty compiler generated dependencies file for fig01_sequential_degeneration.
# This may be replaced when dependencies are built.
