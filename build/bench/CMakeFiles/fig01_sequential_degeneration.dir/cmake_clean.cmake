file(REMOVE_RECURSE
  "CMakeFiles/fig01_sequential_degeneration.dir/fig01_sequential_degeneration.cc.o"
  "CMakeFiles/fig01_sequential_degeneration.dir/fig01_sequential_degeneration.cc.o.d"
  "fig01_sequential_degeneration"
  "fig01_sequential_degeneration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_sequential_degeneration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
