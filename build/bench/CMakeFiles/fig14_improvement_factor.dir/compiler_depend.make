# Empty compiler generated dependencies file for fig14_improvement_factor.
# This may be replaced when dependencies are built.
