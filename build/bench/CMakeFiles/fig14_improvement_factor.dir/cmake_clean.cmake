file(REMOVE_RECURSE
  "CMakeFiles/fig14_improvement_factor.dir/fig14_improvement_factor.cc.o"
  "CMakeFiles/fig14_improvement_factor.dir/fig14_improvement_factor.cc.o.d"
  "fig14_improvement_factor"
  "fig14_improvement_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_improvement_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
