file(REMOVE_RECURSE
  "CMakeFiles/extra_throughput.dir/extra_throughput.cc.o"
  "CMakeFiles/extra_throughput.dir/extra_throughput.cc.o.d"
  "extra_throughput"
  "extra_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
