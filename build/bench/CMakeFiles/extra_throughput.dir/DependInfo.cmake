
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extra_throughput.cc" "bench/CMakeFiles/extra_throughput.dir/extra_throughput.cc.o" "gcc" "bench/CMakeFiles/extra_throughput.dir/extra_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cost/CMakeFiles/parsim_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/parsim_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/parsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/parsim_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/parsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/parsim_index.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/parsim_io.dir/DependInfo.cmake"
  "/root/repo/build/src/hilbert/CMakeFiles/parsim_hilbert.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/parsim_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/parsim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
