# Empty compiler generated dependencies file for extra_throughput.
# This may be replaced when dependencies are built.
