# Empty compiler generated dependencies file for extra_buffer_pool.
# This may be replaced when dependencies are built.
