file(REMOVE_RECURSE
  "CMakeFiles/extra_buffer_pool.dir/extra_buffer_pool.cc.o"
  "CMakeFiles/extra_buffer_pool.dir/extra_buffer_pool.cc.o.d"
  "extra_buffer_pool"
  "extra_buffer_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
