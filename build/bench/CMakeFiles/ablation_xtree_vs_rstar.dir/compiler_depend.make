# Empty compiler generated dependencies file for ablation_xtree_vs_rstar.
# This may be replaced when dependencies are built.
