file(REMOVE_RECURSE
  "CMakeFiles/ablation_xtree_vs_rstar.dir/ablation_xtree_vs_rstar.cc.o"
  "CMakeFiles/ablation_xtree_vs_rstar.dir/ablation_xtree_vs_rstar.cc.o.d"
  "ablation_xtree_vs_rstar"
  "ablation_xtree_vs_rstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xtree_vs_rstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
