# Empty compiler generated dependencies file for fig17_text_data.
# This may be replaced when dependencies are built.
