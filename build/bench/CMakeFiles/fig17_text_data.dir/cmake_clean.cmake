file(REMOVE_RECURSE
  "CMakeFiles/fig17_text_data.dir/fig17_text_data.cc.o"
  "CMakeFiles/fig17_text_data.dir/fig17_text_data.cc.o.d"
  "fig17_text_data"
  "fig17_text_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_text_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
