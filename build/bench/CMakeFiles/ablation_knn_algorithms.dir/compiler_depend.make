# Empty compiler generated dependencies file for ablation_knn_algorithms.
# This may be replaced when dependencies are built.
