file(REMOVE_RECURSE
  "CMakeFiles/ablation_knn_algorithms.dir/ablation_knn_algorithms.cc.o"
  "CMakeFiles/ablation_knn_algorithms.dir/ablation_knn_algorithms.cc.o.d"
  "ablation_knn_algorithms"
  "ablation_knn_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_knn_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
