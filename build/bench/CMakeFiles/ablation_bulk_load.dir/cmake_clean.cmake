file(REMOVE_RECURSE
  "CMakeFiles/ablation_bulk_load.dir/ablation_bulk_load.cc.o"
  "CMakeFiles/ablation_bulk_load.dir/ablation_bulk_load.cc.o.d"
  "ablation_bulk_load"
  "ablation_bulk_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bulk_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
