# Empty compiler generated dependencies file for fig15_scaleup.
# This may be replaced when dependencies are built.
