file(REMOVE_RECURSE
  "CMakeFiles/fig15_scaleup.dir/fig15_scaleup.cc.o"
  "CMakeFiles/fig15_scaleup.dir/fig15_scaleup.cc.o.d"
  "fig15_scaleup"
  "fig15_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
