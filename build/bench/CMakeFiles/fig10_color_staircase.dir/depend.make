# Empty dependencies file for fig10_color_staircase.
# This may be replaced when dependencies are built.
