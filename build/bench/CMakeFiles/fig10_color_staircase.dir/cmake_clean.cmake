file(REMOVE_RECURSE
  "CMakeFiles/fig10_color_staircase.dir/fig10_color_staircase.cc.o"
  "CMakeFiles/fig10_color_staircase.dir/fig10_color_staircase.cc.o.d"
  "fig10_color_staircase"
  "fig10_color_staircase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_color_staircase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
