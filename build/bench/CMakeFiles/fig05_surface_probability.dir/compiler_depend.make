# Empty compiler generated dependencies file for fig05_surface_probability.
# This may be replaced when dependencies are built.
