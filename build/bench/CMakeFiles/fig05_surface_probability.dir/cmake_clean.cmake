file(REMOVE_RECURSE
  "CMakeFiles/fig05_surface_probability.dir/fig05_surface_probability.cc.o"
  "CMakeFiles/fig05_surface_probability.dir/fig05_surface_probability.cc.o.d"
  "fig05_surface_probability"
  "fig05_surface_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_surface_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
