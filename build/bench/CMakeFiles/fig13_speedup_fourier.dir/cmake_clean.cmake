file(REMOVE_RECURSE
  "CMakeFiles/fig13_speedup_fourier.dir/fig13_speedup_fourier.cc.o"
  "CMakeFiles/fig13_speedup_fourier.dir/fig13_speedup_fourier.cc.o.d"
  "fig13_speedup_fourier"
  "fig13_speedup_fourier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_speedup_fourier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
