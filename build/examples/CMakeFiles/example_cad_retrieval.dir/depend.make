# Empty dependencies file for example_cad_retrieval.
# This may be replaced when dependencies are built.
