file(REMOVE_RECURSE
  "CMakeFiles/example_cad_retrieval.dir/cad_retrieval.cpp.o"
  "CMakeFiles/example_cad_retrieval.dir/cad_retrieval.cpp.o.d"
  "example_cad_retrieval"
  "example_cad_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cad_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
