#include "src/hilbert/hilbert.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace parsim {

bool operator<(const HilbertIndex& a, const HilbertIndex& b) {
  const std::size_t n = std::max(a.words.size(), b.words.size());
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t wa = i < a.words.size() ? a.words[i] : 0;
    const std::uint64_t wb = i < b.words.size() ? b.words[i] : 0;
    if (wa != wb) return wa < wb;
  }
  return false;
}

HilbertCurve::HilbertCurve(std::size_t dim, int bits) : dim_(dim), bits_(bits) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(bits >= 1 && bits <= 32);
}

void HilbertCurve::AxesToTranspose(GridCoord* x) const {
  // Skilling (2004). On return, x holds the Hilbert index in "transposed"
  // form: bit j of the index at global position (j % dim) of level
  // (j / dim).
  GridCoord* X = x;
  const std::size_t n = dim_;
  const GridCoord M = GridCoord{1} << (bits_ - 1);
  // Inverse undo.
  for (GridCoord Q = M; Q > 1; Q >>= 1) {
    const GridCoord P = Q - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (X[i] & Q) {
        X[0] ^= P;  // invert low bits of X[0]
      } else {
        const GridCoord t = (X[0] ^ X[i]) & P;
        X[0] ^= t;
        X[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (std::size_t i = 1; i < n; ++i) X[i] ^= X[i - 1];
  GridCoord t = 0;
  for (GridCoord Q = M; Q > 1; Q >>= 1) {
    if (X[n - 1] & Q) t ^= Q - 1;
  }
  for (std::size_t i = 0; i < n; ++i) X[i] ^= t;
}

void HilbertCurve::TransposeToAxes(GridCoord* x) const {
  GridCoord* X = x;
  const std::size_t n = dim_;
  const GridCoord M = GridCoord{2} << (bits_ - 1);
  // Gray decode by H ^ (H/2).
  GridCoord t = X[n - 1] >> 1;
  for (std::size_t i = n; i-- > 1;) X[i] ^= X[i - 1];
  X[0] ^= t;
  // Undo excess work.
  for (GridCoord Q = 2; Q != M; Q <<= 1) {
    const GridCoord P = Q - 1;
    for (std::size_t i = n; i-- > 0;) {
      if (X[i] & Q) {
        X[0] ^= P;
      } else {
        const GridCoord tt = (X[0] ^ X[i]) & P;
        X[0] ^= tt;
        X[i] ^= tt;
      }
    }
  }
}

HilbertIndex HilbertCurve::Encode(const std::vector<GridCoord>& coords) const {
  PARSIM_CHECK(coords.size() == dim_);
  const GridCoord limit =
      bits_ == 32 ? ~GridCoord{0}
                  : static_cast<GridCoord>((GridCoord{1} << bits_) - 1);
  for (GridCoord c : coords) PARSIM_CHECK(c <= limit);

  std::vector<GridCoord> x = coords;
  AxesToTranspose(x.data());

  HilbertIndex out;
  out.words.assign(key_words(), 0);
  PackTransposed(x.data(), out.words.data());
  return out;
}

void HilbertCurve::PackTransposed(const GridCoord* x,
                                  std::uint64_t* words) const {
  // Pack the transposed form into a linear big integer, MSB first:
  // for level j = bits-1 .. 0, for dimension i = 0 .. dim-1, the next bit
  // (from most significant) is bit j of x[i].
  int pos = total_bits() - 1;  // global bit position to write, MSB first
  for (int j = bits_ - 1; j >= 0; --j) {
    for (std::size_t i = 0; i < dim_; ++i) {
      if ((x[i] >> j) & 1u) {
        words[static_cast<std::size_t>(pos / 64)] |=
            (std::uint64_t{1} << (pos % 64));
      }
      --pos;
    }
  }
  PARSIM_DCHECK(pos == -1);
}

std::vector<GridCoord> HilbertCurve::Decode(const HilbertIndex& index) const {
  const int total = total_bits();
  PARSIM_CHECK(index.words.size() ==
               static_cast<std::size_t>((total + 63) / 64));
  std::vector<GridCoord> x(dim_, 0);
  int pos = total - 1;
  for (int j = bits_ - 1; j >= 0; --j) {
    for (std::size_t i = 0; i < dim_; ++i) {
      const std::uint64_t word = index.words[static_cast<std::size_t>(pos / 64)];
      if ((word >> (pos % 64)) & 1u) {
        x[i] |= (GridCoord{1} << j);
      }
      --pos;
    }
  }
  TransposeToAxes(x.data());
  return x;
}

std::uint64_t HilbertCurve::EncodeU64(
    const std::vector<GridCoord>& coords) const {
  PARSIM_CHECK(total_bits() <= 64);
  return Encode(coords).words[0];
}

std::vector<GridCoord> HilbertCurve::DecodeU64(std::uint64_t index) const {
  PARSIM_CHECK(total_bits() <= 64);
  HilbertIndex h;
  h.words = {index};
  return Decode(h);
}

void HilbertCurve::CellOfTo(PointView p, GridCoord* out) const {
  PARSIM_CHECK(p.size() == dim_);
  const double cells = std::ldexp(1.0, bits_);  // 2^bits
  for (std::size_t i = 0; i < dim_; ++i) {
    double scaled = static_cast<double>(p[i]) * cells;
    // Clamp: coordinate 1.0 maps to the last cell.
    if (scaled < 0.0) scaled = 0.0;
    if (scaled >= cells) scaled = cells - 1.0;
    out[i] = static_cast<GridCoord>(scaled);
  }
}

std::vector<GridCoord> HilbertCurve::CellOf(PointView p) const {
  std::vector<GridCoord> out(dim_);
  CellOfTo(p, out.data());
  return out;
}

HilbertIndex HilbertCurve::IndexOfPoint(PointView p) const {
  return Encode(CellOf(p));
}

void HilbertCurve::IndexOfPoints(const PointSet& points, std::size_t begin,
                                 std::size_t end, std::uint64_t* out) const {
  PARSIM_CHECK(points.dim() == dim_);
  PARSIM_CHECK(begin <= end && end <= points.size());
  const std::size_t words = key_words();
  std::vector<GridCoord> x(dim_);  // shared scratch for the whole batch
  for (std::size_t i = begin; i < end; ++i) {
    CellOfTo(points[i], x.data());
    AxesToTranspose(x.data());
    std::uint64_t* w = out + (i - begin) * words;
    std::fill(w, w + words, std::uint64_t{0});
    PackTransposed(x.data(), w);
  }
}

std::uint64_t HilbertIndexMod(const HilbertIndex& index, std::uint64_t n) {
  PARSIM_CHECK(n >= 1);
  // n is a disk count in practice; capping it below 2^32 lets Horner's
  // rule run in plain 64-bit arithmetic, 32 bits at a time.
  PARSIM_CHECK(n < (std::uint64_t{1} << 32));
  std::uint64_t rem = 0;
  for (std::size_t i = index.words.size(); i-- > 0;) {
    const std::uint64_t w = index.words[i];
    rem = ((rem << 32) | (w >> 32)) % n;
    rem = ((rem << 32) | (w & 0xffffffffull)) % n;
  }
  return rem;
}

}  // namespace parsim
