// d-dimensional Hilbert space-filling curve.
//
// The Hilbert declustering baseline (Faloutsos & Bhagwat [FB 93], the
// strongest prior method the paper compares against) stores a point on
// disk `Hilbert(c_0,...,c_{d-1}) mod n`. This module provides the
// d-dimensional Hilbert encode/decode after Skilling's compact algorithm
// ("Programming the Hilbert curve", AIP 2004), which operates directly on
// per-dimension bit words.
//
// Indices can exceed 64 bits for high (dim x bits); the multi-word
// HilbertIndex representation plus HilbertIndexMod cover that case.

#ifndef PARSIM_SRC_HILBERT_HILBERT_H_
#define PARSIM_SRC_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "src/geometry/point.h"

namespace parsim {

/// Per-dimension grid coordinate (bits-per-dimension <= 32).
using GridCoord = std::uint32_t;

/// A Hilbert index of dim*bits bits, stored as little-endian 64-bit words
/// (words[0] holds the least-significant bits).
struct HilbertIndex {
  std::vector<std::uint64_t> words;

  friend bool operator==(const HilbertIndex& a, const HilbertIndex& b) {
    return a.words == b.words;
  }
  /// Numeric (unsigned big-integer) comparison.
  friend bool operator<(const HilbertIndex& a, const HilbertIndex& b);
};

/// Encoder/decoder for a fixed (dim, bits) Hilbert curve.
///
/// `dim` >= 1 dimensions, `bits` in [1, 32] bits of resolution per
/// dimension: the curve visits the 2^(dim*bits) grid cells in Hilbert
/// order.
class HilbertCurve {
 public:
  HilbertCurve(std::size_t dim, int bits);

  std::size_t dim() const { return dim_; }
  int bits() const { return bits_; }
  int total_bits() const { return static_cast<int>(dim_) * bits_; }
  /// 64-bit words per index: HilbertIndex::words.size() for this curve.
  std::size_t key_words() const {
    return static_cast<std::size_t>((total_bits() + 63) / 64);
  }

  /// Hilbert index of a grid cell. `coords` must have size dim() with
  /// each value < 2^bits().
  HilbertIndex Encode(const std::vector<GridCoord>& coords) const;

  /// Inverse of Encode.
  std::vector<GridCoord> Decode(const HilbertIndex& index) const;

  /// Convenience for total_bits() <= 64.
  std::uint64_t EncodeU64(const std::vector<GridCoord>& coords) const;
  std::vector<GridCoord> DecodeU64(std::uint64_t index) const;

  /// Grid cell of a point in [0,1]^d (values clamped into range).
  std::vector<GridCoord> CellOf(PointView p) const;

  /// Hilbert index of a point in [0,1]^d.
  HilbertIndex IndexOfPoint(PointView p) const;

  /// Batch form of IndexOfPoint: writes the keys of points[begin..end)
  /// into `out`, key_words() little-endian words per point (word j of
  /// point i at out[(i - begin) * key_words() + j], bit-identical to
  /// IndexOfPoint(points[i]).words[j]). One scratch buffer serves the
  /// whole batch instead of the per-call allocations of the single-point
  /// path; bulk load feeds ParallelFor chunks through this. `out` must
  /// hold (end - begin) * key_words() words.
  void IndexOfPoints(const PointSet& points, std::size_t begin,
                     std::size_t end, std::uint64_t* out) const;

 private:
  // Skilling's transforms on the "transposed" index representation;
  // `x` points at dim() coordinates transformed in place.
  void AxesToTranspose(GridCoord* x) const;
  void TransposeToAxes(GridCoord* x) const;
  // Grid cell of a point in [0,1]^d, written into caller storage.
  void CellOfTo(PointView p, GridCoord* out) const;
  // Packs the transposed form at `x` into key_words() little-endian
  // words at `words` (which must be pre-zeroed), MSB first globally.
  void PackTransposed(const GridCoord* x, std::uint64_t* words) const;

  std::size_t dim_;
  int bits_;
};

/// value mod n for a multi-word index; n >= 1.
std::uint64_t HilbertIndexMod(const HilbertIndex& index, std::uint64_t n);

}  // namespace parsim

#endif  // PARSIM_SRC_HILBERT_HILBERT_H_
