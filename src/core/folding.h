// Color folding: adapting `col` to an arbitrary number of disks
// (Section 4.3, first extension).
//
// col requires C = 2^ceil(log2(d+1)) disks. When only n < C disks exist,
// the paper repeatedly maps the upper half of the color range onto the
// *binary complement* of the lower half (complementary colors have
// maximal Hamming distance, so most direct neighbors stay on different
// disks), halving the range until n is reachable, then folds the
// remaining excess the same way. The mapping is precomputed into a
// lookup table; disk lookup is a single table access.

#ifndef PARSIM_SRC_CORE_FOLDING_H_
#define PARSIM_SRC_CORE_FOLDING_H_

#include <cstdint>
#include <vector>

#include "src/core/coloring.h"

namespace parsim {

/// The color -> disk lookup table for folding C colors onto n disks.
class ColorFolding {
 public:
  /// `num_colors` must be a power of two (what col produces);
  /// 1 <= num_disks <= num_colors.
  ColorFolding(std::uint32_t num_colors, std::uint32_t num_disks);

  std::uint32_t num_colors() const {
    return static_cast<std::uint32_t>(table_.size());
  }
  std::uint32_t num_disks() const { return num_disks_; }

  /// Disk of a color; O(1). Requires color < num_colors().
  std::uint32_t DiskOf(Color color) const;

  /// The full table (diagnostics, tests).
  const std::vector<std::uint32_t>& table() const { return table_; }

 private:
  std::uint32_t num_disks_;
  std::vector<std::uint32_t> table_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_FOLDING_H_
