// Replica placement for degraded reads: a secondary disk per bucket,
// derived from the same `col` vertex coloring that places the primaries.
//
// Rationale: the coloring already certifies which buckets are "far
// apart" — a bucket's direct and indirect neighbors all carry different
// colors (Lemmas 2-5), so their primary disks are known from the color
// alone. The replica of a bucket should avoid exactly those disks: if
// the primary fails, the failover work must not land on a disk that the
// same query is already loading (neighboring buckets are precisely the
// ones one ball query touches together, Section 3.1).
//
// Because every neighbor color is col(b) XOR s for an offset s that
// depends only on the dimension (s in {i+1} for direct, {(i+1)^(j+1)}
// for indirect neighbors), the forbidden disk set of a bucket depends
// only on its COLOR. The placement is therefore a per-color table,
// computed once: for each color, scan the disks in a deterministic
// rotation and take the first disk that avoids, in priority order,
//
//   1. the primaries of the bucket, its direct and indirect neighbors,
//   2. the primaries of the bucket and its direct neighbors,
//   3. the bucket's own primary.
//
// Guarantees (n = number of disks, d = dimension):
//   * n >= 2                      -> replica != primary, always;
//   * n >= d + 2                  -> additionally, the replica never
//     shares a disk with any direct neighbor's primary;
//   * n >= 2 + d + d(d-1)/2       -> full separation: the replica avoids
//     the primaries of all direct AND indirect neighbors. (Below that
//     bound full separation is impossible in the worst case: a bucket's
//     closed neighborhood already occupies that many distinct disks.)

#ifndef PARSIM_SRC_CORE_REPLICA_H_
#define PARSIM_SRC_CORE_REPLICA_H_

#include <cstdint>
#include <vector>

#include "src/core/bucket.h"
#include "src/core/coloring.h"
#include "src/core/folding.h"
#include "src/io/disk.h"

namespace parsim {

/// Coloring-driven bucket -> secondary-disk mapping.
class ReplicaPlacement {
 public:
  /// Midpoint-split buckets over `num_disks` disks (num_disks >= 1).
  /// Primaries are assumed to follow the near-optimal mapping
  /// fold(col(bucket)) over min(num_disks, NumColors(dim)) disks; disks
  /// beyond the color count (if any) carry replicas only.
  ReplicaPlacement(std::size_t dim, std::uint32_t num_disks);

  /// Custom split values (e.g. quantile splits), same disk model.
  ReplicaPlacement(Bucketizer bucketizer, std::uint32_t num_disks);

  std::size_t dim() const { return bucketizer_.dim(); }
  std::uint32_t num_disks() const { return num_disks_; }
  const Bucketizer& bucketizer() const { return bucketizer_; }

  /// The replica disk of a color / bucket / point; O(1) table lookups.
  DiskId ReplicaOfColor(Color color) const;
  DiskId ReplicaOfBucket(BucketId bucket) const {
    return ReplicaOfColor(ColorOf(bucket));
  }
  DiskId ReplicaOfPoint(PointView p) const {
    return ReplicaOfBucket(bucketizer_.BucketOf(p));
  }

  /// Replica disk for a bucket whose actual primary is `primary`. Equal
  /// to ReplicaOfBucket unless the caller's primary mapping disagrees
  /// with the near-optimal one (e.g. a round-robin declusterer), in
  /// which case the replica is nudged off the primary so the two copies
  /// never share a disk (requires num_disks >= 2 to be effective).
  DiskId ReplicaFor(BucketId bucket, DiskId primary) const;

  /// Smallest disk count guaranteeing replica separation from all
  /// direct-neighbor primaries: d + 2.
  static std::uint32_t DirectSeparationDisks(std::size_t dim) {
    return static_cast<std::uint32_t>(dim) + 2;
  }

  /// Smallest disk count guaranteeing full separation (direct and
  /// indirect neighbors): 2 + d + d(d-1)/2, the worst-case size of a
  /// closed neighborhood's disk footprint plus one.
  static std::uint32_t FullSeparationDisks(std::size_t dim) {
    const std::uint32_t d = static_cast<std::uint32_t>(dim);
    return 2 + d + d * (d - 1) / 2;
  }

 private:
  void BuildTable();

  Bucketizer bucketizer_;
  std::uint32_t num_disks_;
  ColorFolding folding_;  // primary mapping: colors -> min(n, C) disks
  std::vector<DiskId> replica_of_color_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_REPLICA_H_
