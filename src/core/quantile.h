// α-quantile split values for skewed data (Section 4.3, second extension).
//
// With midpoint splits, clustered data loads a few disks heavily. The
// paper splits each dimension at its 0.5-quantile (median) instead, and
// adapts dynamically: it records how many points fall below/above the
// current split per dimension and reorganizes when the ratio exceeds a
// threshold.

#ifndef PARSIM_SRC_CORE_QUANTILE_H_
#define PARSIM_SRC_CORE_QUANTILE_H_

#include <cstdint>
#include <vector>

#include "src/core/bucket.h"
#include "src/geometry/point.h"

namespace parsim {

/// Computes per-dimension α-quantiles of a point set (the split values).
std::vector<Scalar> EstimateQuantileSplits(const PointSet& points,
                                           double alpha = 0.5);

/// Tracks split balance online and triggers reorganization.
class QuantileSplitter {
 public:
  /// Starts with midpoint splits for the unit data space.
  /// `imbalance_threshold` > 1: reorganize when, in any dimension,
  /// max(below, above) / min(below, above) exceeds it.
  explicit QuantileSplitter(std::size_t dim, double alpha = 0.5,
                            double imbalance_threshold = 2.0);

  std::size_t dim() const { return splits_.size(); }
  double alpha() const { return alpha_; }
  const std::vector<Scalar>& splits() const { return splits_; }

  /// Records one inserted point against the current splits.
  void Record(PointView p);

  /// True when any dimension's below/above ratio exceeds the threshold
  /// (requires a minimum of 64 recorded points to avoid noise).
  bool NeedsReorganization() const;

  /// Recomputes the splits as α-quantiles of `data` and resets the
  /// counters. Returns true if any split value changed.
  bool Reorganize(const PointSet& data);

  /// Number of reorganizations performed so far.
  int reorganization_count() const { return reorganization_count_; }

  /// A Bucketizer over the current split values.
  Bucketizer MakeBucketizer() const { return Bucketizer(splits_); }

 private:
  double alpha_;
  double imbalance_threshold_;
  std::vector<Scalar> splits_;
  std::vector<std::uint64_t> below_;
  std::vector<std::uint64_t> above_;
  std::uint64_t recorded_ = 0;
  int reorganization_count_ = 0;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_QUANTILE_H_
