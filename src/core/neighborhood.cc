#include "src/core/neighborhood.h"

#include "src/util/bits.h"
#include "src/util/check.h"

namespace parsim {

bool AreDirectNeighbors(BucketId b, BucketId c) {
  return HammingDistance(b, c) == 1;
}

bool AreIndirectNeighbors(BucketId b, BucketId c) {
  return HammingDistance(b, c) == 2;
}

bool AreNeighbors(BucketId b, BucketId c) {
  const int h = HammingDistance(b, c);
  return h == 1 || h == 2;
}

std::vector<BucketId> DirectNeighbors(BucketId b, std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  std::vector<BucketId> out;
  out.reserve(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    out.push_back(b ^ (BucketId{1} << i));
  }
  return out;
}

std::vector<BucketId> IndirectNeighbors(BucketId b, std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  std::vector<BucketId> out;
  out.reserve(dim * (dim - 1) / 2);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i + 1; j < dim; ++j) {
      out.push_back(b ^ (BucketId{1} << i) ^ (BucketId{1} << j));
    }
  }
  return out;
}

std::vector<BucketId> AllNeighbors(BucketId b, std::size_t dim) {
  std::vector<BucketId> out = DirectNeighbors(b, dim);
  std::vector<BucketId> indirect = IndirectNeighbors(b, dim);
  out.insert(out.end(), indirect.begin(), indirect.end());
  return out;
}

std::uint64_t NeighborhoodSize(std::size_t dim, int levels) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(levels >= 0 && static_cast<std::size_t>(levels) <= dim);
  std::uint64_t total = 1;  // the bucket itself
  std::uint64_t binom = 1;  // C(dim, 0)
  for (int k = 1; k <= levels; ++k) {
    // C(d, k) = C(d, k-1) * (d-k+1) / k — exact at every step.
    binom = binom * (static_cast<std::uint64_t>(dim) -
                     static_cast<std::uint64_t>(k) + 1) /
            static_cast<std::uint64_t>(k);
    total += binom;
  }
  return total;
}

}  // namespace parsim
