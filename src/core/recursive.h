// Recursive declustering for highly clustered / correlated data
// (Section 4.3, third extension; Figure 16).
//
// When points concentrate in few quadrants, a single-level declustering
// loads few disks. The paper's remedy: recursively decluster all buckets
// of the most-overloaded disk in one step, re-running `col` on the
// sub-quadrants of each such bucket with a permuted color assignment
// ("permuting the colors using a simple heuristic when going to the next
// level of recursion provides good speed-ups"). Declustering the full
// O(2^d)-entry bucket table is infeasible in high d, so only overloaded
// buckets grow sub-levels.

#ifndef PARSIM_SRC_CORE_RECURSIVE_H_
#define PARSIM_SRC_CORE_RECURSIVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/core/bucket.h"
#include "src/core/declusterer.h"
#include "src/core/folding.h"

namespace parsim {

/// Tuning knobs of the recursive extension.
struct RecursiveOptions {
  /// Reorganize while max-disk load exceeds `overload_threshold` x the
  /// average load.
  double overload_threshold = 1.5;
  /// Maximum number of reorganization passes (each pass declusters the
  /// buckets of one disk, exactly as in the paper).
  int max_passes = 8;
  /// Do not split buckets holding fewer points than this.
  std::uint64_t min_bucket_points = 64;
  /// Split sub-buckets at the medians of the contained points (true) or
  /// at region midpoints (false). The α-quantile variant is the paper's
  /// recommendation for skewed data.
  bool quantile_splits = true;
};

/// Near-optimal declustering with recursive refinement of overloaded
/// buckets. Use Fit() once over (a sample of) the data; assignment is
/// then a pure function of the point.
class RecursiveDeclusterer : public Declusterer {
 public:
  /// Top-level splits are midpoints of the unit space; pass a custom
  /// Bucketizer for quantile top-level splits.
  RecursiveDeclusterer(std::size_t dim, std::uint32_t num_disks,
                       RecursiveOptions options = {});
  RecursiveDeclusterer(Bucketizer top_level, std::uint32_t num_disks,
                       RecursiveOptions options = {});
  ~RecursiveDeclusterer() override;

  RecursiveDeclusterer(const RecursiveDeclusterer&) = delete;
  RecursiveDeclusterer& operator=(const RecursiveDeclusterer&) = delete;

  /// Runs reorganization passes until the load is balanced (or limits are
  /// hit). Returns the number of passes performed.
  int Fit(const PointSet& points);

  DiskId DiskOfPoint(PointView p, PointId id) const override;
  std::uint32_t num_disks() const override { return num_disks_; }
  std::string name() const override { return "near-optimal+recursive"; }

  std::size_t dim() const { return dim_; }

  /// Depth of the deepest refinement (0 = no recursion happened).
  int MaxDepth() const;

  /// Number of refined (split) buckets across all levels.
  std::uint64_t NumSplitBuckets() const;

 private:
  struct Node;

  DiskId Resolve(const Node& node, PointView p) const;

  std::size_t dim_;
  std::uint32_t num_disks_;
  RecursiveOptions options_;
  ColorFolding folding_;
  std::unique_ptr<Node> root_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_RECURSIVE_H_
