// Baseline declustering methods the paper compares against:
//
//   * Round robin               d_i = { v_j | j mod n = i }
//   * Disk Modulo  [DS 82]      DM(c_0..c_{d-1})  = (sum c_l)  mod n
//   * FX           [KP 88]      FX(c_0..c_{d-1})  = (xor c_l)  mod n
//   * Hilbert      [FB 93]      HIL(c_0..c_{d-1}) = Hilbert(c) mod n
//
// The grid-based methods (DM, FX, Hilbert) operate on grid cell
// coordinates; with `grid_bits == 1` the cells are exactly the quadrants
// of the paper's bucket model, which is the configuration Lemma 1 and
// Figure 7 evaluate.

#ifndef PARSIM_SRC_CORE_BASELINES_H_
#define PARSIM_SRC_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "src/core/declusterer.h"
#include "src/hilbert/hilbert.h"

namespace parsim {

/// Round robin: item j goes to disk j mod n. Ignores geometry entirely.
class RoundRobinDeclusterer : public Declusterer {
 public:
  explicit RoundRobinDeclusterer(std::uint32_t num_disks);

  DiskId DiskOfPoint(PointView p, PointId id) const override;
  std::uint32_t num_disks() const override { return num_disks_; }
  std::string name() const override { return "RR"; }

 private:
  std::uint32_t num_disks_;
};

/// Shared machinery of the grid-based baselines: maps a point in [0,1]^d
/// to grid cell coordinates with `grid_bits` bits per dimension.
class GridDeclusterer : public Declusterer {
 public:
  GridDeclusterer(std::size_t dim, std::uint32_t num_disks, int grid_bits);

  std::uint32_t num_disks() const override { return num_disks_; }
  std::size_t dim() const { return dim_; }
  int grid_bits() const { return grid_bits_; }

  DiskId DiskOfPoint(PointView p, PointId id) const override;

  /// The mapping on grid cells; subclasses implement the formula.
  virtual DiskId DiskOfCell(const std::vector<GridCoord>& cell) const = 0;

  /// Grid cell of a point (coordinates clamped into [0, 2^bits)).
  std::vector<GridCoord> CellOf(PointView p) const;

 private:
  std::size_t dim_;
  std::uint32_t num_disks_;
  int grid_bits_;
};

/// Disk Modulo of Du & Sobolewski [DS 82].
class DiskModuloDeclusterer : public GridDeclusterer {
 public:
  DiskModuloDeclusterer(std::size_t dim, std::uint32_t num_disks,
                        int grid_bits = 1);
  DiskId DiskOfCell(const std::vector<GridCoord>& cell) const override;
  std::string name() const override { return "DM"; }
};

/// FX of Kim & Pramanik [KP 88] (bitwise XOR of the coordinates).
class FxDeclusterer : public GridDeclusterer {
 public:
  FxDeclusterer(std::size_t dim, std::uint32_t num_disks, int grid_bits = 1);
  DiskId DiskOfCell(const std::vector<GridCoord>& cell) const override;
  std::string name() const override { return "FX"; }
};

/// Hilbert declustering of Faloutsos & Bhagwat [FB 93]: the strongest
/// prior method and the paper's principal experimental baseline.
class HilbertDeclusterer : public GridDeclusterer {
 public:
  /// `grid_bits` defaults to 8: the fine-grained point-level mapping the
  /// paper describes ("the Hilbert value of the point is determined").
  HilbertDeclusterer(std::size_t dim, std::uint32_t num_disks,
                     int grid_bits = 8);
  DiskId DiskOfCell(const std::vector<GridCoord>& cell) const override;
  std::string name() const override { return "HIL"; }

 private:
  HilbertCurve curve_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_BASELINES_H_
