#include "src/core/replica.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {

namespace {

std::uint32_t PrimaryDisks(std::size_t dim, std::uint32_t num_disks) {
  return std::min(num_disks, NumColors(dim));
}

}  // namespace

ReplicaPlacement::ReplicaPlacement(std::size_t dim, std::uint32_t num_disks)
    : bucketizer_(dim),
      num_disks_(num_disks),
      folding_(NumColors(dim), PrimaryDisks(dim, num_disks)) {
  PARSIM_CHECK(num_disks >= 1);
  BuildTable();
}

ReplicaPlacement::ReplicaPlacement(Bucketizer bucketizer,
                                   std::uint32_t num_disks)
    : bucketizer_(std::move(bucketizer)),
      num_disks_(num_disks),
      folding_(NumColors(bucketizer_.dim()),
               PrimaryDisks(bucketizer_.dim(), num_disks)) {
  PARSIM_CHECK(num_disks >= 1);
  BuildTable();
}

void ReplicaPlacement::BuildTable() {
  const std::size_t d = bucketizer_.dim();
  const std::uint32_t num_colors = folding_.num_colors();
  replica_of_color_.resize(num_colors);

  for (Color v = 0; v < num_colors; ++v) {
    const DiskId self = folding_.DiskOf(v);
    // Primaries of the color's direct and indirect neighbors. Every
    // neighbor color is v XOR s with s = (i+1) or (i+1)^(j+1), all < C.
    std::vector<DiskId> direct, indirect;
    direct.reserve(d);
    indirect.reserve(d * (d - 1) / 2);
    for (std::size_t i = 0; i < d; ++i) {
      const Color si = static_cast<Color>(i + 1);
      direct.push_back(folding_.DiskOf(v ^ si));
      for (std::size_t j = i + 1; j < d; ++j) {
        const Color sj = static_cast<Color>(j + 1);
        indirect.push_back(folding_.DiskOf(v ^ si ^ sj));
      }
    }
    const auto in = [](const std::vector<DiskId>& set, DiskId disk) {
      return std::find(set.begin(), set.end(), disk) != set.end();
    };

    // Deterministic rotation: start past the primary, offset by the
    // color so that colors folding onto the same primary disk spread
    // their replicas over different disks (a failed disk's buckets then
    // fail over to several disks, not one).
    const std::uint32_t start = self + 1 + v % num_disks_;
    DiskId choice = self;  // n == 1 fallback: self (no replica possible)
    for (int pass = 0; pass < 3; ++pass) {
      bool found = false;
      for (std::uint32_t o = 0; o < num_disks_ && !found; ++o) {
        const DiskId disk = (start + o) % num_disks_;
        if (disk == self) continue;
        if (pass <= 1 && in(direct, disk)) continue;
        if (pass == 0 && in(indirect, disk)) continue;
        choice = disk;
        found = true;
      }
      if (found) break;
    }
    replica_of_color_[v] = choice;
  }
}

DiskId ReplicaPlacement::ReplicaOfColor(Color color) const {
  PARSIM_CHECK(color < replica_of_color_.size());
  return replica_of_color_[color];
}

DiskId ReplicaPlacement::ReplicaFor(BucketId bucket, DiskId primary) const {
  const DiskId replica = ReplicaOfBucket(bucket);
  if (replica != primary) return replica;
  return (replica + 1) % num_disks_;
}

}  // namespace parsim
