#include "src/core/disk_assignment_graph.h"

#include <algorithm>

#include "src/core/neighborhood.h"
#include "src/util/check.h"

namespace parsim {

DiskAssignmentGraph::DiskAssignmentGraph(std::size_t dim) : dim_(dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
}

std::uint64_t DiskAssignmentGraph::num_vertices() const {
  return NumBuckets(dim_);
}

std::uint64_t DiskAssignmentGraph::num_edges() const {
  const std::uint64_t degree =
      static_cast<std::uint64_t>(dim_) +
      static_cast<std::uint64_t>(dim_) * (dim_ - 1) / 2;
  return degree * num_vertices() / 2;
}

void DiskAssignmentGraph::ForEachEdge(
    const std::function<bool(BucketId, BucketId, bool)>& visit) const {
  const std::uint64_t n = num_vertices();
  for (std::uint64_t a = 0; a < n; ++a) {
    const BucketId ba = static_cast<BucketId>(a);
    for (BucketId bb : AllNeighbors(ba, dim_)) {
      if (bb <= ba) continue;  // emit each edge once
      const bool direct = AreDirectNeighbors(ba, bb);
      if (!visit(ba, bb, direct)) return;
    }
  }
}

CollisionCount DiskAssignmentGraph::CountCollisions(
    const BucketAssignment& assignment) const {
  CollisionCount count;
  ForEachEdge([&](BucketId a, BucketId b, bool direct) {
    if (assignment(a) == assignment(b)) {
      if (direct) {
        ++count.direct;
      } else {
        ++count.indirect;
      }
    }
    return true;
  });
  return count;
}

std::vector<Collision> DiskAssignmentGraph::FindCollisions(
    const BucketAssignment& assignment, std::size_t limit) const {
  std::vector<Collision> out;
  ForEachEdge([&](BucketId a, BucketId b, bool direct) {
    const std::uint32_t da = assignment(a);
    if (da == assignment(b)) {
      out.push_back(Collision{a, b, da, direct});
    }
    return out.size() < limit;
  });
  return out;
}

bool DiskAssignmentGraph::IsNearOptimal(
    const BucketAssignment& assignment) const {
  bool ok = true;
  ForEachEdge([&](BucketId a, BucketId b, bool /*direct*/) {
    if (assignment(a) == assignment(b)) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

bool DiskAssignmentGraph::IsColorableWith(std::uint32_t colors) const {
  // Exhaustive backtracking over vertices in bucket-number order, with the
  // standard symmetry break: vertex v may use at most one color that no
  // earlier vertex used.
  const std::uint64_t n = num_vertices();
  PARSIM_CHECK(n <= 4096);  // d <= 12: enumeration is only for small d
  if (colors >= n) return true;
  std::vector<std::uint32_t> color(n, UINT32_MAX);
  // Precompute the neighbor lists once.
  std::vector<std::vector<BucketId>> neighbors(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (BucketId u : AllNeighbors(static_cast<BucketId>(v), dim_)) {
      if (u < v) neighbors[v].push_back(u);
    }
  }
  std::function<bool(std::uint64_t, std::uint32_t)> recurse =
      [&](std::uint64_t v, std::uint32_t used) -> bool {
    if (v == n) return true;
    const std::uint32_t limit = std::min(colors, used + 1);
    for (std::uint32_t c = 0; c < limit; ++c) {
      bool feasible = true;
      for (BucketId u : neighbors[v]) {
        if (color[u] == c) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      color[v] = c;
      if (recurse(v + 1, std::max(used, c + 1))) return true;
      color[v] = UINT32_MAX;
    }
    return false;
  };
  return recurse(0, 0);
}

}  // namespace parsim
