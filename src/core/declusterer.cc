#include "src/core/declusterer.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {

std::vector<std::uint64_t> DiskLoads(const Declusterer& declusterer,
                                     const PointSet& points) {
  std::vector<std::uint64_t> loads(declusterer.num_disks(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DiskId disk =
        declusterer.DiskOfPoint(points[i], static_cast<PointId>(i));
    PARSIM_CHECK(disk < loads.size());
    ++loads[disk];
  }
  return loads;
}

double LoadImbalance(const std::vector<std::uint64_t>& loads) {
  PARSIM_CHECK(!loads.empty());
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (std::uint64_t l : loads) {
    total += l;
    worst = std::max(worst, l);
  }
  if (total == 0) return 1.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(worst) / avg;
}

}  // namespace parsim
