// The vertex coloring function `col` (Definition 6) — the heart of the
// paper's near-optimal declustering.
//
//   col(c) = XOR over all set bit positions i of c of the value (i + 1).
//
// Lemmas 2-5 prove col assigns different colors to all direct and
// indirect neighbors; Lemma 6 proves it uses exactly
// 2^ceil(log2(d+1)) colors — a staircase between the lower bound d+1 and
// the upper bound 2d, optimal up to rounding to the next power of two.

#ifndef PARSIM_SRC_CORE_COLORING_H_
#define PARSIM_SRC_CORE_COLORING_H_

#include <cstdint>

#include "src/core/bucket.h"

namespace parsim {

/// A vertex color (equivalently, a logical disk number before folding).
using Color = std::uint32_t;

/// The vertex coloring function col (Definition 6). O(d) time; d is
/// implicit (leading zero bits of `bucket` do not contribute).
Color ColorOf(BucketId bucket);

/// Number of colors col uses for a d-dimensional space (Lemma 6):
/// 2^ceil(log2(d+1)).
std::uint32_t NumColors(std::size_t dim);

/// The information-theoretic lower bound d+1 (each vertex plus its d
/// direct neighbors need pairwise different colors).
std::uint32_t NumColorsLowerBound(std::size_t dim);

/// The linear upper bound 2d (d >= 1), from Lemma 6's rounding argument.
std::uint32_t NumColorsUpperBound(std::size_t dim);

/// A bucket whose color is `color` in a d-dimensional space, constructed
/// by Lemma 6's recipe (bit j of color set -> bit 2^j - 1 of the bucket
/// set). Requires color < NumColors(dim).
BucketId BucketWithColor(Color color, std::size_t dim);

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_COLORING_H_
