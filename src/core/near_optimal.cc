#include "src/core/near_optimal.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {
namespace {

// col distributes over at most NumColors(d) disks; extra disks beyond
// that stay idle (the bucket granularity cannot address them — a finer
// distribution requires the recursive extension).
std::uint32_t UsableDisks(std::size_t dim, std::uint32_t num_disks) {
  PARSIM_CHECK(num_disks >= 1);
  return std::min(num_disks, NumColors(dim));
}

}  // namespace

NearOptimalDeclusterer::NearOptimalDeclusterer(std::size_t dim,
                                               std::uint32_t num_disks)
    : bucketizer_(dim),
      folding_(NumColors(dim), UsableDisks(dim, num_disks)) {}

NearOptimalDeclusterer::NearOptimalDeclusterer(Bucketizer bucketizer,
                                               std::uint32_t num_disks)
    : bucketizer_(std::move(bucketizer)),
      folding_(NumColors(bucketizer_.dim()),
               UsableDisks(bucketizer_.dim(), num_disks)) {}

DiskId NearOptimalDeclusterer::DiskOfPoint(PointView p, PointId /*id*/) const {
  return DiskOfBucket(bucketizer_.BucketOf(p));
}

void NearOptimalDeclusterer::set_bucketizer(Bucketizer bucketizer) {
  PARSIM_CHECK(bucketizer.dim() == bucketizer_.dim());
  bucketizer_ = std::move(bucketizer);
}

DiskId NearOptimalDeclusterer::DiskOfBucket(BucketId bucket) const {
  return folding_.DiskOf(ColorOf(bucket));
}

}  // namespace parsim
