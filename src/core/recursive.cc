#include "src/core/recursive.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/core/coloring.h"
#include "src/core/quantile.h"
#include "src/util/check.h"

namespace parsim {

struct RecursiveDeclusterer::Node {
  Node(Bucketizer b, Rect r, std::uint32_t rot)
      : bucketizer(std::move(b)), region(std::move(r)), rotation(rot) {}

  Bucketizer bucketizer;
  Rect region;
  std::uint32_t rotation;
  std::map<BucketId, std::unique_ptr<Node>> children;
};

namespace {

std::uint32_t UsableDisks(std::size_t dim, std::uint32_t num_disks) {
  PARSIM_CHECK(num_disks >= 1);
  return std::min(num_disks, NumColors(dim));
}

}  // namespace

RecursiveDeclusterer::RecursiveDeclusterer(std::size_t dim,
                                           std::uint32_t num_disks,
                                           RecursiveOptions options)
    : RecursiveDeclusterer(Bucketizer(dim), num_disks, options) {}

RecursiveDeclusterer::RecursiveDeclusterer(Bucketizer top_level,
                                           std::uint32_t num_disks,
                                           RecursiveOptions options)
    : dim_(top_level.dim()),
      num_disks_(num_disks),
      options_(options),
      folding_(NumColors(top_level.dim()), UsableDisks(dim_, num_disks)),
      root_(std::make_unique<Node>(std::move(top_level), Rect::UnitCube(dim_),
                                   0)) {
  PARSIM_CHECK(options_.overload_threshold > 1.0);
  PARSIM_CHECK(options_.max_passes >= 0);
}

RecursiveDeclusterer::~RecursiveDeclusterer() = default;

DiskId RecursiveDeclusterer::Resolve(const Node& node, PointView p) const {
  const BucketId bucket = node.bucketizer.BucketOf(p);
  const auto it = node.children.find(bucket);
  if (it != node.children.end()) return Resolve(*it->second, p);
  const Color color = static_cast<Color>(
      (ColorOf(bucket) + node.rotation) % folding_.num_colors());
  return folding_.DiskOf(color);
}

DiskId RecursiveDeclusterer::DiskOfPoint(PointView p, PointId /*id*/) const {
  PARSIM_DCHECK(p.size() == dim_);
  return Resolve(*root_, p);
}

int RecursiveDeclusterer::Fit(const PointSet& points) {
  PARSIM_CHECK(points.dim() == dim_);
  int passes = 0;
  for (; passes < options_.max_passes; ++passes) {
    // Current per-disk loads and per-leaf point lists.
    std::vector<std::uint64_t> loads(num_disks_, 0);
    // Leaf identity: (node, bucket). Points are grouped per leaf so the
    // overloaded disk's buckets can be split in one pass.
    std::map<std::pair<Node*, BucketId>, std::vector<std::uint32_t>> leaves;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const PointView p = points[i];
      Node* node = root_.get();
      BucketId bucket = node->bucketizer.BucketOf(p);
      for (;;) {
        auto it = node->children.find(bucket);
        if (it == node->children.end()) break;
        node = it->second.get();
        bucket = node->bucketizer.BucketOf(p);
      }
      const Color color = static_cast<Color>(
          (ColorOf(bucket) + node->rotation) % folding_.num_colors());
      ++loads[folding_.DiskOf(color)];
      leaves[{node, bucket}].push_back(static_cast<std::uint32_t>(i));
    }
    if (LoadImbalance(loads) <= options_.overload_threshold) break;

    // The paper's step: decluster all buckets of the single most
    // overloaded disk.
    const DiskId busiest = static_cast<DiskId>(std::distance(
        loads.begin(), std::max_element(loads.begin(), loads.end())));
    bool split_any = false;
    for (auto& [leaf, members] : leaves) {
      Node* node = leaf.first;
      const BucketId bucket = leaf.second;
      const Color color = static_cast<Color>(
          (ColorOf(bucket) + node->rotation) % folding_.num_colors());
      if (folding_.DiskOf(color) != busiest) continue;
      if (members.size() < options_.min_bucket_points) continue;

      const Rect region = node->bucketizer.BucketRegion(bucket, node->region);
      std::vector<Scalar> splits(dim_);
      if (options_.quantile_splits) {
        PointSet group(dim_);
        group.Reserve(members.size());
        for (std::uint32_t idx : members) group.Add(points[idx]);
        splits = EstimateQuantileSplits(group, 0.5);
      } else {
        const Point center = region.Center();
        for (std::size_t i = 0; i < dim_; ++i) splits[i] = center[i];
      }
      // Clamp splits strictly inside the region so both sub-halves are
      // non-degenerate bucket regions.
      for (std::size_t i = 0; i < dim_; ++i) {
        splits[i] = std::clamp(splits[i], region.lo(i), region.hi(i));
      }
      // Color permutation heuristic: advance the rotation per level and
      // per source color so sibling refinements interleave differently.
      const std::uint32_t rotation =
          (node->rotation + 1u + color) % folding_.num_colors();
      node->children[bucket] =
          std::make_unique<Node>(Bucketizer(std::move(splits)), region,
                                 rotation);
      split_any = true;
    }
    if (!split_any) break;  // nothing left to refine
  }
  return passes;
}

// MaxDepth/NumSplitBuckets need Node's definition; small recursive walks.
int RecursiveDeclusterer::MaxDepth() const {
  struct Walker {
    static int Depth(const Node& node) {
      int best = 0;
      for (const auto& [bucket, child] : node.children) {
        (void)bucket;
        best = std::max(best, 1 + Depth(*child));
      }
      return best;
    }
  };
  return Walker::Depth(*root_);
}

std::uint64_t RecursiveDeclusterer::NumSplitBuckets() const {
  struct Walker {
    static std::uint64_t Count(const Node& node) {
      std::uint64_t total = node.children.size();
      for (const auto& [bucket, child] : node.children) {
        (void)bucket;
        total += Count(*child);
      }
      return total;
    }
  };
  return Walker::Count(*root_);
}

}  // namespace parsim
