// The Declusterer interface: a mapping from data items to disks.
//
// "A declustering algorithm DA can then be described as a mapping from
// the bucket characterization to a disk number" (Section 3). Round robin
// is the exception that maps item *indices* rather than buckets, so the
// interface takes both the point and its id.

#ifndef PARSIM_SRC_CORE_DECLUSTERER_H_
#define PARSIM_SRC_CORE_DECLUSTERER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/bucket.h"
#include "src/geometry/point.h"
#include "src/io/disk.h"

namespace parsim {

/// Abstract data-to-disk mapping.
class Declusterer {
 public:
  virtual ~Declusterer() = default;

  /// The disk that stores the data item `(id, p)`. Must be < num_disks().
  virtual DiskId DiskOfPoint(PointView p, PointId id) const = 0;

  /// Number of disks this declusterer distributes over.
  virtual std::uint32_t num_disks() const = 0;

  /// Short display name, e.g. "near-optimal", "HIL", "RR".
  virtual std::string name() const = 0;
};

/// Computes the per-disk item counts of `declusterer` over `points`
/// (load-balance diagnostics, used by the recursive extension).
std::vector<std::uint64_t> DiskLoads(const Declusterer& declusterer,
                                     const PointSet& points);

/// max(load) / avg(load) over non-empty arrays; 1.0 is perfectly even.
double LoadImbalance(const std::vector<std::uint64_t>& loads);

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_DECLUSTERER_H_
