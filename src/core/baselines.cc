#include "src/core/baselines.h"

#include <cmath>

#include "src/util/check.h"

namespace parsim {

RoundRobinDeclusterer::RoundRobinDeclusterer(std::uint32_t num_disks)
    : num_disks_(num_disks) {
  PARSIM_CHECK(num_disks >= 1);
}

DiskId RoundRobinDeclusterer::DiskOfPoint(PointView /*p*/, PointId id) const {
  return id % num_disks_;
}

GridDeclusterer::GridDeclusterer(std::size_t dim, std::uint32_t num_disks,
                                 int grid_bits)
    : dim_(dim), num_disks_(num_disks), grid_bits_(grid_bits) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(num_disks >= 1);
  PARSIM_CHECK(grid_bits >= 1 && grid_bits <= 32);
}

std::vector<GridCoord> GridDeclusterer::CellOf(PointView p) const {
  PARSIM_CHECK(p.size() == dim_);
  const double cells = std::ldexp(1.0, grid_bits_);
  std::vector<GridCoord> out(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    double scaled = static_cast<double>(p[i]) * cells;
    if (scaled < 0.0) scaled = 0.0;
    if (scaled >= cells) scaled = cells - 1.0;
    out[i] = static_cast<GridCoord>(scaled);
  }
  return out;
}

DiskId GridDeclusterer::DiskOfPoint(PointView p, PointId /*id*/) const {
  return DiskOfCell(CellOf(p));
}

DiskModuloDeclusterer::DiskModuloDeclusterer(std::size_t dim,
                                             std::uint32_t num_disks,
                                             int grid_bits)
    : GridDeclusterer(dim, num_disks, grid_bits) {}

DiskId DiskModuloDeclusterer::DiskOfCell(
    const std::vector<GridCoord>& cell) const {
  std::uint64_t sum = 0;
  for (GridCoord c : cell) sum += c;
  return static_cast<DiskId>(sum % num_disks());
}

FxDeclusterer::FxDeclusterer(std::size_t dim, std::uint32_t num_disks,
                             int grid_bits)
    : GridDeclusterer(dim, num_disks, grid_bits) {}

DiskId FxDeclusterer::DiskOfCell(const std::vector<GridCoord>& cell) const {
  std::uint64_t acc = 0;
  for (GridCoord c : cell) acc ^= c;
  return static_cast<DiskId>(acc % num_disks());
}

HilbertDeclusterer::HilbertDeclusterer(std::size_t dim,
                                       std::uint32_t num_disks, int grid_bits)
    : GridDeclusterer(dim, num_disks, grid_bits), curve_(dim, grid_bits) {}

DiskId HilbertDeclusterer::DiskOfCell(
    const std::vector<GridCoord>& cell) const {
  const HilbertIndex index = curve_.Encode(cell);
  return static_cast<DiskId>(HilbertIndexMod(index, num_disks()));
}

}  // namespace parsim
