// The paper's near-optimal declusterer (Section 4): quadrant buckets,
// the `col` vertex coloring, and color folding for arbitrary disk counts.
//
// Guarantee (Lemma 5): with n >= NumColors(d) disks, buckets that are
// direct or indirect neighbors are always stored on different disks.
// With fewer disks the folding of Section 4.3 preserves the property for
// most direct neighbors.

#ifndef PARSIM_SRC_CORE_NEAR_OPTIMAL_H_
#define PARSIM_SRC_CORE_NEAR_OPTIMAL_H_

#include <string>

#include "src/core/bucket.h"
#include "src/core/coloring.h"
#include "src/core/declusterer.h"
#include "src/core/folding.h"

namespace parsim {

/// The near-optimal declusterer ("new" in the paper's figures).
class NearOptimalDeclusterer : public Declusterer {
 public:
  /// Midpoint splits (uniform data).
  NearOptimalDeclusterer(std::size_t dim, std::uint32_t num_disks);

  /// Custom split values, e.g. α-quantiles for skewed data (Section 4.3).
  NearOptimalDeclusterer(Bucketizer bucketizer, std::uint32_t num_disks);

  DiskId DiskOfPoint(PointView p, PointId id) const override;
  std::uint32_t num_disks() const override { return folding_.num_disks(); }
  std::string name() const override { return "near-optimal"; }

  std::size_t dim() const { return bucketizer_.dim(); }
  const Bucketizer& bucketizer() const { return bucketizer_; }
  const ColorFolding& folding() const { return folding_; }

  /// Replaces the split values (after a quantile reorganization).
  void set_bucketizer(Bucketizer bucketizer);

  /// The bucket-level mapping: fold(col(bucket)).
  DiskId DiskOfBucket(BucketId bucket) const;

 private:
  Bucketizer bucketizer_;
  ColorFolding folding_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_NEAR_OPTIMAL_H_
