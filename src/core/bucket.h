// Buckets (quadrants) of the binary-partitioned data space.
//
// In high-dimensional spaces a partitioning finer than binary is
// infeasible (2^d quadrants already; Section 3.1), so the declusterer's
// buckets are the 2^d quadrants of the data space: each dimension is
// split exactly once. A bucket is identified by its coordinate bitstring
// (c_0, ..., c_{d-1}), c_i in {0,1}, packed into the *bucket number*
// bn(b) = sum_i c_i * 2^i (Definition 2).

#ifndef PARSIM_SRC_CORE_BUCKET_H_
#define PARSIM_SRC_CORE_BUCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/rect.h"

namespace parsim {

/// A bucket number per Definition 2: bit i is the coordinate c_i of the
/// quadrant in dimension i. Valid values are [0, 2^d).
using BucketId = std::uint32_t;

/// The paper's quadrant model supports up to this many dimensions per
/// declustering level (BucketId is 32 bits; recursion extends resolution).
inline constexpr std::size_t kMaxBucketDims = 32;

/// Number of buckets for a d-dimensional space: 2^d.
std::uint64_t NumBuckets(std::size_t dim);

/// Packs quadrant coordinates (c_0, ..., c_{d-1}) into a bucket number.
BucketId BucketFromCoords(const std::vector<int>& coords);

/// Unpacks a bucket number into quadrant coordinates.
std::vector<int> CoordsFromBucket(BucketId bucket, std::size_t dim);

/// "0110" (c_{d-1} ... c_0, most significant left) for diagnostics.
std::string BucketToBitString(BucketId bucket, std::size_t dim);

/// Maps points to buckets given one split value per dimension.
///
/// The default split value is 0.5 (the midpoint of [0,1]); the quantile
/// extension of Section 4.3 supplies per-dimension medians instead.
class Bucketizer {
 public:
  /// Midpoint splits for a d-dimensional unit data space.
  explicit Bucketizer(std::size_t dim);

  /// Custom split values, one per dimension (e.g. 0.5-quantiles).
  explicit Bucketizer(std::vector<Scalar> splits);

  std::size_t dim() const { return splits_.size(); }
  Scalar split(std::size_t i) const { return splits_[i]; }
  const std::vector<Scalar>& splits() const { return splits_; }

  /// The bucket containing `p`: bit i set iff p[i] >= split(i).
  BucketId BucketOf(PointView p) const;

  /// The region of the data space (within `space`) covered by `bucket`.
  Rect BucketRegion(BucketId bucket, const Rect& space) const;

  /// All buckets whose region intersects the L2 ball B(center, radius) --
  /// the buckets any NN algorithm must touch (Section 3.1).
  std::vector<BucketId> BucketsIntersectingBall(PointView center,
                                                double radius,
                                                const Rect& space) const;

 private:
  std::vector<Scalar> splits_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_BUCKET_H_
