#include "src/core/bucket.h"

#include "src/util/bits.h"
#include "src/util/check.h"

namespace parsim {

std::uint64_t NumBuckets(std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  return std::uint64_t{1} << dim;
}

BucketId BucketFromCoords(const std::vector<int>& coords) {
  PARSIM_CHECK(coords.size() >= 1 && coords.size() <= kMaxBucketDims);
  BucketId b = 0;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    PARSIM_CHECK(coords[i] == 0 || coords[i] == 1);
    if (coords[i] == 1) b |= (BucketId{1} << i);
  }
  return b;
}

std::vector<int> CoordsFromBucket(BucketId bucket, std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  if (dim < kMaxBucketDims) {
    PARSIM_CHECK(bucket < (BucketId{1} << dim));
  }
  std::vector<int> coords(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    coords[i] = (bucket >> i) & 1u;
  }
  return coords;
}

std::string BucketToBitString(BucketId bucket, std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  std::string s(dim, '0');
  for (std::size_t i = 0; i < dim; ++i) {
    if ((bucket >> i) & 1u) s[dim - 1 - i] = '1';
  }
  return s;
}

Bucketizer::Bucketizer(std::size_t dim) : splits_(dim, Scalar{0.5}) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
}

Bucketizer::Bucketizer(std::vector<Scalar> splits) : splits_(std::move(splits)) {
  PARSIM_CHECK(splits_.size() >= 1 && splits_.size() <= kMaxBucketDims);
}

BucketId Bucketizer::BucketOf(PointView p) const {
  PARSIM_DCHECK(p.size() == splits_.size());
  BucketId b = 0;
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (p[i] >= splits_[i]) b |= (BucketId{1} << i);
  }
  return b;
}

Rect Bucketizer::BucketRegion(BucketId bucket, const Rect& space) const {
  PARSIM_CHECK(space.dim() == dim());
  std::vector<Scalar> lo(dim()), hi(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    if ((bucket >> i) & 1u) {
      lo[i] = splits_[i];
      hi[i] = space.hi(i);
    } else {
      lo[i] = space.lo(i);
      hi[i] = splits_[i];
    }
  }
  return Rect(std::move(lo), std::move(hi));
}

std::vector<BucketId> Bucketizer::BucketsIntersectingBall(
    PointView center, double radius, const Rect& space) const {
  std::vector<BucketId> out;
  const std::uint64_t n = NumBuckets(dim());
  for (std::uint64_t b = 0; b < n; ++b) {
    const Rect region = BucketRegion(static_cast<BucketId>(b), space);
    if (region.IntersectsBall(center, radius)) {
      out.push_back(static_cast<BucketId>(b));
    }
  }
  return out;
}

}  // namespace parsim
