#include "src/core/quantile.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace parsim {

std::vector<Scalar> EstimateQuantileSplits(const PointSet& points,
                                           double alpha) {
  PARSIM_CHECK(!points.empty());
  PARSIM_CHECK(alpha > 0.0 && alpha < 1.0);
  const std::size_t d = points.dim();
  const std::size_t n = points.size();
  std::vector<Scalar> splits(d);
  std::vector<Scalar> column(n);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < n; ++j) column[j] = points[j][i];
    const std::size_t rank = std::min(
        n - 1, static_cast<std::size_t>(alpha * static_cast<double>(n)));
    std::nth_element(column.begin(),
                     column.begin() + static_cast<std::ptrdiff_t>(rank),
                     column.end());
    splits[i] = column[rank];
  }
  return splits;
}

QuantileSplitter::QuantileSplitter(std::size_t dim, double alpha,
                                   double imbalance_threshold)
    : alpha_(alpha),
      imbalance_threshold_(imbalance_threshold),
      splits_(dim, Scalar{0.5}),
      below_(dim, 0),
      above_(dim, 0) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  PARSIM_CHECK(alpha > 0.0 && alpha < 1.0);
  PARSIM_CHECK(imbalance_threshold > 1.0);
}

void QuantileSplitter::Record(PointView p) {
  PARSIM_DCHECK(p.size() == splits_.size());
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    if (p[i] >= splits_[i]) {
      ++above_[i];
    } else {
      ++below_[i];
    }
  }
  ++recorded_;
}

bool QuantileSplitter::NeedsReorganization() const {
  if (recorded_ < 64) return false;
  for (std::size_t i = 0; i < splits_.size(); ++i) {
    const double lo = static_cast<double>(std::min(below_[i], above_[i]));
    const double hi = static_cast<double>(std::max(below_[i], above_[i]));
    // An empty side is maximal imbalance.
    if (lo == 0.0 || hi / lo > imbalance_threshold_) return true;
  }
  return false;
}

bool QuantileSplitter::Reorganize(const PointSet& data) {
  PARSIM_CHECK(data.dim() == splits_.size());
  std::vector<Scalar> next = EstimateQuantileSplits(data, alpha_);
  const bool changed = next != splits_;
  splits_ = std::move(next);
  std::fill(below_.begin(), below_.end(), 0);
  std::fill(above_.begin(), above_.end(), 0);
  recorded_ = 0;
  ++reorganization_count_;
  return changed;
}

}  // namespace parsim
