#include "src/core/coloring.h"

#include "src/util/bits.h"
#include "src/util/check.h"

namespace parsim {

Color ColorOf(BucketId bucket) {
  Color color = 0;
  std::uint32_t c = bucket;
  while (c != 0) {
    const int i = std::countr_zero(c);
    color ^= static_cast<Color>(i + 1);
    c &= c - 1;  // clear lowest set bit
  }
  return color;
}

std::uint32_t NumColors(std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  return static_cast<std::uint32_t>(NextPow2(static_cast<std::uint64_t>(dim) + 1));
}

std::uint32_t NumColorsLowerBound(std::size_t dim) {
  PARSIM_CHECK(dim >= 1);
  return static_cast<std::uint32_t>(dim + 1);
}

std::uint32_t NumColorsUpperBound(std::size_t dim) {
  PARSIM_CHECK(dim >= 1);
  return static_cast<std::uint32_t>(2 * dim);
}

BucketId BucketWithColor(Color color, std::size_t dim) {
  PARSIM_CHECK(dim >= 1 && dim <= kMaxBucketDims);
  PARSIM_CHECK(color < NumColors(dim));
  // Lemma 6's construction: for each set bit j of the color, set bucket
  // bit (2^j - 1); col of that bucket XORs the values 2^j back together.
  BucketId b = 0;
  for (int j = 0; j < 32; ++j) {
    if ((color >> j) & 1u) {
      const std::uint32_t pos = (std::uint32_t{1} << j) - 1;
      PARSIM_CHECK(pos < dim);
      b |= (BucketId{1} << pos);
    }
  }
  PARSIM_DCHECK(ColorOf(b) == color);
  return b;
}

}  // namespace parsim
