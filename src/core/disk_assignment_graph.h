// The disk assignment graph G_d (Definition 5) and near-optimality
// validation (Definition 4).
//
// Vertices are the 2^d bucket numbers; edges connect direct and indirect
// neighbors. A declustering is *near-optimal* iff it is a proper coloring
// of this graph. The validator here is what the tests and the Figure 7
// experiment use to show Disk Modulo, FX and Hilbert are not near-optimal
// while `col` is (Lemma 1 vs Lemma 5).

#ifndef PARSIM_SRC_CORE_DISK_ASSIGNMENT_GRAPH_H_
#define PARSIM_SRC_CORE_DISK_ASSIGNMENT_GRAPH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/bucket.h"

namespace parsim {

/// Assigns a disk number to every bucket (the "mapping from the bucket
/// characterization to a disk number" a declustering algorithm is).
using BucketAssignment = std::function<std::uint32_t(BucketId)>;

/// One violating edge: two neighboring buckets on the same disk.
struct Collision {
  BucketId a = 0;
  BucketId b = 0;
  std::uint32_t disk = 0;
  bool direct = false;  // true: direct neighbors; false: indirect

  friend bool operator==(const Collision& x, const Collision& y) {
    return x.a == y.a && x.b == y.b && x.disk == y.disk &&
           x.direct == y.direct;
  }
};

/// Tally of violations over the whole graph.
struct CollisionCount {
  std::uint64_t direct = 0;
  std::uint64_t indirect = 0;

  std::uint64_t total() const { return direct + indirect; }
};

/// The disk assignment graph of a d-dimensional binary-partitioned space.
class DiskAssignmentGraph {
 public:
  explicit DiskAssignmentGraph(std::size_t dim);

  std::size_t dim() const { return dim_; }
  std::uint64_t num_vertices() const;

  /// d*2^(d-1) direct + C(d,2)*2^(d-1)... — the exact number of edges:
  /// (d + d(d-1)/2) * 2^d / 2.
  std::uint64_t num_edges() const;

  /// Enumerates every edge once as (smaller vertex, larger vertex).
  /// `visit(a, b, direct)`; return false from visit to stop early.
  void ForEachEdge(
      const std::function<bool(BucketId, BucketId, bool)>& visit) const;

  /// Counts coloring violations of `assignment` over all edges.
  CollisionCount CountCollisions(const BucketAssignment& assignment) const;

  /// Lists up to `limit` violations (for diagnostics / the Fig. 7 demo).
  std::vector<Collision> FindCollisions(const BucketAssignment& assignment,
                                        std::size_t limit) const;

  /// Definition 4: no direct or indirect neighbors share a disk.
  bool IsNearOptimal(const BucketAssignment& assignment) const;

  /// Exhaustively verifies that no proper coloring of G_d with fewer than
  /// `colors` colors exists (branch-and-bound with symmetry pruning;
  /// feasible for small d only — the paper verified optimality of the
  /// staircase "for lower dimensions ... by enumerating all possible
  /// color assignments").
  bool IsColorableWith(std::uint32_t colors) const;

 private:
  std::size_t dim_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_DISK_ASSIGNMENT_GRAPH_H_
