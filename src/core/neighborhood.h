// Direct and indirect bucket neighborhood (Definition 3).
//
// Two buckets are *direct* neighbors when their coordinate bitstrings
// differ in exactly one dimension (they share a (d-1)-dimensional
// surface), and *indirect* neighbors when they differ in exactly two
// (they share a (d-2)-dimensional surface). The XOR of neighbors is thus
// a bitstring with popcount 1 or 2.

#ifndef PARSIM_SRC_CORE_NEIGHBORHOOD_H_
#define PARSIM_SRC_CORE_NEIGHBORHOOD_H_

#include <cstddef>
#include <vector>

#include "src/core/bucket.h"

namespace parsim {

/// True iff b and c differ in exactly one coordinate.
bool AreDirectNeighbors(BucketId b, BucketId c);

/// True iff b and c differ in exactly two coordinates.
bool AreIndirectNeighbors(BucketId b, BucketId c);

/// True iff direct or indirect neighbors (the edge relation of the disk
/// assignment graph, Definition 5).
bool AreNeighbors(BucketId b, BucketId c);

/// All d direct neighbors of `b` in a d-dimensional space.
std::vector<BucketId> DirectNeighbors(BucketId b, std::size_t dim);

/// All d*(d-1)/2 indirect neighbors of `b`.
std::vector<BucketId> IndirectNeighbors(BucketId b, std::size_t dim);

/// Direct and indirect neighbors of `b` (degree d + d(d-1)/2 per vertex).
std::vector<BucketId> AllNeighbors(BucketId b, std::size_t dim);

/// Number of buckets within `levels` levels of indirection of any bucket:
/// 1 + sum_{k=1..levels} C(d, k). The paper (Section 3.2) uses this count
/// to argue that more than two levels is infeasible: for levels=2, d=16
/// the count is 137, but it grows like d^levels.
std::uint64_t NeighborhoodSize(std::size_t dim, int levels);

}  // namespace parsim

#endif  // PARSIM_SRC_CORE_NEIGHBORHOOD_H_
