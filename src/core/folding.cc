#include "src/core/folding.h"

#include "src/util/bits.h"
#include "src/util/check.h"

namespace parsim {

ColorFolding::ColorFolding(std::uint32_t num_colors, std::uint32_t num_disks)
    : num_disks_(num_disks) {
  PARSIM_CHECK(num_colors >= 1);
  PARSIM_CHECK(IsPow2(num_colors));
  PARSIM_CHECK(num_disks >= 1 && num_disks <= num_colors);

  table_.resize(num_colors);
  for (std::uint32_t c = 0; c < num_colors; ++c) table_[c] = c;

  // Repeatedly fold the upper half [m/2, m) onto the binary complement of
  // the lower half: c -> (m-1) - c (equal to (m-1) XOR c in log2(m) bits).
  std::uint32_t m = num_colors;
  while (num_disks <= m / 2) {
    for (std::uint32_t c = 0; c < num_colors; ++c) {
      if (table_[c] >= m / 2) table_[c] = (m - 1) - table_[c];
    }
    m /= 2;
  }
  // Now m/2 < num_disks <= m: fold only the highest m - n colors.
  if (num_disks < m) {
    for (std::uint32_t c = 0; c < num_colors; ++c) {
      if (table_[c] >= num_disks) table_[c] = (m - 1) - table_[c];
    }
  }
  for (std::uint32_t c = 0; c < num_colors; ++c) {
    PARSIM_CHECK(table_[c] < num_disks);
  }
}

std::uint32_t ColorFolding::DiskOf(Color color) const {
  PARSIM_CHECK(color < table_.size());
  return table_[color];
}

}  // namespace parsim
