// Production query service front-end: a long-lived serving loop around
// ParallelSearchEngine for open-loop traffic (queries arrive when they
// arrive, not in closed batches).
//
// Four mechanisms turn the batch engine into a servable one:
//
//   * Admission control — a bounded queue; Submit on a full queue fails
//     fast with kResourceExhausted instead of growing latency without
//     bound (backpressure to the caller).
//   * Deadlines & budgets — per-query wall deadlines and page budgets,
//     checked at frontier-round granularity. An expired query stops
//     reading pages and resolves to kDeadlineExceeded carrying the
//     best-first prefix found so far as a partial result (the prefix is
//     exactly the true top-m: HS pops leave results in ascending
//     distance order).
//   * Priority classes — interactive and bulk queries admit through a
//     weighted dequeue: interactive work goes first, but after
//     `interactive_weight` consecutive interactive admissions a waiting
//     bulk query is admitted, so neither class starves.
//   * Adaptive batch formation — instead of the fixed round expander
//     (closed batches of max_batch run to completion, the pre-service
//     QueryBatch shape), the service admits BETWEEN rounds into a round
//     width sized from observed queue depth and the EMA of recent prune
//     rates: cheap (well-pruning) rounds widen toward max_batch,
//     expensive ones narrow toward min_batch. Continuous admission is
//     what stops convoying — a cheap interactive query joins the very
//     next round instead of waiting behind a bulk scan's whole batch.
//
// Results are bit-identical to ParallelSearchEngine::QueryBatch (and
// single-query HsKnn) whenever no deadline fires: a query's push/pop
// sequence depends only on its own frontier, never on round composition
// (see src/parallel/round_scheduler.h).
//
// Threading: Submit is safe from any thread. The scheduler runs either
// on the internal dispatcher thread (Start/Stop) or inline on the
// caller (Drain — deterministic, for tests and closed-loop harnesses).
// The engine must be kSharedTree + kHs; one service per engine at a
// time (the round scheduler is not shared).

#ifndef PARSIM_SRC_SERVICE_QUERY_SERVICE_H_
#define PARSIM_SRC_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/parallel/engine.h"
#include "src/parallel/round_scheduler.h"
#include "src/util/status.h"

namespace parsim {

/// Priority class of a submitted query.
enum class QueryClass {
  /// Latency-sensitive foreground work; admitted first.
  kInteractive = 0,
  /// Throughput work (large k, scans); yields to interactive queries.
  kBulk = 1,
};

/// Per-query options at Submit time.
struct ServiceQueryOptions {
  std::size_t k = 10;
  QueryClass priority = QueryClass::kInteractive;
  /// Page budget: the query expires once its pages touched (reads +
  /// buffer hits + coalesced rides, summed over disks — see
  /// QueryCostAccumulator::TotalPagesTouched) reach this. 0 = none.
  std::uint64_t max_pages = 0;
  /// Wall-clock deadline from Submit, in milliseconds. 0 = none.
  double deadline_ms = 0.0;
};

/// What a submitted query resolves to.
struct ServedResult {
  /// Ok; kDeadlineExceeded (deadline/budget expired, `neighbors` holds
  /// the partial prefix); or kUnavailable (a touched page had no healthy
  /// copy — TryQuery's contract).
  Status status;
  KnnResult neighbors;
  /// The engine's per-query simulated accounting (same derivation as
  /// Query/QueryBatch).
  QueryStats stats;
  /// Submit -> resolution, wall clock.
  double latency_ms = 0.0;
  /// Submit -> admission into the first round, wall clock.
  double queue_ms = 0.0;
  /// Coalesced rounds this query was active in.
  std::size_t rounds = 0;
  /// Service-wide completion sequence number (1, 2, ...): a total order
  /// on resolutions, for priority/ordering assertions in tests.
  std::uint64_t finish_seq = 0;
};

/// Service configuration.
struct ServiceOptions {
  /// Bound of the admission (waiting) queue across both classes; Submit
  /// beyond it returns kResourceExhausted.
  std::size_t max_queue = 256;
  /// Round width bounds. max_batch is also the fixed mode's batch size.
  std::size_t max_batch = 64;
  std::size_t min_batch = 4;
  /// true: continuous admission with the adaptive width (the service's
  /// raison d'etre). false: the fixed round expander baseline — closed
  /// FIFO batches of max_batch run to completion, the convoying-prone
  /// shape QueryBatch has always had.
  bool adaptive_batch = true;
  /// Consecutive interactive admissions allowed while bulk work waits.
  std::size_t interactive_weight = 4;
  /// EMA smoothing of the per-round prune rate (0 < alpha <= 1).
  double prune_ema_alpha = 0.3;
  /// Worker threads for the round expansion phase (0 or 1 = serial).
  unsigned threads = 0;
};

/// Cumulative service counters (monotone; snapshot via metrics()).
struct ServiceMetrics {
  std::uint64_t submitted = 0;  // accepted into the queue
  std::uint64_t rejected = 0;   // kResourceExhausted at Submit
  std::uint64_t completed = 0;  // resolved, including expired
  std::uint64_t expired = 0;    // resolved as kDeadlineExceeded
  std::uint64_t rounds = 0;     // scheduler rounds run
  /// Width the last admission round targeted (adaptive mode).
  std::size_t last_width = 0;
  /// Current EMA of the per-round leaf prune rate in [0, 1].
  double ema_prune_rate = 1.0;
};

class QueryService {
 public:
  /// `engine` must outlive the service, be kSharedTree + kHs, and not
  /// mutate (Insert/Remove/SetFaultPlan) while queries are in flight —
  /// the engine's standing read-query contract.
  explicit QueryService(const ParallelSearchEngine& engine,
                        ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one k-NN query. On admission (Ok) `*result` receives a
  /// future that resolves when the query completes or expires; on a full
  /// queue returns kResourceExhausted and leaves `*result` alone.
  /// Thread-safe.
  Status Submit(PointView query, const ServiceQueryOptions& query_options,
                std::future<ServedResult>* result);

  /// Spawns the background dispatcher thread. Queries submitted before
  /// Start wait in the queue.
  void Start();

  /// Graceful shutdown: drains the queue and all in-flight work, then
  /// joins the dispatcher. Idempotent; also run by the destructor.
  void Stop();

  /// Inline dispatcher for deterministic runs (tests, closed harnesses):
  /// pumps rounds on the calling thread until no query is waiting or in
  /// flight. Must not be mixed with a running dispatcher thread. Returns
  /// the number of queries resolved by this call.
  std::size_t Drain();

  ServiceMetrics metrics() const;
  const ServiceOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    std::vector<Scalar> coords;
    ServiceQueryOptions opts;
    std::promise<ServedResult> promise;
    Clock::time_point submit;
  };

  struct InFlight {
    Pending pending;
    Clock::time_point admit;
    /// Absolute wall deadline; Clock::time_point::max() when none.
    Clock::time_point deadline;
    std::unique_ptr<QueryCostAccumulator> acc;
    std::size_t rounds = 0;
  };

  /// One dispatcher iteration: admit, expire deadlines, run one round,
  /// resolve settled queries. Caller must be the only scheduler user.
  void PumpOnce();
  /// Admits up to `budget` queries by weighted priority (mutex_ held).
  void AdmitLocked(std::size_t budget, std::vector<Pending>* admitted);
  /// Adaptive round width from queue depth and the prune-rate EMA.
  std::size_t TargetWidth(std::size_t waiting) const;
  void Resolve(std::size_t slot);
  std::size_t PendingLocked() const {
    return queues_[0].size() + queues_[1].size();
  }
  void RunLoop();

  const ParallelSearchEngine& engine_;
  const ServiceOptions options_;
  HsRoundScheduler scheduler_;
  std::shared_ptr<ThreadPool> pool_;

  mutable std::mutex mutex_;  // queues, metrics, stop flag
  std::condition_variable cv_;
  std::deque<Pending> queues_[2];  // [interactive, bulk]
  ServiceMetrics metrics_;
  bool stop_ = false;
  std::thread dispatcher_;

  // Dispatcher-thread state (no lock needed).
  std::vector<std::unique_ptr<InFlight>> inflight_;  // by scheduler slot
  std::vector<std::size_t> round_slots_;  // slots active in this round
  std::size_t interactive_credit_ = 0;
  double ema_prune_ = 1.0;
  std::uint64_t finish_seq_ = 0;
};

}  // namespace parsim

#endif  // PARSIM_SRC_SERVICE_QUERY_SERVICE_H_
