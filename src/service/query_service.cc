#include "src/service/query_service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace parsim {

namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

QueryService::QueryService(const ParallelSearchEngine& engine,
                           ServiceOptions options)
    : engine_(engine),
      options_(options),
      scheduler_(engine.tree(), engine.options().metric, engine.approx_,
                 nullptr) {
  // The round scheduler exists only where one shared tree serves every
  // query with the pausable HS search — the same gate QueryBatch's
  // coalesced path has.
  PARSIM_CHECK(engine.options().architecture == Architecture::kSharedTree);
  PARSIM_CHECK(engine.options().knn_algorithm == KnnAlgorithm::kHs);
  PARSIM_CHECK(options_.max_queue >= 1);
  PARSIM_CHECK(options_.min_batch >= 1);
  PARSIM_CHECK(options_.max_batch >= options_.min_batch);
  PARSIM_CHECK(options_.interactive_weight >= 1);
  PARSIM_CHECK(options_.prune_ema_alpha > 0.0 &&
               options_.prune_ema_alpha <= 1.0);
  if (options_.threads > 1) pool_ = engine.EnsurePool(options_.threads);
}

QueryService::~QueryService() { Stop(); }

Status QueryService::Submit(PointView query,
                            const ServiceQueryOptions& query_options,
                            std::future<ServedResult>* result) {
  PARSIM_CHECK(result != nullptr);
  PARSIM_CHECK(query.size() == engine_.dim());
  PARSIM_CHECK(query_options.k >= 1);
  PARSIM_CHECK(query_options.deadline_ms >= 0.0);
  Pending pending;
  pending.coords.assign(query.begin(), query.end());
  pending.opts = query_options;
  pending.submit = Clock::now();
  std::future<ServedResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (PendingLocked() >= options_.max_queue) {
      ++metrics_.rejected;
      return Status::ResourceExhausted("admission queue full");
    }
    ++metrics_.submitted;
    queues_[static_cast<std::size_t>(query_options.priority)].push_back(
        std::move(pending));
  }
  cv_.notify_one();
  *result = std::move(future);
  return Status::Ok();
}

std::size_t QueryService::TargetWidth(std::size_t waiting) const {
  // Demand is everyone who wants service right now; the prune-rate EMA
  // damps how much of it one round takes on. Cheap rounds (everything
  // pruned before exact work) widen to the full demand; expensive ones
  // narrow toward min_batch, keeping rounds short so newly arriving
  // latency-sensitive queries join quickly.
  const std::size_t demand = scheduler_.running() + waiting;
  const std::size_t lo = options_.min_batch;
  const std::size_t hi = options_.max_batch;
  if (demand <= lo) return lo;
  const std::size_t capped = std::min(demand, hi);
  const double span = static_cast<double>(capped - lo);
  const std::size_t width =
      lo + static_cast<std::size_t>(span * ema_prune_ + 0.5);
  return std::min(width, hi);
}

void QueryService::AdmitLocked(std::size_t budget,
                               std::vector<Pending>* admitted) {
  std::deque<Pending>& interactive = queues_[0];
  std::deque<Pending>& bulk = queues_[1];
  while (admitted->size() < budget &&
         (!interactive.empty() || !bulk.empty())) {
    bool take_bulk;
    if (bulk.empty()) {
      take_bulk = false;
    } else if (interactive.empty()) {
      take_bulk = true;
    } else {
      // Weighted dequeue: interactive first, but after interactive_weight
      // consecutive interactive admissions a waiting bulk query goes —
      // priority without starvation.
      take_bulk = interactive_credit_ >= options_.interactive_weight;
    }
    std::deque<Pending>& queue = take_bulk ? bulk : interactive;
    if (take_bulk) {
      interactive_credit_ = 0;
    } else {
      ++interactive_credit_;
    }
    admitted->push_back(std::move(queue.front()));
    queue.pop_front();
  }
}

void QueryService::PumpOnce() {
  // 1. Admission. Adaptive mode admits between every round up to the
  // adaptive width; fixed mode (the round-expander baseline) only opens
  // a new closed batch once the previous one fully finished.
  std::vector<Pending> admitted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t waiting = PendingLocked();
    if (waiting > 0) {
      std::size_t budget = 0;
      if (options_.adaptive_batch) {
        const std::size_t width = TargetWidth(waiting);
        metrics_.last_width = width;
        budget = width > scheduler_.occupied()
                     ? width - scheduler_.occupied()
                     : 0;
      } else if (scheduler_.occupied() == 0) {
        budget = options_.max_batch;
        metrics_.last_width = budget;
      }
      if (budget > 0) AdmitLocked(budget, &admitted);
    }
  }
  const Clock::time_point admit_time = Clock::now();
  for (Pending& p : admitted) {
    auto acc =
        std::make_unique<QueryCostAccumulator>(engine_.num_disks() + 1);
    const std::size_t slot = scheduler_.Add(PointView(p.coords), p.opts.k,
                                            acc.get(), p.opts.max_pages);
    if (inflight_.size() <= slot) inflight_.resize(slot + 1);
    auto f = std::make_unique<InFlight>();
    f->admit = admit_time;
    f->deadline =
        p.opts.deadline_ms > 0.0
            ? p.submit + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 p.opts.deadline_ms))
            : Clock::time_point::max();
    f->acc = std::move(acc);
    f->pending = std::move(p);
    inflight_[slot] = std::move(f);
  }
  if (scheduler_.occupied() == 0) return;

  // 2. Wall deadlines, at round granularity (page budgets are checked
  // inside Step itself).
  const Clock::time_point now = Clock::now();
  round_slots_.clear();
  for (std::size_t slot = 0; slot < inflight_.size(); ++slot) {
    if (inflight_[slot] == nullptr) continue;
    if (scheduler_.IsRunning(slot) && now >= inflight_[slot]->deadline) {
      scheduler_.Expire(slot);
    }
    if (scheduler_.IsRunning(slot)) round_slots_.push_back(slot);
  }

  // 3. One coalesced round; its prune outcome feeds the width EMA.
  HsRoundScheduler::RoundStats round;
  scheduler_.Step(pool_.get(), &round);
  for (const std::size_t slot : round_slots_) ++inflight_[slot]->rounds;
  const std::uint64_t leaf_work = round.pruned + round.scored;
  if (leaf_work > 0) {
    const double rate = static_cast<double>(round.pruned) /
                        static_cast<double>(leaf_work);
    ema_prune_ = options_.prune_ema_alpha * rate +
                 (1.0 - options_.prune_ema_alpha) * ema_prune_;
  }

  // 4. Resolve everything that finished or expired this round.
  for (std::size_t slot = 0; slot < inflight_.size(); ++slot) {
    if (inflight_[slot] != nullptr && !scheduler_.IsRunning(slot)) {
      Resolve(slot);
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++metrics_.rounds;
    metrics_.ema_prune_rate = ema_prune_;
  }
}

void QueryService::Resolve(std::size_t slot) {
  InFlight& f = *inflight_[slot];
  const bool expired = scheduler_.IsExpired(slot);
  ServedResult out;
  out.neighbors = scheduler_.Take(slot);
  out.stats = engine_.StatsFromAccumulator(*f.acc);
  engine_.MergeAccumulator(*f.acc);
  if (expired) {
    out.status = Status::DeadlineExceeded(
        "deadline or page budget expired; top-" +
        std::to_string(out.neighbors.size()) + " prefix returned");
  } else if (out.stats.unavailable_pages > 0) {
    // TryQuery's contract: unavailable data is an error, not a silent
    // in-memory answer.
    out.status = Status::Unavailable(
        "query touched a failed disk with no healthy replica");
  }
  out.latency_ms = MsBetween(f.pending.submit, Clock::now());
  out.queue_ms = MsBetween(f.pending.submit, f.admit);
  out.rounds = f.rounds;
  out.finish_seq = ++finish_seq_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++metrics_.completed;
    if (expired) ++metrics_.expired;
  }
  std::promise<ServedResult> promise = std::move(f.pending.promise);
  inflight_[slot].reset();
  promise.set_value(std::move(out));
}

void QueryService::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  PARSIM_CHECK(!dispatcher_.joinable());
  stop_ = false;
  dispatcher_ = std::thread([this] { RunLoop(); });
}

void QueryService::RunLoop() {
  for (;;) {
    if (scheduler_.occupied() == 0) {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || PendingLocked() > 0; });
      if (stop_ && PendingLocked() == 0) break;
    }
    PumpOnce();
  }
}

void QueryService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::size_t QueryService::Drain() {
  PARSIM_CHECK(!dispatcher_.joinable());
  std::size_t resolved = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (PendingLocked() == 0 && scheduler_.occupied() == 0) break;
    }
    const std::uint64_t before = finish_seq_;
    PumpOnce();
    resolved += static_cast<std::size_t>(finish_seq_ - before);
  }
  return resolved;
}

ServiceMetrics QueryService::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

}  // namespace parsim
