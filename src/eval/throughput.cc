#include "src/eval/throughput.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/stopwatch.h"

namespace parsim {

ThroughputResult SimulateThroughput(const ParallelSearchEngine& engine,
                                    const PointSet& queries, std::size_t k,
                                    unsigned execution_threads) {
  PARSIM_CHECK(queries.dim() == engine.dim());
  PARSIM_CHECK(!queries.empty());
  const std::size_t disks = engine.num_disks();
  const double page_ms =
      engine.options().disk_parameters.PageAccessMs();

  // Prebuild every leaf block (and SQ8 mirror) before the clock starts:
  // the harness measures steady-state query throughput, not first-touch
  // construction of derived block state.
  engine.WarmLeafBlocks(execution_threads);

  ThroughputResult out;
  // Execute the batch (on the pool when execution_threads > 1) and time
  // it. QueryBatch reports the worker count it actually ran on — e.g. 1
  // when a buffered engine in deterministic mode serializes the batch —
  // so wall_qps is never attributed to threads that never executed.
  Stopwatch watch;
  std::vector<QueryStats> per_query;
  unsigned effective_threads = 1;
  (void)engine.QueryBatch(queries, k, &per_query,
                          execution_threads == 0 ? 1 : execution_threads,
                          &effective_threads, &out.phases);
  const double wall_ms = watch.ElapsedMillis();

  out.num_queries = queries.size();
  out.pages_per_disk.assign(disks, 0);
  out.execution_threads = effective_threads;
  out.wall_ms = wall_ms;
  out.wall_qps = wall_ms > 0.0
                     ? static_cast<double>(queries.size()) / (wall_ms / 1000.0)
                     : 0.0;
  double host_ms_total = 0.0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryStats& stats = per_query[qi];
    out.avg_latency_ms += stats.parallel_ms;
    if (stats.degraded) ++out.degraded_queries;
    out.replica_pages += stats.replica_pages;
    out.failed_read_attempts += stats.failed_read_attempts;
    out.unavailable_pages += stats.unavailable_pages;
    out.coalesced_reads += stats.coalesced_reads;
    out.block_kernel_invocations += stats.block_kernel_invocations;
    out.quantized_pruned += stats.quantized_pruned;
    out.base_pruned += stats.base_pruned;
    out.prefix_pruned += stats.prefix_pruned;
    out.sq8_pruned += stats.sq8_pruned;
    out.reranked += stats.reranked;
    out.leaf_bytes_scanned += stats.leaf_bytes_scanned;
    out.frontier_pushes += stats.frontier_pushes;
    out.frontier_pops += stats.frontier_pops;
    out.cutoff_skipped_nodes += stats.cutoff_skipped_nodes;
    out.approx_skipped_nodes += stats.approx_skipped_nodes;
    out.approx_pruned_exactly += stats.approx_pruned_exactly;
    // Host share of this query's time (directory work on the shared
    // architecture; zero for federated ones). Derived from the healthy
    // figure so fault penalties never leak into the host share.
    double disks_only = 0.0;
    for (std::size_t d = 0; d < disks; ++d) {
      out.pages_per_disk[d] += stats.pages_per_disk[d];
      disks_only = std::max(
          disks_only, static_cast<double>(stats.pages_per_disk[d]) * page_ms);
    }
    host_ms_total += std::max(0.0, stats.healthy_parallel_ms - disks_only);
  }
  out.avg_latency_ms /= static_cast<double>(queries.size());

  // Per-disk busy time: actual (scaled by the disk's health) and
  // healthy. Identical bit for bit when every disk is healthy.
  double busiest_ms = 0.0;
  double busiest_healthy_ms = 0.0;
  double busy_sum_ms = 0.0;
  for (std::size_t d = 0; d < disks; ++d) {
    const double healthy_disk_ms =
        static_cast<double>(out.pages_per_disk[d]) * page_ms;
    const double disk_ms =
        healthy_disk_ms *
        engine.disks().disk(static_cast<DiskId>(d)).time_scale();
    busiest_ms = std::max(busiest_ms, disk_ms);
    busiest_healthy_ms = std::max(busiest_healthy_ms, healthy_disk_ms);
    busy_sum_ms += disk_ms;
  }
  // Bounded-retry detection cost: timed-out attempts serialize on the
  // failover path, so they extend the batch additively.
  const double retry_ms =
      static_cast<double>(out.failed_read_attempts) *
      engine.options().disk_parameters.failover_timeout_ms;
  out.makespan_ms = host_ms_total + busiest_ms + retry_ms;
  out.healthy_makespan_ms = host_ms_total + busiest_healthy_ms;
  PARSIM_CHECK(out.makespan_ms > 0.0);
  out.throughput_qps =
      static_cast<double>(queries.size()) / (out.makespan_ms / 1000.0);
  out.avg_disk_utilization =
      busiest_ms > 0.0
          ? busy_sum_ms / (static_cast<double>(disks) * busiest_ms)
          : 1.0;
  return out;
}

}  // namespace parsim
