#include "src/eval/throughput.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {

ThroughputResult SimulateThroughput(const ParallelSearchEngine& engine,
                                    const PointSet& queries, std::size_t k) {
  PARSIM_CHECK(queries.dim() == engine.dim());
  PARSIM_CHECK(!queries.empty());
  const std::size_t disks = engine.num_disks();
  const double page_ms =
      engine.options().disk_parameters.PageAccessMs();

  ThroughputResult out;
  out.num_queries = queries.size();
  out.pages_per_disk.assign(disks, 0);
  double host_ms_total = 0.0;
  QueryStats stats;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    (void)engine.Query(queries[qi], k, &stats);
    out.avg_latency_ms += stats.parallel_ms;
    // Host share of this query's time (directory work on the shared
    // architecture; zero for federated ones).
    double disks_only = 0.0;
    for (std::size_t d = 0; d < disks; ++d) {
      out.pages_per_disk[d] += stats.pages_per_disk[d];
      disks_only = std::max(
          disks_only, static_cast<double>(stats.pages_per_disk[d]) * page_ms);
    }
    host_ms_total += std::max(0.0, stats.parallel_ms - disks_only);
  }
  out.avg_latency_ms /= static_cast<double>(queries.size());

  double busiest_ms = 0.0;
  double busy_sum_ms = 0.0;
  for (std::size_t d = 0; d < disks; ++d) {
    const double disk_ms =
        static_cast<double>(out.pages_per_disk[d]) * page_ms;
    busiest_ms = std::max(busiest_ms, disk_ms);
    busy_sum_ms += disk_ms;
  }
  out.makespan_ms = host_ms_total + busiest_ms;
  PARSIM_CHECK(out.makespan_ms > 0.0);
  out.throughput_qps =
      static_cast<double>(queries.size()) / (out.makespan_ms / 1000.0);
  out.avg_disk_utilization =
      busiest_ms > 0.0
          ? busy_sum_ms / (static_cast<double>(disks) * busiest_ms)
          : 1.0;
  return out;
}

}  // namespace parsim
