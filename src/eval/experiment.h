// Experiment runner shared by the figure benchmarks: build an engine for
// a (declusterer, data) pair, run a k-NN query workload, and report the
// paper's metrics (search time of the busiest disk, speed-up against the
// sequential X-tree, improvement factors).

#ifndef PARSIM_SRC_EVAL_EXPERIMENT_H_
#define PARSIM_SRC_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/declusterer.h"
#include "src/parallel/engine.h"

namespace parsim {

/// Averages over a query workload.
struct WorkloadResult {
  double avg_parallel_ms = 0.0;
  double avg_sum_ms = 0.0;
  double avg_max_pages = 0.0;
  double avg_total_pages = 0.0;
  double avg_balance = 1.0;
  std::size_t num_queries = 0;
};

/// Runs every query in `queries` as a k-NN search and averages the
/// simulated costs (the paper repeats each experiment and averages;
/// with the deterministic simulator one pass per query suffices).
WorkloadResult RunKnnWorkload(const ParallelSearchEngine& engine,
                              const PointSet& queries, std::size_t k);

/// Speed-up of a parallel run against a sequential baseline, by the
/// paper's definition: sequential search time / parallel search time.
double Speedup(const WorkloadResult& sequential,
               const WorkloadResult& parallel);

/// Improvement factor of `ours` over `theirs` (their time / our time).
double ImprovementFactor(const WorkloadResult& theirs,
                         const WorkloadResult& ours);

/// Known declustering methods, addressable by the names used in the
/// paper's figures.
enum class DeclustererKind {
  kRoundRobin,    // "RR"
  kDiskModulo,    // "DM"
  kFx,            // "FX"
  kHilbert,       // "HIL"
  kNearOptimal,   // "new"
};

const char* DeclustererKindToString(DeclustererKind kind);

/// Creates a declusterer of the given kind for (dim, num_disks).
std::unique_ptr<Declusterer> MakeDeclusterer(DeclustererKind kind,
                                             std::size_t dim,
                                             std::uint32_t num_disks);

/// Builds an engine over `data` with the given declusterer and options.
/// Convenience wrapper used by nearly every figure benchmark.
std::unique_ptr<ParallelSearchEngine> BuildEngine(
    const PointSet& data, std::unique_ptr<Declusterer> declusterer,
    EngineOptions options = {});

}  // namespace parsim

#endif  // PARSIM_SRC_EVAL_EXPERIMENT_H_
