// Open-loop service driver: offered load instead of closed batches.
//
// The closed-batch harness (throughput.h) keeps a fixed number of
// queries outstanding, so the system can never be overrun — latency
// under it says nothing about behavior at a given *arrival rate*. This
// driver models the production question instead: queries arrive by a
// Poisson process at a sustained QPS whether or not the service keeps
// up, and the interesting outputs are the latency distribution
// (p50/p95/p99), the rejection rate once admission control pushes back,
// and the deadline-miss rate.
//
// The arrival schedule, the class of each query (interactive vs. bulk),
// and the query points are all seeded and deterministic; wall-clock
// latencies of course are not.

#ifndef PARSIM_SRC_EVAL_OPEN_LOOP_H_
#define PARSIM_SRC_EVAL_OPEN_LOOP_H_

#include <cstdint>
#include <vector>

#include "src/geometry/point.h"
#include "src/service/query_service.h"

namespace parsim {

/// Configuration of one open-loop run.
struct OpenLoopOptions {
  /// Poisson arrival rate, queries per second of wall time.
  double arrival_qps = 100.0;
  /// Total arrivals over the run.
  std::size_t num_queries = 256;
  /// k for interactive queries.
  std::size_t k = 10;
  /// Probability an arrival is a bulk query (class kBulk, k = bulk_k).
  double bulk_fraction = 0.0;
  std::size_t bulk_k = 100;
  /// Per-query wall deadline in ms (0 = none).
  double deadline_ms = 0.0;
  /// Per-query page budget (0 = none).
  std::uint64_t max_pages = 0;
  /// Seed for arrivals and class assignment.
  std::uint64_t seed = 1;
};

/// Latency distribution of one class of completed queries.
struct LatencyProfile {
  std::size_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Outcome of one open-loop run.
struct OpenLoopResult {
  std::size_t submitted = 0;    // arrivals offered to Submit
  std::size_t accepted = 0;     // admitted into the queue
  std::size_t rejected = 0;     // kResourceExhausted (backpressure)
  std::size_t expired = 0;      // resolved kDeadlineExceeded
  std::size_t unavailable = 0;  // resolved kUnavailable
  /// First submit -> last resolution, wall clock.
  double wall_ms = 0.0;
  /// Accepted-and-completed queries per wall second.
  double achieved_qps = 0.0;
  /// The configured arrival rate, for the record.
  double offered_qps = 0.0;
  /// Submit -> resolution latency over all completed queries, and split
  /// by class.
  LatencyProfile all;
  LatencyProfile interactive;
  LatencyProfile bulk;
  /// Mean submit -> first-round admission wait over completed queries.
  double mean_queue_ms = 0.0;
  /// Mean coalesced rounds a completed query was active in.
  double mean_rounds = 0.0;
};

/// Drives `service` (which must be Start()ed) at the configured offered
/// load, drawing query points cyclically from `queries`, and blocks
/// until every accepted query resolves.
OpenLoopResult RunOpenLoop(QueryService& service, const PointSet& queries,
                           const OpenLoopOptions& options);

}  // namespace parsim

#endif  // PARSIM_SRC_EVAL_OPEN_LOOP_H_
