#include "src/eval/experiment.h"

#include "src/core/baselines.h"
#include "src/core/near_optimal.h"
#include "src/util/check.h"

namespace parsim {

WorkloadResult RunKnnWorkload(const ParallelSearchEngine& engine,
                              const PointSet& queries, std::size_t k) {
  PARSIM_CHECK(queries.dim() == engine.dim());
  PARSIM_CHECK(!queries.empty());
  WorkloadResult out;
  out.num_queries = queries.size();
  QueryStats stats;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    (void)engine.Query(queries[i], k, &stats);
    out.avg_parallel_ms += stats.parallel_ms;
    out.avg_sum_ms += stats.sum_ms;
    out.avg_max_pages += static_cast<double>(stats.max_pages);
    out.avg_total_pages += static_cast<double>(stats.total_pages);
    out.avg_balance += stats.balance;
  }
  const double n = static_cast<double>(queries.size());
  out.avg_parallel_ms /= n;
  out.avg_sum_ms /= n;
  out.avg_max_pages /= n;
  out.avg_total_pages /= n;
  out.avg_balance /= n;
  return out;
}

double Speedup(const WorkloadResult& sequential,
               const WorkloadResult& parallel) {
  PARSIM_CHECK(parallel.avg_parallel_ms > 0.0);
  return sequential.avg_parallel_ms / parallel.avg_parallel_ms;
}

double ImprovementFactor(const WorkloadResult& theirs,
                         const WorkloadResult& ours) {
  PARSIM_CHECK(ours.avg_parallel_ms > 0.0);
  return theirs.avg_parallel_ms / ours.avg_parallel_ms;
}

const char* DeclustererKindToString(DeclustererKind kind) {
  switch (kind) {
    case DeclustererKind::kRoundRobin:
      return "RR";
    case DeclustererKind::kDiskModulo:
      return "DM";
    case DeclustererKind::kFx:
      return "FX";
    case DeclustererKind::kHilbert:
      return "HIL";
    case DeclustererKind::kNearOptimal:
      return "new";
  }
  return "UNKNOWN";
}

std::unique_ptr<Declusterer> MakeDeclusterer(DeclustererKind kind,
                                             std::size_t dim,
                                             std::uint32_t num_disks) {
  switch (kind) {
    case DeclustererKind::kRoundRobin:
      return std::make_unique<RoundRobinDeclusterer>(num_disks);
    case DeclustererKind::kDiskModulo:
      return std::make_unique<DiskModuloDeclusterer>(dim, num_disks);
    case DeclustererKind::kFx:
      return std::make_unique<FxDeclusterer>(dim, num_disks);
    case DeclustererKind::kHilbert:
      return std::make_unique<HilbertDeclusterer>(dim, num_disks);
    case DeclustererKind::kNearOptimal:
      return std::make_unique<NearOptimalDeclusterer>(dim, num_disks);
  }
  PARSIM_CHECK(false);
}

std::unique_ptr<ParallelSearchEngine> BuildEngine(
    const PointSet& data, std::unique_ptr<Declusterer> declusterer,
    EngineOptions options) {
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::move(declusterer), options);
  const Status s = engine->Build(data);
  PARSIM_CHECK(s.ok());
  return engine;
}

}  // namespace parsim
