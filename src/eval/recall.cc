#include "src/eval/recall.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/util/check.h"

namespace parsim {
namespace {

// Cache file layout (little-endian, host-width-free):
//   8 bytes  magic "PRGT0001"
//   8 bytes  FNV-1a content hash (dim, n, q, k, metric kind, data bytes,
//            query bytes)
//   8 bytes  query count
//   per query: 8-byte neighbor count, then (uint32 id, double distance)
//   records.
// Any structural mismatch — magic, hash, counts, truncation — makes the
// loader report failure and the caller recompute + rewrite.
constexpr char kMagic[8] = {'P', 'R', 'G', 'T', '0', '0', '0', '1'};

std::uint64_t Fnv1aMix(std::uint64_t h, const void* bytes, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t ContentHash(const PointSet& data, const PointSet& queries,
                          std::size_t k, const Metric& metric) {
  std::uint64_t h = 1469598103934665603ull;
  const std::uint64_t dim = data.dim();
  const std::uint64_t n = data.size();
  const std::uint64_t q = queries.size();
  const std::uint64_t kk = k;
  const std::uint64_t kind = static_cast<std::uint64_t>(metric.kind());
  h = Fnv1aMix(h, &dim, sizeof dim);
  h = Fnv1aMix(h, &n, sizeof n);
  h = Fnv1aMix(h, &q, sizeof q);
  h = Fnv1aMix(h, &kk, sizeof kk);
  h = Fnv1aMix(h, &kind, sizeof kind);
  h = Fnv1aMix(h, data.data(), data.size() * data.dim() * sizeof(Scalar));
  h = Fnv1aMix(h, queries.data(),
               queries.size() * queries.dim() * sizeof(Scalar));
  return h;
}

bool ReadExact(std::FILE* f, void* out, std::size_t n) {
  return std::fread(out, 1, n, f) == n;
}

bool TryLoadCache(const std::string& path, std::uint64_t want_hash,
                  std::size_t want_queries, std::vector<KnnResult>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = false;
  char magic[8];
  std::uint64_t hash = 0;
  std::uint64_t count = 0;
  if (ReadExact(f, magic, sizeof magic) &&
      std::memcmp(magic, kMagic, sizeof kMagic) == 0 &&
      ReadExact(f, &hash, sizeof hash) && hash == want_hash &&
      ReadExact(f, &count, sizeof count) && count == want_queries) {
    std::vector<KnnResult> loaded(count);
    ok = true;
    for (std::uint64_t qi = 0; ok && qi < count; ++qi) {
      std::uint64_t neighbors = 0;
      ok = ReadExact(f, &neighbors, sizeof neighbors) &&
           neighbors <= (1ull << 32);
      if (!ok) break;
      loaded[qi].resize(neighbors);
      for (std::uint64_t i = 0; ok && i < neighbors; ++i) {
        ok = ReadExact(f, &loaded[qi][i].id, sizeof(PointId)) &&
             ReadExact(f, &loaded[qi][i].distance, sizeof(double));
      }
    }
    // A well-formed file ends exactly at the last record.
    if (ok) {
      char extra;
      ok = std::fread(&extra, 1, 1, f) == 0;
    }
    if (ok) *out = std::move(loaded);
  }
  std::fclose(f);
  return ok;
}

void WriteCache(const std::string& path, std::uint64_t hash,
                const std::vector<KnnResult>& truth) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  // A cache that can't be written (read-only dir) is a soft failure: the
  // caller already holds the computed truth.
  if (f == nullptr) return;
  bool ok = std::fwrite(kMagic, 1, sizeof kMagic, f) == sizeof kMagic;
  ok = ok && std::fwrite(&hash, 1, sizeof hash, f) == sizeof hash;
  const std::uint64_t count = truth.size();
  ok = ok && std::fwrite(&count, 1, sizeof count, f) == sizeof count;
  for (std::size_t qi = 0; ok && qi < truth.size(); ++qi) {
    const std::uint64_t neighbors = truth[qi].size();
    ok = std::fwrite(&neighbors, 1, sizeof neighbors, f) == sizeof neighbors;
    for (std::size_t i = 0; ok && i < truth[qi].size(); ++i) {
      ok = std::fwrite(&truth[qi][i].id, 1, sizeof(PointId), f) ==
               sizeof(PointId) &&
           std::fwrite(&truth[qi][i].distance, 1, sizeof(double), f) ==
               sizeof(double);
    }
  }
  std::fclose(f);
  // A partial write must not be mistaken for a cache on the next run.
  if (!ok) std::remove(path.c_str());
}

}  // namespace

std::vector<KnnResult> ComputeGroundTruth(const PointSet& data,
                                          const PointSet& queries,
                                          std::size_t k, const Metric& metric,
                                          ThreadPool* pool) {
  PARSIM_CHECK(queries.empty() || data.empty() ||
               queries.dim() == data.dim());
  std::vector<KnnResult> truth(queries.size());
  if (pool != nullptr && queries.size() > 1) {
    pool->ParallelFor(0, queries.size(), [&](std::size_t qi) {
      truth[qi] = BruteForceKnn(data, queries[qi], k, metric);
    });
  } else {
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      truth[qi] = BruteForceKnn(data, queries[qi], k, metric);
    }
  }
  return truth;
}

std::vector<KnnResult> LoadOrComputeGroundTruth(
    const std::string& cache_path, const PointSet& data,
    const PointSet& queries, std::size_t k, const Metric& metric,
    ThreadPool* pool, bool* from_cache) {
  const std::uint64_t hash = ContentHash(data, queries, k, metric);
  std::vector<KnnResult> truth;
  if (TryLoadCache(cache_path, hash, queries.size(), &truth)) {
    if (from_cache != nullptr) *from_cache = true;
    return truth;
  }
  truth = ComputeGroundTruth(data, queries, k, metric, pool);
  WriteCache(cache_path, hash, truth);
  if (from_cache != nullptr) *from_cache = false;
  return truth;
}

namespace {

// Shared hit counter behind RecallAtK and ScoreRecall: (hits, want) with
// hits already capped at want. want == 0 means "nothing to find".
void CountHits(const KnnResult& result, const KnnResult& truth, std::size_t k,
               std::size_t* hits_out, std::size_t* want_out) {
  const std::size_t want = std::min(k, truth.size());
  *want_out = want;
  *hits_out = 0;
  if (want == 0) return;
  // Tie tolerance: a returned neighbor is a hit iff it is at least as
  // close as the truth's k-th answer, so any member of a distance tie at
  // the cut line counts. Distances on both sides come from the same
  // exact kernels, so equality compares bit for bit.
  const double limit = truth[want - 1].distance;
  const std::size_t scored = std::min(k, result.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < scored; ++i) {
    if (result[i].distance <= limit) ++hits;
  }
  // More tied answers than truth slots must not score above 1.0.
  *hits_out = std::min(hits, want);
}

}  // namespace

double RecallAtK(const KnnResult& result, const KnnResult& truth,
                 std::size_t k) {
  std::size_t hits = 0;
  std::size_t want = 0;
  CountHits(result, truth, k, &hits, &want);
  if (want == 0) return 1.0;
  return static_cast<double>(hits) / static_cast<double>(want);
}

RecallStats ScoreRecall(const std::vector<KnnResult>& results,
                        const std::vector<KnnResult>& truths, std::size_t k) {
  PARSIM_CHECK(results.size() == truths.size());
  RecallStats stats;
  stats.queries = results.size();
  if (results.empty()) return stats;
  double sum = 0.0;
  stats.min = 1.0;
  for (std::size_t qi = 0; qi < results.size(); ++qi) {
    std::size_t hits = 0;
    std::size_t want = 0;
    CountHits(results[qi], truths[qi], k, &hits, &want);
    const double r =
        want == 0 ? 1.0
                  : static_cast<double>(hits) / static_cast<double>(want);
    sum += r;
    stats.min = std::min(stats.min, r);
    stats.hits += hits;
    stats.wanted += want;
  }
  stats.mean = sum / static_cast<double>(results.size());
  return stats;
}

}  // namespace parsim
