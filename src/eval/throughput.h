// Multi-query throughput simulation — the paper's future work
// ("declustering techniques which optimize the throughput instead of
// the search time for a single query", Section 6).
//
// Model: a closed system with a batch of outstanding queries. Every
// disk serves its page requests from all queries back to back, so the
// batch completes when the most-loaded disk finishes:
//
//   makespan  = host work + max over disks (sum over queries of work)
//   throughput = |queries| / makespan
//
// Single-query latency rewards per-query balance (the paper's
// optimization target); batch throughput rewards aggregate balance,
// which even round robin achieves — quantifying why the two goals
// differ.

#ifndef PARSIM_SRC_EVAL_THROUGHPUT_H_
#define PARSIM_SRC_EVAL_THROUGHPUT_H_

#include <cstdint>
#include <vector>

#include "src/parallel/engine.h"

namespace parsim {

/// Aggregate result of a batch-throughput simulation.
struct ThroughputResult {
  /// Simulated time until the whole batch completes.
  double makespan_ms = 0.0;
  /// Queries per simulated second.
  double throughput_qps = 0.0;
  /// Mean over disks of (disk busy time / makespan); 1.0 = no idling.
  double avg_disk_utilization = 0.0;
  /// Average single-query latency under the paper's max rule, for
  /// contrast with the batch view.
  double avg_latency_ms = 0.0;
  std::size_t num_queries = 0;
  /// Aggregate pages served per disk over the batch.
  std::vector<std::uint64_t> pages_per_disk;

  // Fault / degraded-read aggregates. All zero (and healthy_makespan_ms
  // == makespan_ms bit for bit) on a healthy disk array.
  /// Batch makespan at healthy rates: same page distribution, but no
  /// slow-disk scaling and no retry penalties. makespan_ms divided by
  /// healthy_makespan_ms is the batch degradation factor.
  double healthy_makespan_ms = 0.0;
  /// Queries that read a replica, retried a failed disk, or lost pages.
  std::size_t degraded_queries = 0;
  /// Pages served by replicas on behalf of failed primaries.
  std::uint64_t replica_pages = 0;
  /// Timed-out read attempts against failed primaries (bounded retry).
  std::uint64_t failed_read_attempts = 0;
  /// Pages no healthy copy could serve (failed disk, no replica).
  std::uint64_t unavailable_pages = 0;

  // Batched-execution aggregates. Zero outside the coalesced path.
  /// Page reads the batch avoided by cross-query coalescing (summed
  /// per-query coalesced_reads); every one of them is a page the
  /// per-query execution would have charged to a disk.
  std::uint64_t coalesced_reads = 0;
  /// Many-to-many kernel participations (summed per-query counts).
  std::uint64_t block_kernel_invocations = 0;

  // Quantized-sweep aggregates (summed per-query counts). All zero
  // unless the engine runs with quantized_leaf_blocks.
  /// Leaf candidates the SQ8 lower bound eliminated before exact work
  /// (always base_pruned + prefix_pruned + sq8_pruned).
  std::uint64_t quantized_pruned = 0;
  /// ... of which: killed wholesale by the per-block query bound.
  std::uint64_t base_pruned = 0;
  /// ... of which: killed by the prefix-dimension cascade stage.
  std::uint64_t prefix_pruned = 0;
  /// ... of which: killed by the full-dimension SQ8 reduction.
  std::uint64_t sq8_pruned = 0;
  /// Leaf candidates re-ranked through the exact float kernels.
  std::uint64_t reranked = 0;
  /// Bytes leaf sweeps streamed (bookkeeping; not part of makespan).
  std::uint64_t leaf_bytes_scanned = 0;

  // Frontier aggregates (summed per-query counts; HS searches only).
  std::uint64_t frontier_pushes = 0;
  std::uint64_t frontier_pops = 0;
  std::uint64_t cutoff_skipped_nodes = 0;

  // Approximate-tier aggregates (zero unless EngineOptions::approx is
  // enabled with epsilon > 0; see src/parallel/engine.h).
  std::uint64_t approx_skipped_nodes = 0;
  std::uint64_t approx_pruned_exactly = 0;

  /// Wall-clock phase breakdown of the batch execution (summed over all
  /// workers; all zero unless the engine runs with profile_phases).
  /// Real time — never compare against makespan_ms.
  PhaseBreakdown phases;

  /// Real (measured) wall-clock execution of the batch on this machine,
  /// alongside the simulated makespan above.
  double wall_ms = 0.0;
  /// Queries per real second.
  double wall_qps = 0.0;
  /// Worker threads the batch actually executed on (1 = serial), as
  /// reported by QueryBatch — not the requested count, so a buffered
  /// engine in deterministic mode (which serializes the batch) reports 1
  /// whatever was asked for.
  unsigned execution_threads = 1;
};

/// Runs every query as a k-NN search and aggregates the per-disk work
/// into the closed-batch model above.
///
/// `execution_threads` controls the *real* execution only: > 1 fans the
/// batch out over the engine's worker pool (QueryBatch) and reports
/// genuine wall-clock throughput in wall_ms / wall_qps (0 or 1 = serial
/// execution). On an unbuffered engine every simulated number stays
/// bit-identical to the serial run; on a buffered engine the aggregate
/// page totals (hits + misses per disk) stay exact but their hit/miss
/// split — and thus the simulated makespan — can vary with thread
/// interleaving, unless options().deterministic_batch serializes the
/// batch.
ThroughputResult SimulateThroughput(const ParallelSearchEngine& engine,
                                    const PointSet& queries, std::size_t k,
                                    unsigned execution_threads = 0);

}  // namespace parsim

#endif  // PARSIM_SRC_EVAL_THROUGHPUT_H_
