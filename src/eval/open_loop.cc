#include "src/eval/open_loop.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <thread>

#include "src/util/check.h"
#include "src/util/random.h"

namespace parsim {

namespace {

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencyProfile Profile(std::vector<double>* latencies) {
  LatencyProfile out;
  out.count = latencies->size();
  if (out.count == 0) return out;
  std::sort(latencies->begin(), latencies->end());
  double sum = 0.0;
  for (const double v : *latencies) sum += v;
  out.mean_ms = sum / static_cast<double>(out.count);
  out.p50_ms = Percentile(*latencies, 0.50);
  out.p95_ms = Percentile(*latencies, 0.95);
  out.p99_ms = Percentile(*latencies, 0.99);
  out.max_ms = latencies->back();
  return out;
}

}  // namespace

OpenLoopResult RunOpenLoop(QueryService& service, const PointSet& queries,
                           const OpenLoopOptions& options) {
  PARSIM_CHECK(queries.size() > 0);
  PARSIM_CHECK(options.arrival_qps > 0.0);
  PARSIM_CHECK(options.num_queries > 0);
  using Clock = std::chrono::steady_clock;
  using Millis = std::chrono::duration<double, std::milli>;

  Rng rng(options.seed);
  // Pre-draw the whole arrival schedule and class sequence so the load
  // pattern is a pure function of the seed, independent of timing.
  std::vector<double> arrival_ms(options.num_queries);
  std::vector<bool> is_bulk(options.num_queries);
  double t = 0.0;
  const double rate_per_ms = options.arrival_qps / 1000.0;
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    t += rng.NextExponential(rate_per_ms);
    arrival_ms[i] = t;
    is_bulk[i] = rng.NextBernoulli(options.bulk_fraction);
  }

  struct Outstanding {
    std::future<ServedResult> future;
    bool bulk;
  };
  std::vector<Outstanding> outstanding;
  outstanding.reserve(options.num_queries);

  OpenLoopResult result;
  result.offered_qps = options.arrival_qps;
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < options.num_queries; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    Millis(arrival_ms[i])));
    ServiceQueryOptions opts;
    opts.priority = is_bulk[i] ? QueryClass::kBulk : QueryClass::kInteractive;
    opts.k = is_bulk[i] ? options.bulk_k : options.k;
    opts.deadline_ms = options.deadline_ms;
    opts.max_pages = options.max_pages;
    std::future<ServedResult> future;
    ++result.submitted;
    const Status status =
        service.Submit(queries[i % queries.size()], opts, &future);
    if (status.ok()) {
      ++result.accepted;
      outstanding.push_back({std::move(future), is_bulk[i]});
    } else {
      PARSIM_CHECK(status.code() == StatusCode::kResourceExhausted);
      ++result.rejected;
    }
  }

  std::vector<double> all_lat, interactive_lat, bulk_lat;
  all_lat.reserve(outstanding.size());
  double queue_sum = 0.0;
  double rounds_sum = 0.0;
  for (Outstanding& o : outstanding) {
    ServedResult served = o.future.get();
    if (served.status.code() == StatusCode::kDeadlineExceeded) {
      ++result.expired;
    } else if (served.status.code() == StatusCode::kUnavailable) {
      ++result.unavailable;
    }
    all_lat.push_back(served.latency_ms);
    (o.bulk ? bulk_lat : interactive_lat).push_back(served.latency_ms);
    queue_sum += served.queue_ms;
    rounds_sum += static_cast<double>(served.rounds);
  }
  result.wall_ms = Millis(Clock::now() - start).count();

  result.all = Profile(&all_lat);
  result.interactive = Profile(&interactive_lat);
  result.bulk = Profile(&bulk_lat);
  if (!outstanding.empty()) {
    const double n = static_cast<double>(outstanding.size());
    result.mean_queue_ms = queue_sum / n;
    result.mean_rounds = rounds_sum / n;
  }
  if (result.wall_ms > 0.0) {
    result.achieved_qps =
        static_cast<double>(result.all.count) / (result.wall_ms / 1000.0);
  }
  return result;
}

}  // namespace parsim
