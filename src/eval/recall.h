// Ground-truth recall harness for the approximate search tier.
//
// The standing contract every approximate change is judged against (see
// DESIGN.md "Approximate tier & recall harness"): exact ground truth is
// computed ONCE per (dataset, query set, k, metric) — by the linear-scan
// oracle, so it is independent of every index code path under test —
// cached to disk keyed by a content hash, and any result set is then
// scored for recall@k against it.
//
// The scorer is distance-tie tolerant (the calc_recall subtlety from
// pbbsbench): a returned neighbor counts as a hit iff its distance is
// <= the ground truth's k-th distance. When several points tie at the
// k-th position, any valid top-k set — not just the oracle's
// tie-breaking choice — scores 1.0; id-set intersection would punish a
// correct answer for picking the "wrong" equidistant point. Distances
// on both sides come from the same exact float kernels (approximate
// search re-ranks exactly; only pruning is relaxed), so ties compare
// bit-identically and the tolerance needs no epsilon.

#ifndef PARSIM_SRC_EVAL_RECALL_H_
#define PARSIM_SRC_EVAL_RECALL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/index/knn.h"
#include "src/util/thread_pool.h"

namespace parsim {

/// Aggregate recall of a result batch (see ScoreRecall).
struct RecallStats {
  /// Mean per-query recall@k (the curve's y-axis). 1.0 on an empty
  /// batch — the exact path's anchor convention.
  double mean = 1.0;
  /// Worst per-query recall in the batch.
  double min = 1.0;
  /// Summed hits and wanted counts over the batch (wanted is
  /// min(k, truth size) per query, so k > n degenerates gracefully).
  std::uint64_t hits = 0;
  std::uint64_t wanted = 0;
  std::size_t queries = 0;
};

/// Exact k-NN ground truth for every query, via the brute-force oracle
/// (BruteForceKnn — deliberately NOT the tree path, so the truth is
/// independent of the machinery under test). `pool` parallelizes over
/// queries when non-null; results are identical either way.
std::vector<KnnResult> ComputeGroundTruth(const PointSet& data,
                                          const PointSet& queries,
                                          std::size_t k,
                                          const Metric& metric = Metric(),
                                          ThreadPool* pool = nullptr);

/// ComputeGroundTruth with a disk cache: if `cache_path` exists and its
/// content hash matches (data bytes, query bytes, k, metric kind, and
/// shapes), the cached answers are returned without any distance work;
/// otherwise the truth is computed and the cache (re)written. A stale,
/// truncated, or corrupt file is recomputed and overwritten, never
/// trusted. `from_cache` (optional) reports which way it went.
std::vector<KnnResult> LoadOrComputeGroundTruth(
    const std::string& cache_path, const PointSet& data,
    const PointSet& queries, std::size_t k, const Metric& metric = Metric(),
    ThreadPool* pool = nullptr, bool* from_cache = nullptr);

/// Recall@k of one result list against its ground truth, tie-tolerant:
/// hits are returned entries (first k) with distance <= the truth's
/// k-th distance; the denominator is min(k, truth.size()). Empty truth
/// scores 1.0 (nothing to find). Both lists must be ascending by
/// distance (the invariant every query path already guarantees).
double RecallAtK(const KnnResult& result, const KnnResult& truth,
                 std::size_t k);

/// Batch aggregate of RecallAtK (results and truths are parallel
/// arrays, scored pairwise).
RecallStats ScoreRecall(const std::vector<KnnResult>& results,
                        const std::vector<KnnResult>& truths, std::size_t k);

}  // namespace parsim

#endif  // PARSIM_SRC_EVAL_RECALL_H_
