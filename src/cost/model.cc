#include "src/cost/model.h"

#include <cmath>

#include "src/core/bucket.h"
#include "src/geometry/rect.h"
#include "src/util/check.h"

namespace parsim {

double SurfaceProbability(std::size_t dim, double eps) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(eps >= 0.0 && eps <= 0.5);
  return 1.0 - std::pow(1.0 - 2.0 * eps, static_cast<double>(dim));
}

double UnitBallVolume(std::size_t dim) {
  PARSIM_CHECK(dim >= 1);
  const double d = static_cast<double>(dim);
  return std::pow(M_PI, d / 2.0) / std::tgamma(d / 2.0 + 1.0);
}

double ExpectedNnDistance(std::uint64_t num_points, std::size_t dim,
                          std::uint64_t k) {
  PARSIM_CHECK(num_points >= 1);
  PARSIM_CHECK(k >= 1);
  const double d = static_cast<double>(dim);
  const double volume_needed =
      static_cast<double>(k) / static_cast<double>(num_points);
  return std::pow(volume_needed / UnitBallVolume(dim), 1.0 / d);
}

double MonteCarloQuadrantsIntersected(std::size_t dim, double radius,
                                      std::size_t samples, Rng* rng) {
  PARSIM_CHECK(rng != nullptr);
  PARSIM_CHECK(samples >= 1);
  PARSIM_CHECK(radius >= 0.0);
  const Bucketizer bucketizer(dim);
  const Rect space = Rect::UnitCube(dim);
  double total = 0.0;
  Point q(dim);
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t j = 0; j < dim; ++j) {
      q[j] = static_cast<Scalar>(rng->NextDouble());
    }
    total += static_cast<double>(
        bucketizer.BucketsIntersectingBall(q, radius, space).size());
  }
  return total / static_cast<double>(samples);
}

double MinkowskiCubeBallVolume(std::size_t dim, double edge, double radius) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(edge >= 0.0);
  PARSIM_CHECK(radius >= 0.0);
  // sum over i of C(d, i) * edge^(d-i) * V_i * radius^i, with V_0 = 1.
  double total = 0.0;
  double binom = 1.0;  // C(d, 0)
  for (std::size_t i = 0; i <= dim; ++i) {
    const double ball_volume = i == 0 ? 1.0 : UnitBallVolume(i);
    total += binom * std::pow(edge, static_cast<double>(dim - i)) *
             ball_volume * std::pow(radius, static_cast<double>(i));
    binom = binom * static_cast<double>(dim - i) / static_cast<double>(i + 1);
  }
  return total;
}

double ExpectedNnPageAccesses(std::uint64_t num_points, std::size_t dim,
                              std::size_t points_per_page, std::uint64_t k) {
  PARSIM_CHECK(num_points >= 1);
  PARSIM_CHECK(points_per_page >= 1);
  const double pages = std::max(
      1.0, static_cast<double>(num_points) /
               static_cast<double>(points_per_page));
  // A page region is modeled as a cube holding points_per_page points.
  const double page_volume =
      static_cast<double>(points_per_page) / static_cast<double>(num_points);
  const double edge = std::pow(std::min(1.0, page_volume),
                               1.0 / static_cast<double>(dim));
  const double radius = ExpectedNnDistance(num_points, dim, k);
  const double p_intersect =
      std::min(1.0, MinkowskiCubeBallVolume(dim, edge, radius));
  return pages * p_intersect;
}

double MonteCarloSurfaceProbability(std::size_t dim, double eps,
                                    std::size_t samples, Rng* rng) {
  PARSIM_CHECK(rng != nullptr);
  PARSIM_CHECK(samples >= 1);
  std::size_t hits = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    bool near_surface = false;
    for (std::size_t j = 0; j < dim; ++j) {
      const double v = rng->NextDouble();
      if (v < eps || v > 1.0 - eps) {
        near_surface = true;
        break;
      }
    }
    if (near_surface) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace parsim
