// Analytic cost model of high-dimensional nearest-neighbor search, after
// the paper's Section 3.1 and its companion model [BBKK 97].
//
// Three effects drive the declustering design:
//   1. points concentrate near the data-space surface (Eq. 1 / Fig. 5);
//   2. the NN-sphere radius grows quickly with dimension;
//   3. hence the sphere intersects many quadrants, which must be spread
//      over disks.

#ifndef PARSIM_SRC_COST_MODEL_H_
#define PARSIM_SRC_COST_MODEL_H_

#include <cstdint>

#include "src/util/random.h"

namespace parsim {

/// Probability that a uniform point of [0,1]^d lies within `eps` of the
/// data-space surface: 1 - (1 - 2*eps)^d (Eq. 1; the paper's example uses
/// eps = 0.1 and reports > 97% for d = 16).
double SurfaceProbability(std::size_t dim, double eps = 0.1);

/// Volume of the d-dimensional unit-radius L2 ball:
/// pi^(d/2) / Gamma(d/2 + 1).
double UnitBallVolume(std::size_t dim);

/// Expected k-NN distance for N uniform points in [0,1]^d under the
/// Poisson approximation (boundary effects ignored):
/// r ~ (k / (N * V_ball(d)))^(1/d). This is the [BBKK 97]-style estimate
/// of the NN-sphere radius; it grows rapidly with d at fixed N.
double ExpectedNnDistance(std::uint64_t num_points, std::size_t dim,
                          std::uint64_t k = 1);

/// Expected number of quadrants (of the 2^d midpoint buckets) intersected
/// by a ball of radius `radius` around a uniformly random query point,
/// estimated by Monte Carlo with `samples` queries.
double MonteCarloQuadrantsIntersected(std::size_t dim, double radius,
                                      std::size_t samples, Rng* rng);

/// Monte Carlo check of SurfaceProbability (used by tests and by the
/// Fig. 5 bench to display analytic vs simulated columns side by side).
double MonteCarloSurfaceProbability(std::size_t dim, double eps,
                                    std::size_t samples, Rng* rng);

/// Volume of the Minkowski sum of a d-cube with edge `a` and an L2 ball
/// of radius `r`:  sum_i C(d,i) a^(d-i) V_i r^i  (V_i = unit i-ball
/// volume, V_0 = 1). The probability that a cube-shaped page intersects
/// the NN sphere is this volume (clipped to the data space).
double MinkowskiCubeBallVolume(std::size_t dim, double edge, double radius);

/// [BBKK 97]-style estimate of the number of *data pages* a k-NN query
/// reads on N uniform points in [0,1]^d with `points_per_page` entries
/// per page: pages x P(page intersects NN sphere), modelling pages as
/// cubes of volume points_per_page/N. Boundary effects are ignored, so
/// the estimate is an upper-bound-flavored approximation that becomes
/// loose as the sphere radius approaches the data-space extent.
double ExpectedNnPageAccesses(std::uint64_t num_points, std::size_t dim,
                              std::size_t points_per_page,
                              std::uint64_t k = 1);

}  // namespace parsim

#endif  // PARSIM_SRC_COST_MODEL_H_
