// Synthetic workload generators.
//
// The paper evaluates on three private datasets; per the reproduction
// ground rules each is substituted by a synthetic generator that
// preserves the property the experiment exercises (see DESIGN.md):
//
//   * uniform points            — identical to the paper's uniform data;
//   * Fourier points            — Fourier coefficients of random smooth
//                                 closed contours ("industrial parts"),
//                                 generated as clustered variants of base
//                                 shapes: strongly correlated dimensions
//                                 and heavy clustering;
//   * text descriptors          — letter-group frequency vectors of
//                                 substrings of a Zipf-distributed
//                                 synthetic corpus: heavily skewed
//                                 marginals in d=15;
//   * clustered Gaussians       — generic cluster workload for the
//                                 recursive-declustering experiments.
//
// All generators are deterministic in their seed and emit points in
// [0,1]^d.

#ifndef PARSIM_SRC_WORKLOAD_GENERATORS_H_
#define PARSIM_SRC_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "src/geometry/point.h"
#include "src/util/random.h"

namespace parsim {

/// Number of points whose records (dim floats + id) total `megabytes` MB.
/// This is how the paper quotes data-set sizes ("30 MBytes of data").
std::size_t NumPointsForMegabytes(double megabytes, std::size_t dim);

/// Data-set size in MBytes (inverse of the above, for reporting).
double MegabytesForPoints(std::size_t n, std::size_t dim);

/// i.i.d. uniform points in [0,1]^d.
PointSet GenerateUniform(std::size_t n, std::size_t dim, std::uint64_t seed);

/// Mixture of `clusters` spherical Gaussians with the given standard
/// deviation, centers uniform in [margin, 1-margin]^d, coordinates
/// clamped to [0,1]. With few clusters and small stddev this is the
/// "highly clustered" regime of Section 4.3.
PointSet GenerateClusteredGaussian(std::size_t n, std::size_t dim,
                                   std::size_t clusters, double stddev,
                                   std::uint64_t seed);

/// Options of the Fourier-shape generator.
struct FourierOptions {
  /// Number of distinct base shapes ("CAD parts"); variants cluster
  /// around them.
  std::size_t base_shapes = 32;
  /// Relative perturbation of a variant's latent parameters. The default
  /// mimics a catalogue of distinct part families whose variants still
  /// differ visibly; lower it for the extreme-clustering experiments.
  double variation = 0.5;
  /// Spectral decay exponent: coefficient h has scale 1/h^decay
  /// (smooth contours have fast-decaying spectra).
  double decay = 2.0;
  /// Number of latent shape parameters. Industrial part families are
  /// parameterized by a handful of degrees of freedom, so their Fourier
  /// descriptors live near a low-dimensional manifold inside [0,1]^d;
  /// this intrinsic dimensionality is what keeps index searches on the
  /// paper's real data selective despite d = 15.
  std::size_t latent_dim = 5;
  /// Relative full-dimensional measurement noise on top of the manifold.
  double ambient_noise = 0.02;
};

/// Fourier descriptors of synthetic 2-d contours: d coefficients
/// [a1, b1, a2, b2, ...] of random smooth closed curves, affinely mapped
/// into [0,1]^d. Shapes come from part families with few latent degrees
/// of freedom, so the coefficients are strongly correlated across
/// dimensions and cluster by family — the two properties of the paper's
/// CAD data that its experiments exercise.
PointSet GenerateFourierPoints(std::size_t n, std::size_t dim,
                               std::uint64_t seed, FourierOptions options = {});

/// Text descriptors: letter-group frequency vectors of substrings drawn
/// from a synthetic corpus with Zipf-distributed letter groups, mapped
/// into [0,1]^d. Marginals are heavily right-skewed (most coordinates
/// near 0), matching the character of real text feature data.
PointSet GenerateTextDescriptors(std::size_t n, std::size_t dim,
                                 std::uint64_t seed);

/// Query workload: `n` uniform query points in [0,1]^d (the paper uses
/// "uniformly distributed query points").
PointSet GenerateUniformQueries(std::size_t n, std::size_t dim,
                                std::uint64_t seed);

/// Query workload following the data distribution: a random sample of
/// `data`, each point perturbed by Gaussian noise of scale `jitter`.
PointSet SampleQueriesFromData(const PointSet& data, std::size_t n,
                               double jitter, std::uint64_t seed);

}  // namespace parsim

#endif  // PARSIM_SRC_WORKLOAD_GENERATORS_H_
