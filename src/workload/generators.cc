#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace parsim {

std::size_t NumPointsForMegabytes(double megabytes, std::size_t dim) {
  PARSIM_CHECK(megabytes > 0.0);
  PARSIM_CHECK(dim >= 1);
  const double record_bytes =
      static_cast<double>(dim * sizeof(Scalar) + sizeof(PointId));
  return static_cast<std::size_t>(megabytes * 1024.0 * 1024.0 / record_bytes);
}

double MegabytesForPoints(std::size_t n, std::size_t dim) {
  const double record_bytes =
      static_cast<double>(dim * sizeof(Scalar) + sizeof(PointId));
  return static_cast<double>(n) * record_bytes / (1024.0 * 1024.0);
}

PointSet GenerateUniform(std::size_t n, std::size_t dim, std::uint64_t seed) {
  PARSIM_CHECK(dim >= 1);
  Rng rng(seed);
  PointSet out(dim);
  out.Reserve(n);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<Scalar>(rng.NextDouble());
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateClusteredGaussian(std::size_t n, std::size_t dim,
                                   std::size_t clusters, double stddev,
                                   std::uint64_t seed) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(clusters >= 1);
  PARSIM_CHECK(stddev > 0.0);
  Rng rng(seed);
  // Cluster centers stay away from the border so the mass is not clipped
  // too asymmetrically.
  const double margin = std::min(0.25, 3.0 * stddev);
  PointSet centers(dim);
  centers.Reserve(clusters);
  Point c(dim);
  for (std::size_t i = 0; i < clusters; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      c[j] = static_cast<Scalar>(rng.NextUniform(margin, 1.0 - margin));
    }
    centers.Add(c);
  }
  PointSet out(dim);
  out.Reserve(n);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const PointView center = centers[rng.NextBounded(clusters)];
    for (std::size_t j = 0; j < dim; ++j) {
      const double v = rng.NextGaussian(static_cast<double>(center[j]), stddev);
      p[j] = static_cast<Scalar>(std::clamp(v, 0.0, 1.0));
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateFourierPoints(std::size_t n, std::size_t dim,
                               std::uint64_t seed, FourierOptions options) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(options.base_shapes >= 1);
  PARSIM_CHECK(options.variation >= 0.0);
  PARSIM_CHECK(options.decay > 0.0);
  PARSIM_CHECK(options.latent_dim >= 1);
  PARSIM_CHECK(options.ambient_noise >= 0.0);
  Rng rng(seed);
  const std::size_t s = options.latent_dim;

  // Coefficient k (0-based) corresponds to harmonic h = k/2 + 1 and has
  // scale sigma_k = 1/h^decay (smooth contours decay fast).
  std::vector<double> sigma(dim);
  for (std::size_t k = 0; k < dim; ++k) {
    const double h = static_cast<double>(k / 2 + 1);
    sigma[k] = 1.0 / std::pow(h, options.decay);
  }

  // A fixed mixing matrix maps the s latent shape parameters to the d
  // coefficients; each row is normalized to length sigma_k so the
  // spectral profile is preserved while all coefficients stay strongly
  // correlated (the shapes have only s degrees of freedom).
  std::vector<std::vector<double>> mix(dim, std::vector<double>(s));
  for (std::size_t k = 0; k < dim; ++k) {
    double norm_sq = 0.0;
    for (std::size_t j = 0; j < s; ++j) {
      mix[k][j] = rng.NextGaussian();
      norm_sq += mix[k][j] * mix[k][j];
    }
    const double scale = sigma[k] / std::sqrt(std::max(norm_sq, 1e-30));
    for (std::size_t j = 0; j < s; ++j) mix[k][j] *= scale;
  }

  // Base shapes are latent vectors; variants perturb them.
  std::vector<std::vector<double>> bases(options.base_shapes,
                                         std::vector<double>(s));
  for (auto& base : bases) {
    for (std::size_t j = 0; j < s; ++j) base[j] = rng.NextGaussian();
  }

  PointSet out(dim);
  out.Reserve(n);
  Point p(dim);
  std::vector<double> latent(s);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& base = bases[rng.NextBounded(options.base_shapes)];
    for (std::size_t j = 0; j < s; ++j) {
      latent[j] = base[j] + rng.NextGaussian(0.0, options.variation);
    }
    for (std::size_t k = 0; k < dim; ++k) {
      double coeff = 0.0;
      for (std::size_t j = 0; j < s; ++j) coeff += mix[k][j] * latent[j];
      coeff += rng.NextGaussian(0.0, options.ambient_noise * sigma[k]);
      // Affine map: +-3 sigma -> [0,1], clamped.
      const double mapped = coeff / (6.0 * sigma[k]) + 0.5;
      p[k] = static_cast<Scalar>(std::clamp(mapped, 0.0, 1.0));
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateTextDescriptors(std::size_t n, std::size_t dim,
                                 std::uint64_t seed) {
  PARSIM_CHECK(dim >= 1);
  Rng rng(seed);
  // A substring of ~kSubstringLength characters; each character belongs
  // to one of `dim` letter groups with Zipf-distributed popularity. The
  // descriptor is the per-group frequency, normalized by the substring
  // length — most groups are rare, so most coordinates sit near zero.
  constexpr std::size_t kSubstringLength = 64;
  // Fixed random permutation so the popular groups are not always the
  // low dimensions.
  std::vector<std::size_t> group_of_rank(dim);
  for (std::size_t i = 0; i < dim; ++i) group_of_rank[i] = i;
  rng.Shuffle(&group_of_rank);

  PointSet out(dim);
  out.Reserve(n);
  std::vector<std::uint32_t> counts(dim);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t c = 0; c < kSubstringLength; ++c) {
      const std::uint64_t rank = rng.NextZipf(dim, /*s=*/1.2);
      ++counts[group_of_rank[rank - 1]];
    }
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<Scalar>(static_cast<double>(counts[j]) /
                                 static_cast<double>(kSubstringLength));
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateUniformQueries(std::size_t n, std::size_t dim,
                                std::uint64_t seed) {
  // Uniform queries are uniform points; a distinct entry point keeps the
  // workload intent readable at call sites.
  return GenerateUniform(n, dim, seed);
}

PointSet SampleQueriesFromData(const PointSet& data, std::size_t n,
                               double jitter, std::uint64_t seed) {
  PARSIM_CHECK(!data.empty());
  PARSIM_CHECK(jitter >= 0.0);
  Rng rng(seed);
  const std::size_t dim = data.dim();
  PointSet out(dim);
  out.Reserve(n);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const PointView source = data[rng.NextBounded(data.size())];
    for (std::size_t j = 0; j < dim; ++j) {
      const double v =
          rng.NextGaussian(static_cast<double>(source[j]), jitter);
      p[j] = static_cast<Scalar>(std::clamp(v, 0.0, 1.0));
    }
    out.Add(p);
  }
  return out;
}

}  // namespace parsim
