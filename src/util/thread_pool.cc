#include "src/util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "src/util/check.h"

namespace parsim {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PARSIM_CHECK(!stop_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  if (end - begin == 1) {
    body(begin);
    return;
  }

  // Shared loop state. The caller waits for every helper to finish before
  // returning, so the helpers' pointer to `body` stays valid.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    unsigned helpers_finished = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<LoopState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->body = &body;

  const auto run_chunk = [](LoopState* s) {
    for (;;) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->end) return;
      try {
        (*s->body)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(s->done_mutex);
          if (!s->error) s->error = std::current_exception();
        }
        // Stop handing out further iterations; in-flight ones finish.
        s->next.store(s->end, std::memory_order_relaxed);
      }
    }
  };

  const unsigned helpers = static_cast<unsigned>(
      std::min<std::size_t>(workers_.size(), (end - begin) - 1));
  for (unsigned h = 0; h < helpers; ++h) {
    Enqueue([state, run_chunk]() {
      run_chunk(state.get());
      {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        ++state->helpers_finished;
      }
      state->done_cv.notify_one();
    });
  }

  run_chunk(state.get());  // the caller participates

  // Work-stealing wait: our helper tasks may sit behind other tasks in
  // the queue (or *be* the queue, if every worker is occupied by an
  // enclosing ParallelFor). Draining the queue from here guarantees they
  // run, which makes nested ParallelFor deadlock-free. Only once the
  // queue is empty are all our helpers either done or running on some
  // thread, and it is safe to sleep until they notify.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->done_mutex);
      if (state->helpers_finished == helpers) break;
    }
    if (RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(state->done_mutex);
    if (state->helpers_finished == helpers) break;
    state->done_cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace parsim
