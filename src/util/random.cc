#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace parsim {
namespace {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro must not be seeded with all zeros; SplitMix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  PARSIM_CHECK(bound > 0);
  // Debiased modulo (Lemire-style rejection on the low zone).
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  PARSIM_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

double Rng::NextGaussian(double mean, double stddev) {
  PARSIM_CHECK(stddev >= 0.0);
  return mean + stddev * NextGaussian();
}

double Rng::NextExponential(double lambda) {
  PARSIM_CHECK(lambda > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

bool Rng::NextBernoulli(double p) {
  PARSIM_CHECK(p >= 0.0 && p <= 1.0);
  return NextDouble() < p;
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double s) {
  PARSIM_CHECK(n >= 1);
  PARSIM_CHECK(s > 0.0);
  if (n == 1) return 1;
  // Rejection-inversion sampling after Hörmann & Derflinger (1996), as used
  // by Apache Commons. H(x) is an antiderivative of the density x^-s.
  auto h_integral = [s](double x) {
    const double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return log_x;
    return (std::exp((1.0 - s) * log_x) - 1.0) / (1.0 - s);
  };
  auto h = [s](double x) { return std::exp(-s * std::log(x)); };
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_h_x1_ = h_integral(1.5) - 1.0;
    zipf_h_n_ = h_integral(static_cast<double>(n) + 0.5);
    zipf_c_ = zipf_h_n_ - zipf_h_x1_;
  }
  auto h_integral_inverse = [s](double x) {
    if (std::abs(1.0 - s) < 1e-12) return std::exp(x);
    double t = x * (1.0 - s);
    if (t < -1.0) t = -1.0;  // clamp against round-off
    return std::exp(std::log1p(t) / (1.0 - s));
  };
  for (;;) {
    const double u = zipf_h_n_ - NextDouble() * zipf_c_;
    const double x = h_integral_inverse(u);
    double kd = std::floor(x + 0.5);
    if (kd < 1.0) kd = 1.0;
    if (kd > static_cast<double>(n)) kd = static_cast<double>(n);
    const std::uint64_t k = static_cast<std::uint64_t>(kd);
    if (kd - x <= zipf_h_x1_ ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace parsim
