// Phase-attributed wall-clock profiling of query execution.
//
// The simulated cost model explains WHERE pages and distance charges go,
// but not where the real CPU time of a query goes — and once the leaf
// sweep is quantized, the residual wall clock hides in descent, frontier
// maintenance and accounting, invisible to page counters. This header
// attributes measured nanoseconds to a small fixed set of phases so the
// end-to-end gap is measurable per layer instead of inferred.
//
// The mechanism mirrors src/io/cost_capture.h: a query (or batch)
// allocates a PhaseAccumulator and installs it with a ScopedPhaseCapture
// for the duration of its traversal; ScopedPhase then times its scope
// into the active accumulator. When no accumulator is installed — the
// default — ScopedPhase costs one thread_local load and no clock reads,
// so instrumented hot paths pay nothing in production.
//
// Unlike cost capture, the accumulator is SHARED across the worker
// threads of a batch (each worker installs the same accumulator), so the
// per-phase sums are totals over all workers; additions are relaxed
// atomics. Wall times are machine-dependent by nature and must never be
// golden-pinned — only the deterministic counters that ride alongside
// them (frontier pushes/pops, per-stage prune counts) are.

#ifndef PARSIM_SRC_UTIL_PHASE_TIMER_H_
#define PARSIM_SRC_UTIL_PHASE_TIMER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace parsim {

/// The phases a k-NN query's wall clock is attributed to.
enum class Phase : unsigned {
  /// Interior-node expansion: MINDIST evaluation and frontier pushes of
  /// child nodes (including the cutoff-skip test).
  kDescent = 0,
  /// Frontier maintenance: heap pops and result emission between node
  /// fetches.
  kFrontier,
  /// Node fetches through the simulated I/O layer (AccessNode: buffer
  /// pool, fault routing, page accounting).
  kIo,
  /// Quantized-sweep query preparation (lattice encode + slack fold,
  /// once per (query, block) pair).
  kSweepPrep,
  /// Cascade stage 1: the prefix-dimension integer kernel pass and its
  /// survivor compaction.
  kSweepPrefix,
  /// Full-dimension integer work: the whole-block SQ8 kernel pass (no
  /// prefix stage) or the per-survivor full-d rechecks (cascade).
  kSweepFull,
  /// Exact re-rank of bound survivors, including emit handling (the
  /// exact sweep of an unquantized block lands here entirely).
  kSweepRerank,
};

inline constexpr std::size_t kNumPhases = 7;

inline const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kDescent:
      return "descent";
    case Phase::kFrontier:
      return "frontier";
    case Phase::kIo:
      return "io";
    case Phase::kSweepPrep:
      return "sweep_prep";
    case Phase::kSweepPrefix:
      return "sweep_prefix";
    case Phase::kSweepFull:
      return "sweep_full";
    case Phase::kSweepRerank:
      return "sweep_rerank";
  }
  return "unknown";
}

/// Per-phase nanosecond totals. Thread-shared: every worker of a batch
/// adds into the same accumulator with relaxed atomics (sums only, no
/// ordering needed).
class PhaseAccumulator {
 public:
  void Add(Phase phase, std::uint64_t nanos) {
    ns_[static_cast<std::size_t>(phase)].fetch_add(nanos,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t Nanos(Phase phase) const {
    return ns_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& n : ns_) n.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumPhases> ns_{};
};

namespace internal_phase {

inline thread_local PhaseAccumulator* g_active_phase = nullptr;

}  // namespace internal_phase

/// The accumulator phase timings on this thread go to, or nullptr when
/// phase profiling is off (the default).
inline PhaseAccumulator* ActivePhaseCapture() {
  return internal_phase::g_active_phase;
}

/// RAII installer of a phase accumulator on the current thread. Nestable
/// (previous restored on destruction); installing nullptr disables
/// profiling for the scope, which lets call sites pass through an
/// optional accumulator unconditionally.
class ScopedPhaseCapture {
 public:
  explicit ScopedPhaseCapture(PhaseAccumulator* accumulator)
      : previous_(internal_phase::g_active_phase) {
    internal_phase::g_active_phase = accumulator;
  }
  ~ScopedPhaseCapture() { internal_phase::g_active_phase = previous_; }

  ScopedPhaseCapture(const ScopedPhaseCapture&) = delete;
  ScopedPhaseCapture& operator=(const ScopedPhaseCapture&) = delete;

 private:
  PhaseAccumulator* previous_;
};

/// Times its scope into the active accumulator's `phase` slot. With no
/// active accumulator this is one thread_local load — no clock reads.
/// Scopes of different phases must not nest (both would book the full
/// overlap); the instrumentation sites keep phase scopes disjoint.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase)
      : acc_(internal_phase::g_active_phase), phase_(phase) {
    if (acc_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (acc_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      acc_->Add(phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        elapsed)
                        .count()));
    }
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseAccumulator* acc_;
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};

/// Plain-double snapshot of an accumulator, in milliseconds, for stats
/// plumbing (QueryStats / ThroughputResult). All zeros when profiling
/// was off. Never golden-pin these — they are measured wall times.
struct PhaseBreakdown {
  std::array<double, kNumPhases> ms{};

  double of(Phase phase) const { return ms[static_cast<std::size_t>(phase)]; }

  double total_ms() const {
    double sum = 0.0;
    for (double m : ms) sum += m;
    return sum;
  }

  PhaseBreakdown& operator+=(const PhaseBreakdown& other) {
    for (std::size_t i = 0; i < kNumPhases; ++i) ms[i] += other.ms[i];
    return *this;
  }

  static PhaseBreakdown From(const PhaseAccumulator& acc) {
    PhaseBreakdown out;
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      out.ms[i] =
          static_cast<double>(acc.Nanos(static_cast<Phase>(i))) * 1e-6;
    }
    return out;
  }
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_PHASE_TIMER_H_
