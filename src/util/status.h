// Status / Result<T> error handling, RocksDB-style: no exceptions on the
// query path; fallible operations return a Status (or Result<T> carrying a
// value) that callers must inspect.

#ifndef PARSIM_SRC_UTIL_STATUS_H_
#define PARSIM_SRC_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/util/check.h"

namespace parsim {

/// Canonical error space, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  /// The data exists but cannot be served right now (e.g. a failed disk
  /// with no healthy replica). Retry after the fault clears.
  kUnavailable,
  /// A per-query deadline or budget expired before the query completed.
  /// The operation may still carry a usable partial answer (the query
  /// service returns the best-first prefix found so far).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    PARSIM_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error; holds T on success, Status on failure.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status by design: both directions
  /// are the natural "return x;" spellings at call sites.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    PARSIM_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Requires ok().
  const T& value() const& {
    PARSIM_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    PARSIM_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    PARSIM_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  /// Requires !ok().
  const Status& status() const {
    PARSIM_CHECK(!ok());
    return std::get<Status>(rep_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(rep_) : fallback;
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_STATUS_H_
