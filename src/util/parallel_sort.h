// Deterministic parallel merge sort over a ThreadPool.
//
// The bulk-load pipeline must produce a bit-identical tree at any thread
// count, so its sorts cannot use anything whose output depends on
// scheduling. ParallelSort guarantees that for a comparator that is a
// STRICT TOTAL order (no two elements equivalent — break ties by index):
// the sorted permutation is then unique, so the serial std::sort fallback
// and the parallel merge ladder agree element for element regardless of
// how many workers the pool has or how its tasks interleave.
//
// Shape: the range splits into a power-of-two number of contiguous chunks
// (boundaries depend only on the element count and the pool size — never
// on timing), each chunk sorts independently via ParallelFor, then
// log2(chunks) rounds of pairwise std::merge ping-pong between the input
// range and one scratch buffer. Built exclusively on
// ThreadPool::ParallelFor, so it inherits its nesting safety: calling
// ParallelSort from inside a pool task cannot deadlock.

#ifndef PARSIM_SRC_UTIL_PARALLEL_SORT_H_
#define PARSIM_SRC_UTIL_PARALLEL_SORT_H_

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

#include "src/util/thread_pool.h"

namespace parsim {

/// Below this many elements the chunk/merge machinery costs more than it
/// saves; ParallelSort falls back to a plain std::sort.
inline constexpr std::size_t kParallelSortCutoff = 1u << 14;

/// Sorts [first, last) by `comp`, fanning out over `pool` when it is
/// non-null and the range is large enough. `comp` must be a strict total
/// order for the deterministic, thread-count-independent result promised
/// above (with a weaker order the result is still sorted, but tied runs
/// may land in a pool-size-dependent arrangement, exactly as they may
/// differ between two std::sort implementations).
template <typename It, typename Comp>
void ParallelSort(ThreadPool* pool, It first, It last, Comp comp) {
  using T = typename std::iterator_traits<It>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (pool == nullptr || n < kParallelSortCutoff) {
    std::sort(first, last, comp);
    return;
  }

  // Power-of-two chunk count: enough chunks to feed every worker (plus
  // the caller) with a little slack for imbalance, but never so many
  // that chunks drop below half the serial cutoff.
  const std::size_t lanes = static_cast<std::size_t>(pool->size()) + 1;
  std::size_t chunks = 1;
  while (chunks < 2 * lanes && n / (chunks * 2) >= kParallelSortCutoff / 2) {
    chunks *= 2;
  }
  if (chunks == 1) {
    std::sort(first, last, comp);
    return;
  }
  // Chunk c covers [bound(c), bound(c+1)): a pure function of (n, chunks).
  const auto bound = [n, chunks](std::size_t c) { return n * c / chunks; };

  pool->ParallelFor(0, chunks, [&](std::size_t c) {
    std::sort(first + static_cast<std::ptrdiff_t>(bound(c)),
              first + static_cast<std::ptrdiff_t>(bound(c + 1)), comp);
  });

  // Merge ladder: each round merges pairs of sorted runs of `width`
  // chunks, alternating between the caller's range and the scratch
  // buffer. std::merge is deterministic (and the total order leaves it
  // no ties to arbitrate), so every round's output is fully determined
  // by its input.
  std::vector<T> scratch(n);
  const auto merge_round = [&](auto src, auto dst, std::size_t width) {
    const std::size_t pairs = chunks / (2 * width);
    pool->ParallelFor(0, pairs, [&](std::size_t p) {
      const auto lo = static_cast<std::ptrdiff_t>(bound(2 * width * p));
      const auto mid = static_cast<std::ptrdiff_t>(bound(2 * width * p + width));
      const auto hi = static_cast<std::ptrdiff_t>(bound(2 * width * (p + 1)));
      std::merge(std::make_move_iterator(src + lo),
                 std::make_move_iterator(src + mid),
                 std::make_move_iterator(src + mid),
                 std::make_move_iterator(src + hi), dst + lo, comp);
    });
  };
  bool in_scratch = false;
  for (std::size_t width = 1; width < chunks; width *= 2) {
    if (in_scratch) {
      merge_round(scratch.data(), first, width);
    } else {
      merge_round(first, scratch.data(), width);
    }
    in_scratch = !in_scratch;
  }
  if (in_scratch) {
    std::move(scratch.begin(), scratch.end(), first);
  }
}

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_PARALLEL_SORT_H_
