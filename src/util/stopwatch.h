// Wall-clock stopwatch for the (real-time) portions of the harness.
// Simulated time comes from src/io/disk_model.h, not from here.

#ifndef PARSIM_SRC_UTIL_STOPWATCH_H_
#define PARSIM_SRC_UTIL_STOPWATCH_H_

#include <chrono>

namespace parsim {

/// Measures elapsed wall time since construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_STOPWATCH_H_
