// Bit-manipulation helpers used throughout the declustering code.
//
// Bucket numbers (Definition 2 of the paper) are bitstrings c_{d-1}...c_0
// stored in unsigned integers, so Hamming distance, per-bit access and
// power-of-two rounding are the vocabulary of the whole core library.

#ifndef PARSIM_SRC_UTIL_BITS_H_
#define PARSIM_SRC_UTIL_BITS_H_

#include <bit>
#include <cstdint>

#include "src/util/check.h"

namespace parsim {

/// Number of set bits.
inline int Popcount(std::uint64_t x) { return std::popcount(x); }

/// Hamming distance between two bitstrings.
inline int HammingDistance(std::uint64_t a, std::uint64_t b) {
  return std::popcount(a ^ b);
}

/// True iff bit `i` of `x` is set. Requires 0 <= i < 64.
inline bool BitSet(std::uint64_t x, int i) {
  PARSIM_DCHECK(i >= 0 && i < 64);
  return ((x >> i) & 1u) != 0;
}

/// Returns `x` with bit `i` set.
inline std::uint64_t WithBit(std::uint64_t x, int i) {
  PARSIM_DCHECK(i >= 0 && i < 64);
  return x | (std::uint64_t{1} << i);
}

/// Returns `x` with bit `i` cleared.
inline std::uint64_t WithoutBit(std::uint64_t x, int i) {
  PARSIM_DCHECK(i >= 0 && i < 64);
  return x & ~(std::uint64_t{1} << i);
}

/// Returns `x` with bit `i` flipped.
inline std::uint64_t FlipBit(std::uint64_t x, int i) {
  PARSIM_DCHECK(i >= 0 && i < 64);
  return x ^ (std::uint64_t{1} << i);
}

/// ceil(log2(x)) for x >= 1; Log2Ceil(1) == 0.
inline int Log2Ceil(std::uint64_t x) {
  PARSIM_CHECK(x >= 1);
  if (x == 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

/// floor(log2(x)) for x >= 1.
inline int Log2Floor(std::uint64_t x) {
  PARSIM_CHECK(x >= 1);
  return 63 - std::countl_zero(x);
}

/// Smallest power of two >= x. The paper's |a| ("rounding to the
/// next-higher power of two", Lemma 6) is NextPow2(a).
inline std::uint64_t NextPow2(std::uint64_t x) {
  if (x <= 1) return 1;
  return std::uint64_t{1} << (64 - std::countl_zero(x - 1));
}

/// True iff x is a power of two (x > 0).
inline bool IsPow2(std::uint64_t x) { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_BITS_H_
