// A fixed-size worker pool for real (wall-clock) parallelism.
//
// The simulator's *accounting* stays deterministic and single-threaded in
// spirit — simulated time is computed from page counters, never measured —
// but executing many queries concurrently needs real threads. This pool is
// shared by the engine's QueryBatch, the federated fan-out and the
// throughput driver, so the process keeps one set of long-lived workers
// instead of spawning threads per query.
//
// ParallelFor is deadlock-free under nesting: the calling thread always
// participates in the loop body, so a worker that issues a nested
// ParallelFor makes progress even when every other worker is busy.

#ifndef PARSIM_SRC_UTIL_THREAD_POOL_H_
#define PARSIM_SRC_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace parsim {

/// A fixed-size pool of worker threads with a shared FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// at least 1). The workers live until destruction.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result; exceptions thrown
  /// by `fn` surface through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs body(i) for every i in [begin, end), distributing iterations
  /// over the workers *and* the calling thread; returns when all
  /// iterations finished. If any body throws, the loop stops handing out
  /// new iterations and the first exception is rethrown here. Safe to
  /// call from inside a pool task (the caller self-executes).
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();
  /// Pops and runs one queued task on the calling thread; false when the
  /// queue was empty. Lets a thread blocked in ParallelFor help drain the
  /// queue instead of idling (work-stealing wait).
  bool RunOneTask();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_THREAD_POOL_H_
