#include "src/util/table.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace parsim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PARSIM_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  PARSIM_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto append_row = [&](std::string* out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out += "  ";
      // Right-align: numeric tables read best column-aligned on the right.
      out->append(width[c] - row[c].size(), ' ');
      *out += row[c];
    }
    *out += '\n';
  };
  std::string out;
  append_row(&out, header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

std::string Table::ToCsv() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void Table::Print(std::FILE* out) const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), out);
}

}  // namespace parsim
