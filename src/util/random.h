// Deterministic pseudo-random number generation for workload synthesis.
//
// Everything in the benchmark harness is seeded, so every figure is exactly
// reproducible run-to-run. The generator is xoshiro256++ (public-domain
// algorithm by Blackman & Vigna), seeded via SplitMix64, which is both fast
// and statistically solid for simulation workloads.

#ifndef PARSIM_SRC_UTIL_RANDOM_H_
#define PARSIM_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace parsim {

/// Deterministic 64-bit PRNG (xoshiro256++).
class Rng {
 public:
  /// Streams with different seeds are independent for practical purposes.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform in [0, 2^64).
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). Requires bound > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Normal with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Exponential with rate lambda (> 0).
  double NextExponential(double lambda);

  /// True with probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Zipf-distributed rank in [1, n] with exponent s (> 0).
  /// Uses rejection-inversion (Hörmann–Derflinger), O(1) per draw.
  std::uint64_t NextZipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  // Marsaglia polar method produces pairs; caches the spare value.
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
  // Cached Zipf sampler state (recomputed when (n, s) changes).
  std::uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  double zipf_h_x1_ = 0.0;
  double zipf_h_n_ = 0.0;
  double zipf_c_ = 0.0;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_RANDOM_H_
