// Plain-text table formatting for the experiment harness.
//
// Every figure benchmark prints its result series as an aligned table (the
// "rows the paper reports") plus an optional CSV dump for plotting.

#ifndef PARSIM_SRC_UTIL_TABLE_H_
#define PARSIM_SRC_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace parsim {

/// An aligned fixed-column text table.
///
/// Usage:
///   Table t({"disks", "speed-up NN", "speed-up 10-NN"});
///   t.AddRow({"2", "1.9", "2.0"});
///   t.Print(stdout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);
  static std::string Int(long long v);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return header_.size(); }

  /// Renders the aligned table (header, rule, rows).
  std::string ToString() const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric cells).
  std::string ToCsv() const;

  void Print(std::FILE* out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_TABLE_H_
