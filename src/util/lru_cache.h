// A weighted LRU cache of keys (no values): the page-buffer bookkeeping
// of the simulated disks. Touch() reports whether the key was resident
// and promotes/inserts it, evicting least-recently-used keys when the
// configured weight capacity is exceeded.

#ifndef PARSIM_SRC_UTIL_LRU_CACHE_H_
#define PARSIM_SRC_UTIL_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/util/check.h"

namespace parsim {

/// An LRU set with per-entry weights (e.g. pages of a supernode).
template <typename Key>
class LruCache {
 public:
  /// `capacity` is the total weight the cache may hold; 0 disables it
  /// (every Touch misses and stores nothing).
  explicit LruCache(std::uint64_t capacity) : capacity_(capacity) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t weight() const { return weight_; }
  std::size_t size() const { return map_.size(); }

  /// Looks up `key`; on hit, promotes it to most-recently-used and
  /// returns true. On miss, inserts it with `entry_weight` (evicting LRU
  /// entries as needed) and returns false. Entries heavier than the
  /// whole capacity are not cached; a resident entry re-touched at a
  /// weight above capacity is dropped and reported as a miss.
  ///
  /// A resident key re-touched at a different `entry_weight` (a
  /// supernode that grew or shrank) is re-admitted at the new weight,
  /// evicting LRU entries if the cache now overflows — the stored
  /// weight always matches the last touch, so the capacity stays exact.
  bool Touch(const Key& key, std::uint64_t entry_weight = 1) {
    PARSIM_DCHECK(entry_weight >= 1);
    auto it = map_.find(key);
    if (it != map_.end()) {
      Entry& entry = it->second;
      if (entry.entry_weight != entry_weight) {
        if (entry_weight > capacity_) {
          weight_ -= entry.entry_weight;
          order_.erase(entry.position);
          map_.erase(it);
          return false;
        }
        weight_ = weight_ - entry.entry_weight + entry_weight;
        entry.entry_weight = entry_weight;
      }
      order_.splice(order_.begin(), order_, entry.position);
      // The touched key sits at the front, so eviction (from the back)
      // can only remove other entries; if it is alone, its weight fits.
      while (weight_ > capacity_) {
        EvictOne();
      }
      return true;
    }
    if (entry_weight > capacity_) return false;
    while (weight_ + entry_weight > capacity_) {
      EvictOne();
    }
    order_.push_front(key);
    map_.emplace(key, Entry{order_.begin(), entry_weight});
    weight_ += entry_weight;
    return false;
  }

  /// True iff `key` is resident (no promotion).
  bool Contains(const Key& key) const { return map_.count(key) != 0; }

  void Clear() {
    map_.clear();
    order_.clear();
    weight_ = 0;
  }

 private:
  struct Entry {
    typename std::list<Key>::iterator position;
    std::uint64_t entry_weight;
  };

  void EvictOne() {
    PARSIM_CHECK(!order_.empty());
    const Key& victim = order_.back();
    auto it = map_.find(victim);
    PARSIM_CHECK(it != map_.end());
    weight_ -= it->second.entry_weight;
    map_.erase(it);
    order_.pop_back();
  }

  std::uint64_t capacity_;
  std::uint64_t weight_ = 0;
  std::list<Key> order_;
  std::unordered_map<Key, Entry> map_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_UTIL_LRU_CACHE_H_
