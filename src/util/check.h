// Lightweight precondition / invariant checking.
//
// PARSIM_CHECK is always on (it guards API misuse and on-disk invariants,
// which must hold in release builds too); PARSIM_DCHECK compiles away in
// NDEBUG builds and is used on hot paths.

#ifndef PARSIM_SRC_UTIL_CHECK_H_
#define PARSIM_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace parsim {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: PARSIM_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] inline void UnreachableReached(const char* file, int line) {
  std::fprintf(stderr, "%s:%d: PARSIM_UNREACHABLE reached\n", file, line);
  std::abort();
}

}  // namespace internal_check
}  // namespace parsim

#define PARSIM_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::parsim::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define PARSIM_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define PARSIM_DCHECK(expr) PARSIM_CHECK(expr)
#endif

// Marks control flow that is impossible unless an enum (or similar) holds
// a corrupt value. Fails loudly at runtime and, being [[noreturn]],
// satisfies -Wreturn-type after an exhaustive switch on every compiler.
#define PARSIM_UNREACHABLE() \
  ::parsim::internal_check::UnreachableReached(__FILE__, __LINE__)

#endif  // PARSIM_SRC_UTIL_CHECK_H_
