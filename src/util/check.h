// Lightweight precondition / invariant checking.
//
// PARSIM_CHECK is always on (it guards API misuse and on-disk invariants,
// which must hold in release builds too); PARSIM_DCHECK compiles away in
// NDEBUG builds and is used on hot paths.

#ifndef PARSIM_SRC_UTIL_CHECK_H_
#define PARSIM_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace parsim {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: PARSIM_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_check
}  // namespace parsim

#define PARSIM_CHECK(expr)                                            \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::parsim::internal_check::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define PARSIM_DCHECK(expr) \
  do {                      \
  } while (false)
#else
#define PARSIM_DCHECK(expr) PARSIM_CHECK(expr)
#endif

#endif  // PARSIM_SRC_UTIL_CHECK_H_
