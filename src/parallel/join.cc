#include "src/parallel/join.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/geometry/sq8.h"
#include "src/index/knn.h"
#include "src/index/leaf_sweep.h"
#include "src/index/node.h"
#include "src/parallel/engine.h"
#include "src/util/check.h"

namespace parsim {

namespace {

/// One non-empty leaf of the join, in ascending node-id order.
struct JoinLeaf {
  NodeId id = kInvalidNodeId;
  Rect mbr;                       // from the parent's entry: no data read
  std::uint32_t parent = 0;       // index into the parent list
  const Node* node = nullptr;     // filled by the fetch stage
  TreeBase::DiskRoute route;      // filled by the fetch stage
  std::uint32_t touches = 0;      // pair-sides landing here (self = 1)
  // Codebook coordinates (quantized joins only): which codebook group
  // this leaf belongs to, its first row in that group's concatenated
  // point range, and how many rows it has.
  std::uint32_t group = 0;
  std::size_t prow = 0;
  std::uint32_t count = 0;
};

/// Shared SQ8 codebook of one leaf group: every row of a contiguous
/// run of leaves, coded ONCE on one lattice, with its fixed-threshold
/// prune cutoff precomputed. A k-NN sweep must re-prepare each query
/// against each block's private lattice because its threshold keeps
/// tightening; the join's threshold never moves, so query codes,
/// bounds, and cutoffs are pure functions of the row — building them
/// per group amortizes all per-pair preparation away, and pairs inside
/// a group sweep stored code rows directly. The Sq8Bound contract is
/// lattice-agnostic, so pruning on the shared (coarser) lattice is
/// just as lossless as pruning on each leaf's own.
struct GroupCodes {
  Sq8Mirror mirror;                  // lattice + code rows, leaf-concat order
  std::vector<std::uint8_t> qcodes;  // every row coded as a query
  std::vector<double> cutoffs;       // PruneCutoff(eps); < 0 => row pruned
  std::vector<Scalar> rows;          // concatenated float rows (rerank)
  std::vector<PointId> ids;          // concatenated point ids
  std::size_t total = 0;
  bool ready = false;
};

/// A level-1 directory node: its MBR prunes all contained leaf pairs at
/// once (parent MBRs contain their children's, so parent-pair MINDIST
/// lower-bounds every contained leaf-pair MINDIST — a lossless
/// prefilter that cuts the L^2 leaf-pair scan to surviving parents).
struct JoinParent {
  Rect mbr;
  std::vector<std::uint32_t> leaves;  // indices into the leaf list
};

/// Per-row-task output, merged serially in row order after the parallel
/// sweep so every counter and the pair list are thread-count invariant.
struct RowOutput {
  LeafSweepStats sweep;
  std::vector<JoinPair> pairs;
  std::uint64_t kernels = 0;
};

void AddSweep(LeafSweepStats* into, const LeafSweepStats& s) {
  into->exact_distances += s.exact_distances;
  into->quantized_pruned += s.quantized_pruned;
  into->base_pruned += s.base_pruned;
  into->prefix_pruned += s.prefix_pruned;
  into->sq8_pruned += s.sq8_pruned;
  into->reranked += s.reranked;
  into->approx_pruned_exactly += s.approx_pruned_exactly;
  into->leaf_bytes_scanned += s.leaf_bytes_scanned;
}

/// Marks a query view whose rows do NOT live in the swept codebook
/// (the owner leaf sits in a different group).
inline constexpr std::size_t kNoOwnRow = static_cast<std::size_t>(-1);

/// Query side of a codebook run: the owner leaf's rows coded on the
/// TARGET group's lattice. Inside the owner's own group the view
/// aliases the group's stored codes/cutoffs/rows (`qrow0` is the
/// owner's first codebook row); for a run in a foreign group the
/// caller codes the owner's rows on that group's lattice once per
/// (owner leaf, foreign group) and `qrow0` is kNoOwnRow.
struct QueryCodes {
  const std::uint8_t* codes = nullptr;  // nq coded query rows
  const double* cutoffs = nullptr;      // nq cutoffs; < 0 => base prune
  const Scalar* rows = nullptr;         // nq float rows (rerank)
  const PointId* ids = nullptr;         // nq point ids
  std::size_t nq = 0;
  std::size_t qrow0 = kNoOwnRow;
};

/// Sweeps one contiguous codebook run for one owner leaf; [begin, end)
/// is the run's candidate row range inside `pc`. When the run starts
/// at the owner itself (begin == qv.qrow0), query row r scans only
/// rows past its own (qrow0 + r + 1 .. end): the owner's self
/// triangle and every merged following pair in one stroke, each
/// unordered pair exactly once. Otherwise all nq query rows scan the
/// full range.
///
/// Candidates at or under a row's precomputed integer cutoff are
/// reranked in float and emitted on `cmp <= eps_cmp` — the bound is
/// lossless, so the emitted set matches the exact sweep's exactly.
///
/// `run_box` is the union of the run's leaf MBRs: a query row whose
/// MINDIST to it exceeds epsilon skips its kernel outright — the
/// point-to-page region filter of the MBR-join literature applied at
/// run grain. It pays for sparse or low-dimensional data where points
/// sit farther than epsilon from a neighboring run's box; at the
/// clustered high-dim bench density nearly all candidates share the
/// owner's cluster and the test passes, costing only ~dim ops per
/// query row (lossless either way).
void SweepCodebookRun(const GroupCodes& pc, const QueryCodes& qv,
                      const Metric& metric, double eps_cmp,
                      const Rect& run_box, std::size_t begin, std::size_t end,
                      RowOutput* out) {
  const std::size_t dim = pc.mirror.dim;
  const std::size_t nq = qv.nq;
  const bool tail = begin == qv.qrow0;
  LeafSweepStats sweep;
  // Survivors accumulate into ONE flat batch of absolute codebook rows
  // (CollectSurvivors writes straight into it, then a single pass
  // rebases the run-relative indices) plus one (query row, count) group
  // per surviving query row — no per-survivor bookkeeping sits between
  // the integer kernels, and the rerank pass walks a dense array.
  struct RerankGroup {
    std::uint32_t g;
    std::uint32_t count;
  };
  thread_local std::vector<std::uint32_t> reductions;
  thread_local std::vector<std::uint32_t> rerank_rows;
  thread_local std::vector<RerankGroup> rerank_groups;
  rerank_groups.clear();
  std::size_t rerank_n = 0;
  const std::uint8_t* codes = pc.mirror.codes.data();
  std::uint64_t streamed = 0;
  const auto collect_row = [&](const std::uint32_t* row, std::size_t width,
                               std::size_t r, std::size_t row_begin) {
    const double dcut = qv.cutoffs[r];
    if (dcut < 0.0) {
      sweep.base_pruned += width;
      return;
    }
    const std::uint32_t cutoff = detail::IntCutoff(dcut);
    detail::GrowTo(rerank_rows, rerank_n + width);
    std::uint32_t* dst = rerank_rows.data() + rerank_n;
    const std::size_t nsurv = detail::CollectSurvivors(row, width, cutoff, dst);
    sweep.sq8_pruned += width - nsurv;
    if (nsurv == 0) return;
    for (std::size_t s = 0; s < nsurv; ++s) {
      dst[s] += static_cast<std::uint32_t>(row_begin);
    }
    rerank_groups.push_back(RerankGroup{static_cast<std::uint32_t>(r),
                                        static_cast<std::uint32_t>(nsurv)});
    rerank_n += nsurv;
  };
  {
    ScopedPhase phase(Phase::kSweepFull);
    if (tail && end == qv.qrow0 + nq) {
      // Pure self pair: the symmetric kernel fills the strict upper
      // triangle only, each entry bit-identical to Sq8Block's.
      detail::GrowTo(reductions, nq * nq);
      metric.Sq8BlockSelf(qv.codes, codes + qv.qrow0 * dim, nq, dim,
                          reductions.data());
      for (std::size_t r = 0; r + 1 < nq; ++r) {
        const std::size_t width = nq - r - 1;
        streamed += width;  // the triangle kernel streamed every row
        collect_row(reductions.data() + r * nq + r + 1, width, r,
                    qv.qrow0 + r + 1);
      }
    } else {
      for (std::size_t r = 0; r < nq; ++r) {
        const std::size_t row_begin = tail ? qv.qrow0 + r + 1 : begin;
        if (row_begin >= end) continue;
        const std::size_t width = end - row_begin;
        const double dcut = qv.cutoffs[r];
        if (dcut < 0.0) {
          // The row prunes on its base term alone: its kernel call is
          // skipped outright, so none of its code bytes stream.
          sweep.base_pruned += width;
          continue;
        }
        double box_dist = 0.0;
        if (MinDistExceeds(run_box, PointView(qv.rows + r * dim, dim), metric,
                           eps_cmp, &box_dist)) {
          // The row's point sits more than epsilon from the run's box:
          // no candidate in [row_begin, end) can pair with it, and its
          // kernel is skipped like a base-term prune.
          sweep.base_pruned += width;
          continue;
        }
        streamed += width;
        // The fused kernel compares reductions against the cutoff
        // in-register and appends survivor indices straight into the
        // flat batch — same set CollectSurvivors would pick from an
        // Sq8Many pass, without storing the reduction stream.
        detail::GrowTo(rerank_rows, rerank_n + width);
        std::uint32_t* dst = rerank_rows.data() + rerank_n;
        const std::size_t nsurv =
            metric.Sq8ManyUnder(qv.codes + r * dim, codes + row_begin * dim,
                                width, dim, detail::IntCutoff(dcut), dst);
        sweep.sq8_pruned += width - nsurv;
        if (nsurv == 0) continue;
        for (std::size_t s = 0; s < nsurv; ++s) {
          dst[s] += static_cast<std::uint32_t>(row_begin);
        }
        rerank_groups.push_back(RerankGroup{static_cast<std::uint32_t>(r),
                                            static_cast<std::uint32_t>(nsurv)});
        rerank_n += nsurv;
      }
    }
  }
  {
    ScopedPhase phase(Phase::kSweepRerank);
    const ComparableFn exact = metric.comparable_fn();
    const Scalar* cand_base = pc.rows.data();
    std::size_t at = 0;
    for (const RerankGroup& grp : rerank_groups) {
      const Scalar* q = qv.rows + static_cast<std::size_t>(grp.g) * dim;
      for (std::uint32_t k = 0; k < grp.count; ++k, ++at) {
        // The candidate float rows land all over the group range, so
        // on big joins each rerank is a cache miss; touching a few rows
        // ahead hides that latency behind the current pair kernel.
        if (at + 4 < rerank_n) {
          __builtin_prefetch(cand_base + rerank_rows[at + 4] * dim);
        }
        const std::size_t c = rerank_rows[at];
        const double cmp = exact(q, cand_base + c * dim, dim);
        if (cmp <= eps_cmp) {
          PointId a = qv.ids[grp.g];
          PointId b = pc.ids[c];
          if (a > b) std::swap(a, b);
          out->pairs.push_back(JoinPair{a, b, metric.FromComparable(cmp)});
        }
      }
    }
    sweep.reranked = rerank_n;
  }
  sweep.quantized_pruned = sweep.base_pruned + sweep.sq8_pruned;
  sweep.exact_distances = sweep.reranked;
  sweep.leaf_bytes_scanned =
      streamed * dim + sweep.reranked * dim * sizeof(Scalar);
  AddSweep(&out->sweep, sweep);
}

}  // namespace

SimilarityJoin::SimilarityJoin(const TreeBase& tree, const Metric& metric)
    : tree_(tree), metric_(metric) {}

std::vector<JoinPair> SimilarityJoin::Run(double epsilon,
                                          QueryCostAccumulator* acc,
                                          ThreadPool* pool,
                                          PhaseAccumulator* phases,
                                          JoinStats* stats) const {
  PARSIM_CHECK(epsilon >= 0.0);
  PARSIM_CHECK(acc != nullptr);
  PARSIM_CHECK(stats != nullptr);
  ScopedPhaseCapture phase_capture(phases);
  const double eps_cmp = metric_.ToComparable(epsilon);
  const std::size_t dim = tree_.dim();

  // ---- Stage 1: enumerate the leaves. One descent reads (and charges)
  // every directory page once; leaf ids and MBRs come from their
  // parents' entries, so no data page is touched yet.
  std::vector<JoinLeaf> leaves;
  std::vector<JoinParent> parents;
  if (tree_.root_id() == kInvalidNodeId) return {};
  {
    ScopedPhase phase(Phase::kDescent);
    ScopedCostCapture capture(acc);
    const Node& root = tree_.AccessNode(tree_.root_id());
    if (root.IsLeaf()) {
      // Height-1 tree: the root IS the single leaf. Its MBR has no
      // parent entry to come from, but with one leaf there is exactly
      // one (self) block pair and the MBR test is moot.
      if (!root.entries.empty()) {
        parents.push_back(JoinParent{root.ComputeMbr(dim), {0}});
        JoinLeaf leaf;
        leaf.id = tree_.root_id();
        leaf.mbr = root.ComputeMbr(dim);
        leaves.push_back(std::move(leaf));
      }
    } else {
      std::vector<const Node*> stack = {&root};
      while (!stack.empty()) {
        const Node* node = stack.back();
        stack.pop_back();
        if (node->level == 1) {
          const std::uint32_t p = static_cast<std::uint32_t>(parents.size());
          parents.push_back(JoinParent{node->ComputeMbr(dim), {}});
          for (const NodeEntry& e : node->entries) {
            JoinLeaf leaf;
            leaf.id = e.child;
            leaf.mbr = e.rect;
            leaf.parent = p;
            leaves.push_back(std::move(leaf));
          }
        } else {
          for (const NodeEntry& e : node->entries) {
            stack.push_back(&tree_.AccessNode(e.child));
          }
        }
      }
    }
  }
  const std::size_t num_leaves = leaves.size();
  stats->leaf_blocks = num_leaves;
  stats->block_pairs_considered =
      static_cast<std::uint64_t>(num_leaves) * (num_leaves + 1) / 2;
  if (num_leaves == 0) return {};

  // Ascending node id defines the leaf index (deterministic whatever
  // order the descent produced), then parent lists are rebuilt on it.
  std::sort(leaves.begin(), leaves.end(),
            [](const JoinLeaf& a, const JoinLeaf& b) { return a.id < b.id; });
  for (std::uint32_t i = 0; i < num_leaves; ++i) {
    parents[leaves[i].parent].leaves.push_back(i);
  }

  // ---- Stage 2: prune block pairs by MBR MINDIST. Self pairs always
  // survive (MINDIST(i, i) == 0 <= any eps >= 0); cross pairs are
  // tested leaf-against-leaf only when their parents' MBRs pass first.
  // Row i owns every surviving pair (i, j), j >= i — Özkural &
  // Aykanat's 1-D owner-computes decomposition: each pair is swept by
  // exactly one row task.
  std::vector<std::vector<std::uint32_t>> row_pairs(num_leaves);
  std::uint64_t swept = 0;
  {
    ScopedPhase phase(Phase::kDescent);
    for (std::uint32_t i = 0; i < num_leaves; ++i) {
      row_pairs[i].push_back(i);
      ++swept;
    }
    const std::size_t num_parents = parents.size();
    for (std::size_t p = 0; p < num_parents; ++p) {
      for (std::size_t q = p; q < num_parents; ++q) {
        if (MinDistComparable(parents[p].mbr, parents[q].mbr, metric_) >
            eps_cmp) {
          continue;
        }
        for (const std::uint32_t li : parents[p].leaves) {
          for (const std::uint32_t lj : parents[q].leaves) {
            if (p == q && lj <= li) continue;  // each unordered pair once
            if (MinDistComparable(leaves[li].mbr, leaves[lj].mbr, metric_) >
                eps_cmp) {
              continue;
            }
            row_pairs[std::min(li, lj)].push_back(std::max(li, lj));
            ++swept;
          }
        }
      }
    }
    for (std::vector<std::uint32_t>& row : row_pairs) {
      std::sort(row.begin(), row.end());
    }
  }
  stats->block_pairs_swept = swept;
  stats->block_pairs_pruned = stats->block_pairs_considered - swept;

  // ---- Stage 3: fetch each distinct leaf once, ascending node id, the
  // leader paying the (possibly faulted or buffered) read; every
  // further pair-side touching the leaf books coalesced pages against
  // the same disk, exactly like a coalesced batch round's followers.
  for (std::size_t i = 0; i < num_leaves; ++i) {
    for (const std::uint32_t j : row_pairs[i]) {
      ++leaves[i].touches;
      if (j != static_cast<std::uint32_t>(i)) ++leaves[j].touches;
    }
  }
  {
    ScopedPhase phase(Phase::kIo);
    ScopedCostCapture capture(acc);
    for (JoinLeaf& leaf : leaves) {
      leaf.node = &tree_.AccessNode(leaf.id);
      leaf.route = tree_.ResolveRoute(*leaf.node);
    }
  }
  for (const JoinLeaf& leaf : leaves) {
    PARSIM_CHECK(leaf.touches >= 1);
    const std::uint64_t extra = leaf.touches - 1;
    if (extra == 0) continue;
    const std::uint64_t pages = extra * leaf.node->pages;
    DiskStats& s = acc->slot(leaf.route.disk->id());
    s.coalesced_pages += pages;
    if (leaf.route.failover) s.replica_pages_read += pages;
    if (leaf.route.unavailable) s.unavailable_pages += pages;
  }

  // ---- Stage 3.5 (quantized trees only): cut the sorted leaf list
  // into contiguous groups of roughly kGroupRowBudget rows and build
  // each group's shared codebook. Leaf order follows the bulk load's
  // space-filling pack, so a bounded contiguous run covers a compact
  // region and its lattice stays tight regardless of how many level-1
  // parents a dense region spans (at scale one cluster spreads over
  // several parents, which is why parents are the wrong codebook
  // unit). Groups are independent pure functions of their fetched rows
  // and the fixed epsilon, so the builds fan out over the pool and the
  // result cannot depend on scheduling.
  std::vector<GroupCodes> codebooks;
  {
    bool quantized = false;
    for (const JoinLeaf& leaf : leaves) {
      if (leaf.node->entries.empty()) continue;
      quantized = tree_.LeafBlockOf(*leaf.node).has_sq8;
      break;
    }
    if (quantized) {
      std::size_t total_rows = 0;
      for (const JoinLeaf& leaf : leaves) {
        total_rows += leaf.node->entries.size();
      }
      // ~64 groups at scale keeps lattices near cluster extent while
      // the floor stops tiny joins from degenerating into per-leaf
      // codebooks (wide merged runs need wide groups).
      const std::size_t budget =
          std::max<std::size_t>(4096, total_rows / 64);
      std::vector<std::pair<std::uint32_t, std::uint32_t>> group_ranges;
      {
        std::uint32_t gbegin = 0;
        std::size_t in_group = 0;
        for (std::uint32_t i = 0; i < num_leaves; ++i) {
          const std::size_t c = leaves[i].node->entries.size();
          if (in_group > 0 && in_group + c > budget) {
            group_ranges.emplace_back(gbegin, i);
            gbegin = i;
            in_group = 0;
          }
          leaves[i].group = static_cast<std::uint32_t>(group_ranges.size());
          in_group += c;
        }
        group_ranges.emplace_back(gbegin, static_cast<std::uint32_t>(num_leaves));
      }
      codebooks.resize(group_ranges.size());
      const auto build_group = [&](std::size_t g) {
        ScopedPhaseCapture worker_capture(phases);
        ScopedPhase phase(Phase::kSweepPrep);
        GroupCodes& pc = codebooks[g];
        std::size_t total = 0;
        for (std::uint32_t li = group_ranges[g].first;
             li < group_ranges[g].second; ++li) {
          JoinLeaf& leaf = leaves[li];
          leaf.prow = total;
          leaf.count = static_cast<std::uint32_t>(leaf.node->entries.size());
          total += leaf.count;
        }
        if (total == 0) return;
        pc.rows.resize(total * dim);
        pc.ids.resize(total);
        for (std::uint32_t li = group_ranges[g].first;
             li < group_ranges[g].second; ++li) {
          const JoinLeaf& leaf = leaves[li];
          if (leaf.count == 0) continue;
          const LeafBlock& b = tree_.LeafBlockOf(*leaf.node);
          std::copy(b.coords.begin(), b.coords.end(),
                    pc.rows.data() + leaf.prow * dim);
          std::copy(b.ids.begin(), b.ids.end(), pc.ids.data() + leaf.prow);
        }
        pc.mirror.BuildFrom(pc.rows.data(), total, dim);
        pc.qcodes.resize(total * dim);
        std::vector<Sq8Bound> bounds(total);
        PrepareSq8QueryMany(pc.mirror, pc.rows.data(), total, metric_.kind(),
                            pc.qcodes.data(), bounds.data());
        pc.cutoffs.resize(total);
        for (std::size_t r = 0; r < total; ++r) {
          pc.cutoffs[r] = bounds[r].PruneCutoff(eps_cmp);
        }
        pc.total = total;
        pc.ready = true;
      };
      if (pool != nullptr && pool->size() > 1) {
        pool->ParallelFor(0, codebooks.size(), build_group);
      } else {
        for (std::size_t g = 0; g < codebooks.size(); ++g) build_group(g);
      }
    }
  }

  // ---- Stage 4: sweep the rows over the pool. Rows are handed out
  // round-robin across their owning disks so the declustered load (and
  // with it the simulated makespan) stays even; per-row outputs land in
  // private slots and are merged in row order afterwards, so results
  // and counters cannot depend on the interleaving.
  std::vector<std::uint32_t> order(num_leaves);
  {
    std::vector<std::vector<std::uint32_t>> by_disk;
    for (std::uint32_t i = 0; i < num_leaves; ++i) {
      const std::size_t d = leaves[i].route.disk->id();
      if (by_disk.size() <= d) by_disk.resize(d + 1);
      by_disk[d].push_back(i);
    }
    std::size_t at = 0;
    for (std::size_t round = 0; at < num_leaves; ++round) {
      for (const std::vector<std::uint32_t>& bucket : by_disk) {
        if (round < bucket.size()) order[at++] = bucket[round];
      }
    }
  }
  std::vector<RowOutput> rows(num_leaves);
  const auto run_row = [&](std::size_t slot) {
    const std::uint32_t i = order[slot];
    ScopedPhaseCapture worker_capture(phases);
    RowOutput& out = rows[i];
    const Node& node_i = *leaves[i].node;
    if (node_i.entries.empty()) return;
    const LeafBlock& bi = tree_.LeafBlockOf(node_i);
    thread_local std::vector<LeafSweepStats> member_stats;
    // Foreign-group query prep, cached per (owner row, target group):
    // js is sorted and groups are contiguous leaf ranges, so every pair
    // landing in one foreign group is handled while `prepped` holds it
    // — the owner's ~leaf-capacity rows are coded on that group's
    // lattice exactly once however many runs the group splits into.
    thread_local std::vector<std::uint8_t> fq_codes;
    thread_local std::vector<Sq8Bound> fq_bounds;
    thread_local std::vector<double> fq_cutoffs;
    std::int64_t prepped = -1;
    const std::vector<std::uint32_t>& js = row_pairs[i];
    for (std::size_t t = 0; t < js.size();) {
      const std::uint32_t j = js[t];
      // Quantized pairs ride the target group's codebook: maximal sets
      // of pairs whose code rows sit back to back merge into ONE run,
      // so each query row's kernel and prune scan span every merged
      // pair (wide rows amortize the per-call overhead the ~60-row
      // per-pair shape would pay hundreds of times over).
      if (!codebooks.empty() && codebooks[leaves[j].group].ready) {
        const std::uint32_t g = leaves[j].group;
        const GroupCodes& pc = codebooks[g];
        const std::size_t begin = leaves[j].prow;
        std::size_t end = begin + leaves[j].count;
        Rect run_box = leaves[j].mbr;
        std::size_t t2 = t + 1;
        while (t2 < js.size()) {
          const JoinLeaf& next = leaves[js[t2]];
          if (next.group != g || next.prow != end) break;
          run_box = Rect::Union(run_box, next.mbr);
          end += next.count;
          ++t2;
        }
        QueryCodes qv;
        if (g == leaves[i].group) {
          const std::size_t qrow0 = leaves[i].prow;
          qv = QueryCodes{pc.qcodes.data() + qrow0 * dim,
                          pc.cutoffs.data() + qrow0,
                          pc.rows.data() + qrow0 * dim,
                          pc.ids.data() + qrow0,
                          bi.count,
                          qrow0};
        } else {
          if (prepped != static_cast<std::int64_t>(g)) {
            ScopedPhase prep_phase(Phase::kSweepPrep);
            fq_codes.resize(bi.count * dim);
            fq_bounds.resize(bi.count);
            fq_cutoffs.resize(bi.count);
            PrepareSq8QueryMany(pc.mirror, bi.coords.data(), bi.count,
                                metric_.kind(), fq_codes.data(),
                                fq_bounds.data());
            for (std::size_t r = 0; r < bi.count; ++r) {
              fq_cutoffs[r] = fq_bounds[r].PruneCutoff(eps_cmp);
            }
            prepped = static_cast<std::int64_t>(g);
          }
          qv = QueryCodes{fq_codes.data(), fq_cutoffs.data(),
                          bi.coords.data(), bi.ids.data(), bi.count,
                          kNoOwnRow};
        }
        SweepCodebookRun(pc, qv, metric_, eps_cmp, run_box, begin, end, &out);
        out.kernels += t2 - t;
        t = t2;
        continue;
      }
      if (j == i) {
        const LeafSweepStats s = SweepLeafBlockSelf(
            bi, metric_, eps_cmp,
            [&](std::size_t li, std::size_t lj, double cmp) {
              if (cmp <= eps_cmp) {
                PointId a = bi.ids[li];
                PointId b = bi.ids[lj];
                if (a > b) std::swap(a, b);
                out.pairs.push_back(
                    JoinPair{a, b, metric_.FromComparable(cmp)});
              }
            });
        AddSweep(&out.sweep, s);
        ++out.kernels;
        ++t;
        continue;
      }
      const Node& node_j = *leaves[j].node;
      if (node_j.entries.empty()) {
        ++t;
        continue;
      }
      const LeafBlock& bj = tree_.LeafBlockOf(node_j);
      // Cross pair: the owner row's points are the "queries" swept
      // against block j — one many-to-many kernel, SQ8 cascade and all,
      // with the join's fixed threshold (it never tightens, unlike a
      // k-NN heap bound).
      member_stats.assign(bi.count, LeafSweepStats{});
      SweepLeafBlockMany(
          bj, bi.coords.data(), bi.count, metric_,
          [eps_cmp](std::size_t) { return eps_cmp; },
          [&](std::size_t m, std::size_t idx, double cmp) {
            if (cmp <= eps_cmp) {
              PointId a = bi.ids[m];
              PointId b = bj.ids[idx];
              if (a > b) std::swap(a, b);
              out.pairs.push_back(JoinPair{a, b, metric_.FromComparable(cmp)});
            }
          },
          member_stats.data());
      for (const LeafSweepStats& ms : member_stats) AddSweep(&out.sweep, ms);
      ++out.kernels;
      ++t;
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->ParallelFor(0, num_leaves, run_row);
  } else {
    for (std::size_t slot = 0; slot < num_leaves; ++slot) run_row(slot);
  }

  // ---- Merge: serial, in row order. Sweep CPU and counters are
  // charged to the disk owning the row's leaf (owner-computes: the
  // compute sits next to the data it swept), one block-kernel
  // invocation per swept pair.
  std::vector<JoinPair> pairs;
  {
    std::size_t total = 0;
    for (const RowOutput& out : rows) total += out.pairs.size();
    pairs.reserve(total);
  }
  for (std::size_t i = 0; i < num_leaves; ++i) {
    const RowOutput& out = rows[i];
    DiskStats& s = acc->slot(leaves[i].route.disk->id());
    s.distance_computations += out.sweep.exact_distances;
    s.quantized_pruned += out.sweep.quantized_pruned;
    s.base_pruned += out.sweep.base_pruned;
    s.prefix_pruned += out.sweep.prefix_pruned;
    s.sq8_pruned += out.sweep.sq8_pruned;
    s.reranked += out.sweep.reranked;
    s.leaf_bytes_scanned += out.sweep.leaf_bytes_scanned;
    s.block_kernel_invocations += out.kernels;
    pairs.insert(pairs.end(), out.pairs.begin(), out.pairs.end());
    stats->exact_distances += out.sweep.exact_distances;
    stats->quantized_pruned += out.sweep.quantized_pruned;
    stats->base_pruned += out.sweep.base_pruned;
    stats->prefix_pruned += out.sweep.prefix_pruned;
    stats->sq8_pruned += out.sweep.sq8_pruned;
    stats->reranked += out.sweep.reranked;
    stats->leaf_bytes_scanned += out.sweep.leaf_bytes_scanned;
    stats->block_kernel_invocations += out.kernels;
  }
  std::sort(pairs.begin(), pairs.end());
  stats->pairs_emitted = pairs.size();
  return pairs;
}

std::vector<JoinPair> BruteForceSelfJoin(const PointSet& points,
                                         double epsilon,
                                         const Metric& metric) {
  PARSIM_CHECK(epsilon >= 0.0);
  const std::size_t n = points.size();
  const std::size_t dim = points.dim();
  const double eps_cmp = metric.ToComparable(epsilon);
  std::vector<JoinPair> out;
  if (n < 2) return out;
  // Row-tail one-to-many sweeps instead of n^2/2 pair calls: same
  // values (ComparableMany is bit-identical to Comparable), ~SIMD-rate.
  std::vector<double> dists(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t tail = n - i - 1;
    metric.ComparableMany(points[i], points.data() + (i + 1) * dim, tail, dim,
                          dists.data());
    for (std::size_t t = 0; t < tail; ++t) {
      if (dists[t] <= eps_cmp) {
        out.push_back(JoinPair{static_cast<PointId>(i),
                               static_cast<PointId>(i + 1 + t),
                               metric.FromComparable(dists[t])});
      }
    }
  }
  return out;  // (i, j) emitted in lexicographic order already
}

JoinResult ParallelSearchEngine::SelfJoin(double epsilon,
                                          const JoinOptions& options) const {
  PARSIM_CHECK(options_.architecture == Architecture::kSharedTree);
  PARSIM_CHECK(!trees_.empty());
  JoinResult result;
  QueryCostAccumulator acc(disks_.size() + 1);
  PhaseAccumulator phase_acc;
  const bool profile = options_.profile_phases || options.profile_phases;
  const unsigned threads =
      options.threads != 0 ? options.threads : options_.parallel_workers;
  std::shared_ptr<ThreadPool> pool;
  if (threads > 1) pool = EnsurePool(threads);
  const SimilarityJoin join(*trees_[0], options_.metric);
  result.pairs = join.Run(epsilon, &acc, pool.get(),
                          profile ? &phase_acc : nullptr, &result.stats);
  // Pages, fault tags, and simulated times derive from the captured
  // charges exactly as a query's do, so the join's accounting composes
  // with buffering, replicas, and fault plans for free.
  const QueryStats qs = StatsFromAccumulator(acc);
  JoinStats& js = result.stats;
  js.total_pages = qs.total_pages;
  js.directory_pages = qs.directory_pages;
  js.max_pages = qs.max_pages;
  js.buffer_hit_pages = qs.buffer_hit_pages;
  js.coalesced_reads = qs.coalesced_reads;
  js.replica_pages = qs.replica_pages;
  js.failed_read_attempts = qs.failed_read_attempts;
  js.unavailable_pages = qs.unavailable_pages;
  js.degraded = qs.degraded;
  js.parallel_ms = qs.parallel_ms;
  js.sum_ms = qs.sum_ms;
  js.balance = qs.balance;
  if (profile) js.phases = PhaseBreakdown::From(phase_acc);
  MergeAccumulator(acc);
  return result;
}

}  // namespace parsim
