#include "src/parallel/engine.h"

#include <algorithm>
#include <limits>

#include "src/core/near_optimal.h"
#include "src/index/rstar_tree.h"
#include "src/index/xtree.h"
#include "src/parallel/batch_knn.h"
#include "src/parallel/route_memo.h"
#include "src/util/check.h"

namespace parsim {

ParallelSearchEngine::ParallelSearchEngine(
    std::size_t dim, std::unique_ptr<Declusterer> declusterer,
    EngineOptions options)
    : dim_(dim),
      declusterer_(std::move(declusterer)),
      options_(options),
      disks_(declusterer_ ? declusterer_->num_disks() : 1,
             options.disk_parameters),
      host_(static_cast<DiskId>(declusterer_ ? declusterer_->num_disks() : 1),
            options.disk_parameters) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(declusterer_ != nullptr);
  if (options_.buffer_pages_per_disk > 0) {
    // One sharded pool for the whole engine: shard i buffers disk i, the
    // last shard buffers the query host's directory pages. Shard locks
    // are per disk, so concurrent queries only contend when they touch
    // the same simulated disk at the same instant.
    buffer_pool_ = std::make_unique<BufferPool>(
        disks_.size() + 1, options_.buffer_pages_per_disk);
    disks_.AttachBufferPool(buffer_pool_.get());
    host_.AttachBufferPool(buffer_pool_.get(), disks_.size());
  }
  if (options_.enable_replicas &&
      options_.architecture == Architecture::kSharedTree) {
    // Replicas follow the same bucket geometry the primaries use, so a
    // near-optimal (or recursive) declusterer's split values carry over;
    // other declusterers fall back to midpoint buckets, and ReplicaFor
    // nudges off the actual primary either way.
    const auto* near_optimal =
        dynamic_cast<const NearOptimalDeclusterer*>(declusterer_.get());
    replicas_ = std::make_unique<ReplicaPlacement>(
        near_optimal != nullptr ? near_optimal->bucketizer()
                                : Bucketizer(dim_),
        static_cast<std::uint32_t>(disks_.size()));
  }
  switch (options_.architecture) {
    case Architecture::kSharedTree:
      // One global tree. Structural (build-time) charges go to the host;
      // query-time charges are routed per node by the resolver below.
      trees_.push_back(MakeTree(&host_));
      trees_[0]->set_node_disk_resolver([this](const Node& node) {
        if (!node.IsLeaf()) return TreeBase::DiskRoute{&host_};
        return RouteLeaf(node);
      });
      break;
    case Architecture::kFederatedTrees:
      trees_.reserve(disks_.size());
      for (std::size_t i = 0; i < disks_.size(); ++i) {
        trees_.push_back(MakeTree(&disks_.disk(static_cast<DiskId>(i))));
      }
      break;
    case Architecture::kFederatedScan:
      scan_partitions_.reserve(disks_.size());
      scan_ids_.resize(disks_.size());
      for (std::size_t i = 0; i < disks_.size(); ++i) {
        scan_partitions_.emplace_back(dim_);
      }
      break;
  }
  if (options_.quantized_leaf_blocks) {
    // Tree architectures only: kFederatedScan sweeps packed pages, not
    // leaf blocks, so the loop is empty there and the flag is a no-op.
    for (auto& t : trees_) {
      t->set_quantized_leaf_blocks(true);
      t->set_sq8_prefix_stage(options_.cascade_prefix_stage);
    }
  }
  if (options_.approx.enabled && options_.approx.epsilon > 0.0) {
    PARSIM_CHECK(options_.approx.epsilon < 1e9);  // catch garbage knobs
    // One comparable-scale factor serves both mechanisms: ToComparable
    // is multiplicative for every supported kind ((1+eps)^2 on L2's
    // squared scale, (1+eps) on L1/Lmax), so dividing a comparable
    // bound by it divides the real-distance bound by exactly (1+eps).
    const double factor =
        options_.metric.ToComparable(1.0 + options_.approx.epsilon);
    if (options_.approx.early_termination) approx_.node_factor = factor;
    if (options_.approx.relax_bounds) approx_.sweep_factor = factor;
  }
}

ParallelSearchEngine::~ParallelSearchEngine() = default;

std::unique_ptr<TreeBase> ParallelSearchEngine::MakeTree(
    SimulatedDisk* disk) const {
  if (options_.tree_kind == TreeKind::kRStarTree) {
    TreeOptions tree_options;
    tree_options.bulk_load_fill = options_.bulk_load_fill;
    return std::make_unique<RStarTree>(dim_, disk, tree_options);
  }
  XTreeOptions xtree_options;
  xtree_options.bulk_load_fill = options_.bulk_load_fill;
  return std::make_unique<XTree>(dim_, disk, xtree_options);
}

std::uint32_t ParallelSearchEngine::num_disks() const {
  return static_cast<std::uint32_t>(disks_.size());
}

const TreeBase& ParallelSearchEngine::tree(DiskId disk) const {
  PARSIM_CHECK(options_.architecture != Architecture::kFederatedScan);
  if (options_.architecture == Architecture::kSharedTree) {
    return *trees_[0];
  }
  PARSIM_CHECK(disk < trees_.size());
  return *trees_[disk];
}

DiskId ParallelSearchEngine::DiskOfLeaf(const Node& leaf) const {
  // A data page is "the bucket" of the paper: it is assigned to a disk
  // by the region it covers. The page's MBR center stands in for the
  // bucket coordinates; id-based declusterers (round robin) use the
  // node id as the item index.
  PARSIM_DCHECK(leaf.IsLeaf());
  const Point center = leaf.ComputeMbr(dim_).Center();
  return declusterer_->DiskOfPoint(center, leaf.id);
}

void ParallelSearchEngine::InvalidateLeafRoutes() {
  if (options_.architecture != Architecture::kSharedTree || trees_.empty()) {
    return;
  }
  const std::size_t n = trees_[0]->num_nodes();
  // make_unique value-initializes, so every slot starts invalid (0).
  leaf_routes_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  leaf_routes_size_ = n;
}

TreeBase::DiskRoute ParallelSearchEngine::RouteLeaf(const Node& leaf) const {
  PARSIM_DCHECK(leaf.IsLeaf());
  // The declustering color and replica bucket are pure functions of the
  // leaf's MBR center; the memoized word skips the per-access MBR fold.
  // Fault checks below stay live — only geometry is cached. Packing
  // (and its field-width guards) lives in src/parallel/route_memo.h.
  std::atomic<std::uint64_t>* slot =
      leaf.id < leaf_routes_size_ ? &leaf_routes_[leaf.id] : nullptr;
  const std::uint64_t packed =
      slot != nullptr ? slot->load(std::memory_order_relaxed) : 0;
  DiskId primary_id;
  BucketId bucket;
  if (route_memo::IsValid(packed)) {
    primary_id = static_cast<DiskId>(route_memo::PrimaryOf(packed));
    bucket = static_cast<BucketId>(route_memo::BucketOf(packed));
  } else {
    const Point center = leaf.ComputeMbr(dim_).Center();
    primary_id = declusterer_->DiskOfPoint(center, leaf.id);
    bucket = replicas_ != nullptr ? replicas_->bucketizer().BucketOf(center)
                                  : BucketId{0};
    const std::uint64_t word = route_memo::Pack(primary_id, bucket);
    if (slot != nullptr && word != 0) {
      slot->store(word, std::memory_order_relaxed);
    }
  }
  SimulatedDisk& primary = disks_.disk(primary_id);
  if (!primary.is_failed()) return TreeBase::DiskRoute{&primary};
  if (replicas_ != nullptr) {
    const DiskId replica_id = replicas_->ReplicaFor(bucket, primary_id);
    SimulatedDisk& replica = disks_.disk(replica_id);
    if (!replica.is_failed()) {
      TreeBase::DiskRoute route{&replica};
      route.failover = true;
      route.retry_attempts = options_.max_read_retries;
      return route;
    }
  }
  TreeBase::DiskRoute route{&primary};
  route.unavailable = true;
  return route;
}

bool ParallelSearchEngine::SkipFailedDisk(DiskId d,
                                          std::uint64_t pages) const {
  SimulatedDisk& disk = disks_.disk(d);
  if (!disk.is_failed()) return false;
  disk.RecordUnavailable(pages);
  return true;
}

void ParallelSearchEngine::SetFaultPlan(const FaultPlan& plan) {
  disks_.ApplyFaultPlan(plan);
}

void ParallelSearchEngine::ClearFaults() { disks_.ClearFaults(); }

Status ParallelSearchEngine::Build(const PointSet& points) {
  if (points.dim() != dim_) {
    return Status::InvalidArgument("point set dimension mismatch");
  }
  if (size_ != 0) {
    return Status::FailedPrecondition("Build may only be called once");
  }
  // Parallel builds reuse the shared query pool; BulkLoad is
  // bit-identical to its serial self at any thread count, so opting in
  // costs nothing but wall clock.
  std::shared_ptr<ThreadPool> build_pool;
  if (options_.bulk_load && options_.parallel_workers > 1) {
    build_pool = EnsurePool(options_.parallel_workers);
  }
  if (options_.architecture == Architecture::kFederatedScan) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      Status s = Insert(points[i], static_cast<PointId>(i));
      if (!s.ok()) return s;
    }
  } else if (options_.architecture == Architecture::kSharedTree) {
    if (options_.bulk_load) {
      Status s = trees_[0]->BulkLoad(points, nullptr, build_pool.get());
      if (!s.ok()) return s;
    } else {
      for (std::size_t i = 0; i < points.size(); ++i) {
        Status s = trees_[0]->Insert(points[i], static_cast<PointId>(i));
        if (!s.ok()) return s;
      }
    }
    size_ = points.size();
  } else if (options_.bulk_load) {
    // Partition into per-disk point sets, then Hilbert-bulk-load each
    // with the original ids.
    std::vector<PointSet> partitions;
    partitions.reserve(disks_.size());
    std::vector<std::vector<PointId>> ids(disks_.size());
    for (std::size_t d = 0; d < disks_.size(); ++d) {
      partitions.emplace_back(dim_);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      const DiskId disk =
          declusterer_->DiskOfPoint(points[i], static_cast<PointId>(i));
      PARSIM_CHECK(disk < disks_.size());
      partitions[disk].Add(points[i]);
      ids[disk].push_back(static_cast<PointId>(i));
    }
    for (std::size_t d = 0; d < disks_.size(); ++d) {
      if (partitions[d].empty()) continue;
      Status s = trees_[d]->BulkLoad(partitions[d], &ids[d], build_pool.get());
      if (!s.ok()) return s;
    }
    size_ = points.size();
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      Status s = Insert(points[i], static_cast<PointId>(i));
      if (!s.ok()) return s;
    }
  }
  build_stats_ = disks_.TotalStats();
  build_stats_ += host_.stats();
  disks_.ResetStats();
  host_.ResetStats();
  InvalidateLeafRoutes();
  if (build_pool != nullptr) {
    // Parallel post-build warm-up: leaf SoA blocks (with SQ8/prefix
    // mirrors when enabled) and the memoized leaf routes are derived
    // state that queries otherwise build lazily — fan both out over the
    // build pool so the first query wave measures steady state. Neither
    // charges pages or CPU, so build_stats_ (captured above) and every
    // later query stat are unaffected.
    for (const auto& t : trees_) t->WarmLeafBlocks(build_pool.get());
    PrewarmLeafRoutes(build_pool.get());
  }
  return Status::Ok();
}

void ParallelSearchEngine::PrewarmLeafRoutes(ThreadPool* pool) const {
  if (options_.architecture != Architecture::kSharedTree || trees_.empty()) {
    return;
  }
  const TreeBase& tree = *trees_[0];
  const std::size_t n = tree.num_nodes();
  const auto warm = [&](std::size_t id) {
    const Node& node = tree.PeekNode(static_cast<NodeId>(id));
    if (!node.IsLeaf() || node.entries.empty()) return;
    (void)RouteLeaf(node);
  };
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(0, n, warm);
  } else {
    for (std::size_t i = 0; i < n; ++i) warm(i);
  }
}

Status ParallelSearchEngine::Insert(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (options_.architecture == Architecture::kSharedTree) {
    Status s = trees_[0]->Insert(p, id);
    if (!s.ok()) return s;
    InvalidateLeafRoutes();
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < scan_partitions_.size());
    scan_partitions_[disk].Add(p);
    scan_ids_[disk].push_back(id);
  } else {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < trees_.size());
    Status s = trees_[disk]->Insert(p, id);
    if (!s.ok()) return s;
  }
  ++size_;
  return Status::Ok();
}

Status ParallelSearchEngine::Remove(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  Status s = Status::Ok();
  if (options_.architecture == Architecture::kSharedTree) {
    s = trees_[0]->Delete(p, id);
    // Even a NotFound delete may have reorganized nodes on its way down
    // (condensation re-inserts); drop the memoized routes either way.
    InvalidateLeafRoutes();
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < scan_partitions_.size());
    PointSet& part = scan_partitions_[disk];
    std::vector<PointId>& ids = scan_ids_[disk];
    s = Status::NotFound("record not stored");
    for (std::size_t i = 0; i < part.size(); ++i) {
      if (ids[i] != id) continue;
      bool equal = true;
      const PointView stored = part[i];
      for (std::size_t j = 0; j < dim_; ++j) {
        if (stored[j] != p[j]) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      // Swap-with-last removal; PointSet has no erase, so rebuild the
      // tail in place.
      const std::size_t last = part.size() - 1;
      if (i != last) {
        const PointView moved = part[last];
        std::vector<Scalar> buffer(moved.begin(), moved.end());
        std::copy(buffer.begin(), buffer.end(), part.Mutable(i).begin());
        ids[i] = ids[last];
      }
      part.PopBack();
      ids.pop_back();
      s = Status::Ok();
      break;
    }
  } else {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < trees_.size());
    s = trees_[disk]->Delete(p, id);
  }
  if (s.ok()) --size_;
  return s;
}

KnnResult ParallelSearchEngine::ScanQuery(PointView query,
                                          std::size_t k) const {
  KnnResult merged;
  const std::size_t per_page = LeafCapacityPerPage(dim_);
  for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
    const PointSet& part = scan_partitions_[d];
    if (part.empty()) continue;
    const std::uint64_t pages = (part.size() + per_page - 1) / per_page;
    if (SkipFailedDisk(static_cast<DiskId>(d), pages)) continue;
    SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
    disk.ReadDataPages(pages);
    disk.ChargeDistanceComputations(part.size());
    KnnResult local = BruteForceKnn(part, query, k, options_.metric);
    for (Neighbor& n : local) n.id = scan_ids_[d][n.id];
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

KnnResult ParallelSearchEngine::RunKnn(const TreeBase& tree, PointView query,
                                       std::size_t k) const {
  if (options_.knn_algorithm == KnnAlgorithm::kRkv) {
    // RKV stays exact: the approximate tier is specified (and tested)
    // for the HS best-first search only.
    return RkvKnn(tree, query, k, options_.metric);
  }
  return HsKnn(tree, query, k, options_.metric, approx_);
}

QueryStats ParallelSearchEngine::StatsFromAccumulator(
    const QueryCostAccumulator& acc) const {
  const std::size_t n = disks_.size();
  const DiskParameters& params = options_.disk_parameters;
  const DiskStats& host = acc.slot(n);
  const double host_ms = ElapsedMs(host, params);

  QueryStats stats;
  stats.directory_pages = host.directory_pages_read;
  stats.buffer_hit_pages = host.buffer_hit_pages;
  stats.coalesced_reads = host.coalesced_pages;
  stats.block_kernel_invocations = host.block_kernel_invocations;
  stats.quantized_pruned = host.quantized_pruned;
  stats.base_pruned = host.base_pruned;
  stats.prefix_pruned = host.prefix_pruned;
  stats.sq8_pruned = host.sq8_pruned;
  stats.reranked = host.reranked;
  stats.leaf_bytes_scanned = host.leaf_bytes_scanned;
  stats.frontier_pushes = host.frontier_pushes;
  stats.frontier_pops = host.frontier_pops;
  stats.cutoff_skipped_nodes = host.cutoff_skipped_nodes;
  stats.approx_skipped_nodes = host.approx_skipped_nodes;
  stats.approx_pruned_exactly = host.approx_pruned_exactly;
  stats.pages_per_disk.reserve(n);
  double max_ms = 0.0;
  double sum_ms = 0.0;
  double max_healthy_ms = 0.0;
  for (std::size_t d = 0; d < n; ++d) {
    const DiskStats& s = acc.slot(d);
    // Actual service time scales with the disk's health (slow disks take
    // slow_factor times longer); the healthy figure ignores faults and
    // retry penalties, so healthy == actual bit-for-bit on a clean array.
    const double healthy_ms = HealthyElapsedMs(s, params);
    const double ms =
        ElapsedMs(s, params) * disks_.disk(static_cast<DiskId>(d)).time_scale();
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
    max_healthy_ms = std::max(max_healthy_ms, healthy_ms);
    const std::uint64_t pages = s.TotalPagesRead();
    stats.max_pages = std::max(stats.max_pages, pages);
    stats.total_pages += pages;
    stats.directory_pages += s.directory_pages_read;
    stats.buffer_hit_pages += s.buffer_hit_pages;
    stats.replica_pages += s.replica_pages_read;
    stats.failed_read_attempts += s.failed_read_attempts;
    stats.unavailable_pages += s.unavailable_pages;
    stats.coalesced_reads += s.coalesced_pages;
    stats.block_kernel_invocations += s.block_kernel_invocations;
    stats.quantized_pruned += s.quantized_pruned;
    stats.base_pruned += s.base_pruned;
    stats.prefix_pruned += s.prefix_pruned;
    stats.sq8_pruned += s.sq8_pruned;
    stats.reranked += s.reranked;
    stats.leaf_bytes_scanned += s.leaf_bytes_scanned;
    stats.frontier_pushes += s.frontier_pushes;
    stats.frontier_pops += s.frontier_pops;
    stats.cutoff_skipped_nodes += s.cutoff_skipped_nodes;
    stats.approx_skipped_nodes += s.approx_skipped_nodes;
    stats.approx_pruned_exactly += s.approx_pruned_exactly;
    stats.pages_per_disk.push_back(pages);
  }
  stats.parallel_ms = host_ms + max_ms;
  stats.healthy_parallel_ms = HealthyElapsedMs(host, params) + max_healthy_ms;
  stats.sum_ms = host_ms + sum_ms;
  stats.degraded = stats.replica_pages > 0 || stats.failed_read_attempts > 0 ||
                   stats.unavailable_pages > 0 ||
                   stats.parallel_ms != stats.healthy_parallel_ms;
  stats.balance =
      stats.max_pages == 0
          ? 1.0
          : (static_cast<double>(stats.total_pages) / static_cast<double>(n)) /
                static_cast<double>(stats.max_pages);
  return stats;
}

void ParallelSearchEngine::MergeAccumulator(
    const QueryCostAccumulator& acc) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  for (std::size_t d = 0; d < disks_.size(); ++d) {
    disks_.disk(static_cast<DiskId>(d)).MergeStats(acc.slot(d));
  }
  host_.MergeStats(acc.slot(disks_.size()));
}

std::shared_ptr<ThreadPool> ParallelSearchEngine::EnsurePool(
    unsigned threads) const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr || pool_->size() < threads) {
    // Grow by replacement; previous users hold their own shared_ptr, so
    // an in-flight batch on the old pool finishes undisturbed.
    pool_ = std::make_shared<ThreadPool>(
        std::max(threads, pool_ != nullptr ? pool_->size() : 0u));
  }
  return pool_;
}

std::vector<PointId> ParallelSearchEngine::RangeQuery(
    const Rect& query, QueryStats* stats) const {
  PARSIM_CHECK(query.dim() == dim_);
  QueryCostAccumulator acc(disks_.size() + 1);
  std::vector<PointId> out;
  {
    ScopedCostCapture capture(&acc);
    if (options_.architecture == Architecture::kSharedTree) {
      out = trees_[0]->RangeQuery(query);
    } else if (options_.architecture == Architecture::kFederatedScan) {
      const std::size_t per_page = LeafCapacityPerPage(dim_);
      for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
        const PointSet& part = scan_partitions_[d];
        if (part.empty()) continue;
        const std::uint64_t pages = (part.size() + per_page - 1) / per_page;
        if (SkipFailedDisk(static_cast<DiskId>(d), pages)) continue;
        SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
        disk.ReadDataPages(pages);
        for (std::size_t i = 0; i < part.size(); ++i) {
          if (query.Contains(part[i])) out.push_back(scan_ids_[d][i]);
        }
      }
    } else {
      for (std::size_t d = 0; d < trees_.size(); ++d) {
        if (trees_[d]->empty()) continue;
        // A failed partition loses its whole data set, so the charge is
        // the tree's actual data-page count — the same number the scan
        // architecture books for its partition (parity is pinned by
        // tests/parallel_degraded_query_test.cc).
        if (SkipFailedDisk(static_cast<DiskId>(d), trees_[d]->DataPages())) {
          continue;
        }
        const std::vector<PointId> local = trees_[d]->RangeQuery(query);
        out.insert(out.end(), local.begin(), local.end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  if (stats != nullptr) *stats = StatsFromAccumulator(acc);
  MergeAccumulator(acc);
  return out;
}

std::vector<PointId> ParallelSearchEngine::PartialMatchQuery(
    const std::vector<std::pair<std::size_t, Scalar>>& fixed,
    Scalar tolerance, QueryStats* stats) const {
  PARSIM_CHECK(tolerance >= 0);
  // Unfixed dimensions span a generous cover of the data space; the
  // engine does not constrain coordinates to [0,1], so use wide bounds.
  std::vector<Scalar> lo(dim_, std::numeric_limits<Scalar>::lowest());
  std::vector<Scalar> hi(dim_, std::numeric_limits<Scalar>::max());
  for (const auto& [dim_index, value] : fixed) {
    PARSIM_CHECK(dim_index < dim_);
    // value +- tolerance overflows Scalar at its extremes (lowest() -
    // anything is already -inf), and infinite Rect edges feed NaN (inf -
    // inf) into the branch-free SquaredMinDist. Widen to double — which
    // holds any Scalar sum exactly enough — and clamp back to the finite
    // Scalar range; stored points are finite, so the clamped window
    // matches the ideal one on every candidate.
    const double v = static_cast<double>(value);
    const double t = static_cast<double>(tolerance);
    lo[dim_index] = static_cast<Scalar>(std::max(
        v - t, static_cast<double>(std::numeric_limits<Scalar>::lowest())));
    hi[dim_index] = static_cast<Scalar>(std::min(
        v + t, static_cast<double>(std::numeric_limits<Scalar>::max())));
  }
  return RangeQuery(Rect(std::move(lo), std::move(hi)), stats);
}

KnnResult ParallelSearchEngine::SimilarityQuery(PointView query,
                                                double radius,
                                                QueryStats* stats) const {
  PARSIM_CHECK(query.size() == dim_);
  PARSIM_CHECK(radius >= 0.0);
  QueryCostAccumulator acc(disks_.size() + 1);
  KnnResult merged;
  {
    ScopedCostCapture capture(&acc);
    if (options_.architecture == Architecture::kSharedTree) {
      merged = BallQuery(*trees_[0], query, radius, options_.metric);
    } else if (options_.architecture == Architecture::kFederatedScan) {
      const std::size_t per_page = LeafCapacityPerPage(dim_);
      for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
        const PointSet& part = scan_partitions_[d];
        if (part.empty()) continue;
        const std::uint64_t pages = (part.size() + per_page - 1) / per_page;
        if (SkipFailedDisk(static_cast<DiskId>(d), pages)) continue;
        SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
        disk.ReadDataPages(pages);
        disk.ChargeDistanceComputations(part.size());
        KnnResult local =
            BruteForceBallQuery(part, query, radius, options_.metric);
        for (Neighbor& n : local) n.id = scan_ids_[d][n.id];
        merged.insert(merged.end(), local.begin(), local.end());
      }
    } else {
      for (std::size_t d = 0; d < trees_.size(); ++d) {
        if (trees_[d]->empty()) continue;
        // Unavailability is charged at the partition's full data size,
        // matching the scan architecture (see RangeQuery above).
        if (SkipFailedDisk(static_cast<DiskId>(d), trees_[d]->DataPages())) {
          continue;
        }
        const KnnResult local =
            BallQuery(*trees_[d], query, radius, options_.metric);
        merged.insert(merged.end(), local.begin(), local.end());
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (stats != nullptr) *stats = StatsFromAccumulator(acc);
  MergeAccumulator(acc);
  return merged;
}

KnnResult ParallelSearchEngine::Query(PointView query, std::size_t k,
                                      QueryStats* stats) const {
  PARSIM_CHECK(query.size() == dim_);
  PARSIM_CHECK(k >= 1);
  QueryCostAccumulator acc(disks_.size() + 1);
  PhaseAccumulator phase_acc;
  PhaseAccumulator* phase_sink =
      options_.profile_phases ? &phase_acc : nullptr;
  KnnResult merged;
  {
    ScopedCostCapture capture(&acc);
    ScopedPhaseCapture phase_capture(phase_sink);
    if (options_.architecture == Architecture::kSharedTree) {
      merged = RunKnn(*trees_[0], query, k);
    } else if (options_.architecture == Architecture::kFederatedScan) {
      merged = ScanQuery(query, k);
    } else {
      // Fan out: every disk answers the query over its local tree; merge
      // the per-disk top-k lists. With parallel_workers > 1, the local
      // searches run on the shared pool — each worker installs this
      // query's accumulator and only writes the slot of its own disk, so
      // the accounting stays exact.
      std::vector<KnnResult> local(trees_.size());
      const unsigned workers =
          std::min<unsigned>(options_.parallel_workers,
                             static_cast<unsigned>(trees_.size()));
      if (workers > 1) {
        EnsurePool(workers)->ParallelFor(
            0, trees_.size(), [&](std::size_t i) {
              ScopedCostCapture worker_capture(&acc);
              ScopedPhaseCapture worker_phases(phase_sink);
              if (trees_[i]->empty()) return;
              if (SkipFailedDisk(static_cast<DiskId>(i),
                                 trees_[i]->DataPages())) {
                return;
              }
              local[i] = RunKnn(*trees_[i], query, k);
            });
      } else {
        for (std::size_t i = 0; i < trees_.size(); ++i) {
          if (trees_[i]->empty()) continue;
          if (SkipFailedDisk(static_cast<DiskId>(i),
                             trees_[i]->DataPages())) {
            continue;
          }
          local[i] = RunKnn(*trees_[i], query, k);
        }
      }
      for (const KnnResult& r : local) {
        merged.insert(merged.end(), r.begin(), r.end());
      }
      std::sort(merged.begin(), merged.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  if (a.distance != b.distance) return a.distance < b.distance;
                  return a.id < b.id;
                });
      if (merged.size() > k) merged.resize(k);
    }
  }
  if (stats != nullptr) {
    *stats = StatsFromAccumulator(acc);
    if (phase_sink != nullptr) {
      stats->phases = PhaseBreakdown::From(phase_acc);
    }
  }
  MergeAccumulator(acc);
  return merged;
}

Status ParallelSearchEngine::TryQuery(PointView query, std::size_t k,
                                      KnnResult* result,
                                      QueryStats* stats) const {
  PARSIM_CHECK(result != nullptr);
  QueryStats local;
  *result = Query(query, k, &local);
  if (stats != nullptr) *stats = local;
  if (local.unavailable_pages > 0) {
    return Status::Unavailable(
        "query touched a failed disk with no healthy replica");
  }
  return Status::Ok();
}

void ParallelSearchEngine::WarmLeafBlocks(unsigned threads) const {
  std::shared_ptr<ThreadPool> pool;
  if (threads > 1) pool = EnsurePool(threads);
  for (const auto& t : trees_) t->WarmLeafBlocks(pool.get());
}

std::vector<KnnResult> ParallelSearchEngine::QueryBatch(
    const PointSet& queries, std::size_t k, std::vector<QueryStats>* stats,
    unsigned threads, unsigned* effective_threads,
    PhaseBreakdown* phases) const {
  PARSIM_CHECK(queries.empty() || queries.dim() == dim_);
  std::vector<KnnResult> results(queries.size());
  if (stats != nullptr) stats->assign(queries.size(), QueryStats{});
  if (effective_threads != nullptr) *effective_threads = 1;
  if (phases != nullptr) *phases = PhaseBreakdown{};
  if (queries.empty()) return results;

  unsigned effective = threads != 0 ? threads : options_.parallel_workers;
  effective = std::max(1u, std::min<unsigned>(
                               effective,
                               static_cast<unsigned>(queries.size())));
  // The coalesced path exists only where one shared tree serves every
  // query with the pausable HS search; other configurations fall back to
  // the per-query fan-out below.
  const bool coalesce = options_.coalesced_batch &&
                        options_.architecture == Architecture::kSharedTree &&
                        options_.knn_algorithm == KnnAlgorithm::kHs;
  // Deterministic replay: an LRU buffer makes per-query costs depend on
  // the access history, so this mode serializes buffered batches to keep
  // their per-query numbers reproducible. The default executes them on
  // the sharded BufferPool — results and aggregate buffer accounting are
  // exact under any interleaving (see the header contract). The coalesced
  // scheduler is exempt: its page-fetch order is serial and sorted, so
  // its per-query numbers are reproducible at any thread count.
  if (options_.buffer_pages_per_disk > 0 && options_.deterministic_batch &&
      !coalesce) {
    effective = 1;
  }
  if (effective_threads != nullptr) *effective_threads = effective;

  if (coalesce) {
    std::vector<QueryCostAccumulator> accs;
    accs.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      accs.emplace_back(disks_.size() + 1);
    }
    std::shared_ptr<ThreadPool> pool;
    if (effective > 1) pool = EnsurePool(effective);
    // Coalesced rounds interleave every query, so the phase breakdown is
    // batch-level only; per-query stats[i].phases stays zero here.
    PhaseAccumulator phase_acc;
    results = CoalescedHsBatch(
        *trees_[0], queries, k, options_.metric, &accs, pool.get(),
        options_.profile_phases ? &phase_acc : nullptr, approx_);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (stats != nullptr) (*stats)[i] = StatsFromAccumulator(accs[i]);
      MergeAccumulator(accs[i]);
    }
    if (phases != nullptr && options_.profile_phases) {
      *phases = PhaseBreakdown::From(phase_acc);
    }
    return results;
  }

  // The per-query path takes the batch breakdown as the sum of the
  // per-query ones; that needs per-query stats even when the caller did
  // not ask for them.
  std::vector<QueryStats> local_stats;
  std::vector<QueryStats>* stats_out = stats;
  if (stats_out == nullptr && phases != nullptr) {
    local_stats.assign(queries.size(), QueryStats{});
    stats_out = &local_stats;
  }
  const auto run_one = [&](std::size_t i) {
    results[i] =
        Query(queries[i], k, stats_out != nullptr ? &(*stats_out)[i] : nullptr);
  };
  if (effective <= 1) {
    for (std::size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    EnsurePool(effective)->ParallelFor(0, queries.size(), run_one);
  }
  if (phases != nullptr && stats_out != nullptr) {
    for (const QueryStats& s : *stats_out) *phases += s.phases;
  }
  return results;
}

}  // namespace parsim
