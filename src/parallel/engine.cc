#include "src/parallel/engine.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <thread>

#include "src/index/rstar_tree.h"
#include "src/index/xtree.h"
#include "src/util/check.h"

namespace parsim {

ParallelSearchEngine::ParallelSearchEngine(
    std::size_t dim, std::unique_ptr<Declusterer> declusterer,
    EngineOptions options)
    : dim_(dim),
      declusterer_(std::move(declusterer)),
      options_(options),
      disks_(declusterer_ ? declusterer_->num_disks() : 1,
             options.disk_parameters),
      host_(static_cast<DiskId>(declusterer_ ? declusterer_->num_disks() : 1),
            options.disk_parameters) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(declusterer_ != nullptr);
  if (options_.buffer_pages_per_disk > 0) {
    for (std::size_t i = 0; i < disks_.size(); ++i) {
      disks_.disk(static_cast<DiskId>(i))
          .ConfigureBuffer(options_.buffer_pages_per_disk);
    }
    host_.ConfigureBuffer(options_.buffer_pages_per_disk);
  }
  switch (options_.architecture) {
    case Architecture::kSharedTree:
      // One global tree. Structural (build-time) charges go to the host;
      // query-time charges are routed per node by the resolver below.
      trees_.push_back(MakeTree(&host_));
      trees_[0]->set_node_disk_resolver([this](const Node& node) {
        if (!node.IsLeaf()) return &host_;
        return &disks_.disk(DiskOfLeaf(node));
      });
      break;
    case Architecture::kFederatedTrees:
      trees_.reserve(disks_.size());
      for (std::size_t i = 0; i < disks_.size(); ++i) {
        trees_.push_back(MakeTree(&disks_.disk(static_cast<DiskId>(i))));
      }
      break;
    case Architecture::kFederatedScan:
      scan_partitions_.reserve(disks_.size());
      scan_ids_.resize(disks_.size());
      for (std::size_t i = 0; i < disks_.size(); ++i) {
        scan_partitions_.emplace_back(dim_);
      }
      break;
  }
}

ParallelSearchEngine::~ParallelSearchEngine() = default;

std::unique_ptr<TreeBase> ParallelSearchEngine::MakeTree(
    SimulatedDisk* disk) const {
  if (options_.tree_kind == TreeKind::kRStarTree) {
    return std::make_unique<RStarTree>(dim_, disk);
  }
  return std::make_unique<XTree>(dim_, disk);
}

std::uint32_t ParallelSearchEngine::num_disks() const {
  return static_cast<std::uint32_t>(disks_.size());
}

const TreeBase& ParallelSearchEngine::tree(DiskId disk) const {
  PARSIM_CHECK(options_.architecture != Architecture::kFederatedScan);
  if (options_.architecture == Architecture::kSharedTree) {
    return *trees_[0];
  }
  PARSIM_CHECK(disk < trees_.size());
  return *trees_[disk];
}

DiskId ParallelSearchEngine::DiskOfLeaf(const Node& leaf) const {
  // A data page is "the bucket" of the paper: it is assigned to a disk
  // by the region it covers. The page's MBR center stands in for the
  // bucket coordinates; id-based declusterers (round robin) use the
  // node id as the item index.
  PARSIM_DCHECK(leaf.IsLeaf());
  const Point center = leaf.ComputeMbr(dim_).Center();
  return declusterer_->DiskOfPoint(center, leaf.id);
}

Status ParallelSearchEngine::Build(const PointSet& points) {
  if (points.dim() != dim_) {
    return Status::InvalidArgument("point set dimension mismatch");
  }
  if (size_ != 0) {
    return Status::FailedPrecondition("Build may only be called once");
  }
  if (options_.architecture == Architecture::kFederatedScan) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      Status s = Insert(points[i], static_cast<PointId>(i));
      if (!s.ok()) return s;
    }
  } else if (options_.architecture == Architecture::kSharedTree) {
    if (options_.bulk_load) {
      Status s = trees_[0]->BulkLoad(points);
      if (!s.ok()) return s;
    } else {
      for (std::size_t i = 0; i < points.size(); ++i) {
        Status s = trees_[0]->Insert(points[i], static_cast<PointId>(i));
        if (!s.ok()) return s;
      }
    }
    size_ = points.size();
  } else if (options_.bulk_load) {
    // Partition into per-disk point sets, then Hilbert-bulk-load each
    // with the original ids.
    std::vector<PointSet> partitions;
    partitions.reserve(disks_.size());
    std::vector<std::vector<PointId>> ids(disks_.size());
    for (std::size_t d = 0; d < disks_.size(); ++d) {
      partitions.emplace_back(dim_);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      const DiskId disk =
          declusterer_->DiskOfPoint(points[i], static_cast<PointId>(i));
      PARSIM_CHECK(disk < disks_.size());
      partitions[disk].Add(points[i]);
      ids[disk].push_back(static_cast<PointId>(i));
    }
    for (std::size_t d = 0; d < disks_.size(); ++d) {
      if (partitions[d].empty()) continue;
      Status s = trees_[d]->BulkLoad(partitions[d], &ids[d]);
      if (!s.ok()) return s;
    }
    size_ = points.size();
  } else {
    for (std::size_t i = 0; i < points.size(); ++i) {
      Status s = Insert(points[i], static_cast<PointId>(i));
      if (!s.ok()) return s;
    }
  }
  build_stats_ = disks_.TotalStats();
  build_stats_ += host_.stats();
  disks_.ResetStats();
  host_.ResetStats();
  return Status::Ok();
}

Status ParallelSearchEngine::Insert(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (options_.architecture == Architecture::kSharedTree) {
    Status s = trees_[0]->Insert(p, id);
    if (!s.ok()) return s;
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < scan_partitions_.size());
    scan_partitions_[disk].Add(p);
    scan_ids_[disk].push_back(id);
  } else {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < trees_.size());
    Status s = trees_[disk]->Insert(p, id);
    if (!s.ok()) return s;
  }
  ++size_;
  return Status::Ok();
}

Status ParallelSearchEngine::Remove(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  Status s = Status::Ok();
  if (options_.architecture == Architecture::kSharedTree) {
    s = trees_[0]->Delete(p, id);
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < scan_partitions_.size());
    PointSet& part = scan_partitions_[disk];
    std::vector<PointId>& ids = scan_ids_[disk];
    s = Status::NotFound("record not stored");
    for (std::size_t i = 0; i < part.size(); ++i) {
      if (ids[i] != id) continue;
      bool equal = true;
      const PointView stored = part[i];
      for (std::size_t j = 0; j < dim_; ++j) {
        if (stored[j] != p[j]) {
          equal = false;
          break;
        }
      }
      if (!equal) continue;
      // Swap-with-last removal; PointSet has no erase, so rebuild the
      // tail in place.
      const std::size_t last = part.size() - 1;
      if (i != last) {
        const PointView moved = part[last];
        std::vector<Scalar> buffer(moved.begin(), moved.end());
        std::copy(buffer.begin(), buffer.end(), part.Mutable(i).begin());
        ids[i] = ids[last];
      }
      part.PopBack();
      ids.pop_back();
      s = Status::Ok();
      break;
    }
  } else {
    const DiskId disk = declusterer_->DiskOfPoint(p, id);
    PARSIM_CHECK(disk < trees_.size());
    s = trees_[disk]->Delete(p, id);
  }
  if (s.ok()) --size_;
  return s;
}

KnnResult ParallelSearchEngine::ScanQuery(PointView query,
                                          std::size_t k) const {
  KnnResult merged;
  const std::size_t per_page = LeafCapacityPerPage(dim_);
  for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
    const PointSet& part = scan_partitions_[d];
    if (part.empty()) continue;
    SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
    disk.ReadDataPages((part.size() + per_page - 1) / per_page);
    disk.ChargeDistanceComputations(part.size());
    KnnResult local = BruteForceKnn(part, query, k, options_.metric);
    for (Neighbor& n : local) n.id = scan_ids_[d][n.id];
    merged.insert(merged.end(), local.begin(), local.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

KnnResult ParallelSearchEngine::RunKnn(const TreeBase& tree, PointView query,
                                       std::size_t k) const {
  if (options_.knn_algorithm == KnnAlgorithm::kRkv) {
    return RkvKnn(tree, query, k, options_.metric);
  }
  return HsKnn(tree, query, k, options_.metric);
}

void ParallelSearchEngine::FillStats(QueryStats* stats) const {
  stats->parallel_ms = host_.ElapsedMs() + disks_.ParallelElapsedMs();
  stats->sum_ms = host_.ElapsedMs() + disks_.SequentialElapsedMs();
  stats->max_pages = disks_.MaxPagesRead();
  stats->total_pages = disks_.TotalPagesRead();
  stats->directory_pages = host_.stats().directory_pages_read +
                           disks_.TotalStats().directory_pages_read;
  stats->buffer_hit_pages = host_.stats().buffer_hit_pages +
                            disks_.TotalStats().buffer_hit_pages;
  stats->balance = disks_.BalanceRatio();
  stats->pages_per_disk.clear();
  for (std::size_t d = 0; d < disks_.size(); ++d) {
    stats->pages_per_disk.push_back(
        disks_.disk(static_cast<DiskId>(d)).stats().TotalPagesRead());
  }
}

std::vector<PointId> ParallelSearchEngine::RangeQuery(
    const Rect& query, QueryStats* stats) const {
  PARSIM_CHECK(query.dim() == dim_);
  disks_.ResetStats();
  host_.ResetStats();
  std::vector<PointId> out;
  if (options_.architecture == Architecture::kSharedTree) {
    out = trees_[0]->RangeQuery(query);
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const std::size_t per_page = LeafCapacityPerPage(dim_);
    for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
      const PointSet& part = scan_partitions_[d];
      if (part.empty()) continue;
      SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
      disk.ReadDataPages((part.size() + per_page - 1) / per_page);
      for (std::size_t i = 0; i < part.size(); ++i) {
        if (query.Contains(part[i])) out.push_back(scan_ids_[d][i]);
      }
    }
  } else {
    for (const auto& tree : trees_) {
      if (tree->empty()) continue;
      const std::vector<PointId> local = tree->RangeQuery(query);
      out.insert(out.end(), local.begin(), local.end());
    }
  }
  std::sort(out.begin(), out.end());
  if (stats != nullptr) FillStats(stats);
  return out;
}

std::vector<PointId> ParallelSearchEngine::PartialMatchQuery(
    const std::vector<std::pair<std::size_t, Scalar>>& fixed,
    Scalar tolerance, QueryStats* stats) const {
  PARSIM_CHECK(tolerance >= 0);
  // Unfixed dimensions span a generous cover of the data space; the
  // engine does not constrain coordinates to [0,1], so use wide bounds.
  std::vector<Scalar> lo(dim_, std::numeric_limits<Scalar>::lowest());
  std::vector<Scalar> hi(dim_, std::numeric_limits<Scalar>::max());
  for (const auto& [dim_index, value] : fixed) {
    PARSIM_CHECK(dim_index < dim_);
    lo[dim_index] = value - tolerance;
    hi[dim_index] = value + tolerance;
  }
  return RangeQuery(Rect(std::move(lo), std::move(hi)), stats);
}

KnnResult ParallelSearchEngine::SimilarityQuery(PointView query,
                                                double radius,
                                                QueryStats* stats) const {
  PARSIM_CHECK(query.size() == dim_);
  PARSIM_CHECK(radius >= 0.0);
  disks_.ResetStats();
  host_.ResetStats();
  KnnResult merged;
  if (options_.architecture == Architecture::kSharedTree) {
    merged = BallQuery(*trees_[0], query, radius, options_.metric);
  } else if (options_.architecture == Architecture::kFederatedScan) {
    const std::size_t per_page = LeafCapacityPerPage(dim_);
    for (std::size_t d = 0; d < scan_partitions_.size(); ++d) {
      const PointSet& part = scan_partitions_[d];
      if (part.empty()) continue;
      SimulatedDisk& disk = disks_.disk(static_cast<DiskId>(d));
      disk.ReadDataPages((part.size() + per_page - 1) / per_page);
      disk.ChargeDistanceComputations(part.size());
      KnnResult local =
          BruteForceBallQuery(part, query, radius, options_.metric);
      for (Neighbor& n : local) n.id = scan_ids_[d][n.id];
      merged.insert(merged.end(), local.begin(), local.end());
    }
  } else {
    for (const auto& tree : trees_) {
      if (tree->empty()) continue;
      const KnnResult local = BallQuery(*tree, query, radius, options_.metric);
      merged.insert(merged.end(), local.begin(), local.end());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Neighbor& a, const Neighbor& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.id < b.id;
            });
  if (stats != nullptr) FillStats(stats);
  return merged;
}

KnnResult ParallelSearchEngine::Query(PointView query, std::size_t k,
                                      QueryStats* stats) const {
  PARSIM_CHECK(query.size() == dim_);
  PARSIM_CHECK(k >= 1);
  disks_.ResetStats();
  host_.ResetStats();

  KnnResult merged;
  if (options_.architecture == Architecture::kSharedTree) {
    merged = RunKnn(*trees_[0], query, k);
  } else if (options_.architecture == Architecture::kFederatedScan) {
    merged = ScanQuery(query, k);
  } else {
    // Fan out: every disk answers the query over its local tree; merge
    // the per-disk top-k lists. With parallel_workers > 1, the local
    // searches run on real threads — each worker only touches its own
    // tree and its own SimulatedDisk, so the accounting stays exact.
    std::vector<KnnResult> local(trees_.size());
    const unsigned workers =
        std::min<unsigned>(options_.parallel_workers,
                           static_cast<unsigned>(trees_.size()));
    if (workers > 1) {
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
          for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= trees_.size()) return;
            if (!trees_[i]->empty()) {
              local[i] = RunKnn(*trees_[i], query, k);
            }
          }
        });
      }
      for (std::thread& t : pool) t.join();
    } else {
      for (std::size_t i = 0; i < trees_.size(); ++i) {
        if (!trees_[i]->empty()) local[i] = RunKnn(*trees_[i], query, k);
      }
    }
    for (const KnnResult& r : local) {
      merged.insert(merged.end(), r.begin(), r.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Neighbor& a, const Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    if (merged.size() > k) merged.resize(k);
  }
  if (stats != nullptr) FillStats(stats);
  return merged;
}

}  // namespace parsim
