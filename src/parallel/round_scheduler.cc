#include "src/parallel/round_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/util/check.h"

namespace parsim {

void HsRoundScheduler::QueryState::Push(const Item& item) {
  queue.push_back(item);
  std::push_heap(queue.begin(), queue.end(), GreaterKey{});
  ++frontier_pushes;
}

HsRoundScheduler::QueryState::Item HsRoundScheduler::QueryState::Pop() {
  std::pop_heap(queue.begin(), queue.end(), GreaterKey{});
  const Item item = queue.back();
  queue.pop_back();
  ++frontier_pops;
  return item;
}

void HsRoundScheduler::QueryState::PushPoint(double key, std::uint32_t id) {
  if (bound.size() < k) {
    bound.push_back(key);
    std::push_heap(bound.begin(), bound.end());
  } else if (key > bound.front()) {
    return;
  } else if (key < bound.front()) {
    std::pop_heap(bound.begin(), bound.end());
    bound.back() = key;
    std::push_heap(bound.begin(), bound.end());
  }
  Push(Item{key, true, id});
}

HsRoundScheduler::HsRoundScheduler(const TreeBase& tree, const Metric& metric,
                                   const ApproxContext& approx,
                                   PhaseAccumulator* phases)
    : tree_(tree),
      metric_(metric),
      approx_(approx),
      phases_(phases),
      dim_(tree.dim()) {}

// Replays HsKnn's main loop until the query finishes or needs a node:
// points pop into the result, the first node item pauses the query with
// `request` set (Step fetches and expands it). node_factor > 1 is the
// approximate tier's early-termination mode: a popped node whose key
// exceeds the RELAXED cutoff bound/node_factor is dropped instead of
// requested — exactly HsKnn's pop-time skip, so the page its group would
// have fetched is saved.
void HsRoundScheduler::Advance(QueryState* q) {
  ScopedPhase phase(Phase::kFrontier);
  q->request = kInvalidNodeId;
  while (q->result.size() < q->k && !q->queue.empty()) {
    const QueryState::Item item = q->Pop();
    if (item.is_point) {
      q->result.push_back(
          Neighbor{item.ref, metric_.FromComparable(item.key)});
      continue;
    }
    if (approx_.node_factor > 1.0 && q->bound.size() >= q->k &&
        item.key > q->bound.front() / approx_.node_factor) {
      ++q->approx_skipped_nodes;
      continue;
    }
    q->request = item.ref;
    return;
  }
  q->done = true;
}

void HsRoundScheduler::ExpireState(QueryState* q) {
  if (q->done) return;
  q->done = true;
  q->expired = true;
  q->request = kInvalidNodeId;
}

std::size_t HsRoundScheduler::Add(PointView query, std::size_t k,
                                  QueryCostAccumulator* acc,
                                  std::uint64_t max_pages) {
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(acc != nullptr);
  PARSIM_CHECK(query.size() == dim_);
  ScopedPhaseCapture phase_capture(phases_);
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = states_.size();
    states_.emplace_back();
  }
  QueryState& s = states_[slot];
  s.queue.clear();
  s.bound.clear();
  s.bound.reserve(k);
  s.query.assign(query.begin(), query.end());
  s.result.clear();
  s.acc = acc;
  s.k = k;
  s.max_pages = max_pages;
  s.request = kInvalidNodeId;
  s.live = true;
  s.done = false;
  s.expired = false;
  s.frontier_pushes = 0;
  s.frontier_pops = 0;
  s.cutoff_skipped_nodes = 0;
  s.approx_skipped_nodes = 0;
  ++occupied_;
  if (tree_.root_id() != kInvalidNodeId) {
    s.Push(QueryState::Item{0.0, false, tree_.root_id()});
    Advance(&s);
  } else {
    s.done = true;
  }
  if (!s.done) ++running_;
  return slot;
}

void HsRoundScheduler::Expire(std::size_t slot) {
  QueryState& s = states_[slot];
  PARSIM_CHECK(s.live);
  if (s.done) return;
  ExpireState(&s);
  --running_;
}

KnnResult HsRoundScheduler::Take(std::size_t slot) {
  QueryState& s = states_[slot];
  PARSIM_CHECK(s.live && s.done);
  // Frontier traffic books into the query's host slot — the same sink
  // HsKnn's RecordFrontier uses for single-query execution.
  DiskStats& hs = s.acc->slot(s.acc->num_slots() - 1);
  hs.frontier_pushes += s.frontier_pushes;
  hs.frontier_pops += s.frontier_pops;
  hs.cutoff_skipped_nodes += s.cutoff_skipped_nodes;
  hs.approx_skipped_nodes += s.approx_skipped_nodes;
  s.live = false;
  s.acc = nullptr;
  --occupied_;
  free_slots_.push_back(slot);
  return std::move(s.result);
}

std::size_t HsRoundScheduler::Step(ThreadPool* pool, RoundStats* round) {
  ScopedPhaseCapture phase_capture(phases_);
  if (round != nullptr) *round = RoundStats{};

  requests_.clear();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    QueryState& s = states_[i];
    if (!s.live || s.done) continue;
    // Page budgets expire at round granularity: a query at or past its
    // budget stops before fetching another page, keeping its best-first
    // prefix as the partial result.
    if (s.max_pages > 0 && s.acc->TotalPagesTouched() >= s.max_pages) {
      ExpireState(&s);
      continue;
    }
    requests_.emplace_back(s.request, i);
  }
  if (requests_.empty()) {
    std::size_t running = 0;
    for (const QueryState& s : states_) {
      if (s.live && !s.done) ++running;
    }
    running_ = running;
    return running_;
  }
  // Ascending (node id, slot index): the grouping — and with it the
  // buffer-pool access order below — is a pure function of the
  // frontiers and the admission order, so the whole schedule is
  // deterministic at any thread count.
  std::sort(requests_.begin(), requests_.end());
  groups_.clear();
  for (std::size_t i = 0; i < requests_.size();) {
    std::size_t j = i;
    while (j < requests_.size() && requests_[j].first == requests_[i].first) {
      ++j;
    }
    groups_.push_back(Group{requests_[i].first, i, j, nullptr, {}, 0, 0});
    i = j;
  }

  // Phase 1 (serial): each group fetches its node once. The leader —
  // the group's lowest slot index — pays the read through the normal
  // buffered, fault-aware path; every other member books the pages it
  // was spared as coalesced_pages (plus its share of the degraded-read
  // accounting, which stays per-query). This is the only phase that
  // touches shared state (the buffer-pool LRU), so running it in sorted
  // group order keeps buffered costs reproducible. Retry penalties of a
  // failed primary (failed_read_attempts) are paid once per group by
  // the leader — coalescing collapses the per-query retry storm by
  // design.
  {
    ScopedPhase io_phase(Phase::kIo);
    for (Group& g : groups_) {
      const std::size_t leader = requests_[g.begin].second;
      {
        ScopedCostCapture capture(states_[leader].acc);
        g.accessed = &tree_.AccessNode(g.node);
      }
      g.route = tree_.ResolveRoute(*g.accessed);
      const std::size_t slot = g.route.disk->id();
      for (std::size_t m = g.begin + 1; m < g.end; ++m) {
        DiskStats& s = states_[requests_[m].second].acc->slot(slot);
        s.coalesced_pages += g.accessed->pages;
        if (g.route.failover) s.replica_pages_read += g.accessed->pages;
        if (g.route.unavailable) s.unavailable_pages += g.accessed->pages;
      }
    }
  }

  // Phase 2 (parallelizable): expand each group into its members'
  // frontiers. Every query sits in exactly one group per round, so
  // groups touch disjoint states/accumulators; leaf blocks come from
  // the tree's concurrent-read-safe cache.
  const auto expand = [&](std::size_t gi) {
    // Pool workers do not inherit the scheduler thread's thread-local
    // phase capture; re-install it so their sweep/descent/frontier time
    // lands in the same accumulator.
    ScopedPhaseCapture pc(phases_);
    Group& g = groups_[gi];
    const Node& node = *g.accessed;
    const std::size_t members = g.end - g.begin;
    const std::size_t slot = g.route.disk->id();
    if (node.IsLeaf()) {
      const LeafBlock& block = tree_.LeafBlockOf(node);
      // One many-to-many kernel call scores every member query against
      // every point of the page (uint8 q x n reduction first on a
      // quantized block, with per-member bound pruning — see
      // src/index/leaf_sweep.h). Scratch is thread-local: the rounds
      // allocate nothing in steady state.
      thread_local std::vector<Scalar> qbuf;
      thread_local std::vector<LeafSweepStats> sweeps;
      qbuf.resize(members * dim_);
      for (std::size_t m = 0; m < members; ++m) {
        const QueryState& state = states_[requests_[g.begin + m].second];
        std::copy(state.query.begin(), state.query.end(),
                  qbuf.data() + m * dim_);
      }
      sweeps.assign(members, LeafSweepStats{});
      SweepLeafBlockMany(
          block, qbuf.data(), members, metric_,
          [&](std::size_t m) {
            // Member m's running k-th best point key — HsKnn's bound.
            // Emits only tighten m's own bound, so reading it per
            // candidate matches the single-query sweep exactly.
            return states_[requests_[g.begin + m].second].Cutoff();
          },
          [&](std::size_t m, std::size_t i, double key) {
            states_[requests_[g.begin + m].second].PushPoint(key,
                                                            block.ids[i]);
          },
          sweeps.data(), approx_.sweep_factor);
      for (std::size_t m = 0; m < members; ++m) {
        const std::size_t qi = requests_[g.begin + m].second;
        DiskStats& s = states_[qi].acc->slot(slot);
        s.distance_computations += sweeps[m].exact_distances;
        s.quantized_pruned += sweeps[m].quantized_pruned;
        s.base_pruned += sweeps[m].base_pruned;
        s.prefix_pruned += sweeps[m].prefix_pruned;
        s.sq8_pruned += sweeps[m].sq8_pruned;
        s.reranked += sweeps[m].reranked;
        s.leaf_bytes_scanned += sweeps[m].leaf_bytes_scanned;
        s.approx_pruned_exactly += sweeps[m].approx_pruned_exactly;
        s.block_kernel_invocations += 1;
        g.pruned += sweeps[m].quantized_pruned;
        g.scored += sweeps[m].exact_distances;
        Advance(&states_[qi]);
      }
    } else {
      for (std::size_t m = 0; m < members; ++m) {
        const std::size_t qi = requests_[g.begin + m].second;
        QueryState& state = states_[qi];
        const PointView qv(state.query);
        {
          ScopedPhase phase(Phase::kDescent);
          // Fast path: children whose MINDIST strictly exceeds the
          // member's running k-th-best cutoff can never pop before the
          // k-th result and are dropped before heap insertion. Ties
          // MUST still push to preserve the pop sequence (see HsKnn).
          // Exact cut first (keeps cutoff_skipped_nodes' exact-path
          // meaning), then the approximate tier's relaxed cut — same
          // two-step as HsKnn's descent.
          const double cut = state.Cutoff();
          const double rcut =
              approx_.node_factor > 1.0 ? cut / approx_.node_factor : cut;
          for (const NodeEntry& e : node.entries) {
            double key;
            if (MinDistExceeds(e.rect, qv, metric_, cut, &key)) {
              ++state.cutoff_skipped_nodes;
              continue;
            }
            if (approx_.node_factor > 1.0 && key > rcut) {
              ++state.approx_skipped_nodes;
              continue;
            }
            state.Push(QueryState::Item{key, false, e.child});
          }
        }
        Advance(&state);
      }
    }
  };
  if (pool != nullptr && groups_.size() > 1) {
    pool->ParallelFor(0, groups_.size(), expand);
  } else {
    for (std::size_t gi = 0; gi < groups_.size(); ++gi) expand(gi);
  }

  if (round != nullptr) {
    round->groups = groups_.size();
    round->members = requests_.size();
    for (const Group& g : groups_) {
      round->pruned += g.pruned;
      round->scored += g.scored;
    }
  }
  std::size_t running = 0;
  for (const QueryState& s : states_) {
    if (s.live && !s.done) ++running;
  }
  running_ = running;
  return running_;
}

}  // namespace parsim
