// Batched multi-query k-NN with cross-query page-read coalescing.
//
// A batch of HS best-first searches over ONE shared tree advances in
// lock-step rounds. Each round, every still-active query exposes the next
// node its frontier needs; queries requesting the same node form a group,
// the group fetches the page ONCE (the lowest-indexed member — the leader
// — pays the simulated I/O through the normal buffered/fault-aware read
// path), and the members' searches then expand it together: for a leaf,
// one many-to-many kernel call (Metric::ComparableBlock) over the leaf's
// SoA block evaluates every member query against every point of the page.
//
// Per query, the push/pop sequence of its best-first priority queue is
// exactly the one the single-query HsKnn would execute, so the returned
// neighbor lists are bit-identical to per-query execution. The cost
// accounting differs exactly where coalescing saves work: followers of a
// group record the pages they did NOT read as `coalesced_pages` (and, on
// a degraded route, still record their replica/unavailable pages so
// fault semantics are per-query), and retry penalties of a failed
// primary are paid once per group by the leader instead of once per
// query.
//
// The round structure makes the schedule deterministic at any thread
// count: the fetch phase runs serially in ascending (node id, query
// index) order — it is the only phase touching shared state (the buffer
// pool LRU) — and the expansion phase, which may fan out over a thread
// pool, touches each query in exactly one group per round.

#ifndef PARSIM_SRC_PARALLEL_BATCH_KNN_H_
#define PARSIM_SRC_PARALLEL_BATCH_KNN_H_

#include <cstddef>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/index/knn.h"
#include "src/index/tree_base.h"
#include "src/io/cost_capture.h"
#include "src/util/phase_timer.h"
#include "src/util/thread_pool.h"

namespace parsim {

/// Runs the whole batch of k-NN queries over `tree` with page-read
/// coalescing. `accs` must hold one accumulator per query, each sized
/// num_disks + 1 (the engine's layout); per-query charges land there.
/// `pool` parallelizes the expansion phase (nullptr or a single group
/// per round = serial). Results are bit-identical to per-query HsKnn.
/// When `phases` is non-null, wall-clock time is attributed to it per
/// phase (src/util/phase_timer.h), summed over all worker threads —
/// batch-level only, since coalesced rounds interleave all queries.
/// `approx` (default: exact) enables the (1+eps)-approximate tier with
/// the same semantics as HsKnn's — node skips and relaxed sweeps apply
/// per member, and the schedule stays deterministic at any thread count
/// (the skips depend only on each member's own frontier state).
std::vector<KnnResult> CoalescedHsBatch(
    const TreeBase& tree, const PointSet& queries, std::size_t k,
    const Metric& metric, std::vector<QueryCostAccumulator>* accs,
    ThreadPool* pool, PhaseAccumulator* phases = nullptr,
    const ApproxContext& approx = ApproxContext());

}  // namespace parsim

#endif  // PARSIM_SRC_PARALLEL_BATCH_KNN_H_
