// The parallel similarity-search engine: the system of Section 5.
//
// Default architecture (`kSharedTree`, the paper's "parallel version of
// the X-tree"): ONE X-tree indexes the whole data set; its data (leaf)
// pages are declustered over n simulated disks, while directory pages
// live with the query host. A k-NN query runs one global search; every
// data page it touches is charged to the owning disk, and the query
// completes when the slowest disk finishes:
//
//     elapsed = host directory cost + max over disks (data-page cost).
//
// This reproduces the paper's measurement rule ("we determined the disk
// which accesses most pages during query processing ... used the search
// time of this disk") exactly: the set of pages a query needs is fixed
// by the search algorithm, and the declusterer decides only how that set
// spreads over the disks.
//
// The alternative architecture (`kFederatedTrees`) builds one
// independent X-tree per disk over that disk's share of the data and
// merges per-disk k-NN results; it is kept as an ablation of the
// shared-tree design (see bench/ablation_architecture).
//
// Execution layer: all read-only queries are thread-safe. Each query
// captures its simulated charges in a private QueryCostAccumulator (see
// src/io/cost_capture.h) instead of mutating shared disk counters
// mid-traversal, so QueryBatch can fan a batch of queries out over a
// shared ThreadPool for real wall-clock parallelism while the simulated
// per-query stats stay bit-identical to a serial run.

#ifndef PARSIM_SRC_PARALLEL_ENGINE_H_
#define PARSIM_SRC_PARALLEL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/declusterer.h"
#include "src/core/replica.h"
#include "src/index/knn.h"
#include "src/index/tree_base.h"
#include "src/io/cost_capture.h"
#include "src/io/disk_array.h"
#include "src/parallel/join.h"
#include "src/util/phase_timer.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace parsim {

/// Which index structure is used (per disk for kFederatedTrees, global
/// for kSharedTree).
enum class TreeKind {
  kXTree,
  kRStarTree,
};

/// Which k-NN algorithm the searches use.
enum class KnnAlgorithm {
  kHs,   // best-first [HS 95] (default)
  kRkv,  // branch-and-bound [RKV 95]
};

/// How the index is parallelized.
enum class Architecture {
  /// One global tree; data pages declustered over disks (the paper's
  /// parallel X-tree). Default.
  kSharedTree,
  /// One independent tree per disk over its share of the data; results
  /// merged. Ablation architecture.
  kFederatedTrees,
  /// No index: each disk stores its share as packed pages in arrival
  /// order and answers a query by scanning them all. This is the
  /// paper's plain round-robin *data distribution* baseline (Figure 2):
  /// a distribution scheme, not an indexing scheme.
  kFederatedScan,
};

/// Opt-in (1+eps)-approximate k-NN tier (see DESIGN.md "Approximate
/// tier & recall harness"). Applies to HS best-first k-NN searches only
/// — Query/TryQuery/QueryBatch under KnnAlgorithm::kHs, single-query
/// and coalesced alike, and composing with batching, buffering,
/// replicas, and fault injection; RKV, ball, and range queries stay
/// exact, as does everything at epsilon == 0 (asserted bit-identical in
/// tests/index_approx_knn_test.cc).
///
/// Contract: every returned distance D_k satisfies
/// D_k <= (1+eps) * d_k_true, and every true neighbor within
/// d_k_true/(1+eps) is returned. Recall@k is NOT directly bounded —
/// that is what the ground-truth harness (src/eval/recall.h,
/// bench/microbench_recall) measures; eps is the knob that trades
/// recall for QPS along the measured curve.
struct ApproxOptions {
  bool enabled = false;
  /// The (1+eps) slack. 0 keeps the search exact even when enabled.
  double epsilon = 0.0;
  /// Mechanism (a), bound relaxation: scale the SQ8/prefix PruneCutoff
  /// guard so leaf candidates whose lower bound clears the exact
  /// threshold but not threshold/(1+eps) are dropped without a re-rank.
  /// Needs quantized_leaf_blocks (the exact sweep has no cutoff).
  bool relax_bounds = true;
  /// Mechanism (b), early termination: stop descending once a frontier
  /// node's MINDIST exceeds dist_k/(1+eps) — implemented as a per-node
  /// skip against the relaxed bound at push and pop time, which is
  /// equivalent (the frontier pops in ascending MINDIST order) and also
  /// saves the skipped nodes' page reads.
  bool early_termination = true;
};

/// Engine configuration.
struct EngineOptions {
  Architecture architecture = Architecture::kSharedTree;
  TreeKind tree_kind = TreeKind::kXTree;
  KnnAlgorithm knn_algorithm = KnnAlgorithm::kHs;
  /// Build trees by insertion (the paper's dynamic setting) or by
  /// Hilbert bulk loading (faster construction for large runs).
  bool bulk_load = false;
  /// Number of worker threads for real wall-clock parallelism on top of
  /// the simulated-time accounting: the per-disk searches of the
  /// federated architectures fan out over this many pool workers, and
  /// QueryBatch uses it as the default batch concurrency (any
  /// architecture). Results and simulated stats are bit-identical to the
  /// serial execution. 0 or 1 = serial.
  unsigned parallel_workers = 0;
  /// Main-memory page buffer per disk (and for the query host), in
  /// pages; 0 disables buffering. Buffered reads are free and persist
  /// across queries, so query costs become history-dependent — exactly
  /// like a real buffer pool. Backed by one sharded BufferPool (one
  /// mutex-guarded LRU shard per disk plus one for the host), so
  /// buffered batches still execute concurrently. The paper's
  /// workstations had 64 MB RAM (~16k pages) against several hundred MB
  /// of data.
  std::uint64_t buffer_pages_per_disk = 0;
  /// Replay buffered batches serially. An LRU buffer makes per-query
  /// costs depend on the access history, so a concurrent batch's
  /// *per-query* hit/miss split varies with thread interleaving (the
  /// aggregate — total buffer hits + misses — and all query results are
  /// exact under any schedule). Set this when per-query numbers must be
  /// reproducible, e.g. golden-stats runs; it only affects engines with
  /// buffer_pages_per_disk > 0.
  bool deterministic_batch = false;
  /// Batched execution path for QueryBatch (kSharedTree + kHs only;
  /// other configurations ignore the flag): the batch's best-first
  /// searches advance in lock-step rounds, queries whose frontiers
  /// request the same page read it ONCE (one member pays the simulated
  /// I/O, the rest record coalesced_pages), and a leaf page is scored
  /// against all requesting queries by one many-to-many SIMD kernel call
  /// over its SoA block. Results are bit-identical to per-query
  /// execution; per-query costs are deterministic at any thread count
  /// (the page-fetch schedule is serial and sorted), so buffered engines
  /// need no deterministic_batch serialization on this path.
  bool coalesced_batch = false;
  /// Assign every bucket a secondary disk (ReplicaPlacement over the
  /// coloring) and transparently fail reads of a failed disk over to it.
  /// Supported on kSharedTree (the paper's architecture, where data
  /// pages are virtual and declustering is a routing decision); the
  /// federated architectures physically partition the data, so a failed
  /// disk there is reported as unavailable instead.
  bool enable_replicas = false;
  /// Bounded-retry policy: timed-out read attempts charged (at
  /// disk_parameters.failover_timeout_ms each) against a failed primary
  /// before the read fails over to the replica.
  std::uint32_t max_read_retries = 1;
  /// Give every leaf block an SQ8 mirror (uint8 scalar quantization; see
  /// src/geometry/sq8.h) and sweep it first: candidates whose provable
  /// comparable-space lower bound cannot beat the current k-th best (or
  /// the ball radius / range window) are pruned, survivors re-ranked
  /// through the exact float kernels. Results and distances are
  /// bit-identical to the unquantized path; distance_computations drops
  /// to the re-ranked share, and the quantized_pruned / reranked /
  /// leaf_bytes_scanned counters audit the saving. Tree architectures
  /// only (kFederatedScan has no leaf blocks and ignores the flag).
  bool quantized_leaf_blocks = false;
  /// Give every SQ8 mirror a variance-ordered prefix-dimension stage and
  /// run the progressive precision cascade in leaf sweeps: a d'-dim
  /// integer kernel kills most candidates before the full-d SQ8 kernel
  /// sees the survivors, which then feed the exact re-rank as before.
  /// Results, distances and page counts stay bit-identical; only
  /// leaf_bytes_scanned and the stage-attribution counters
  /// (prefix_pruned / sq8_pruned) change. No effect unless
  /// quantized_leaf_blocks is also set.
  bool cascade_prefix_stage = true;
  /// Attribute wall-clock time to query phases (descent, frontier ops,
  /// simulated-I/O accounting, leaf-sweep stages; see
  /// src/util/phase_timer.h) and report it in QueryStats::phases /
  /// ThroughputResult::phases. Off by default: the timer is cheap (two
  /// steady_clock reads per scope) but not free, so timed benchmark runs
  /// keep it off and take the breakdown from a separate profiled pass.
  bool profile_phases = false;
  /// Leaf fill fraction handed to BulkLoad (TreeOptions::bulk_load_fill).
  /// The R*-style 0.7 leaves headroom for later inserts; a read-only
  /// bulk-loaded index packs pages full at 1.0, which cuts both the page
  /// count and the per-row share of descent/frontier work. Only used
  /// when bulk_load is set.
  double bulk_load_fill = 0.7;
  /// The approximate search tier (off = exact, the default).
  ApproxOptions approx{};
  DiskParameters disk_parameters{};
  Metric metric{};
};

/// Per-query accounting.
struct QueryStats {
  /// Simulated elapsed time under the paper's rule: host directory work
  /// plus the slowest disk's data-page work.
  double parallel_ms = 0.0;
  /// Simulated elapsed time if one disk had served every access.
  double sum_ms = 0.0;
  /// Data pages read by the busiest disk (the paper's raw metric).
  std::uint64_t max_pages = 0;
  /// Data pages read across all disks.
  std::uint64_t total_pages = 0;
  /// Directory pages read by the query host (kSharedTree) or summed
  /// over disks (kFederatedTrees).
  std::uint64_t directory_pages = 0;
  /// Pages served from main-memory buffers (free), when buffering is on.
  std::uint64_t buffer_hit_pages = 0;
  /// avg/max data-page load over disks; 1.0 = perfectly even.
  double balance = 1.0;
  /// Data-page reads per disk.
  std::vector<std::uint64_t> pages_per_disk;

  // Fault / degraded-read accounting. All zero (and degraded false, with
  // healthy_parallel_ms == parallel_ms bit for bit) on a healthy array.
  /// True when the query felt any fault: a replica read, a retry, an
  /// unavailable page, or slow-disk time scaling.
  bool degraded = false;
  /// Pages served by replicas on behalf of failed primaries.
  std::uint64_t replica_pages = 0;
  /// Timed-out read attempts against failed primaries (bounded retry).
  std::uint64_t failed_read_attempts = 0;
  /// Pages no healthy copy could serve (failed disk, no replica).
  std::uint64_t unavailable_pages = 0;
  /// The makespan this query would have had at healthy rates: same page
  /// distribution, but no slow-disk scaling and no retry penalties.
  /// parallel_ms / healthy_parallel_ms is the degradation factor.
  double healthy_parallel_ms = 0.0;

  // Batched-execution accounting. Both zero outside the coalesced path.
  /// Pages this query obtained for free because another query of the
  /// same batch round paid for the fetch. Per query, total_pages +
  /// directory_pages + buffer_hit_pages + coalesced_reads equals the
  /// pages the single-query path would have touched.
  std::uint64_t coalesced_reads = 0;
  /// Many-to-many kernel calls (Metric::ComparableBlock) this query
  /// participated in.
  std::uint64_t block_kernel_invocations = 0;

  // Quantized-sweep accounting. All zero unless the engine was built
  // with quantized_leaf_blocks.
  /// Leaf candidates the SQ8 lower bound eliminated before exact work.
  /// Always base_pruned + prefix_pruned + sq8_pruned — the same total
  /// whether or not the prefix stage is enabled.
  std::uint64_t quantized_pruned = 0;
  /// ... of which: killed wholesale by the per-block query bound (the
  /// block's best case already missed the threshold; no per-candidate
  /// kernel work at all).
  std::uint64_t base_pruned = 0;
  /// ... of which: killed by the prefix-dimension first pass (cascade
  /// stage 1). Zero unless cascade_prefix_stage built a prefix.
  std::uint64_t prefix_pruned = 0;
  /// ... of which: killed by the full-dimension SQ8 reduction.
  std::uint64_t sq8_pruned = 0;
  /// Leaf candidates re-ranked through the exact float kernel. For
  /// k-NN/ball sweeps, quantized_pruned + reranked equals the exact
  /// path's leaf distance_computations.
  std::uint64_t reranked = 0;
  /// Bytes leaf sweeps streamed (code bytes plus re-ranked float rows on
  /// the quantized path; full float rows otherwise). Bookkeeping only —
  /// never part of the simulated-time model.
  std::uint64_t leaf_bytes_scanned = 0;

  // Frontier accounting (HS best-first search; zero under kRkv and the
  // scan architecture). Bookkeeping only.
  /// Items pushed onto the best-first priority queue (nodes + points).
  std::uint64_t frontier_pushes = 0;
  /// Items popped from it.
  std::uint64_t frontier_pops = 0;
  /// Interior children dropped before heap insertion because their
  /// MINDIST strictly exceeded the running k-th-best cutoff.
  std::uint64_t cutoff_skipped_nodes = 0;

  // Approximate-tier accounting (zero unless options.approx is enabled
  // with epsilon > 0).
  /// Frontier nodes the early-termination mode dropped (push- or
  /// pop-time) because their MINDIST exceeded the RELAXED cutoff
  /// bound/(1+eps); unlike cutoff_skipped_nodes these may lose true
  /// neighbors, and pop-time skips save the node's page read.
  std::uint64_t approx_skipped_nodes = 0;
  /// Of quantized_pruned, candidates the lossless cutoff at the same
  /// running threshold provably would have pruned too; the difference
  /// bounds the approximation-attributable prunes from above.
  std::uint64_t approx_pruned_exactly = 0;

  /// Wall-clock time by phase (all zero unless the engine was built with
  /// profile_phases). Real time, not simulated time — never compare it
  /// against parallel_ms.
  PhaseBreakdown phases;
};

/// A parallel k-NN search engine over declustered data.
class ParallelSearchEngine {
 public:
  /// Takes ownership of `declusterer`; the number of disks is
  /// declusterer->num_disks().
  ParallelSearchEngine(std::size_t dim,
                       std::unique_ptr<Declusterer> declusterer,
                       EngineOptions options = {});
  ~ParallelSearchEngine();

  ParallelSearchEngine(const ParallelSearchEngine&) = delete;
  ParallelSearchEngine& operator=(const ParallelSearchEngine&) = delete;

  /// Declusters `points` and builds the index(es). Point ids are
  /// positions in `points`. Call once.
  ///
  /// When options().parallel_workers > 1 and bulk_load is on, the build
  /// itself is parallel: every BulkLoad phase fans out over the shared
  /// pool (see TreeBase::BulkLoad — the tree and the simulated disk
  /// counters stay bit-identical to the serial build), and the
  /// post-build warm-up — leaf SoA blocks with their SQ8/prefix mirrors,
  /// plus the memoized leaf→disk routes and replica buckets — fans out
  /// over the same pool so the first query wave starts from steady
  /// state. Warm-up builds derived state only and charges nothing.
  Status Build(const PointSet& points);

  /// Inserts a single point dynamically (the engine is "completely
  /// dynamical", Section 4.3).
  Status Insert(PointView p, PointId id);

  /// Deletes the exact record (p, id); kNotFound if absent. The
  /// declusterer must still route `p` to the disk that stored it (true
  /// unless the declusterer was re-fitted in between).
  Status Remove(PointView p, PointId id);

  /// Global k nearest neighbors of `query`. Fills `stats` (optional)
  /// with the simulated cost of this query.
  ///
  /// Thread-safe against other Query/RangeQuery/SimilarityQuery calls:
  /// traversal records its charges in a per-query cost accumulator and
  /// only merges them into the shared disk counters under a lock at query
  /// end, so the simulated stats of each query are independent of
  /// interleaving (and bit-identical to a serial execution when no page
  /// buffer is configured). Not safe against concurrent Insert/Remove.
  KnnResult Query(PointView query, std::size_t k,
                  QueryStats* stats = nullptr) const;

  /// Fault-aware Query: identical traversal and accounting, but data
  /// unavailability (a failed disk whose pages have no healthy replica)
  /// is reported as StatusCode::kUnavailable instead of being silently
  /// answered from the simulator's in-memory structures. On success
  /// `*result` holds the k nearest neighbors; on kUnavailable it holds
  /// the answer the healthy system would have given (diagnostics only).
  Status TryQuery(PointView query, std::size_t k, KnnResult* result,
                  QueryStats* stats = nullptr) const;

  /// Answers every query in `queries` (k-NN, like Query) and returns the
  /// per-query results in order. With `threads` > 1 — or `threads` == 0
  /// and options().parallel_workers > 1 — the batch executes on the
  /// engine's shared worker pool for real wall-clock parallelism;
  /// results are bit-identical to the serial execution, and so are the
  /// per-query simulated stats on an unbuffered engine. A buffered
  /// engine runs the batch concurrently on the sharded BufferPool: query
  /// results and the aggregate buffer accounting (total hits + misses,
  /// per disk) stay exact under any interleaving, while the per-query
  /// hit/miss split may vary; set options().deterministic_batch to
  /// replay such batches serially when per-query numbers must be
  /// reproducible. `effective_threads` (optional) receives the worker
  /// count the batch actually executed on (1 = serial), e.g. 1 for a
  /// buffered engine in deterministic mode whatever `threads` says.
  /// `phases` (optional; requires options().profile_phases) receives the
  /// batch-level wall-clock phase breakdown summed over all workers.
  std::vector<KnnResult> QueryBatch(const PointSet& queries, std::size_t k,
                                    std::vector<QueryStats>* stats = nullptr,
                                    unsigned threads = 0,
                                    unsigned* effective_threads = nullptr,
                                    PhaseBreakdown* phases = nullptr) const;

  /// Prebuilds every leaf's SoA block (and SQ8 mirror + prefix stage,
  /// when enabled) on all trees, over `threads` pool workers when > 1.
  /// Charges nothing. Benchmarks and the throughput harness call this so
  /// timed runs measure steady state rather than first-touch block
  /// construction; safe to omit otherwise.
  void WarmLeafBlocks(unsigned threads = 0) const;

  /// All point ids inside `query` (inclusive). The query type the
  /// baseline declusterers were designed for (Section 1: "range queries
  /// and partial match queries").
  std::vector<PointId> RangeQuery(const Rect& query,
                                  QueryStats* stats = nullptr) const;

  /// Partial match: ids of points whose coordinate in every fixed
  /// dimension lies within `tolerance` of the given value; unfixed
  /// dimensions are unconstrained (implemented as a degenerate range
  /// query, the classic reduction).
  std::vector<PointId> PartialMatchQuery(
      const std::vector<std::pair<std::size_t, Scalar>>& fixed,
      Scalar tolerance, QueryStats* stats = nullptr) const;

  /// ε-similarity query: every object within `radius` of `query`,
  /// ascending by distance ("all images at least this similar").
  KnnResult SimilarityQuery(PointView query, double radius,
                            QueryStats* stats = nullptr) const;

  /// All-pairs ε-similarity self-join: every unordered pair of stored
  /// points within `epsilon` of each other (inclusive, like
  /// SimilarityQuery), sorted by (a, b) with a < b. Candidate leaf-block
  /// pairs are pruned by MBR MINDIST, each distinct leaf page is fetched
  /// once (further pairs sharing it record coalesced reads), and the
  /// surviving pairs sweep through the SQ8/prefix cascade as block rows
  /// fanned over the worker pool — see src/parallel/join.h. Results and
  /// every JoinStats counter are invariant across thread counts.
  /// kSharedTree only. Thread-safe like Query; not against
  /// Insert/Remove.
  JoinResult SelfJoin(double epsilon,
                      const JoinOptions& options = JoinOptions()) const;

  /// Applies a fault plan to the disk array (empty plan = all healthy).
  /// Seeded plans (FaultPlan::WithRandomFailures) make degraded runs
  /// exactly reproducible. Must not race with in-flight queries — inject
  /// faults between query waves, like Insert/Remove.
  void SetFaultPlan(const FaultPlan& plan);

  /// Restores every disk to healthy.
  void ClearFaults();

  const FaultPlan& fault_plan() const { return disks_.fault_plan(); }

  bool replicas_enabled() const { return replicas_ != nullptr; }

  /// The replica placement, or nullptr when replicas are disabled.
  const ReplicaPlacement* replica_placement() const {
    return replicas_.get();
  }

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return size_; }
  std::uint32_t num_disks() const;
  const Declusterer& declusterer() const { return *declusterer_; }
  const EngineOptions& options() const { return options_; }
  DiskArray& disks() { return disks_; }
  const DiskArray& disks() const { return disks_; }

  /// The sharded page-buffer pool: shard i buffers disk i, the last
  /// shard buffers the query host. nullptr when buffering is off.
  const BufferPool* buffer_pool() const { return buffer_pool_.get(); }

  /// kSharedTree: the global tree (disk argument ignored);
  /// kFederatedTrees: the tree of that disk.
  const TreeBase& tree(DiskId disk = 0) const;

  /// Simulated cost of the last Build (page writes etc.). Diagnostics.
  DiskStats BuildStats() const { return build_stats_; }

 private:
  // The query service front-end (src/service/query_service.h) drives the
  // round scheduler directly and reuses the engine's accumulator-derived
  // accounting (StatsFromAccumulator / MergeAccumulator), pool, and
  // resolved approx context.
  friend class QueryService;

  std::unique_ptr<TreeBase> MakeTree(SimulatedDisk* disk) const;
  KnnResult RunKnn(const TreeBase& tree, PointView query,
                   std::size_t k) const;
  KnnResult ScanQuery(PointView query, std::size_t k) const;
  DiskId DiskOfLeaf(const Node& leaf) const;

  /// Shared-tree leaf routing with fault handling: healthy primary, or
  /// its replica (failover) when the primary failed, or the failed
  /// primary flagged unavailable when no healthy copy exists.
  TreeBase::DiskRoute RouteLeaf(const Node& leaf) const;

  /// Drops every memoized leaf route and resizes the cache to the shared
  /// tree's current node count. Call after any structural change (Build,
  /// Insert, Remove) — leaf MBRs may have moved, and with them the
  /// declustering color. Mutation-side only: must not race with queries
  /// (the tree family's standing contract).
  void InvalidateLeafRoutes();

  /// Fills the leaf-route memo for every leaf of the shared tree, over
  /// `pool` when given. RouteLeaf's memo fill is idempotent (the packed
  /// word is a pure function of the leaf MBR) and the slots are relaxed
  /// atomics, so concurrent fills are safe and value-identical to lazy
  /// fills. Charges nothing; no-op outside the shared-tree architecture.
  void PrewarmLeafRoutes(ThreadPool* pool) const;

  /// Federated fault handling (no replicas there): if disk `d` is
  /// failed, records `pages` unavailable on it and returns true (the
  /// caller skips the partition).
  bool SkipFailedDisk(DiskId d, std::uint64_t pages) const;

  /// Derives the per-query stats from a query's captured charges; the
  /// formulas mirror the old reset-charge-read protocol exactly, so the
  /// numbers are bit-identical to it.
  QueryStats StatsFromAccumulator(const QueryCostAccumulator& acc) const;
  /// Folds a finished query's charges into the cumulative disk counters
  /// (under stats_mutex_).
  void MergeAccumulator(const QueryCostAccumulator& acc) const;
  /// The shared worker pool, created lazily with at least `threads`
  /// workers.
  std::shared_ptr<ThreadPool> EnsurePool(unsigned threads) const;

  std::size_t dim_;
  std::unique_ptr<Declusterer> declusterer_;
  EngineOptions options_;
  /// options_.approx resolved to comparable-scale factors once at
  /// construction: Metric::ToComparable(1 + epsilon) per enabled
  /// mechanism, 1.0 (exact) otherwise. See ApproxContext.
  ApproxContext approx_;
  std::unique_ptr<ReplicaPlacement> replicas_;
  /// Memoized shared-tree leaf routing, one packed word per node id:
  /// bit 63 = valid, bits 16..47 = replica bucket, bits 0..15 = primary
  /// disk. The route of a leaf is a pure function of its MBR (center ->
  /// declustering color), but recomputing the MBR on every node access
  /// costs a fold over the page's entries — it showed up as ~40% of
  /// end-to-end batch time before memoization. Queries fill slots
  /// racing-but-idempotent (every thread computes the same word, relaxed
  /// atomics keep TSAN happy); fault state stays OUT of the word, so
  /// SetFaultPlan needs no invalidation.
  mutable std::unique_ptr<std::atomic<std::uint64_t>[]> leaf_routes_;
  std::size_t leaf_routes_size_ = 0;
  // buffer_pool_ must outlive disks_ and host_ (attached shards), which
  // must outlive the trees (raw pointers inside).
  std::unique_ptr<BufferPool> buffer_pool_;
  mutable DiskArray disks_;
  mutable SimulatedDisk host_;
  mutable std::mutex stats_mutex_;       // guards cumulative stats merges
  mutable std::mutex pool_mutex_;        // guards pool_ creation/growth
  mutable std::shared_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<TreeBase>> trees_;  // 1 (shared) or n (federated)
  // kFederatedScan: raw per-disk storage (points + their ids).
  std::vector<PointSet> scan_partitions_;
  std::vector<std::vector<PointId>> scan_ids_;
  std::size_t size_ = 0;
  DiskStats build_stats_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_PARALLEL_ENGINE_H_
