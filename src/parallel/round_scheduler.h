// The pausable round scheduler under both batched k-NN execution and the
// query service: a set of HS best-first searches over ONE shared tree
// advances in lock-step coalesced rounds (see src/parallel/batch_knn.h
// for the round/group/leader semantics and the bit-identity argument).
//
// This class generalizes the closed-batch scheduler in three ways the
// service front-end needs:
//
//   * continuous admission — Add() may be called between any two rounds;
//     a query's push/pop sequence depends only on its own frontier, so
//     joining or leaving a round never changes any other query's result
//     (each remains bit-identical to single-query HsKnn);
//   * per-query k — members of one round may search for different k;
//   * per-query page budgets — a query whose accumulated page work
//     reaches its budget is expired at round granularity: it stops
//     requesting pages and keeps the best-first prefix found so far as a
//     partial result (pops leave the frontier in ascending key order, so
//     the prefix is exactly the true top-m). Wall-clock deadlines are
//     the caller's clock policy: call Expire() before a round.
//
// Slots are reused through a free list, so a long-lived service reaches
// a steady state where rounds allocate nothing. Only one thread may call
// Add/Step/Expire/Take (the scheduling thread); Step's expansion phase
// fans out over the given pool internally.

#ifndef PARSIM_SRC_PARALLEL_ROUND_SCHEDULER_H_
#define PARSIM_SRC_PARALLEL_ROUND_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/index/knn.h"
#include "src/index/tree_base.h"
#include "src/io/cost_capture.h"
#include "src/util/phase_timer.h"
#include "src/util/thread_pool.h"

namespace parsim {

class HsRoundScheduler {
 public:
  /// `tree`, `metric`, `approx` and `phases` must outlive the scheduler;
  /// `phases` (nullable) receives the wall-clock phase breakdown of all
  /// scheduling and expansion work, summed over worker threads.
  HsRoundScheduler(const TreeBase& tree, const Metric& metric,
                   const ApproxContext& approx = ApproxContext(),
                   PhaseAccumulator* phases = nullptr);

  /// Admits one k-NN query. The coordinates are copied into the slot;
  /// `acc` (sized num_disks + 1, the engine layout) receives the query's
  /// charges and must outlive the slot. `max_pages` > 0 expires the
  /// query once QueryCostAccumulator::TotalPagesTouched() reaches it
  /// (checked before every round); 0 = unbudgeted. Returns the slot id.
  std::size_t Add(PointView query, std::size_t k, QueryCostAccumulator* acc,
                  std::uint64_t max_pages = 0);

  /// Aggregate outcome of one round, feeding adaptive batch formation.
  struct RoundStats {
    /// Distinct nodes fetched (groups formed).
    std::size_t groups = 0;
    /// Query-node expansions served (>= groups; the difference is
    /// coalesced rides).
    std::size_t members = 0;
    /// Leaf candidates killed before exact work (quantized bounds +
    /// frontier cutoff/approx skips) across the round.
    std::uint64_t pruned = 0;
    /// Leaf candidates that reached an exact float kernel.
    std::uint64_t scored = 0;
  };

  /// Runs one coalesced round over every running query: budget-expires
  /// exhausted slots, collects requests, fetches each distinct node once
  /// (serial, ascending (node, slot) order), expands groups over `pool`
  /// (nullptr = serial). Returns the number of still-running queries;
  /// 0 means every admitted query is finished or expired. `round`
  /// (nullable) receives this round's aggregates.
  std::size_t Step(ThreadPool* pool, RoundStats* round = nullptr);

  /// True while the slot has neither finished nor expired.
  bool IsRunning(std::size_t slot) const {
    return states_[slot].live && !states_[slot].done;
  }
  /// True when the slot stopped on a budget/deadline with a partial
  /// result rather than completing its search.
  bool IsExpired(std::size_t slot) const {
    return states_[slot].live && states_[slot].expired;
  }

  /// Expires a running slot now (wall-clock deadlines); its result so
  /// far is kept. No-op on a finished slot.
  void Expire(std::size_t slot);

  /// Finalizes a finished or expired slot: books its frontier counters
  /// into the accumulator's host slot (HsKnn's RecordFrontier sink),
  /// frees the slot for reuse, and moves the result out.
  KnnResult Take(std::size_t slot);

  /// Queries admitted and not yet taken, running or settled.
  std::size_t occupied() const { return occupied_; }
  /// Queries still running (admitted, neither finished nor expired).
  std::size_t running() const { return running_; }

 private:
  /// One query's pausable best-first search; the queue/bound structures
  /// replay HsKnn exactly (see src/parallel/batch_knn.h).
  struct QueryState {
    struct Item {
      double key;
      bool is_point;
      std::uint32_t ref;  // NodeId or PointId
    };
    struct GreaterKey {
      bool operator()(const Item& a, const Item& b) const {
        return a.key > b.key;
      }
    };
    /// Binary min-heap via push_heap/pop_heap with GreaterKey — the
    /// exact algorithm std::priority_queue runs internally, in reusable
    /// storage that is reserved once and never reallocated in steady
    /// state. Identical pop sequence.
    std::vector<Item> queue;
    /// Max-heap of the k smallest point keys pushed so far — HsKnn's
    /// pruning bound. Points beyond it can never pop before the k-th
    /// result does, so skipping them is invisible to the pop sequence
    /// but keeps the frontier small enough that a wide round stays
    /// cache resident.
    std::vector<double> bound;
    /// This slot's query coordinates (owned; dim() scalars).
    std::vector<Scalar> query;
    KnnResult result;
    QueryCostAccumulator* acc = nullptr;
    std::size_t k = 0;
    /// Page budget; 0 = unbudgeted.
    std::uint64_t max_pages = 0;
    /// The node the frontier needs next; kInvalidNodeId while none.
    NodeId request = kInvalidNodeId;
    bool live = false;
    bool done = false;
    bool expired = false;
    /// This query's frontier traffic, booked into its host stats slot by
    /// Take (matches HsKnn's RecordFrontier accounting).
    std::uint64_t frontier_pushes = 0;
    std::uint64_t frontier_pops = 0;
    std::uint64_t cutoff_skipped_nodes = 0;
    std::uint64_t approx_skipped_nodes = 0;

    void Push(const Item& item);
    Item Pop();
    void PushPoint(double key, std::uint32_t id);
    /// HsKnn's running comparable-space cutoff: the k-th best point key,
    /// +inf while fewer than k points were pushed.
    double Cutoff() const {
      return bound.size() < k ? std::numeric_limits<double>::infinity()
                              : bound.front();
    }
  };

  /// Replays HsKnn's main loop until the query finishes or needs a node.
  void Advance(QueryState* q);
  void ExpireState(QueryState* q);

  const TreeBase& tree_;
  const Metric& metric_;
  const ApproxContext& approx_;
  PhaseAccumulator* phases_;
  std::size_t dim_;
  std::vector<QueryState> states_;
  std::vector<std::size_t> free_slots_;
  std::size_t occupied_ = 0;
  std::size_t running_ = 0;

  // Round scratch, reused across Step calls.
  struct Group {
    NodeId node;
    // Indices into requests_ delimiting this group's members.
    std::size_t begin;
    std::size_t end;
    const Node* accessed = nullptr;
    TreeBase::DiskRoute route;
    // Per-group prune/score aggregates, summed into RoundStats after
    // the (possibly parallel) expansion phase.
    std::uint64_t pruned = 0;
    std::uint64_t scored = 0;
  };
  std::vector<std::pair<NodeId, std::size_t>> requests_;  // (node, slot)
  std::vector<Group> groups_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_PARALLEL_ROUND_SCHEDULER_H_
