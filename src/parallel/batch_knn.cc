#include "src/parallel/batch_knn.h"

#include <algorithm>
#include <limits>

#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/util/check.h"

namespace parsim {

namespace {

/// One query's best-first search, pausable at node fetches. The queue
/// holds nodes (is_point == false) keyed by MINDIST and data points keyed
/// by their actual distance, both in the Comparable scale — the exact
/// structure of HsKnn (src/index/knn.cc), so the push/pop sequence (and
/// with it the result) matches the single-query path bit for bit.
struct QueryState {
  struct Item {
    double key;
    bool is_point;
    std::uint32_t ref;  // NodeId or PointId
  };
  struct GreaterKey {
    bool operator()(const Item& a, const Item& b) const {
      return a.key > b.key;
    }
  };
  /// Binary min-heap via push_heap/pop_heap with GreaterKey — the exact
  /// algorithm std::priority_queue runs internally, in reusable storage
  /// that is reserved once per batch and never reallocated in steady
  /// state. Identical pop sequence.
  std::vector<Item> queue;
  /// Max-heap of the k smallest point keys pushed so far — HsKnn's
  /// pruning bound. Points beyond it can never pop before the k-th
  /// result does, so skipping them is invisible to the pop sequence but
  /// keeps the frontier small enough that a 64-wide round stays cache
  /// resident.
  std::vector<double> bound;
  KnnResult result;
  /// The node the frontier needs next; kInvalidNodeId while none.
  NodeId request = kInvalidNodeId;
  bool done = false;
  /// This query's frontier traffic, booked into its host stats slot when
  /// the batch finishes (matches HsKnn's RecordFrontier accounting).
  std::uint64_t frontier_pushes = 0;
  std::uint64_t frontier_pops = 0;
  std::uint64_t cutoff_skipped_nodes = 0;
  std::uint64_t approx_skipped_nodes = 0;

  void Push(const Item& item) {
    queue.push_back(item);
    std::push_heap(queue.begin(), queue.end(), GreaterKey{});
    ++frontier_pushes;
  }

  Item Pop() {
    std::pop_heap(queue.begin(), queue.end(), GreaterKey{});
    const Item item = queue.back();
    queue.pop_back();
    ++frontier_pops;
    return item;
  }

  void PushPoint(double key, std::uint32_t id, std::size_t k) {
    if (bound.size() < k) {
      bound.push_back(key);
      std::push_heap(bound.begin(), bound.end());
    } else if (key > bound.front()) {
      return;
    } else if (key < bound.front()) {
      std::pop_heap(bound.begin(), bound.end());
      bound.back() = key;
      std::push_heap(bound.begin(), bound.end());
    }
    Push(Item{key, true, id});
  }

  /// HsKnn's running comparable-space cutoff: the k-th best point key,
  /// +inf while fewer than k points were pushed.
  double Cutoff(std::size_t k) const {
    return bound.size() < k ? std::numeric_limits<double>::infinity()
                            : bound.front();
  }
};

/// Replays HsKnn's main loop until the query finishes or needs a node:
/// points pop into the result, the first node item pauses the query with
/// `request` set (the round scheduler fetches and expands it).
/// `node_factor` > 1 is the approximate tier's early-termination mode:
/// a popped node whose key exceeds the member's RELAXED cutoff
/// bound/node_factor is dropped instead of requested — exactly HsKnn's
/// pop-time skip, so the page its group would have fetched is saved.
void Advance(QueryState* q, std::size_t k, const Metric& metric,
             double node_factor) {
  ScopedPhase phase(Phase::kFrontier);
  q->request = kInvalidNodeId;
  while (q->result.size() < k && !q->queue.empty()) {
    const QueryState::Item item = q->Pop();
    if (item.is_point) {
      q->result.push_back(Neighbor{item.ref, metric.FromComparable(item.key)});
      continue;
    }
    if (node_factor > 1.0 && q->bound.size() >= k &&
        item.key > q->bound.front() / node_factor) {
      ++q->approx_skipped_nodes;
      continue;
    }
    q->request = item.ref;
    return;
  }
  q->done = true;
}

}  // namespace

std::vector<KnnResult> CoalescedHsBatch(
    const TreeBase& tree, const PointSet& queries, std::size_t k,
    const Metric& metric, std::vector<QueryCostAccumulator>* accs,
    ThreadPool* pool, PhaseAccumulator* phases, const ApproxContext& approx) {
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(accs != nullptr && accs->size() == queries.size());
  const std::size_t n = queries.size();
  const std::size_t dim = queries.dim();
  std::vector<KnnResult> results(n);
  if (n == 0) return results;
  PARSIM_CHECK(dim == tree.dim());

  // Installs the (possibly null) phase accumulator on the scheduling
  // thread; pool workers install it again inside `expand` below, since
  // the capture is thread-local and workers do not inherit it.
  ScopedPhaseCapture phase_capture(phases);

  std::vector<QueryState> states(n);
  if (tree.root_id() != kInvalidNodeId) {
    for (std::size_t i = 0; i < n; ++i) {
      states[i].bound.reserve(k);
      states[i].Push(QueryState::Item{0.0, false, tree.root_id()});
      Advance(&states[i], k, metric, approx.node_factor);
    }
  } else {
    for (QueryState& s : states) s.done = true;
  }

  struct Group {
    NodeId node;
    // Indices into `requests` delimiting this group's members.
    std::size_t begin;
    std::size_t end;
    const Node* accessed = nullptr;
    TreeBase::DiskRoute route;
  };
  std::vector<std::pair<NodeId, std::size_t>> requests;  // (node, query)
  requests.reserve(n);
  std::vector<Group> groups;
  groups.reserve(n);

  for (;;) {
    requests.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!states[i].done) requests.emplace_back(states[i].request, i);
    }
    if (requests.empty()) break;
    // Ascending (node id, query index): the grouping — and with it the
    // buffer-pool access order below — is a pure function of the
    // frontiers, so the whole schedule is deterministic at any thread
    // count.
    std::sort(requests.begin(), requests.end());
    groups.clear();
    for (std::size_t i = 0; i < requests.size();) {
      std::size_t j = i;
      while (j < requests.size() && requests[j].first == requests[i].first) {
        ++j;
      }
      groups.push_back(Group{requests[i].first, i, j, nullptr, {}});
      i = j;
    }

    // Phase 1 (serial): each group fetches its node once. The leader —
    // the group's lowest query index — pays the read through the normal
    // buffered, fault-aware path; every other member books the pages it
    // was spared as coalesced_pages (plus its share of the degraded-read
    // accounting, which stays per-query). This is the only phase that
    // touches shared state (the buffer-pool LRU), so running it in sorted
    // group order keeps buffered costs reproducible. Retry penalties of a
    // failed primary (failed_read_attempts) are paid once per group by
    // the leader — coalescing collapses the per-query retry storm by
    // design.
    {
      ScopedPhase io_phase(Phase::kIo);
      for (Group& g : groups) {
        const std::size_t leader = requests[g.begin].second;
        {
          ScopedCostCapture capture(&(*accs)[leader]);
          g.accessed = &tree.AccessNode(g.node);
        }
        g.route = tree.ResolveRoute(*g.accessed);
        const std::size_t slot = g.route.disk->id();
        for (std::size_t m = g.begin + 1; m < g.end; ++m) {
          DiskStats& s = (*accs)[requests[m].second].slot(slot);
          s.coalesced_pages += g.accessed->pages;
          if (g.route.failover) s.replica_pages_read += g.accessed->pages;
          if (g.route.unavailable) s.unavailable_pages += g.accessed->pages;
        }
      }
    }

    // Phase 2 (parallelizable): expand each group into its members'
    // frontiers. Every query sits in exactly one group per round, so
    // groups touch disjoint states/accumulators; leaf blocks come from
    // the tree's concurrent-read-safe cache.
    const auto expand = [&](std::size_t gi) {
      // Pool workers do not inherit the scheduler thread's thread-local
      // phase capture; re-install it so their sweep/descent/frontier time
      // lands in the same batch-level accumulator.
      ScopedPhaseCapture pc(phases);
      const Group& g = groups[gi];
      const Node& node = *g.accessed;
      const std::size_t members = g.end - g.begin;
      const std::size_t slot = g.route.disk->id();
      if (node.IsLeaf()) {
        const LeafBlock& block = tree.LeafBlockOf(node);
        // One many-to-many kernel call scores every member query against
        // every point of the page (uint8 q x n reduction first on a
        // quantized block, with per-member bound pruning — see
        // src/index/leaf_sweep.h). Scratch is thread-local: the rounds
        // allocate nothing in steady state.
        thread_local std::vector<Scalar> qbuf;
        thread_local std::vector<LeafSweepStats> sweeps;
        qbuf.resize(members * dim);
        for (std::size_t m = 0; m < members; ++m) {
          const PointView qv = queries[requests[g.begin + m].second];
          std::copy(qv.begin(), qv.end(), qbuf.data() + m * dim);
        }
        sweeps.assign(members, LeafSweepStats{});
        SweepLeafBlockMany(
            block, qbuf.data(), members, metric,
            [&](std::size_t m) {
              // Member m's running k-th best point key — HsKnn's bound.
              // Emits only tighten m's own bound, so reading it per
              // candidate matches the single-query sweep exactly.
              const QueryState& state = states[requests[g.begin + m].second];
              return state.bound.size() < k
                         ? std::numeric_limits<double>::infinity()
                         : state.bound.front();
            },
            [&](std::size_t m, std::size_t i, double key) {
              states[requests[g.begin + m].second].PushPoint(key, block.ids[i],
                                                             k);
            },
            sweeps.data(), approx.sweep_factor);
        for (std::size_t m = 0; m < members; ++m) {
          const std::size_t qi = requests[g.begin + m].second;
          DiskStats& s = (*accs)[qi].slot(slot);
          s.distance_computations += sweeps[m].exact_distances;
          s.quantized_pruned += sweeps[m].quantized_pruned;
          s.base_pruned += sweeps[m].base_pruned;
          s.prefix_pruned += sweeps[m].prefix_pruned;
          s.sq8_pruned += sweeps[m].sq8_pruned;
          s.reranked += sweeps[m].reranked;
          s.leaf_bytes_scanned += sweeps[m].leaf_bytes_scanned;
          s.approx_pruned_exactly += sweeps[m].approx_pruned_exactly;
          s.block_kernel_invocations += 1;
          Advance(&states[qi], k, metric, approx.node_factor);
        }
      } else {
        for (std::size_t m = 0; m < members; ++m) {
          const std::size_t qi = requests[g.begin + m].second;
          const PointView qv = queries[qi];
          QueryState& state = states[qi];
          {
            ScopedPhase phase(Phase::kDescent);
            // Fast path: children whose MINDIST strictly exceeds the
            // member's running k-th-best cutoff can never pop before the
            // k-th result and are dropped before heap insertion. Ties
            // MUST still push to preserve the pop sequence (see HsKnn).
            // Exact cut first (keeps cutoff_skipped_nodes' exact-path
            // meaning), then the approximate tier's relaxed cut — same
            // two-step as HsKnn's descent.
            const double cut = state.Cutoff(k);
            const double rcut = approx.node_factor > 1.0
                                    ? cut / approx.node_factor
                                    : cut;
            for (const NodeEntry& e : node.entries) {
              double key;
              if (MinDistExceeds(e.rect, qv, metric, cut, &key)) {
                ++state.cutoff_skipped_nodes;
                continue;
              }
              if (approx.node_factor > 1.0 && key > rcut) {
                ++state.approx_skipped_nodes;
                continue;
              }
              state.Push(QueryState::Item{key, false, e.child});
            }
          }
          Advance(&state, k, metric, approx.node_factor);
        }
      }
    };
    if (pool != nullptr && groups.size() > 1) {
      pool->ParallelFor(0, groups.size(), expand);
    } else {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) expand(gi);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Frontier traffic books into the query's host slot — the same sink
    // HsKnn's RecordFrontier uses for single-query execution.
    DiskStats& hs = (*accs)[i].slot((*accs)[i].num_slots() - 1);
    hs.frontier_pushes += states[i].frontier_pushes;
    hs.frontier_pops += states[i].frontier_pops;
    hs.cutoff_skipped_nodes += states[i].cutoff_skipped_nodes;
    hs.approx_skipped_nodes += states[i].approx_skipped_nodes;
    results[i] = std::move(states[i].result);
  }
  return results;
}

}  // namespace parsim
