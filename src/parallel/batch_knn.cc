#include "src/parallel/batch_knn.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/util/check.h"

namespace parsim {

namespace {

/// One query's best-first search, pausable at node fetches. The queue
/// holds nodes (is_point == false) keyed by MINDIST and data points keyed
/// by their actual distance, both in the Comparable scale — the exact
/// structure of HsKnn (src/index/knn.cc), so the push/pop sequence (and
/// with it the result) matches the single-query path bit for bit.
struct QueryState {
  struct Item {
    double key;
    bool is_point;
    std::uint32_t ref;  // NodeId or PointId
  };
  struct GreaterKey {
    bool operator()(const Item& a, const Item& b) const {
      return a.key > b.key;
    }
  };
  std::priority_queue<Item, std::vector<Item>, GreaterKey> queue;
  /// Max-heap of the k smallest point keys pushed so far — HsKnn's
  /// pruning bound. Points beyond it can never pop before the k-th
  /// result does, so skipping them is invisible to the pop sequence but
  /// keeps the frontier small enough that a 64-wide round stays cache
  /// resident.
  std::vector<double> bound;
  KnnResult result;
  /// The node the frontier needs next; kInvalidNodeId while none.
  NodeId request = kInvalidNodeId;
  bool done = false;

  void PushPoint(double key, std::uint32_t id, std::size_t k) {
    if (bound.size() < k) {
      bound.push_back(key);
      std::push_heap(bound.begin(), bound.end());
    } else if (key > bound.front()) {
      return;
    } else if (key < bound.front()) {
      std::pop_heap(bound.begin(), bound.end());
      bound.back() = key;
      std::push_heap(bound.begin(), bound.end());
    }
    queue.push(Item{key, true, id});
  }
};

/// Replays HsKnn's main loop until the query finishes or needs a node:
/// points pop into the result, the first node item pauses the query with
/// `request` set (the round scheduler fetches and expands it).
void Advance(QueryState* q, std::size_t k, const Metric& metric) {
  q->request = kInvalidNodeId;
  while (q->result.size() < k && !q->queue.empty()) {
    const QueryState::Item item = q->queue.top();
    q->queue.pop();
    if (item.is_point) {
      q->result.push_back(Neighbor{item.ref, metric.FromComparable(item.key)});
      continue;
    }
    q->request = item.ref;
    return;
  }
  q->done = true;
}

}  // namespace

std::vector<KnnResult> CoalescedHsBatch(
    const TreeBase& tree, const PointSet& queries, std::size_t k,
    const Metric& metric, std::vector<QueryCostAccumulator>* accs,
    ThreadPool* pool) {
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(accs != nullptr && accs->size() == queries.size());
  const std::size_t n = queries.size();
  const std::size_t dim = queries.dim();
  std::vector<KnnResult> results(n);
  if (n == 0) return results;
  PARSIM_CHECK(dim == tree.dim());

  std::vector<QueryState> states(n);
  if (tree.root_id() != kInvalidNodeId) {
    for (std::size_t i = 0; i < n; ++i) {
      states[i].queue.push(
          QueryState::Item{0.0, false, tree.root_id()});
      Advance(&states[i], k, metric);
    }
  } else {
    for (QueryState& s : states) s.done = true;
  }

  struct Group {
    NodeId node;
    // Indices into `requests` delimiting this group's members.
    std::size_t begin;
    std::size_t end;
    const Node* accessed = nullptr;
    TreeBase::DiskRoute route;
  };
  std::vector<std::pair<NodeId, std::size_t>> requests;  // (node, query)
  requests.reserve(n);
  std::vector<Group> groups;
  groups.reserve(n);

  for (;;) {
    requests.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (!states[i].done) requests.emplace_back(states[i].request, i);
    }
    if (requests.empty()) break;
    // Ascending (node id, query index): the grouping — and with it the
    // buffer-pool access order below — is a pure function of the
    // frontiers, so the whole schedule is deterministic at any thread
    // count.
    std::sort(requests.begin(), requests.end());
    groups.clear();
    for (std::size_t i = 0; i < requests.size();) {
      std::size_t j = i;
      while (j < requests.size() && requests[j].first == requests[i].first) {
        ++j;
      }
      groups.push_back(Group{requests[i].first, i, j, nullptr, {}});
      i = j;
    }

    // Phase 1 (serial): each group fetches its node once. The leader —
    // the group's lowest query index — pays the read through the normal
    // buffered, fault-aware path; every other member books the pages it
    // was spared as coalesced_pages (plus its share of the degraded-read
    // accounting, which stays per-query). This is the only phase that
    // touches shared state (the buffer-pool LRU), so running it in sorted
    // group order keeps buffered costs reproducible. Retry penalties of a
    // failed primary (failed_read_attempts) are paid once per group by
    // the leader — coalescing collapses the per-query retry storm by
    // design.
    for (Group& g : groups) {
      const std::size_t leader = requests[g.begin].second;
      {
        ScopedCostCapture capture(&(*accs)[leader]);
        g.accessed = &tree.AccessNode(g.node);
      }
      g.route = tree.ResolveRoute(*g.accessed);
      const std::size_t slot = g.route.disk->id();
      for (std::size_t m = g.begin + 1; m < g.end; ++m) {
        DiskStats& s = (*accs)[requests[m].second].slot(slot);
        s.coalesced_pages += g.accessed->pages;
        if (g.route.failover) s.replica_pages_read += g.accessed->pages;
        if (g.route.unavailable) s.unavailable_pages += g.accessed->pages;
      }
    }

    // Phase 2 (parallelizable): expand each group into its members'
    // frontiers. Every query sits in exactly one group per round, so
    // groups touch disjoint states/accumulators; leaf blocks come from
    // the tree's concurrent-read-safe cache.
    const auto expand = [&](std::size_t gi) {
      const Group& g = groups[gi];
      const Node& node = *g.accessed;
      const std::size_t members = g.end - g.begin;
      const std::size_t slot = g.route.disk->id();
      if (node.IsLeaf()) {
        const LeafBlock& block = tree.LeafBlockOf(node);
        // One many-to-many kernel call scores every member query against
        // every point of the page (uint8 q x n reduction first on a
        // quantized block, with per-member bound pruning — see
        // src/index/leaf_sweep.h). Scratch is thread-local: the rounds
        // allocate nothing in steady state.
        thread_local std::vector<Scalar> qbuf;
        thread_local std::vector<LeafSweepStats> sweeps;
        qbuf.resize(members * dim);
        for (std::size_t m = 0; m < members; ++m) {
          const PointView qv = queries[requests[g.begin + m].second];
          std::copy(qv.begin(), qv.end(), qbuf.data() + m * dim);
        }
        sweeps.assign(members, LeafSweepStats{});
        SweepLeafBlockMany(
            block, qbuf.data(), members, metric,
            [&](std::size_t m) {
              // Member m's running k-th best point key — HsKnn's bound.
              // Emits only tighten m's own bound, so reading it per
              // candidate matches the single-query sweep exactly.
              const QueryState& state = states[requests[g.begin + m].second];
              return state.bound.size() < k
                         ? std::numeric_limits<double>::infinity()
                         : state.bound.front();
            },
            [&](std::size_t m, std::size_t i, double key) {
              states[requests[g.begin + m].second].PushPoint(key, block.ids[i],
                                                             k);
            },
            sweeps.data());
        for (std::size_t m = 0; m < members; ++m) {
          const std::size_t qi = requests[g.begin + m].second;
          DiskStats& s = (*accs)[qi].slot(slot);
          s.distance_computations += sweeps[m].exact_distances;
          s.quantized_pruned += sweeps[m].quantized_pruned;
          s.reranked += sweeps[m].reranked;
          s.leaf_bytes_scanned += sweeps[m].leaf_bytes_scanned;
          s.block_kernel_invocations += 1;
          Advance(&states[qi], k, metric);
        }
      } else {
        for (std::size_t m = 0; m < members; ++m) {
          const std::size_t qi = requests[g.begin + m].second;
          const PointView qv = queries[qi];
          QueryState& state = states[qi];
          for (const NodeEntry& e : node.entries) {
            state.queue.push(QueryState::Item{
                MinDistComparable(e.rect, qv, metric), false, e.child});
          }
          Advance(&state, k, metric);
        }
      }
    };
    if (pool != nullptr && groups.size() > 1) {
      pool->ParallelFor(0, groups.size(), expand);
    } else {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) expand(gi);
    }
  }

  for (std::size_t i = 0; i < n; ++i) results[i] = std::move(states[i].result);
  return results;
}

}  // namespace parsim
