#include "src/parallel/batch_knn.h"

#include "src/parallel/round_scheduler.h"
#include "src/util/check.h"

namespace parsim {

// A closed batch is the degenerate schedule of the round scheduler: admit
// every query up front (slots in query order, so the (node, slot) fetch
// order matches the historical (node, query-index) order exactly), run
// rounds until every frontier drains, take the results. No budgets, no
// deadlines — all the numbers are bit-identical to the pre-scheduler
// implementation, which tests/golden_stats_test.cc pins.
std::vector<KnnResult> CoalescedHsBatch(
    const TreeBase& tree, const PointSet& queries, std::size_t k,
    const Metric& metric, std::vector<QueryCostAccumulator>* accs,
    ThreadPool* pool, PhaseAccumulator* phases, const ApproxContext& approx) {
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(accs != nullptr && accs->size() == queries.size());
  const std::size_t n = queries.size();
  std::vector<KnnResult> results(n);
  if (n == 0) return results;
  PARSIM_CHECK(queries.dim() == tree.dim());

  HsRoundScheduler scheduler(tree, metric, approx, phases);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = scheduler.Add(queries[i], k, &(*accs)[i]);
    PARSIM_CHECK(slot == i);  // fresh scheduler hands out slots in order
  }
  while (scheduler.Step(pool) > 0) {
  }
  for (std::size_t i = 0; i < n; ++i) results[i] = scheduler.Take(i);
  return results;
}

}  // namespace parsim
