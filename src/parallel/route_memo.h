// Packing of the shared-tree engine's memoized leaf route (see
// ParallelSearchEngine::RouteLeaf): one atomic word per node id caching
// the geometry-derived part of a leaf's disk route.
//
//   bit  63     valid flag
//   bits 16..47 replica bucket (32 bits)
//   bits  0..15 primary disk id (16 bits)
//
// Both fields are range-guarded: a value that does not fit its field is
// NOT cached (Pack returns 0, an invalid word) rather than silently
// truncated — an oversized bucket shifted into bits 16..47 would
// otherwise spill into the reserved bits and, at bit 47 of the bucket,
// clobber the valid flag itself. Routing stays correct either way; an
// unpackable route just recomputes per access.
//
// The helpers take the widest plausible types so the guards stay
// meaningful if DiskId or BucketId are ever widened.

#ifndef PARSIM_SRC_PARALLEL_ROUTE_MEMO_H_
#define PARSIM_SRC_PARALLEL_ROUTE_MEMO_H_

#include <cstdint>

namespace parsim {
namespace route_memo {

inline constexpr std::uint64_t kValidBit = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kPrimaryBits = 16;
inline constexpr std::uint64_t kBucketBits = 32;

/// True iff both fields fit their bit ranges and the word can be cached.
constexpr bool Fits(std::uint64_t primary, std::uint64_t bucket) {
  return primary < (std::uint64_t{1} << kPrimaryBits) &&
         bucket < (std::uint64_t{1} << kBucketBits);
}

/// The packed valid word, or 0 (an invalid word — bit 63 clear) when a
/// field does not fit. Callers skip caching on 0.
constexpr std::uint64_t Pack(std::uint64_t primary, std::uint64_t bucket) {
  return Fits(primary, bucket)
             ? kValidBit | (bucket << kPrimaryBits) | primary
             : std::uint64_t{0};
}

constexpr bool IsValid(std::uint64_t packed) {
  return (packed & kValidBit) != 0;
}

constexpr std::uint64_t PrimaryOf(std::uint64_t packed) {
  return packed & ((std::uint64_t{1} << kPrimaryBits) - 1);
}

constexpr std::uint64_t BucketOf(std::uint64_t packed) {
  return (packed >> kPrimaryBits) & ((std::uint64_t{1} << kBucketBits) - 1);
}

}  // namespace route_memo
}  // namespace parsim

#endif  // PARSIM_SRC_PARALLEL_ROUTE_MEMO_H_
