// All-pairs ε-similarity self-join over the shared X-tree: every
// unordered pair of stored points within distance epsilon of each other
// (inclusive, matching BallQuery), as one bulk workload instead of n
// ball queries.
//
// The join runs in four deterministic stages (see DESIGN.md "All-pairs
// similarity join"):
//
//   1. Enumerate: descend the directory once (each directory page read
//      and charged once to the query host) and list every non-empty
//      leaf with its MBR — taken from the parent's entry, so no data
//      page is touched yet.
//   2. Prune: a leaf pair (i, j), i <= j, survives iff the rect-rect
//      MINDIST of their MBRs (MinDistComparable, comparable scale) is
//      at most ToComparable(epsilon). A parent-level prefilter runs
//      first — parent MBRs contain their children's, so a pruned parent
//      pair losslessly prunes all its leaf pairs without testing them.
//   3. Fetch: each distinct leaf involved in any surviving pair is read
//      ONCE, in ascending node-id order (the leader pays the faulted /
//      buffered read, as in the coalesced batch scheduler); every
//      additional pair that shares the leaf books coalesced_pages
//      instead of a second read.
//   4. Sweep: pairs are grouped into block rows — row i owns every pair
//      (i, j) with j >= i (Özkural & Aykanat's 1-D owner-computes
//      decomposition, each pair computed exactly once) — and the rows
//      fan out over the thread pool, ordered round-robin across the
//      owning disks so the declustered load stays even. On a quantized
//      tree the sweep runs over per-GROUP codebooks: the sorted leaf
//      list is cut into contiguous runs of bounded row count (leaf
//      order follows the bulk-load space-filling pack, so each group
//      covers a compact region and its SQ8 lattice stays tight), every
//      group's rows are gathered and coded once up front, and an
//      owner's consecutive candidate leaves within one group merge into
//      a single kernel run. Own-group runs sweep the symmetric triangle
//      / tail; foreign-group runs code the owner's rows on that group's
//      lattice once and reuse them for every pair in the group. Each
//      candidate run goes through a fused prune kernel (Sq8ManyUnder:
//      reduction + fixed-epsilon cutoff test in-register, survivor
//      indices out) followed by an exact float re-rank of survivors;
//      a per-row MINDIST test against the run's merged MBR skips rows
//      whose base bound already clears the threshold. Non-quantized
//      trees take the exact block sweeps (SweepLeafBlockSelf / Many).
//
// Determinism: the emitted pair list is sorted by (a, b) and every
// counter is a sum of per-row integer contributions merged in row order,
// so results AND stats are invariant across thread counts.

#ifndef PARSIM_SRC_PARALLEL_JOIN_H_
#define PARSIM_SRC_PARALLEL_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/index/tree_base.h"
#include "src/io/cost_capture.h"
#include "src/util/phase_timer.h"
#include "src/util/thread_pool.h"

namespace parsim {

/// One emitted join pair: a < b always (ids are normalized), distance is
/// the real (not comparable-scale) distance, <= epsilon.
struct JoinPair {
  PointId a = kInvalidPointId;
  PointId b = kInvalidPointId;
  double distance = 0.0;

  friend bool operator==(const JoinPair& x, const JoinPair& y) {
    return x.a == y.a && x.b == y.b && x.distance == y.distance;
  }
  friend bool operator<(const JoinPair& x, const JoinPair& y) {
    if (x.a != y.a) return x.a < y.a;
    if (x.b != y.b) return x.b < y.b;
    return x.distance < y.distance;
  }
};

/// Per-join knobs (the engine's EngineOptions supplies everything else:
/// metric, quantization, cascade, buffering, faults).
struct JoinOptions {
  /// Worker threads for the sweep stage; 0 = the engine's
  /// parallel_workers, 1 = serial. Results and stats are identical at
  /// any value.
  unsigned threads = 0;
  /// Attribute wall-clock time to phases for this join even when the
  /// engine was built without profile_phases.
  bool profile_phases = false;
};

/// What the join did, in the same two currencies as QueryStats:
/// simulated cost (pages, distances, derived times) plus workload
/// counters. All counters are thread-count invariant.
struct JoinStats {
  /// Non-empty leaf blocks of the tree (== the number of self block
  /// pairs, every one of which is swept: MINDIST(i,i) = 0).
  std::uint64_t leaf_blocks = 0;
  /// All unordered leaf-block pairs incl. self: L * (L + 1) / 2.
  std::uint64_t block_pairs_considered = 0;
  /// Pairs whose MBR MINDIST exceeded ToComparable(epsilon) — skipped
  /// without touching any page (whether individually tested or killed
  /// wholesale by the parent-level prefilter).
  std::uint64_t block_pairs_pruned = 0;
  /// Pairs actually swept: considered - pruned.
  std::uint64_t block_pairs_swept = 0;
  /// Point pairs emitted (each exactly once, a < b).
  std::uint64_t pairs_emitted = 0;

  // Simulated I/O, derived from the same accumulator protocol as
  // QueryStats. Page conservation under coalescing: every swept pair
  // touches its one (self) or two (cross) blocks, so on a healthy,
  // unbuffered engine
  //     total_pages + buffer_hit_pages + coalesced_reads
  //         == sum over swept pairs of their blocks' pages,
  // and total_pages + buffer_hit_pages counts each distinct leaf once.
  std::uint64_t total_pages = 0;
  std::uint64_t directory_pages = 0;
  std::uint64_t max_pages = 0;
  std::uint64_t buffer_hit_pages = 0;
  /// Data-page reads spared because an earlier pair of this join already
  /// paid for the block's fetch (the leader-pays scheme of PR 4).
  std::uint64_t coalesced_reads = 0;
  std::uint64_t replica_pages = 0;
  std::uint64_t failed_read_attempts = 0;
  std::uint64_t unavailable_pages = 0;
  bool degraded = false;

  // Sweep accounting (same fields as QueryStats; exact_distances is the
  // float kernel evaluations, i.e. all candidate pairs on the exact
  // path, re-ranked survivors on the quantized path).
  std::uint64_t exact_distances = 0;
  std::uint64_t quantized_pruned = 0;
  std::uint64_t base_pruned = 0;
  std::uint64_t prefix_pruned = 0;
  std::uint64_t sq8_pruned = 0;
  std::uint64_t reranked = 0;
  std::uint64_t leaf_bytes_scanned = 0;
  std::uint64_t block_kernel_invocations = 0;

  /// Simulated times under the paper's rule (host directory work plus
  /// the slowest disk), derived from the accumulator exactly like a
  /// query's.
  double parallel_ms = 0.0;
  double sum_ms = 0.0;
  double balance = 1.0;

  /// Wall-clock phase breakdown (zero unless profiling was requested).
  PhaseBreakdown phases;
};

/// A self-join run plus its stats. `pairs` is sorted by (a, b).
struct JoinResult {
  std::vector<JoinPair> pairs;
  JoinStats stats;
};

/// The join machinery over one shared tree. The engine's SelfJoin wraps
/// this with its accumulator/stats plumbing; tests can also drive it
/// directly against a TreeBase.
class SimilarityJoin {
 public:
  /// `tree` must outlive the join. Its installed node-disk resolver
  /// decides where charges land (the shared-tree engine routes leaves to
  /// their declustered disks and directory pages to the host).
  SimilarityJoin(const TreeBase& tree, const Metric& metric);

  /// Runs the join. Simulated charges (directory reads, leader-paid leaf
  /// fetches, coalesced bookings, sweep CPU) land in `acc`; workload
  /// counters in `*stats` (the caller derives times from `acc`).
  /// `pool` may be nullptr (serial). `phases` may be nullptr (no
  /// wall-clock attribution). Returns the sorted pair list.
  std::vector<JoinPair> Run(double epsilon, QueryCostAccumulator* acc,
                            ThreadPool* pool, PhaseAccumulator* phases,
                            JoinStats* stats) const;

 private:
  const TreeBase& tree_;
  Metric metric_;
};

/// O(n^2) linear-scan oracle: every unordered pair of `points` (ids are
/// positions) within `epsilon` (inclusive), sorted by (a, b). The test
/// reference for SelfJoin.
std::vector<JoinPair> BruteForceSelfJoin(const PointSet& points,
                                         double epsilon,
                                         const Metric& metric = Metric());

}  // namespace parsim

#endif  // PARSIM_SRC_PARALLEL_JOIN_H_
