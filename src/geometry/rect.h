// Hyper-rectangles (minimum bounding rectangles) and the MINDIST /
// MINMAXDIST machinery of R-tree-family nearest-neighbor search
// (Roussopoulos et al., SIGMOD'95), used by both k-NN algorithms and by
// the bucket/quadrant model of the declusterer.

#ifndef PARSIM_SRC_GEOMETRY_RECT_H_
#define PARSIM_SRC_GEOMETRY_RECT_H_

#include <string>
#include <vector>

#include "src/geometry/point.h"

namespace parsim {

/// An axis-aligned d-dimensional rectangle [lo_0,hi_0] x ... x [lo_{d-1},
/// hi_{d-1}]. Degenerate rectangles (lo == hi in some dimension) are legal;
/// lo <= hi is enforced per dimension on construction and mutation.
class Rect {
 public:
  Rect() = default;

  /// The empty rectangle of the given dimension: lo=+inf, hi=-inf per
  /// dimension, the identity of ExtendToInclude.
  static Rect Empty(std::size_t dim);

  /// The unit data space [0,1]^d the paper assumes (Section 2).
  static Rect UnitCube(std::size_t dim);

  /// A degenerate rectangle around one point.
  static Rect AroundPoint(PointView p);

  Rect(std::vector<Scalar> lo, std::vector<Scalar> hi);

  std::size_t dim() const { return lo_.size(); }

  Scalar lo(std::size_t i) const { return lo_[i]; }
  Scalar hi(std::size_t i) const { return hi_[i]; }
  PointView lo() const { return {lo_.data(), lo_.size()}; }
  PointView hi() const { return {hi_.data(), hi_.size()}; }

  /// True iff no point is contained (any lo_i > hi_i).
  bool IsEmpty() const;

  bool Contains(PointView p) const;
  bool ContainsRect(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  /// Grows this rectangle minimally to include `p` / `other`.
  void ExtendToInclude(PointView p);
  void ExtendToInclude(const Rect& other);

  /// The MBR of the union of two rectangles.
  static Rect Union(const Rect& a, const Rect& b);

  /// The intersection (possibly empty).
  static Rect Intersection(const Rect& a, const Rect& b);

  /// Product of side lengths. 0 for empty.
  double Volume() const;

  /// Sum of side lengths (the R*-tree margin criterion).
  double Margin() const;

  /// Volume of the intersection with `other` (the R*-tree overlap
  /// criterion); 0 when disjoint.
  double OverlapVolume(const Rect& other) const;

  /// Center point (midpoint per dimension).
  Point Center() const;

  /// MINDIST: distance from `p` to the closest point of the rectangle;
  /// 0 when p is inside. Lower bound for the distance from p to any
  /// object contained in the rectangle. Returned in the *squared* L2
  /// scale to match Metric::Comparable for L2.
  double SquaredMinDist(PointView p) const;

  /// Rect-to-rect MINDIST: squared L2 distance between the closest pair
  /// of points of the two rectangles; 0 when they intersect. Lower bound
  /// for the distance between any object of this rectangle and any
  /// object of `other` — the block-pair pruning predicate of the
  /// all-pairs similarity join. Squared scale, matching the point
  /// overload and Metric::Comparable for L2.
  double SquaredMinDist(const Rect& other) const;

  /// MINMAXDIST: the minimum over dimensions of the maximal distance to
  /// the nearer face; an upper bound for the distance from `p` to the
  /// nearest object inside a *non-empty* rectangle (Roussopoulos et al.).
  /// Returned in the squared L2 scale.
  double SquaredMinMaxDist(PointView p) const;

  /// True iff the rectangle intersects the closed L2 ball
  /// B(center, radius). This is the "page intersects the NN-sphere"
  /// predicate of Section 3.1.
  bool IntersectsBall(PointView center, double radius) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string ToString() const;

 private:
  std::vector<Scalar> lo_;
  std::vector<Scalar> hi_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_GEOMETRY_RECT_H_
