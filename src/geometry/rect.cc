#include "src/geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace parsim {

Rect Rect::Empty(std::size_t dim) {
  Rect r;
  r.lo_.assign(dim, std::numeric_limits<Scalar>::infinity());
  r.hi_.assign(dim, -std::numeric_limits<Scalar>::infinity());
  return r;
}

Rect Rect::UnitCube(std::size_t dim) {
  Rect r;
  r.lo_.assign(dim, 0);
  r.hi_.assign(dim, 1);
  return r;
}

Rect Rect::AroundPoint(PointView p) {
  Rect r;
  r.lo_.assign(p.begin(), p.end());
  r.hi_.assign(p.begin(), p.end());
  return r;
}

Rect::Rect(std::vector<Scalar> lo, std::vector<Scalar> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  PARSIM_CHECK(lo_.size() == hi_.size());
  for (std::size_t i = 0; i < lo_.size(); ++i) PARSIM_CHECK(lo_[i] <= hi_[i]);
}

bool Rect::IsEmpty() const {
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (lo_[i] > hi_[i]) return true;
  }
  return lo_.empty();
}

bool Rect::Contains(PointView p) const {
  PARSIM_DCHECK(p.size() == dim());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& other) const {
  PARSIM_DCHECK(other.dim() == dim());
  if (other.IsEmpty()) return true;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  PARSIM_DCHECK(other.dim() == dim());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

void Rect::ExtendToInclude(PointView p) {
  PARSIM_DCHECK(p.size() == dim());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    lo_[i] = std::min(lo_[i], p[i]);
    hi_[i] = std::max(hi_[i], p[i]);
  }
}

void Rect::ExtendToInclude(const Rect& other) {
  PARSIM_DCHECK(other.dim() == dim());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.ExtendToInclude(b);
  return out;
}

Rect Rect::Intersection(const Rect& a, const Rect& b) {
  PARSIM_DCHECK(a.dim() == b.dim());
  Rect out = Rect::Empty(a.dim());
  for (std::size_t i = 0; i < a.dim(); ++i) {
    out.lo_[i] = std::max(a.lo_[i], b.lo_[i]);
    out.hi_[i] = std::min(a.hi_[i], b.hi_[i]);
    if (out.lo_[i] > out.hi_[i]) return Rect::Empty(a.dim());
  }
  return out;
}

double Rect::Volume() const {
  if (IsEmpty()) return 0.0;
  double v = 1.0;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    v *= static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return v;
}

double Rect::Margin() const {
  if (IsEmpty()) return 0.0;
  double m = 0.0;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    m += static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return m;
}

double Rect::OverlapVolume(const Rect& other) const {
  return Intersection(*this, other).Volume();
}

Point Rect::Center() const {
  Point c(dim());
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    c[i] = static_cast<Scalar>(
        (static_cast<double>(lo_[i]) + static_cast<double>(hi_[i])) / 2.0);
  }
  return c;
}

double Rect::SquaredMinDist(PointView p) const {
  PARSIM_DCHECK(p.size() == dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    // Branch-free select of the per-dimension gap: exactly one of
    // {lo - p, p - hi, 0} is positive (or all are <= 0, inside the
    // slab), so the max IS the value the branchy form picks — same
    // double, same accumulation order, only without the two
    // data-dependent branches per dimension that mispredict on
    // interior-node descent.
    const double below =
        static_cast<double>(lo_[i]) - static_cast<double>(p[i]);
    const double above =
        static_cast<double>(p[i]) - static_cast<double>(hi_[i]);
    const double diff = std::max(std::max(below, above), 0.0);
    sum += diff * diff;
  }
  return sum;
}

double Rect::SquaredMinDist(const Rect& other) const {
  PARSIM_DCHECK(other.dim() == dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    // Branch-free per-dimension slab gap, mirroring the point overload:
    // at most one of {other.lo - hi, lo - other.hi} is positive (the
    // intervals are disjoint in this dimension with `other` above or
    // below); when the intervals overlap both are <= 0 and the max
    // clamps to 0.
    const double below =
        static_cast<double>(lo_[i]) - static_cast<double>(other.hi_[i]);
    const double above =
        static_cast<double>(other.lo_[i]) - static_cast<double>(hi_[i]);
    const double diff = std::max(std::max(below, above), 0.0);
    sum += diff * diff;
  }
  return sum;
}

double Rect::SquaredMinMaxDist(PointView p) const {
  PARSIM_DCHECK(p.size() == dim());
  PARSIM_DCHECK(!IsEmpty());
  // After Roussopoulos/Kelley/Vincent: for each dimension k choose the
  // nearer face in k and the farther face in every other dimension; take
  // the minimum over k.
  const std::size_t d = dim();
  // Precompute per-dimension squared distances to the nearer (rm) and
  // farther (rM) faces.
  double total_far = 0.0;
  std::vector<double> near_sq(d), far_sq(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double pi = static_cast<double>(p[i]);
    const double lo = static_cast<double>(lo_[i]);
    const double hi = static_cast<double>(hi_[i]);
    const double mid = (lo + hi) / 2.0;
    const double rm = (pi <= mid) ? lo : hi;  // nearer face
    const double rM = (pi >= mid) ? lo : hi;  // farther face
    near_sq[i] = (pi - rm) * (pi - rm);
    far_sq[i] = (pi - rM) * (pi - rM);
    total_far += far_sq[i];
  }
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < d; ++k) {
    const double candidate = total_far - far_sq[k] + near_sq[k];
    best = std::min(best, candidate);
  }
  return best;
}

bool Rect::IntersectsBall(PointView center, double radius) const {
  PARSIM_DCHECK(radius >= 0.0);
  return SquaredMinDist(center) <= radius * radius;
}

std::string Rect::ToString() const {
  std::string out = "[";
  char buf[64];
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    if (i > 0) out += " x ";
    std::snprintf(buf, sizeof(buf), "[%g,%g]", static_cast<double>(lo_[i]),
                  static_cast<double>(hi_[i]));
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace parsim
