#include "src/geometry/sq8.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARSIM_SQ8_X86 1
#include <immintrin.h>
#endif

namespace parsim {

namespace {

/// Relative inflation applied to measured errors and folded slacks:
/// large against the ~2e-16-per-op roundings it absorbs, invisible
/// against the err ~ scale/2 the quantization itself concedes.
constexpr double kRelGuard = 1e-12;

/// Absolute guard factor on the reconstruction magnitude |lo| + 255 *
/// scale: about 9 ulps, covering the (at most two) roundings inside the
/// Recon expression. Essential when the data sits exactly on the lattice
/// (measured error 0) at a large offset, where a relative guard on the
/// measured error alone guards nothing.
constexpr double kReconUlps = 1e-15;

std::uint8_t EncodeClamped(double value, double lo, double inv_scale) {
  const double u = (value - lo) * inv_scale;
  if (u <= 0.0) return 0;
  if (u >= 255.0) return 255;
  return static_cast<std::uint8_t>(std::lround(u));
}

// ---------------------------------------------------------------------
// Query preparation runs once per (query, block) pair, which makes it a
// fixed cost the quantized sweep pays before any candidate is pruned —
// at typical leaf sizes a naive scalar loop here costs as much as the
// integer kernel pass it enables. The hot loop below is therefore
// defined as a 4-lane strip algorithm (four independent accumulators,
// folded once at the end) that the AVX2 path evaluates with exactly the
// same IEEE operations per lane as the scalar fallback: sub, mul,
// min/max, floor(x + 0.5), add — no FMA contraction (t * t is computed
// as a separate statement so the compiler cannot fuse it either). Both
// paths produce bit-identical codes and slacks on every platform.
//
// The per-dim encode is floor(clamp(u, 0, 255) + 0.5) — identical to
// round-half-up of the clamped scaled offset, and exactly expressible in
// both scalar floor() and _mm256_floor_pd.
// ---------------------------------------------------------------------

/// 4-lane fold state of the strip loop. Lane l accumulates dims
/// j = 4k + l; FoldSlack / FoldBase combine lanes in a fixed tree order.
struct FoldAccum {
  double sum[4] = {0.0, 0.0, 0.0, 0.0};
  double sum_sq[4] = {0.0, 0.0, 0.0, 0.0};
  double max_t[4] = {0.0, 0.0, 0.0, 0.0};
  // Out-of-range gap terms (see Sq8Bound): per-metric folds of the
  // clamped dimensions' contributions, zero for in-range dimensions.
  double g_l1[4] = {0.0, 0.0, 0.0, 0.0};
  double g_l2[4] = {0.0, 0.0, 0.0, 0.0};
  double g_max[4] = {0.0, 0.0, 0.0, 0.0};
};

/// One dimension's contribution to the prepared query.
struct DimTerms {
  double t;      // |q'_j - Recon(c_j)| + err_j, q' the clamped query
  double g_l1;   // gap - 2 err   (clamped dims; else 0)
  double g_l2;   // gap^2 - 2 gap err
  double g_max;  // gap - err
};

/// Canonical per-dim op: clamps the query coordinate to the lattice
/// range when it overshoots by more than 2 err (recording the gap
/// terms), encodes it, and returns t_j against the clamped coordinate.
/// The AVX2 path evaluates these exact IEEE operations per lane
/// (branches become blends, the gap terms are computed unconditionally
/// and masked to zero for in-range lanes — same values either way).
inline DimTerms EncodeDim(double q, double lo_j, double err_j,
                          double inv_scale, double scale,
                          std::uint8_t* code_out) {
  const double recon_hi = lo_j + 255.0 * scale;
  const double gap_hi = q - recon_hi;
  const double gap_lo = lo_j - q;
  const double err2 = err_j + err_j;
  double qq = q;
  double g = 0.0;
  bool outside = false;
  if (gap_hi > err2) {
    qq = recon_hi;
    g = gap_hi;
    outside = true;
  } else if (gap_lo > err2) {
    qq = lo_j;
    g = gap_lo;
    outside = true;
  }
  const double u = (qq - lo_j) * inv_scale;
  const double clamped = std::min(std::max(u, 0.0), 255.0);
  const double c = std::floor(clamped + 0.5);
  *code_out = static_cast<std::uint8_t>(c);
  const double recon = lo_j + c * scale;
  DimTerms terms;
  terms.t = std::abs(qq - recon) + err_j;
  if (outside) {
    terms.g_l1 = g - err2;
    const double gg = g * g;
    const double ge = err2 * g;
    terms.g_l2 = gg - ge;
    terms.g_max = g - err_j;
  } else {
    terms.g_l1 = 0.0;
    terms.g_l2 = 0.0;
    terms.g_max = 0.0;
  }
  return terms;
}

/// Accumulates only the lane arrays metric `K` folds — preparation is
/// the fixed per-(member, block) cost of the quantized sweep, and a
/// third of the accumulator work is live for any one metric. The
/// untouched arrays stay at their zero init, so the fold functions below
/// read well-defined values regardless of K.
template <MetricKind K>
inline void AccumulateLane(FoldAccum* acc, std::size_t lane,
                           const DimTerms& terms) {
  const double t = terms.t;
  if constexpr (K == MetricKind::kL1) {
    acc->sum[lane] += t;
    acc->g_l1[lane] += terms.g_l1;
  } else if constexpr (K == MetricKind::kL2) {
    const double tt = t * t;
    acc->sum_sq[lane] += tt;
    acc->g_l2[lane] += terms.g_l2;
  } else {
    acc->max_t[lane] = std::max(acc->max_t[lane], t);
    acc->g_max[lane] = std::max(acc->g_max[lane], terms.g_max);
  }
}

/// Folds the 4 lanes in a fixed tree order and applies the per-metric
/// slack reduction.
double FoldSlack(const FoldAccum& acc, MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return (acc.sum[0] + acc.sum[1]) + (acc.sum[2] + acc.sum[3]);
    case MetricKind::kL2:
      return std::sqrt((acc.sum_sq[0] + acc.sum_sq[1]) +
                       (acc.sum_sq[2] + acc.sum_sq[3]));
    case MetricKind::kLmax:
      return std::max(std::max(acc.max_t[0], acc.max_t[1]),
                      std::max(acc.max_t[2], acc.max_t[3]));
  }
  PARSIM_UNREACHABLE();
}

/// Folds the out-of-range gap lanes for `kind`, same tree order.
double FoldBase(const FoldAccum& acc, MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return (acc.g_l1[0] + acc.g_l1[1]) + (acc.g_l1[2] + acc.g_l1[3]);
    case MetricKind::kL2:
      return (acc.g_l2[0] + acc.g_l2[1]) + (acc.g_l2[2] + acc.g_l2[3]);
    case MetricKind::kLmax:
      return std::max(std::max(acc.g_max[0], acc.g_max[1]),
                      std::max(acc.g_max[2], acc.g_max[3]));
  }
  PARSIM_UNREACHABLE();
}

Sq8Bound BoundFromAccum(const FoldAccum& acc, double scale, MetricKind kind) {
  Sq8Bound bound;
  bound.scale = scale;
  bound.kind = kind;
  bound.slack = FoldSlack(acc, kind) * (1.0 + kRelGuard);
  // Deflating the base keeps it below its real-arithmetic value (the
  // 2 err concession per clamped dim already dwarfs every rounding).
  bound.base = FoldBase(acc, kind) * (1.0 - 1e-9);
  return bound;
}

template <MetricKind K>
void PrepareManyScalar(const Sq8Mirror& mirror, const Scalar* queries,
                       std::size_t members, std::uint8_t* codes_out,
                       Sq8Bound* bounds_out) {
  const double inv_scale = 1.0 / mirror.scale;
  const std::size_t dim = mirror.dim;
  for (std::size_t m = 0; m < members; ++m) {
    const Scalar* query = queries + m * dim;
    std::uint8_t* codes = codes_out + m * dim;
    FoldAccum acc;
    std::size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      for (std::size_t lane = 0; lane < 4; ++lane) {
        AccumulateLane<K>(&acc, lane,
                          EncodeDim(static_cast<double>(query[j + lane]),
                                    mirror.lo[j + lane], mirror.err[j + lane],
                                    inv_scale, mirror.scale,
                                    codes + j + lane));
      }
    }
    for (std::size_t lane = 0; j < dim; ++j, ++lane) {
      AccumulateLane<K>(&acc, lane,
                        EncodeDim(static_cast<double>(query[j]), mirror.lo[j],
                                  mirror.err[j], inv_scale, mirror.scale,
                                  codes + j));
    }
    bounds_out[m] = BoundFromAccum(acc, mirror.scale, K);
  }
}

#ifdef PARSIM_SQ8_X86

template <MetricKind K>
__attribute__((target("avx2"))) void PrepareManyAvx2(
    const Sq8Mirror& mirror, const Scalar* queries, std::size_t members,
    std::uint8_t* codes_out, Sq8Bound* bounds_out) {
  const double inv_scale = 1.0 / mirror.scale;
  const std::size_t dim = mirror.dim;
  const __m256d vinv = _mm256_set1_pd(inv_scale);
  const __m256d vscale = _mm256_set1_pd(mirror.scale);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d v255 = _mm256_set1_pd(255.0);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  // Picks bytes 0, 4, 8, 12 out of the cvtpd_epi32 result: the four
  // codes of a strip as one 32-bit store instead of a stack round-trip.
  const __m128i pack = _mm_set_epi8(-1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                                    -1, -1, 12, 8, 4, 0);
  for (std::size_t m = 0; m < members; ++m) {
    const Scalar* query = queries + m * dim;
    std::uint8_t* codes = codes_out + m * dim;
    FoldAccum acc;
    __m256d vacc = vzero;  // K's lane accumulator: sum / sum_sq / max_t
    __m256d vg = vzero;    // K's gap accumulator:  g_l1 / g_l2 / g_max
    std::size_t j = 0;
    for (; j + 4 <= dim; j += 4) {
      const __m256d q = _mm256_cvtps_pd(_mm_loadu_ps(query + j));
      const __m256d lo = _mm256_loadu_pd(mirror.lo.data() + j);
      const __m256d err = _mm256_loadu_pd(mirror.err.data() + j);
      const __m256d recon_hi = _mm256_add_pd(lo, _mm256_mul_pd(v255, vscale));
      const __m256d gap_hi = _mm256_sub_pd(q, recon_hi);
      const __m256d gap_lo = _mm256_sub_pd(lo, q);
      const __m256d err2 = _mm256_add_pd(err, err);
      const __m256d m_hi = _mm256_cmp_pd(gap_hi, err2, _CMP_GT_OQ);
      const __m256d m_lo_raw = _mm256_cmp_pd(gap_lo, err2, _CMP_GT_OQ);
      const __m256d m_any = _mm256_or_pd(m_hi, m_lo_raw);
      __m256d qq = q;
      if (_mm256_movemask_pd(m_any) != 0) {
        // Lattice clamp (EncodeDim's branches as blends): qq is the
        // clamped coordinate, g the overshoot (0 for in-range lanes).
        // Strips with every lane in range skip all of this; the skipped
        // gap contributions are exactly +0.0 (the masked and_pd zeroes
        // them), so accumulating or skipping them is bit-identical.
        const __m256d m_lo = _mm256_andnot_pd(m_hi, m_lo_raw);
        qq = _mm256_blendv_pd(q, recon_hi, m_hi);
        qq = _mm256_blendv_pd(qq, lo, m_lo);
        __m256d g = _mm256_blendv_pd(vzero, gap_hi, m_hi);
        g = _mm256_blendv_pd(g, gap_lo, m_lo);
        if constexpr (K == MetricKind::kL1) {
          vg = _mm256_add_pd(vg,
                             _mm256_and_pd(m_any, _mm256_sub_pd(g, err2)));
        } else if constexpr (K == MetricKind::kL2) {
          const __m256d gg = _mm256_mul_pd(g, g);
          const __m256d ge = _mm256_mul_pd(err2, g);
          vg = _mm256_add_pd(vg,
                             _mm256_and_pd(m_any, _mm256_sub_pd(gg, ge)));
        } else {
          vg = _mm256_max_pd(vg,
                             _mm256_and_pd(m_any, _mm256_sub_pd(g, err)));
        }
      }
      const __m256d u = _mm256_mul_pd(_mm256_sub_pd(qq, lo), vinv);
      const __m256d clamped = _mm256_min_pd(_mm256_max_pd(u, vzero), v255);
      const __m256d c = _mm256_floor_pd(_mm256_add_pd(clamped, vhalf));
      const __m128i bytes = _mm_shuffle_epi8(_mm256_cvtpd_epi32(c), pack);
      const std::uint32_t word =
          static_cast<std::uint32_t>(_mm_cvtsi128_si32(bytes));
      std::memcpy(codes + j, &word, 4);
      const __m256d recon = _mm256_add_pd(lo, _mm256_mul_pd(c, vscale));
      const __m256d t = _mm256_add_pd(
          _mm256_and_pd(abs_mask, _mm256_sub_pd(qq, recon)), err);
      if constexpr (K == MetricKind::kL1) {
        vacc = _mm256_add_pd(vacc, t);
      } else if constexpr (K == MetricKind::kL2) {
        vacc = _mm256_add_pd(vacc, _mm256_mul_pd(t, t));
      } else {
        vacc = _mm256_max_pd(vacc, t);
      }
    }
    if constexpr (K == MetricKind::kL1) {
      _mm256_storeu_pd(acc.sum, vacc);
      _mm256_storeu_pd(acc.g_l1, vg);
    } else if constexpr (K == MetricKind::kL2) {
      _mm256_storeu_pd(acc.sum_sq, vacc);
      _mm256_storeu_pd(acc.g_l2, vg);
    } else {
      _mm256_storeu_pd(acc.max_t, vacc);
      _mm256_storeu_pd(acc.g_max, vg);
    }
    for (std::size_t lane = 0; j < dim; ++j, ++lane) {
      AccumulateLane<K>(&acc, lane,
                        EncodeDim(static_cast<double>(query[j]), mirror.lo[j],
                                  mirror.err[j], inv_scale, mirror.scale,
                                  codes + j));
    }
    bounds_out[m] = BoundFromAccum(acc, mirror.scale, K);
  }
}

#endif  // PARSIM_SQ8_X86

/// The scale <= 0 path of query preparation: every code is 0 and
/// Recon(0, j) = lo[j]. Off the hot path (constant blocks), so a plain
/// sequential fold is fine.
Sq8Bound PrepareDegenerate(const Sq8Mirror& mirror, const Scalar* query,
                           MetricKind kind, std::uint8_t* codes_out) {
  Sq8Bound bound;
  bound.scale = mirror.scale;
  bound.kind = kind;
  double sum = 0.0;
  double sum_sq = 0.0;
  double max_t = 0.0;
  for (std::size_t j = 0; j < mirror.dim; ++j) {
    codes_out[j] = 0;
    const double t =
        std::abs(static_cast<double>(query[j]) - mirror.lo[j]) + mirror.err[j];
    sum += t;
    sum_sq += t * t;
    max_t = std::max(max_t, t);
  }
  switch (kind) {
    case MetricKind::kL1:
      bound.slack = sum;
      break;
    case MetricKind::kL2:
      bound.slack = std::sqrt(sum_sq);
      break;
    case MetricKind::kLmax:
      bound.slack = max_t;
      break;
  }
  bound.slack *= 1.0 + kRelGuard;
  return bound;
}

}  // namespace

void Sq8Mirror::BuildFrom(const Scalar* points, std::size_t n,
                          std::size_t dimension) {
  count = n;
  dim = dimension;
  // The L2 reduction accumulates dim * 255^2 in a uint32; dim <= 65535
  // keeps it far from overflow (65535 * 65025 < 2^32).
  PARSIM_CHECK(dim <= 65535);
  codes.assign(count * dim, 0);
  lo.assign(dim, 0.0);
  err.assign(dim, 0.0);
  scale = 0.0;
  if (count == 0 || dim == 0) return;

  std::vector<double> hi(dim, 0.0);
  for (std::size_t j = 0; j < dim; ++j) {
    lo[j] = static_cast<double>(points[j]);
    hi[j] = lo[j];
  }
  for (std::size_t i = 1; i < count; ++i) {
    const Scalar* row_in = points + i * dim;
    for (std::size_t j = 0; j < dim; ++j) {
      const double v = static_cast<double>(row_in[j]);
      lo[j] = std::min(lo[j], v);
      hi[j] = std::max(hi[j], v);
    }
  }
  double max_range = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    max_range = std::max(max_range, hi[j] - lo[j]);
  }
  scale = max_range / 255.0;

  if (scale > 0.0) {
    const double inv_scale = 1.0 / scale;
    for (std::size_t i = 0; i < count; ++i) {
      const Scalar* row_in = points + i * dim;
      std::uint8_t* row_out = codes.data() + i * dim;
      for (std::size_t j = 0; j < dim; ++j) {
        const double v = static_cast<double>(row_in[j]);
        const std::uint8_t c = EncodeClamped(v, lo[j], inv_scale);
        row_out[j] = c;
        err[j] = std::max(err[j], std::abs(v - Recon(c, j)));
      }
    }
  }
  // Guard-inflate (see file comment in sq8.h): relative on the measured
  // error, absolute on the reconstruction magnitude.
  for (std::size_t j = 0; j < dim; ++j) {
    err[j] = err[j] * (1.0 + kRelGuard) +
             (std::abs(lo[j]) + 255.0 * scale) * kReconUlps;
  }
}

void Sq8Mirror::BuildPrefix(const std::uint16_t* order_in,
                            std::size_t d_prime) {
  PARSIM_CHECK(d_prime <= dim);
  if (d_prime == 0) {
    order.clear();
    prefix_dim = 0;
    prefix_codes.clear();
    return;
  }
  // Distinctness of the prefix dimensions is load-bearing: a repeated
  // dimension would double-count its term and the "prefix" reduction
  // could exceed the full one, breaking the lower-bound contract.
  std::vector<bool> seen(dim, false);
  for (std::size_t p = 0; p < d_prime; ++p) {
    PARSIM_CHECK(order_in[p] < dim);
    PARSIM_CHECK(!seen[order_in[p]]);
    seen[order_in[p]] = true;
  }
  order.assign(order_in, order_in + d_prime);
  prefix_dim = d_prime;
  prefix_codes.assign(count * d_prime, 0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* src = codes.data() + i * dim;
    std::uint8_t* dst = prefix_codes.data() + i * d_prime;
    for (std::size_t p = 0; p < d_prime; ++p) {
      dst[p] = src[order[p]];
    }
  }
}

void Sq8Mirror::BuildDefaultPrefix() {
  const std::size_t d_prime = dim >= 16 ? 8 : (dim >= 8 ? 4 : 0);
  if (d_prime == 0 || count == 0 || scale <= 0.0) {
    order.clear();
    prefix_dim = 0;
    prefix_codes.clear();
    return;
  }
  // Integer code variance per dimension, exact: n * sum(c^2) - sum(c)^2.
  // sum <= 255 * n and sum_sq <= 65025 * n, so with leaf-sized n both
  // products sit far below 2^64.
  std::vector<std::uint64_t> var(dim, 0);
  {
    std::vector<std::uint64_t> sum(dim, 0);
    std::vector<std::uint64_t> sum_sq(dim, 0);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t* src = codes.data() + i * dim;
      for (std::size_t j = 0; j < dim; ++j) {
        const std::uint64_t c = src[j];
        sum[j] += c;
        sum_sq[j] += c * c;
      }
    }
    for (std::size_t j = 0; j < dim; ++j) {
      var[j] = count * sum_sq[j] - sum[j] * sum[j];
    }
  }
  std::vector<std::uint16_t> by_variance(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    by_variance[j] = static_cast<std::uint16_t>(j);
  }
  std::sort(by_variance.begin(), by_variance.end(),
            [&var](std::uint16_t a, std::uint16_t b) {
              if (var[a] != var[b]) return var[a] > var[b];
              return a < b;
            });
  BuildPrefix(by_variance.data(), d_prime);
}

void PrepareSq8QueryMany(const Sq8Mirror& mirror, const Scalar* queries,
                         std::size_t members, MetricKind kind,
                         std::uint8_t* codes_out, Sq8Bound* bounds_out) {
  if (mirror.scale <= 0.0) {
    for (std::size_t m = 0; m < members; ++m) {
      bounds_out[m] = PrepareDegenerate(mirror, queries + m * mirror.dim, kind,
                                        codes_out + m * mirror.dim);
    }
    return;
  }
#ifdef PARSIM_SQ8_X86
  static const bool kSimd = detail::SimdEnabled();
  if (kSimd) {
    switch (kind) {
      case MetricKind::kL1:
        PrepareManyAvx2<MetricKind::kL1>(mirror, queries, members, codes_out,
                                         bounds_out);
        return;
      case MetricKind::kL2:
        PrepareManyAvx2<MetricKind::kL2>(mirror, queries, members, codes_out,
                                         bounds_out);
        return;
      case MetricKind::kLmax:
        PrepareManyAvx2<MetricKind::kLmax>(mirror, queries, members,
                                           codes_out, bounds_out);
        return;
    }
    PARSIM_UNREACHABLE();
  }
#endif
  switch (kind) {
    case MetricKind::kL1:
      PrepareManyScalar<MetricKind::kL1>(mirror, queries, members, codes_out,
                                         bounds_out);
      return;
    case MetricKind::kL2:
      PrepareManyScalar<MetricKind::kL2>(mirror, queries, members, codes_out,
                                         bounds_out);
      return;
    case MetricKind::kLmax:
      PrepareManyScalar<MetricKind::kLmax>(mirror, queries, members,
                                           codes_out, bounds_out);
      return;
  }
  PARSIM_UNREACHABLE();
}

Sq8Bound PrepareSq8Query(const Sq8Mirror& mirror, PointView query,
                         MetricKind kind, std::uint8_t* codes_out) {
  PARSIM_DCHECK(query.size() == mirror.dim);
  Sq8Bound bound;
  PrepareSq8QueryMany(mirror, query.data(), 1, kind, codes_out, &bound);
  return bound;
}

}  // namespace parsim
