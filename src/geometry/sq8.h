// SQ8 scalar quantization of leaf blocks, with provable comparable-space
// lower bounds.
//
// A leaf block's float rows are mirrored as uint8 codes on a per-block
// lattice: per-dimension offset lo[j] plus ONE uniform step `scale`
// shared by every dimension, chosen as max_j(hi_j - lo_j) / 255 so all
// 255 levels span the widest extent. The uniform step is what makes the
// pure-integer kernel reductions (sum / sum-of-squares / max of code
// differences, src/geometry/metric.h Sq8Many/Sq8Block) map to metric
// bounds: for any dimension,
//
//     |q_j - x_j|  >=  scale * |cq_j - cx_j|  -  t_j,
//
// where t_j = |q_j - Recon(cq_j)| + err[j] combines the query's own
// rounding with the block's recorded reconstruction error. Folding the
// t_j into one per-metric slack (L1: sum, L2: sqrt of sum of squares via
// the reverse triangle inequality, Lmax: max) gives lower bounds on the
// comparable distance that cost one integer reduction per candidate:
//
//     L1:    lb = scale * SAD          - slack
//     L2:    lb = (scale * sqrt(SSD)   - slack)^2   (comparable = squared)
//     Lmax:  lb = scale * MAD          - slack
//
// Soundness under floating point: the bound must never exceed the value
// the exact float kernel would compute, or pruning would change results.
// Three guards make the computed bound conservative: err[j] is the
// measured max |x - Recon(code)| inflated by a relative 1e-12 PLUS an
// absolute (|lo[j]| + 255 * scale) * 1e-15 term (about 9 ulps at the
// reconstruction's magnitude — it covers the rounding of the Recon
// expression itself, which a purely relative guard misses when the data
// sits exactly on the lattice); the combined slack is inflated by
// another relative 1e-12; and the final bound is deflated by 1e-12.
// Each guard is orders of magnitude larger than the handful of ulp-level
// roundings it covers, and together they cost a vanishing amount of
// prune power (the guard scale is 1e-12 of the distance; quantization
// already concedes err ~ scale/2 per dimension).
//
// Pruning with these bounds is therefore lossless by construction: a
// candidate is dropped only when lb > threshold, which implies its exact
// comparable distance also exceeds the threshold, so the exact-path
// search would have rejected it anyway.

#ifndef PARSIM_SRC_GEOMETRY_SQ8_H_
#define PARSIM_SRC_GEOMETRY_SQ8_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"

namespace parsim {

/// The quantized mirror of one leaf block: count x dim uint8 codes plus
/// the lattice (per-dim offset, one uniform step) and the per-dim
/// reconstruction error bound the query-side slack is built from.
struct Sq8Mirror {
  std::size_t count = 0;
  std::size_t dim = 0;
  /// Uniform quantization step (max per-dim extent / 255). Zero iff the
  /// block is empty or every dimension is constant; codes are then all
  /// zero and every lower bound collapses to 0 (no pruning, still exact).
  double scale = 0.0;
  /// count * dim codes, row-major (same layout as LeafBlock::coords).
  std::vector<std::uint8_t> codes;
  /// Per-dim offset: Recon(c, j) = lo[j] + c * scale.
  std::vector<double> lo;
  /// Per-dim bound on |x_j - Recon(code_j)| over the block's points,
  /// guard-inflated so it also covers the fp rounding of Recon itself.
  std::vector<double> err;

  /// Progressive-precision prefix stage (optional, built on demand): a
  /// list of `prefix_dim` DISTINCT dimension indices (highest code
  /// variance first under the default policy) and a contiguous gather of
  /// every row's codes in those dimensions. Because each metric's
  /// integer reduction is a sum (SAD/SSD) or max (MAD) of NONNEGATIVE
  /// per-dimension terms, the reduction over any subset of dimensions is
  /// <= the full-dimension reduction; so a candidate whose prefix
  /// reduction already exceeds the full-dimension prune cutoff (derived
  /// from the same Sq8Bound, which folds slack/base over ALL dims) is
  /// guaranteed to fail the full-dimension test too. The prefix kernel
  /// therefore prunes losslessly at d' bytes per candidate, and
  /// survivors fall through to the full-d kernel unchanged — results,
  /// distances, and page counts stay bit-identical to the SQ8-only path.
  /// Empty (prefix_dim == 0) when no prefix stage is built.
  std::vector<std::uint16_t> order;
  std::size_t prefix_dim = 0;
  /// count * prefix_dim gathered codes, row-major.
  std::vector<std::uint8_t> prefix_codes;

  const std::uint8_t* row(std::size_t i) const { return codes.data() + i * dim; }

  const std::uint8_t* prefix_row(std::size_t i) const {
    return prefix_codes.data() + i * prefix_dim;
  }

  /// The lattice point of code `c` in dimension `j`. Every consumer of
  /// the mirror (encode, error measurement, query prep, range prefilter)
  /// evaluates this identical double expression, so "reconstruction"
  /// means one well-defined value.
  double Recon(std::uint8_t c, std::size_t j) const {
    return lo[j] + static_cast<double>(c) * scale;
  }

  /// Learns the lattice from `n` row-major float points and encodes them.
  /// Does NOT build the prefix stage; call BuildDefaultPrefix (or
  /// BuildPrefix) afterwards when the cascade is wanted.
  void BuildFrom(const Scalar* points, std::size_t n, std::size_t dimension);

  /// Builds the prefix stage over the first `d_prime` entries of
  /// `order_in` (at least d_prime indices, each < dim, all distinct —
  /// distinctness is what makes the prefix reduction a subset sum and
  /// hence a lower bound). Public so tests can install adversarial
  /// orderings; any distinct ordering is sound, ordering only affects
  /// prune power. `d_prime == 0` clears the stage.
  void BuildPrefix(const std::uint16_t* order_in, std::size_t d_prime);

  /// Default policy: d' = 8 when dim >= 16, d' = 4 when dim >= 8, no
  /// prefix stage otherwise (below 8 dims the full-d kernel is already
  /// as cheap as a prefix pass). Dimensions are ordered by descending
  /// integer code variance (n * sum(c^2) - sum(c)^2, exact in uint64),
  /// ties broken by dimension index, so the highest-energy dimensions —
  /// the ones that separate candidates fastest — are reduced first.
  /// Clears the stage on a degenerate lattice (scale <= 0: all codes
  /// zero, a prefix pass could never prune).
  void BuildDefaultPrefix();
};

/// A prepared query's side of the bound: combine with one integer
/// reduction per candidate (via LowerBound) during a sweep.
///
/// When the query lies outside the block's lattice range in some
/// dimension (by more than 2 * err[j]), query preparation clamps that
/// coordinate to the lattice edge before encoding and folds the exact
/// identity  q_j - x_j = gap_j + (q'_j - x_j)  (q' the clamped query,
/// gap_j the signed overshoot) into a candidate-INDEPENDENT term `base`:
/// L1 gains gap - 2 err per clamped dim, L2 gains gap^2 - 2 gap err
/// (both non-negative under the 2 err clamping rule), Lmax keeps
/// max(gap - err). The kernel-side slack is then built from the clamped
/// query, whose t_j collapse to err[j] — so a member far from a block in
/// a few dimensions no longer loses all prune power to a bloated slack;
/// the overshoot re-enters the bound additively (L1/L2) or as a floor
/// (Lmax) instead of subtractively.
struct Sq8Bound {
  double scale = 0.0;
  /// Per-metric fold of the t_j terms of the lattice-clamped query (see
  /// file comment), guard-inflated.
  double slack = 0.0;
  /// Candidate-independent out-of-range contribution (guard-deflated);
  /// 0 when the query is inside the lattice range everywhere.
  double base = 0.0;
  MetricKind kind = MetricKind::kL2;

  /// Comparable-space lower bound on the exact distance to a candidate
  /// whose integer reduction (SAD / SSD / MAD of codes) is `reduction`.
  /// Never exceeds the exact kernel's computed comparable distance.
  double LowerBound(std::uint32_t reduction) const {
    constexpr double kGuard = 1.0 - 1e-12;
    if (kind == MetricKind::kL2) {
      const double v =
          scale * std::sqrt(static_cast<double>(reduction)) - slack;
      return base + (v > 0.0 ? v * v * kGuard : 0.0);
    }
    const double v = scale * static_cast<double>(reduction) - slack;
    const double kernel = v > 0.0 ? v * kGuard : 0.0;
    return kind == MetricKind::kLmax ? std::max(base, kernel) : base + kernel;
  }

  /// The same pruning test inverted into reduction space, for the hot
  /// per-candidate loop: whenever double(r) > PruneCutoff(threshold),
  /// LowerBound(r) > threshold is guaranteed (so the exact comparable
  /// distance also exceeds it), and the candidate can be dropped with a
  /// single compare instead of the sqrt-per-candidate of re-deriving the
  /// bound. The inversion is padded by a relative 1e-9 — far above the
  /// ~1e-16-per-op rounding it covers and above LowerBound's own 1e-12
  /// guards — so borderline candidates fall through to the exact
  /// re-rank, never the other way; pruning stays lossless. Returns
  /// +infinity (nothing prunes) for a degenerate lattice (scale <= 0),
  /// and a NEGATIVE value (everything prunes: reductions are
  /// non-negative) when `base` alone exceeds the threshold — callers
  /// must check for that before converting to an integer cutoff.
  double PruneCutoff(double threshold) const {
    constexpr double kMargin = 1.0 + 1e-9;
    if (scale <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    double effective = threshold;
    if (kind == MetricKind::kLmax) {
      if (base > threshold) return -1.0;
    } else {
      effective = threshold - base;
      if (effective < 0.0) return -1.0;
    }
    if (kind == MetricKind::kL2) {
      const double root = (std::sqrt(effective * kMargin) + slack) / scale;
      return root * root * kMargin;
    }
    return ((effective * kMargin + slack) / scale) * kMargin;
  }
};

/// Encodes `query` on the mirror's lattice (codes_out: mirror.dim bytes,
/// clamped to [0, 255]) and folds the per-dim slack for `kind`.
Sq8Bound PrepareSq8Query(const Sq8Mirror& mirror, PointView query,
                         MetricKind kind, std::uint8_t* codes_out);

/// Batched PrepareSq8Query: `members` queries (row-major, members x
/// mirror.dim scalars) against one mirror, filling codes_out (members x
/// mirror.dim bytes) and bounds_out (members entries). Exactly
/// equivalent to calling PrepareSq8Query per row — same codes, same
/// slacks bit for bit — but hoists the dispatch and lattice constants
/// out of the member loop, which matters because batched sweeps prepare
/// every member against every block they share.
void PrepareSq8QueryMany(const Sq8Mirror& mirror, const Scalar* queries,
                         std::size_t members, MetricKind kind,
                         std::uint8_t* codes_out, Sq8Bound* bounds_out);

/// Owning-storage convenience wrapper around PrepareSq8Query.
struct Sq8Query {
  std::vector<std::uint8_t> codes;
  Sq8Bound bound;

  void Prepare(const Sq8Mirror& mirror, PointView query, MetricKind kind) {
    codes.resize(mirror.dim);
    bound = PrepareSq8Query(mirror, query, kind, codes.data());
  }
};

}  // namespace parsim

#endif  // PARSIM_SRC_GEOMETRY_SQ8_H_
