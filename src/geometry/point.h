// d-dimensional feature vectors ("points") and views over them.
//
// Feature vectors use 32-bit floats: the paper's feature data (color
// histograms, Fourier descriptors, text descriptors) needs no more
// precision, and the 4-byte scalar matches the page-capacity math of the
// disk simulator. Distance arithmetic is carried out in double.

#ifndef PARSIM_SRC_GEOMETRY_POINT_H_
#define PARSIM_SRC_GEOMETRY_POINT_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace parsim {

/// Scalar type of feature-vector coordinates.
using Scalar = float;

/// Non-owning view of a point's coordinates.
using PointView = std::span<const Scalar>;

/// Identifier of a data object within a data set.
using PointId = std::uint32_t;
inline constexpr PointId kInvalidPointId = static_cast<PointId>(-1);

/// An owning d-dimensional point. The data space is [0,1]^d by convention
/// (Section 2 of the paper); generators produce coordinates in that range,
/// but Point itself does not enforce it.
class Point {
 public:
  Point() = default;
  explicit Point(std::size_t dim, Scalar fill = 0) : coords_(dim, fill) {}
  Point(std::initializer_list<Scalar> coords) : coords_(coords) {}
  explicit Point(std::vector<Scalar> coords) : coords_(std::move(coords)) {}

  std::size_t dim() const { return coords_.size(); }

  Scalar operator[](std::size_t i) const {
    PARSIM_DCHECK(i < coords_.size());
    return coords_[i];
  }
  Scalar& operator[](std::size_t i) {
    PARSIM_DCHECK(i < coords_.size());
    return coords_[i];
  }

  const Scalar* data() const { return coords_.data(); }
  Scalar* data() { return coords_.data(); }

  /// Implicit view conversion so metric functions take PointView only.
  operator PointView() const { return {coords_.data(), coords_.size()}; }
  PointView view() const { return {coords_.data(), coords_.size()}; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords_ == b.coords_;
  }

  /// "(0.25, 0.75)" — for diagnostics and examples.
  std::string ToString() const;

 private:
  std::vector<Scalar> coords_;
};

/// A column-compressed set of points: `count` points of dimension `dim`
/// stored contiguously (row-major). This is the in-memory form every
/// generator produces and every index consumes; it avoids per-point heap
/// allocations for the multi-hundred-thousand-point benchmark datasets.
class PointSet {
 public:
  PointSet() : dim_(0) {}
  explicit PointSet(std::size_t dim) : dim_(dim) { PARSIM_CHECK(dim > 0); }

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return dim_ == 0 ? 0 : flat_.size() / dim_; }
  bool empty() const { return flat_.empty(); }

  /// Appends a point; its dimension must match.
  void Add(PointView p) {
    PARSIM_CHECK(p.size() == dim_);
    flat_.insert(flat_.end(), p.begin(), p.end());
  }

  /// View of the i-th point.
  PointView operator[](std::size_t i) const {
    PARSIM_DCHECK(i < size());
    return {flat_.data() + i * dim_, dim_};
  }

  /// Mutable access to the i-th point's coordinates.
  std::span<Scalar> Mutable(std::size_t i) {
    PARSIM_DCHECK(i < size());
    return {flat_.data() + i * dim_, dim_};
  }

  /// Owning copy of the i-th point.
  Point Materialize(std::size_t i) const {
    PointView v = (*this)[i];
    return Point(std::vector<Scalar>(v.begin(), v.end()));
  }

  /// Contiguous row-major coordinate storage (size() * dim() scalars).
  /// The layout the one-to-many distance kernels stream over.
  const Scalar* data() const { return flat_.data(); }

  void Reserve(std::size_t points) { flat_.reserve(points * dim_); }

  /// Removes the last point. Requires a non-empty set.
  void PopBack() {
    PARSIM_CHECK(!empty());
    flat_.resize(flat_.size() - dim_);
  }

  /// Size of one point record on a simulated page: coordinates + PointId.
  std::size_t BytesPerPoint() const {
    return dim_ * sizeof(Scalar) + sizeof(PointId);
  }

  /// Total payload bytes if stored as records (used to express data-set
  /// sizes in "MBytes" like the paper does).
  std::size_t TotalBytes() const { return size() * BytesPerPoint(); }

 private:
  std::size_t dim_;
  std::vector<Scalar> flat_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_GEOMETRY_POINT_H_
