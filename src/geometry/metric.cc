#include "src/geometry/metric.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace parsim {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return "L1";
    case MetricKind::kL2:
      return "L2";
    case MetricKind::kLmax:
      return "Lmax";
  }
  return "UNKNOWN";
}

double SquaredL2(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

double L2(PointView a, PointView b) { return std::sqrt(SquaredL2(a, b)); }

double L1(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double Lmax(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(
        best, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return best;
}

double Metric::Distance(PointView a, PointView b) const {
  switch (kind_) {
    case MetricKind::kL1:
      return L1(a, b);
    case MetricKind::kL2:
      return L2(a, b);
    case MetricKind::kLmax:
      return Lmax(a, b);
  }
  PARSIM_CHECK(false);
}

double Metric::Comparable(PointView a, PointView b) const {
  if (kind_ == MetricKind::kL2) return SquaredL2(a, b);
  return Distance(a, b);
}

double Metric::ToComparable(double distance) const {
  if (kind_ == MetricKind::kL2) return distance * distance;
  return distance;
}

double Metric::FromComparable(double comparable) const {
  if (kind_ == MetricKind::kL2) return std::sqrt(comparable);
  return comparable;
}

}  // namespace parsim
