#include "src/geometry/metric.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARSIM_METRIC_X86 1
#include <immintrin.h>
#endif

namespace parsim {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return "L1";
    case MetricKind::kL2:
      return "L2";
    case MetricKind::kLmax:
      return "Lmax";
  }
  PARSIM_UNREACHABLE();
}

namespace detail {

double SquaredL2Scalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

double L1Scalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double LmaxScalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(
        best, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return best;
}

std::uint32_t Sq8SadScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<std::uint32_t>(a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return sum;
}

std::uint32_t Sq8SsdScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}

std::uint32_t Sq8MadScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n) {
  std::uint32_t best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t d =
        static_cast<std::uint32_t>(a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
    best = std::max(best, d);
  }
  return best;
}

}  // namespace detail

namespace {

// ---------------------------------------------------------------------
// Portable fallback kernels: 4-way unrolled with independent
// accumulators so the compiler can auto-vectorize / software-pipeline.
// ---------------------------------------------------------------------

double SquaredL2Unrolled(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    const double d1 =
        static_cast<double>(a[i + 1]) - static_cast<double>(b[i + 1]);
    const double d2 =
        static_cast<double>(a[i + 2]) - static_cast<double>(b[i + 2]);
    const double d3 =
        static_cast<double>(a[i + 3]) - static_cast<double>(b[i + 3]);
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double L1Unrolled(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    s1 += std::abs(static_cast<double>(a[i + 1]) -
                   static_cast<double>(b[i + 1]));
    s2 += std::abs(static_cast<double>(a[i + 2]) -
                   static_cast<double>(b[i + 2]));
    s3 += std::abs(static_cast<double>(a[i + 3]) -
                   static_cast<double>(b[i + 3]));
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double LmaxUnrolled(const float* a, const float* b, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(static_cast<double>(a[i]) -
                               static_cast<double>(b[i])));
    m1 = std::max(m1, std::abs(static_cast<double>(a[i + 1]) -
                               static_cast<double>(b[i + 1])));
    m2 = std::max(m2, std::abs(static_cast<double>(a[i + 2]) -
                               static_cast<double>(b[i + 2])));
    m3 = std::max(m3, std::abs(static_cast<double>(a[i + 3]) -
                               static_cast<double>(b[i + 3])));
  }
  double best = std::max(std::max(m0, m1), std::max(m2, m3));
  for (; i < n; ++i) {
    best = std::max(best, std::abs(static_cast<double>(a[i]) -
                                   static_cast<double>(b[i])));
  }
  return best;
}

// ---------------------------------------------------------------------
// SQ8 code reductions (uint8 rows -> uint32), the quantized sweep's
// pair primitives: SAD for L1, SSD for L2, MAD for Lmax. All integer,
// so every variant — unrolled, AVX2, many, block — returns identical
// values by construction.
// ---------------------------------------------------------------------

std::uint32_t Sq8SadUnrolled(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n) {
  std::uint32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  const auto ad = [](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint32_t>(x > y ? x - y : y - x);
  };
  for (; i + 4 <= n; i += 4) {
    s0 += ad(a[i], b[i]);
    s1 += ad(a[i + 1], b[i + 1]);
    s2 += ad(a[i + 2], b[i + 2]);
    s3 += ad(a[i + 3], b[i + 3]);
  }
  std::uint32_t sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) sum += ad(a[i], b[i]);
  return sum;
}

std::uint32_t Sq8SsdUnrolled(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n) {
  std::uint32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t i = 0;
  const auto sq = [](std::uint8_t x, std::uint8_t y) {
    const std::int32_t d =
        static_cast<std::int32_t>(x) - static_cast<std::int32_t>(y);
    return static_cast<std::uint32_t>(d * d);
  };
  for (; i + 4 <= n; i += 4) {
    s0 += sq(a[i], b[i]);
    s1 += sq(a[i + 1], b[i + 1]);
    s2 += sq(a[i + 2], b[i + 2]);
    s3 += sq(a[i + 3], b[i + 3]);
  }
  std::uint32_t sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) sum += sq(a[i], b[i]);
  return sum;
}

std::uint32_t Sq8MadUnrolled(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n) {
  std::uint32_t m0 = 0, m1 = 0, m2 = 0, m3 = 0;
  std::size_t i = 0;
  const auto ad = [](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint32_t>(x > y ? x - y : y - x);
  };
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, ad(a[i], b[i]));
    m1 = std::max(m1, ad(a[i + 1], b[i + 1]));
    m2 = std::max(m2, ad(a[i + 2], b[i + 2]));
    m3 = std::max(m3, ad(a[i + 3], b[i + 3]));
  }
  std::uint32_t best = std::max(std::max(m0, m1), std::max(m2, m3));
  for (; i < n; ++i) best = std::max(best, ad(a[i], b[i]));
  return best;
}

#ifdef PARSIM_METRIC_X86

// ---------------------------------------------------------------------
// AVX2+FMA kernels. Coordinates are float but all arithmetic is carried
// out on doubles (floats widened in registers), matching the precision
// contract of the scalar kernels. Compiled with per-function target
// attributes so the binary still runs on pre-AVX2 hosts; PickKernels()
// only selects these after a cpuid check.
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

__attribute__((target("avx2,fma"))) inline double HorizontalMax(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_max_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_max_sd(lo, swapped));
}

__attribute__((target("avx2,fma"))) double SquaredL2Avx2(const float* a,
                                                         const float* b,
                                                         std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d0 = _mm256_sub_pd(a0, b0);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    const __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    const __m256d d1 = _mm256_sub_pd(a1, b1);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d0 = _mm256_sub_pd(a0, b0);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double L1Avx2(const float* a,
                                                  const float* b,
                                                  std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_add_pd(acc1, _mm256_and_pd(abs_mask, d1));
  }
  if (i + 4 <= n) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double LmaxAvx2(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_max_pd(acc1, _mm256_and_pd(abs_mask, d1));
  }
  if (i + 4 <= n) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
    i += 4;
  }
  double best = HorizontalMax(_mm256_max_pd(acc0, acc1));
  for (; i < n; ++i) {
    best = std::max(best, std::abs(static_cast<double>(a[i]) -
                                   static_cast<double>(b[i])));
  }
  return best;
}

// ---------------------------------------------------------------------
// AVX2 SQ8 code reductions. Rows are chunked as 16-byte vectors plus one
// 8-byte half-vector (_mm_loadl_epi64 zeroes the upper half, which
// contributes 0 to all three reductions) plus a scalar tail — never
// reading past the row, so code buffers need no padding. The common
// dims 8/16/24/32 are fully vectorized. Integer arithmetic is exact:
// these return the scalar reductions bit for bit.
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) inline std::uint32_t HorizontalSumU32(
    __m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  lo = _mm_add_epi32(lo, hi);
  lo = _mm_add_epi32(lo, _mm_srli_si128(lo, 8));
  lo = _mm_add_epi32(lo, _mm_srli_si128(lo, 4));
  return static_cast<std::uint32_t>(_mm_cvtsi128_si32(lo));
}

__attribute__((target("avx2"))) std::uint32_t Sq8SadAvx2(const std::uint8_t* a,
                                                         const std::uint8_t* b,
                                                         std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
  }
  if (i + 8 <= n) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_add_epi64(acc, _mm_sad_epu8(va, vb));
    i += 8;
  }
  std::uint64_t sum = static_cast<std::uint64_t>(_mm_extract_epi64(acc, 0)) +
                      static_cast<std::uint64_t>(_mm_extract_epi64(acc, 1));
  for (; i < n; ++i) {
    sum += static_cast<std::uint64_t>(a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]);
  }
  return static_cast<std::uint32_t>(sum);
}

__attribute__((target("avx2"))) std::uint32_t Sq8SsdAvx2(const std::uint8_t* a,
                                                         const std::uint8_t* b,
                                                         std::size_t n) {
  // Widen to 16-bit before differencing: |delta| reaches 255, which does
  // not fit the signed-int8 operand maddubs would need, so the kernel is
  // cvtepu8 + sub + madd (d*d pairs summed into epi32 lanes). Per-lane
  // totals stay below 2^31 for any dim <= 65535.
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i va = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i d = _mm256_sub_epi16(va, vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
  }
  if (i + 8 <= n) {
    const __m256i va = _mm256_cvtepu8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i vb = _mm256_cvtepu8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i d = _mm256_sub_epi16(va, vb);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
    i += 8;
  }
  std::uint32_t sum = HorizontalSumU32(acc);
  for (; i < n; ++i) {
    const std::int32_t d =
        static_cast<std::int32_t>(a[i]) - static_cast<std::int32_t>(b[i]);
    sum += static_cast<std::uint32_t>(d * d);
  }
  return sum;
}

__attribute__((target("avx2"))) std::uint32_t Sq8MadAvx2(const std::uint8_t* a,
                                                         const std::uint8_t* b,
                                                         std::size_t n) {
  __m128i acc = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    // Unsigned |a - b| via saturating subtraction both ways.
    acc = _mm_max_epu8(
        acc, _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va)));
  }
  if (i + 8 <= n) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_max_epu8(
        acc, _mm_or_si128(_mm_subs_epu8(va, vb), _mm_subs_epu8(vb, va)));
    i += 8;
  }
  acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 8));
  acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 4));
  acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 2));
  acc = _mm_max_epu8(acc, _mm_srli_si128(acc, 1));
  std::uint32_t best =
      static_cast<std::uint32_t>(_mm_cvtsi128_si32(acc)) & 0xffu;
  for (; i < n; ++i) {
    best = std::max(best, static_cast<std::uint32_t>(
                              a[i] > b[i] ? a[i] - b[i] : b[i] - a[i]));
  }
  return best;
}

/// One-to-many SQ8 reductions: the query row is widened into registers
/// once, candidates stream past it, and (on the d = 4 / 8 / 16 / 32
/// fast paths) multiple candidates' accumulators are reduced together
/// through one hadd tree — the per-pair indirect call and per-pair
/// horizontal sum of a naive loop are what made the integer sweep lose
/// to the float block kernels. The small dims (4, 8) exist for the
/// cascade's prefix stage, where one 16-byte load carries 4 or 2 whole
/// rows: a prefix pass MUST be cheaper per row than the full-dimension
/// pass it gates, which a one-row-per-load shape is not. Reductions are
/// exact integer sums, so any evaluation order is bit-identical to the
/// scalar reference. Row loads are exact-width (16B at d=16, 2x16B at
/// d=32, whole rows per 16B at d=4/8; sub-16B tails take narrow loads or
/// the scalar loop): no overread past the last row of the codes array.
/// Other dims fall back to the pair kernel, called directly (inlinable)
/// instead of through the dispatch table.

__attribute__((target("avx2"))) void Sq8SadManyAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t* out) {
  if (dim == 16) {
    const __m128i q =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
    for (std::size_t i = 0; i < count; ++i) {
      const __m128i s = _mm_sad_epu8(
          q, _mm_loadu_si128(
                 reinterpret_cast<const __m128i*>(codes + i * 16)));
      out[i] = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm_add_epi64(s, _mm_srli_si128(s, 8))));
    }
    return;
  }
  if (dim == 32) {
    const __m128i q0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
    const __m128i q1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query + 16));
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint8_t* p = codes + i * 32;
      const __m128i s = _mm_add_epi64(
          _mm_sad_epu8(
              q0, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p))),
          _mm_sad_epu8(
              q1, _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16))));
      out[i] = static_cast<std::uint32_t>(
          _mm_cvtsi128_si32(_mm_add_epi64(s, _mm_srli_si128(s, 8))));
    }
    return;
  }
  if (dim == 8) {
    const __m128i ql =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(query));
    // Query doubled: one 16-byte row load covers TWO candidates, and
    // one psadbw produces both row sums (one per 64-bit half).
    const __m128i q2 = _mm_unpacklo_epi64(ql, ql);
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
      const __m128i s = _mm_sad_epu8(
          q2, _mm_loadu_si128(
                  reinterpret_cast<const __m128i*>(codes + i * 8)));
      out[i] = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
      out[i + 1] = static_cast<std::uint32_t>(_mm_extract_epi32(s, 2));
    }
    if (i < count) {
      const __m128i s = _mm_sad_epu8(
          ql,
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i * 8)));
      out[i] = static_cast<std::uint32_t>(_mm_cvtsi128_si32(s));
    }
    return;
  }
  if (dim == 4) {
    std::uint32_t qword;
    std::memcpy(&qword, query, 4);
    // Query pattern broadcast to every dword: one 16-byte row load
    // covers FOUR candidates. |a-b| per byte (saturating subtraction
    // both ways), then bytes -> pair sums (maddubs x1) -> row sums
    // (madd x1), landing one uint32 per candidate.
    const __m128i q4 = _mm_set1_epi32(static_cast<int>(qword));
    const __m128i ones8 = _mm_set1_epi8(1);
    const __m128i ones16 = _mm_set1_epi16(1);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const __m128i rows = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 4));
      const __m128i ad = _mm_or_si128(_mm_subs_epu8(rows, q4),
                                      _mm_subs_epu8(q4, rows));
      const __m128i pairs = _mm_maddubs_epi16(ad, ones8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_madd_epi16(pairs, ones16));
    }
    for (; i < count; ++i) {
      const std::uint8_t* p = codes + i * 4;
      std::uint32_t sum = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        sum += static_cast<std::uint32_t>(
            query[j] > p[j] ? query[j] - p[j] : p[j] - query[j]);
      }
      out[i] = sum;
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8SadAvx2(query, codes + i * dim, dim);
  }
}

__attribute__((target("avx2"))) void Sq8SsdManyAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t* out) {
  if (dim == 16) {
    const __m256i q = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query)));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const std::uint8_t* p = codes + i * 16;
      const __m256i d0 = _mm256_sub_epi16(
          q, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                 reinterpret_cast<const __m128i*>(p))));
      const __m256i d1 = _mm256_sub_epi16(
          q, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                 reinterpret_cast<const __m128i*>(p + 16))));
      const __m256i d2 = _mm256_sub_epi16(
          q, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                 reinterpret_cast<const __m128i*>(p + 32))));
      const __m256i d3 = _mm256_sub_epi16(
          q, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                 reinterpret_cast<const __m128i*>(p + 48))));
      // hadd tree: [sum(d0), sum(d1), sum(d2), sum(d3)] per 128-bit
      // half, then fold the halves — four horizontal sums for the price
      // of one.
      const __m256i h = _mm256_hadd_epi32(
          _mm256_hadd_epi32(_mm256_madd_epi16(d0, d0),
                            _mm256_madd_epi16(d1, d1)),
          _mm256_hadd_epi32(_mm256_madd_epi16(d2, d2),
                            _mm256_madd_epi16(d3, d3)));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_add_epi32(_mm256_castsi256_si128(h),
                                     _mm256_extracti128_si256(h, 1)));
    }
    for (; i < count; ++i) {
      out[i] = Sq8SsdAvx2(query, codes + i * 16, 16);
    }
    return;
  }
  if (dim == 32) {
    const __m256i q0 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query)));
    const __m256i q1 = _mm256_cvtepu8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query + 16)));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      __m256i acc[4];
      for (std::size_t c = 0; c < 4; ++c) {
        const std::uint8_t* p = codes + (i + c) * 32;
        const __m256i d0 = _mm256_sub_epi16(
            q0, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(p))));
        const __m256i d1 = _mm256_sub_epi16(
            q1, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(p + 16))));
        acc[c] = _mm256_add_epi32(_mm256_madd_epi16(d0, d0),
                                  _mm256_madd_epi16(d1, d1));
      }
      const __m256i h =
          _mm256_hadd_epi32(_mm256_hadd_epi32(acc[0], acc[1]),
                            _mm256_hadd_epi32(acc[2], acc[3]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_add_epi32(_mm256_castsi256_si128(h),
                                     _mm256_extracti128_si256(h, 1)));
    }
    for (; i < count; ++i) {
      out[i] = Sq8SsdAvx2(query, codes + i * 32, 32);
    }
    return;
  }
  if (dim == 8) {
    // Query doubled across the 256-bit register: each 16-byte load
    // brings TWO whole rows, one widening + one madd covers both, and
    // the hadd tree folds four rows per iteration — half the loads and
    // widenings of a one-row-per-load shape.
    const __m256i q2 = _mm256_broadcastsi128_si256(_mm_cvtepu8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(query))));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const std::uint8_t* p = codes + i * 8;
      const __m256i r01 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
      const __m256i r23 = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
      const __m256i d01 = _mm256_sub_epi16(q2, r01);
      const __m256i d23 = _mm256_sub_epi16(q2, r23);
      // madd lanes: [row0 x4 | row1 x4] and [row2 x4 | row3 x4]; two
      // hadds then leave [r0, r2 | r1, r3] pairs that interleave back
      // into row order with one unpack.
      const __m256i h = _mm256_hadd_epi32(_mm256_madd_epi16(d01, d01),
                                          _mm256_madd_epi16(d23, d23));
      const __m256i h2 = _mm256_hadd_epi32(h, h);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm_unpacklo_epi32(_mm256_castsi256_si128(h2),
                             _mm256_extracti128_si256(h2, 1)));
    }
    for (; i < count; ++i) {
      out[i] = Sq8SsdAvx2(query, codes + i * 8, 8);
    }
    return;
  }
  if (dim == 4) {
    std::uint32_t qword;
    std::memcpy(&qword, query, 4);
    // Query pattern repeated four times; one 16-byte load = FOUR rows,
    // widened once, squared once, folded to four row sums by one hadd.
    const __m256i q4 = _mm256_cvtepu8_epi16(
        _mm_set1_epi32(static_cast<int>(qword)));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const __m256i rows = _mm256_cvtepu8_epi16(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 4)));
      const __m256i d = _mm256_sub_epi16(q4, rows);
      // madd lanes: [r0a, r0b, r1a, r1b | r2a, r2b, r3a, r3b]; one hadd
      // leaves [r0, r1 | r2, r3] in the 64-bit halves.
      const __m256i m = _mm256_madd_epi16(d, d);
      const __m256i h = _mm256_hadd_epi32(m, m);
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out + i),
          _mm_unpacklo_epi64(_mm256_castsi256_si128(h),
                             _mm256_extracti128_si256(h, 1)));
    }
    for (; i < count; ++i) {
      const std::uint8_t* p = codes + i * 4;
      std::uint32_t sum = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const std::int32_t d = static_cast<std::int32_t>(query[j]) -
                               static_cast<std::int32_t>(p[j]);
        sum += static_cast<std::uint32_t>(d * d);
      }
      out[i] = sum;
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8SsdAvx2(query, codes + i * dim, dim);
  }
}

__attribute__((target("avx2"))) void Sq8MadManyAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t* out) {
  const auto reduce_max = [](__m128i v) {
    v = _mm_max_epu8(v, _mm_srli_si128(v, 8));
    v = _mm_max_epu8(v, _mm_srli_si128(v, 4));
    v = _mm_max_epu8(v, _mm_srli_si128(v, 2));
    v = _mm_max_epu8(v, _mm_srli_si128(v, 1));
    return static_cast<std::uint32_t>(_mm_cvtsi128_si32(v)) & 0xffu;
  };
  if (dim == 16) {
    const __m128i q =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
    for (std::size_t i = 0; i < count; ++i) {
      const __m128i p = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 16));
      out[i] = reduce_max(
          _mm_or_si128(_mm_subs_epu8(q, p), _mm_subs_epu8(p, q)));
    }
    return;
  }
  if (dim == 32) {
    const __m128i q0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query));
    const __m128i q1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(query + 16));
    for (std::size_t i = 0; i < count; ++i) {
      const __m128i p0 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 32));
      const __m128i p1 = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 32 + 16));
      out[i] = reduce_max(_mm_max_epu8(
          _mm_or_si128(_mm_subs_epu8(q0, p0), _mm_subs_epu8(p0, q0)),
          _mm_or_si128(_mm_subs_epu8(q1, p1), _mm_subs_epu8(p1, q1))));
    }
    return;
  }
  if (dim == 8) {
    // Query doubled across the register: one 16-byte load covers TWO
    // rows, and the max tree stays inside each 64-bit half so both row
    // maxima survive to the extract.
    const __m128i ql =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(query));
    const __m128i q2 = _mm_unpacklo_epi64(ql, ql);
    std::size_t i = 0;
    for (; i + 2 <= count; i += 2) {
      const __m128i p = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 8));
      __m128i ad =
          _mm_or_si128(_mm_subs_epu8(q2, p), _mm_subs_epu8(p, q2));
      ad = _mm_max_epu8(ad, _mm_srli_epi64(ad, 32));
      ad = _mm_max_epu8(ad, _mm_srli_epi64(ad, 16));
      ad = _mm_max_epu8(ad, _mm_srli_epi64(ad, 8));
      out[i] = static_cast<std::uint32_t>(_mm_extract_epi8(ad, 0)) & 0xffu;
      out[i + 1] =
          static_cast<std::uint32_t>(_mm_extract_epi8(ad, 8)) & 0xffu;
    }
    for (; i < count; ++i) {
      const __m128i p =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i * 8));
      out[i] = reduce_max(
          _mm_or_si128(_mm_subs_epu8(ql, p), _mm_subs_epu8(p, ql)));
    }
    return;
  }
  if (dim == 4) {
    std::uint32_t qword;
    std::memcpy(&qword, query, 4);
    // Query repeated four times: one 16-byte load covers FOUR rows; the
    // max tree stays inside each 32-bit lane.
    const __m128i q4 = _mm_set1_epi32(static_cast<int>(qword));
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
      const __m128i p = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + i * 4));
      __m128i ad =
          _mm_or_si128(_mm_subs_epu8(q4, p), _mm_subs_epu8(p, q4));
      ad = _mm_max_epu8(ad, _mm_srli_epi32(ad, 16));
      ad = _mm_max_epu8(ad, _mm_srli_epi32(ad, 8));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                       _mm_and_si128(ad, _mm_set1_epi32(0xff)));
    }
    for (; i < count; ++i) {
      const std::uint8_t* p = codes + i * 4;
      std::uint32_t best = 0;
      for (std::size_t j = 0; j < 4; ++j) {
        const std::int32_t d = static_cast<std::int32_t>(query[j]) -
                               static_cast<std::int32_t>(p[j]);
        const std::uint32_t ad_j =
            static_cast<std::uint32_t>(d < 0 ? -d : d);
        if (ad_j > best) best = ad_j;
      }
      out[i] = best;
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8MadAvx2(query, codes + i * dim, dim);
  }
}

__attribute__((target("avx2"))) std::size_t Sq8SadManyUnderAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t cutoff, std::uint32_t* out_idx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8SadAvx2(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

__attribute__((target("avx2"))) std::size_t Sq8SsdManyUnderAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t cutoff, std::uint32_t* out_idx) {
  std::size_t n = 0;
  if (dim == 16 || dim == 8) {
    // Same reduction trees as Sq8SsdManyAvx2, but the four row sums are
    // compared against the cutoff in-register and only surviving row
    // indices are stored: at join-style survivor rates (~1%) the store
    // side is a rare branch instead of a full uint32 stream plus a
    // second filter pass. Reductions are at most dim * 255^2 < 2^31, so
    // the signed packed compare is exact once the cutoff saturates at
    // INT32_MAX (any larger cutoff keeps every row anyway).
    const __m128i cut = _mm_set1_epi32(static_cast<int>(
        cutoff > 0x7fffffffu ? 0x7fffffffu : cutoff));
    std::size_t i = 0;
    if (dim == 16) {
      // Eight rows per iteration: each 32-byte load covers two rows
      // (in-lane byte unpacks widen them against the twice-broadcast
      // query), and one three-level hadd tree reduces all eight row
      // sums into a single 256-bit vector for one packed compare. The
      // tree interleaves lanes as [r0 r2 r4 r6 | r1 r3 r5 r7], so the
      // mask bits are consumed in ascending ROW order through kPerm to
      // keep out_idx sorted. Shuffle-port pressure drops from 2.5 to
      // ~1.9 uops per row versus a four-row cvtepu8 shape, which is
      // the kernel's bottleneck on one-port-shuffle cores.
      const __m256i zero = _mm256_setzero_si256();
      const __m256i qq = _mm256_broadcastsi128_si256(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(query)));
      const __m256i q0 = _mm256_unpacklo_epi8(qq, zero);
      const __m256i q1 = _mm256_unpackhi_epi8(qq, zero);
      const __m256i cut8 = _mm256_set1_epi32(static_cast<int>(
          cutoff > 0x7fffffffu ? 0x7fffffffu : cutoff));
      static constexpr int kPerm[8] = {0, 4, 1, 5, 2, 6, 3, 7};
      for (; i + 8 <= count; i += 8) {
        const std::uint8_t* p = codes + i * 16;
        __m256i s[4];
        for (int k = 0; k < 4; ++k) {
          const __m256i v = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(p + k * 32));
          const __m256i lo =
              _mm256_sub_epi16(_mm256_unpacklo_epi8(v, zero), q0);
          const __m256i hi =
              _mm256_sub_epi16(_mm256_unpackhi_epi8(v, zero), q1);
          s[k] = _mm256_add_epi32(_mm256_madd_epi16(lo, lo),
                                  _mm256_madd_epi16(hi, hi));
        }
        const __m256i h =
            _mm256_hadd_epi32(_mm256_hadd_epi32(s[0], s[1]),
                              _mm256_hadd_epi32(s[2], s[3]));
        const int over = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(h, cut8)));
        const int keep = over ^ 0xff;
        if (keep) {
          for (int k = 0; k < 8; ++k) {
            if (keep & (1 << kPerm[k])) {
              out_idx[n++] = static_cast<std::uint32_t>(i) +
                             static_cast<std::uint32_t>(k);
            }
          }
        }
      }
    } else {
      const __m256i q2 = _mm256_broadcastsi128_si256(_mm_cvtepu8_epi16(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(query))));
      for (; i + 4 <= count; i += 4) {
        const std::uint8_t* p = codes + i * 8;
        const __m256i r01 = _mm256_cvtepu8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
        const __m256i r23 = _mm256_cvtepu8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16)));
        const __m256i d01 = _mm256_sub_epi16(q2, r01);
        const __m256i d23 = _mm256_sub_epi16(q2, r23);
        const __m256i h = _mm256_hadd_epi32(_mm256_madd_epi16(d01, d01),
                                            _mm256_madd_epi16(d23, d23));
        const __m256i h2 = _mm256_hadd_epi32(h, h);
        const __m128i vals =
            _mm_unpacklo_epi32(_mm256_castsi256_si128(h2),
                               _mm256_extracti128_si256(h2, 1));
        int keep = _mm_movemask_ps(_mm_castsi128_ps(
                       _mm_cmpgt_epi32(vals, cut))) ^ 0xf;
        while (keep) {
          const int b = __builtin_ctz(static_cast<unsigned>(keep));
          out_idx[n++] = static_cast<std::uint32_t>(i) +
                         static_cast<std::uint32_t>(b);
          keep &= keep - 1;
        }
      }
    }
    for (; i < count; ++i) {
      if (Sq8SsdAvx2(query, codes + i * dim, dim) <= cutoff) {
        out_idx[n++] = static_cast<std::uint32_t>(i);
      }
    }
    return n;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8SsdAvx2(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

__attribute__((target("avx2"))) std::size_t Sq8MadManyUnderAvx2(
    const std::uint8_t* query, const std::uint8_t* codes, std::size_t count,
    std::size_t dim, std::uint32_t cutoff, std::uint32_t* out_idx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8MadAvx2(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

#endif  // PARSIM_METRIC_X86

using PairKernel = double (*)(const float*, const float*, std::size_t);

// ---------------------------------------------------------------------
// Many-to-many block kernels: Q queries against one contiguous block of
// candidate rows (an SoA leaf block), out[q * count + i]. The scalar
// fallbacks stream the pair kernel point-major so each candidate row is
// loaded once per sweep; the AVX2 variants additionally hoist the
// candidate row into registers for dim <= 16 (one to four widened
// vectors) and replay the pair kernel's exact op sequence per query, so
// every value stays bit-identical to the one-to-one kernel.
// ---------------------------------------------------------------------

using BlockKernel = void (*)(const float*, std::size_t, const float*,
                             std::size_t, std::size_t, double*);

void SquaredL2BlockUnrolled(const float* queries, std::size_t num_queries,
                            const float* points, std::size_t count,
                            std::size_t dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = SquaredL2Unrolled(queries + q * dim, p, dim);
    }
  }
}

void L1BlockUnrolled(const float* queries, std::size_t num_queries,
                     const float* points, std::size_t count, std::size_t dim,
                     double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = L1Unrolled(queries + q * dim, p, dim);
    }
  }
}

void LmaxBlockUnrolled(const float* queries, std::size_t num_queries,
                       const float* points, std::size_t count, std::size_t dim,
                       double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = LmaxUnrolled(queries + q * dim, p, dim);
    }
  }
}

#ifdef PARSIM_METRIC_X86

/// How many widened 4-lane vectors a row of `dim` floats occupies; rows
/// of dim <= 16 fit in the four-register hoist of the block kernels.
inline constexpr std::size_t kBlockHoistDim = 16;

__attribute__((target("avx2,fma"))) void SquaredL2BlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = SquaredL2Avx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + j));
        const __m256d d0 = _mm256_sub_pd(a0, prow[j / 4]);
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4));
        const __m256d d1 = _mm256_sub_pd(a1, prow[j / 4 + 1]);
        acc1 = _mm256_fmadd_pd(d1, d1, acc1);
      }
      if (j + 4 <= dim) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + j));
        const __m256d d0 = _mm256_sub_pd(a0, prow[j / 4]);
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        j += 4;
      }
      double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
      for (; j < dim; ++j) {
        const double d = static_cast<double>(a[j]) - static_cast<double>(p[j]);
        sum += d * d;
      }
      out[q * count + i] = sum;
    }
  }
}

__attribute__((target("avx2,fma"))) void L1BlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = L1Avx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
        const __m256d d1 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4)), prow[j / 4 + 1]);
        acc1 = _mm256_add_pd(acc1, _mm256_and_pd(abs_mask, d1));
      }
      if (j + 4 <= dim) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
        j += 4;
      }
      double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
      for (; j < dim; ++j) {
        sum += std::abs(static_cast<double>(a[j]) - static_cast<double>(p[j]));
      }
      out[q * count + i] = sum;
    }
  }
}

__attribute__((target("avx2,fma"))) void LmaxBlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = LmaxAvx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
        const __m256d d1 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4)), prow[j / 4 + 1]);
        acc1 = _mm256_max_pd(acc1, _mm256_and_pd(abs_mask, d1));
      }
      if (j + 4 <= dim) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
        j += 4;
      }
      double best = HorizontalMax(_mm256_max_pd(acc0, acc1));
      for (; j < dim; ++j) {
        best = std::max(best, std::abs(static_cast<double>(a[j]) -
                                       static_cast<double>(p[j])));
      }
      out[q * count + i] = best;
    }
  }
}

#endif  // PARSIM_METRIC_X86

/// One query's codes against a contiguous block of code rows.
using Sq8ManyKernel = void (*)(const std::uint8_t*, const std::uint8_t*,
                               std::size_t, std::size_t, std::uint32_t*);

void Sq8SadManyUnrolled(const std::uint8_t* query, const std::uint8_t* codes,
                        std::size_t count, std::size_t dim,
                        std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8SadUnrolled(query, codes + i * dim, dim);
  }
}

void Sq8SsdManyUnrolled(const std::uint8_t* query, const std::uint8_t* codes,
                        std::size_t count, std::size_t dim,
                        std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8SsdUnrolled(query, codes + i * dim, dim);
  }
}

void Sq8MadManyUnrolled(const std::uint8_t* query, const std::uint8_t* codes,
                        std::size_t count, std::size_t dim,
                        std::uint32_t* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Sq8MadUnrolled(query, codes + i * dim, dim);
  }
}

/// Fused one-to-many reduction + cutoff filter: writes the indices of
/// rows whose reduction is <= cutoff, returns how many survived.
using Sq8ManyUnderKernel = std::size_t (*)(const std::uint8_t*,
                                           const std::uint8_t*, std::size_t,
                                           std::size_t, std::uint32_t,
                                           std::uint32_t*);

std::size_t Sq8SadManyUnderUnrolled(const std::uint8_t* query,
                                    const std::uint8_t* codes,
                                    std::size_t count, std::size_t dim,
                                    std::uint32_t cutoff,
                                    std::uint32_t* out_idx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8SadUnrolled(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

std::size_t Sq8SsdManyUnderUnrolled(const std::uint8_t* query,
                                    const std::uint8_t* codes,
                                    std::size_t count, std::size_t dim,
                                    std::uint32_t cutoff,
                                    std::uint32_t* out_idx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8SsdUnrolled(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

std::size_t Sq8MadManyUnderUnrolled(const std::uint8_t* query,
                                    const std::uint8_t* codes,
                                    std::size_t count, std::size_t dim,
                                    std::uint32_t cutoff,
                                    std::uint32_t* out_idx) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (Sq8MadUnrolled(query, codes + i * dim, dim) <= cutoff) {
      out_idx[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

struct KernelTable {
  PairKernel squared_l2;
  PairKernel l1;
  PairKernel lmax;
  BlockKernel squared_l2_block;
  BlockKernel l1_block;
  BlockKernel lmax_block;
  /// SQ8 reductions dispatch as one-to-many kernels (the pair kernels
  /// are their building blocks, called directly for odd dims).
  Sq8ManyKernel sq8_sad_many;
  Sq8ManyKernel sq8_ssd_many;
  Sq8ManyKernel sq8_mad_many;
  /// Fused reduction + fixed-cutoff filters (the join's sweep shape).
  Sq8ManyUnderKernel sq8_sad_many_under;
  Sq8ManyUnderKernel sq8_ssd_many_under;
  Sq8ManyUnderKernel sq8_mad_many_under;
  /// The pair reductions behind the many-kernels, exposed for scattered
  /// single-row evaluation (cascade survivor rechecks).
  Sq8PairFn sq8_sad;
  Sq8PairFn sq8_ssd;
  Sq8PairFn sq8_mad;
  bool simd;
};

KernelTable PickKernels() {
#ifdef PARSIM_METRIC_X86
  // The SQ8 kernels only need avx2, but they dispatch together with the
  // float kernels: one cpuid decision, one table.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {SquaredL2Avx2,        L1Avx2,              LmaxAvx2,
            SquaredL2BlockAvx2,   L1BlockAvx2,         LmaxBlockAvx2,
            Sq8SadManyAvx2,       Sq8SsdManyAvx2,      Sq8MadManyAvx2,
            Sq8SadManyUnderAvx2,  Sq8SsdManyUnderAvx2, Sq8MadManyUnderAvx2,
            Sq8SadAvx2,           Sq8SsdAvx2,          Sq8MadAvx2,
            /*simd=*/true};
  }
#endif
  return {SquaredL2Unrolled,       L1Unrolled,           LmaxUnrolled,
          SquaredL2BlockUnrolled,  L1BlockUnrolled,      LmaxBlockUnrolled,
          Sq8SadManyUnrolled,      Sq8SsdManyUnrolled,   Sq8MadManyUnrolled,
          Sq8SadManyUnderUnrolled, Sq8SsdManyUnderUnrolled,
          Sq8MadManyUnderUnrolled,
          Sq8SadUnrolled,          Sq8SsdUnrolled,       Sq8MadUnrolled,
          /*simd=*/false};
}

const KernelTable& Kernels() {
  static const KernelTable table = PickKernels();
  return table;
}

}  // namespace

namespace detail {

bool SimdEnabled() { return Kernels().simd; }

}  // namespace detail

double SquaredL2(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().squared_l2(a.data(), b.data(), a.size());
}

double L2(PointView a, PointView b) { return std::sqrt(SquaredL2(a, b)); }

double L1(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().l1(a.data(), b.data(), a.size());
}

double Lmax(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().lmax(a.data(), b.data(), a.size());
}

double Metric::Distance(PointView a, PointView b) const {
  switch (kind_) {
    case MetricKind::kL1:
      return L1(a, b);
    case MetricKind::kL2:
      return L2(a, b);
    case MetricKind::kLmax:
      return Lmax(a, b);
  }
  PARSIM_UNREACHABLE();
}

double Metric::Comparable(PointView a, PointView b) const {
  if (kind_ == MetricKind::kL2) return SquaredL2(a, b);
  return Distance(a, b);
}

ComparableFn Metric::comparable_fn() const {
  switch (kind_) {
    case MetricKind::kL1:
      return Kernels().l1;
    case MetricKind::kL2:
      return Kernels().squared_l2;
    case MetricKind::kLmax:
      return Kernels().lmax;
  }
  PARSIM_UNREACHABLE();
}

Sq8PairFn Metric::sq8_pair_fn() const {
  switch (kind_) {
    case MetricKind::kL1:
      return Kernels().sq8_sad;
    case MetricKind::kL2:
      return Kernels().sq8_ssd;
    case MetricKind::kLmax:
      return Kernels().sq8_mad;
  }
  PARSIM_UNREACHABLE();
}

double Metric::ToComparable(double distance) const {
  if (kind_ == MetricKind::kL2) return distance * distance;
  return distance;
}

double Metric::FromComparable(double comparable) const {
  if (kind_ == MetricKind::kL2) return std::sqrt(comparable);
  return comparable;
}

void Metric::ComparableMany(PointView query, const Scalar* points,
                            std::size_t count, std::size_t dim,
                            double* out) const {
  PARSIM_DCHECK(query.size() == dim);
  const float* q = query.data();
  PairKernel kernel;
  switch (kind_) {
    case MetricKind::kL1:
      kernel = Kernels().l1;
      break;
    case MetricKind::kL2:
      kernel = Kernels().squared_l2;
      break;
    case MetricKind::kLmax:
      kernel = Kernels().lmax;
      break;
    default:
      PARSIM_UNREACHABLE();
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = kernel(q, points + i * dim, dim);
  }
}

void Metric::ComparableBlock(const Scalar* queries, std::size_t num_queries,
                             const Scalar* points, std::size_t count,
                             std::size_t dim, double* out) const {
  // A one-query block is exactly ComparableMany, whose kernels hoist the
  // query row into registers and stream the points past it; the block
  // kernels instead hoist each point row and re-read every query, which
  // only pays off from two queries up. Both produce bit-identical values,
  // so singleton groups can take the cheaper path.
  if (num_queries == 1) {
    ComparableMany(PointView{queries, dim}, points, count, dim, out);
    return;
  }
  BlockKernel kernel;
  switch (kind_) {
    case MetricKind::kL1:
      kernel = Kernels().l1_block;
      break;
    case MetricKind::kL2:
      kernel = Kernels().squared_l2_block;
      break;
    case MetricKind::kLmax:
      kernel = Kernels().lmax_block;
      break;
    default:
      PARSIM_UNREACHABLE();
  }
  kernel(queries, num_queries, points, count, dim, out);
}

void Metric::ComparableBlockSelf(const Scalar* points, std::size_t count,
                                 std::size_t dim, double* out) const {
  // Row-tail sweep over one shared array: row i streams past rows
  // i+1..count-1 through the one-to-many kernel, so each unordered pair
  // is computed once and out[i * count + j] (j > i) carries the exact
  // value the full ComparableBlock would have put there. Entries at or
  // below the diagonal are never written.
  for (std::size_t i = 0; i + 1 < count; ++i) {
    ComparableMany(PointView{points + i * dim, dim}, points + (i + 1) * dim,
                   count - i - 1, dim, out + i * count + i + 1);
  }
}

namespace {

Sq8ManyKernel Sq8ManyKernelFor(MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return Kernels().sq8_sad_many;
    case MetricKind::kL2:
      return Kernels().sq8_ssd_many;
    case MetricKind::kLmax:
      return Kernels().sq8_mad_many;
  }
  PARSIM_UNREACHABLE();
}

Sq8ManyUnderKernel Sq8ManyUnderKernelFor(MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return Kernels().sq8_sad_many_under;
    case MetricKind::kL2:
      return Kernels().sq8_ssd_many_under;
    case MetricKind::kLmax:
      return Kernels().sq8_mad_many_under;
  }
  PARSIM_UNREACHABLE();
}

}  // namespace

void Metric::Sq8Many(const std::uint8_t* query, const std::uint8_t* codes,
                     std::size_t count, std::size_t dim,
                     std::uint32_t* out) const {
  Sq8ManyKernelFor(kind_)(query, codes, count, dim, out);
}

std::size_t Metric::Sq8ManyUnder(const std::uint8_t* query,
                                 const std::uint8_t* codes, std::size_t count,
                                 std::size_t dim, std::uint32_t cutoff,
                                 std::uint32_t* out_idx) const {
  return Sq8ManyUnderKernelFor(kind_)(query, codes, count, dim, cutoff,
                                      out_idx);
}

void Metric::Sq8Block(const std::uint8_t* queries, std::size_t num_queries,
                      const std::uint8_t* codes, std::size_t count,
                      std::size_t dim, std::uint32_t* out) const {
  // Query-major over the one-to-many kernel: each query's codes are
  // hoisted into registers once, and the block's code rows (dim bytes,
  // 4x smaller than the float SoA rows) stay hot in L1 across queries —
  // a whole 64-query group's rows fit the cache the float path
  // overflows.
  const Sq8ManyKernel kernel = Sq8ManyKernelFor(kind_);
  for (std::size_t q = 0; q < num_queries; ++q) {
    kernel(queries + q * dim, codes, count, dim, out + q * count);
  }
}

void Metric::Sq8BlockSelf(const std::uint8_t* queries,
                          const std::uint8_t* codes, std::size_t count,
                          std::size_t dim, std::uint32_t* out) const {
  // Same row-tail structure as ComparableBlockSelf: query row i reduces
  // against code rows i+1..count-1 only, one many-kernel launch per row.
  // Integer reductions are evaluation-order independent, so every filled
  // entry matches the corresponding Sq8Block value exactly.
  const Sq8ManyKernel kernel = Sq8ManyKernelFor(kind_);
  for (std::size_t i = 0; i + 1 < count; ++i) {
    kernel(queries + i * dim, codes + (i + 1) * dim, count - i - 1, dim,
           out + i * count + i + 1);
  }
}

}  // namespace parsim
