#include "src/geometry/metric.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARSIM_METRIC_X86 1
#include <immintrin.h>
#endif

namespace parsim {

const char* MetricKindToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kL1:
      return "L1";
    case MetricKind::kL2:
      return "L2";
    case MetricKind::kLmax:
      return "Lmax";
  }
  PARSIM_UNREACHABLE();
}

namespace detail {

double SquaredL2Scalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += diff * diff;
  }
  return sum;
}

double L1Scalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double LmaxScalar(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(
        best, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return best;
}

}  // namespace detail

namespace {

// ---------------------------------------------------------------------
// Portable fallback kernels: 4-way unrolled with independent
// accumulators so the compiler can auto-vectorize / software-pipeline.
// ---------------------------------------------------------------------

double SquaredL2Unrolled(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    const double d1 =
        static_cast<double>(a[i + 1]) - static_cast<double>(b[i + 1]);
    const double d2 =
        static_cast<double>(a[i + 2]) - static_cast<double>(b[i + 2]);
    const double d3 =
        static_cast<double>(a[i + 3]) - static_cast<double>(b[i + 3]);
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double L1Unrolled(const float* a, const float* b, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    s1 += std::abs(static_cast<double>(a[i + 1]) -
                   static_cast<double>(b[i + 1]));
    s2 += std::abs(static_cast<double>(a[i + 2]) -
                   static_cast<double>(b[i + 2]));
    s3 += std::abs(static_cast<double>(a[i + 3]) -
                   static_cast<double>(b[i + 3]));
  }
  double sum = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

double LmaxUnrolled(const float* a, const float* b, std::size_t n) {
  double m0 = 0.0, m1 = 0.0, m2 = 0.0, m3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    m0 = std::max(m0, std::abs(static_cast<double>(a[i]) -
                               static_cast<double>(b[i])));
    m1 = std::max(m1, std::abs(static_cast<double>(a[i + 1]) -
                               static_cast<double>(b[i + 1])));
    m2 = std::max(m2, std::abs(static_cast<double>(a[i + 2]) -
                               static_cast<double>(b[i + 2])));
    m3 = std::max(m3, std::abs(static_cast<double>(a[i + 3]) -
                               static_cast<double>(b[i + 3])));
  }
  double best = std::max(std::max(m0, m1), std::max(m2, m3));
  for (; i < n; ++i) {
    best = std::max(best, std::abs(static_cast<double>(a[i]) -
                                   static_cast<double>(b[i])));
  }
  return best;
}

#ifdef PARSIM_METRIC_X86

// ---------------------------------------------------------------------
// AVX2+FMA kernels. Coordinates are float but all arithmetic is carried
// out on doubles (floats widened in registers), matching the precision
// contract of the scalar kernels. Compiled with per-function target
// attributes so the binary still runs on pre-AVX2 hosts; PickKernels()
// only selects these after a cpuid check.
// ---------------------------------------------------------------------

__attribute__((target("avx2,fma"))) inline double HorizontalSum(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_add_sd(lo, swapped));
}

__attribute__((target("avx2,fma"))) inline double HorizontalMax(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  lo = _mm_max_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(lo, lo);
  return _mm_cvtsd_f64(_mm_max_sd(lo, swapped));
}

__attribute__((target("avx2,fma"))) double SquaredL2Avx2(const float* a,
                                                         const float* b,
                                                         std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d0 = _mm256_sub_pd(a0, b0);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    const __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    const __m256d d1 = _mm256_sub_pd(a1, b1);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  if (i + 4 <= n) {
    const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    const __m256d d0 = _mm256_sub_pd(a0, b0);
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double L1Avx2(const float* a,
                                                  const float* b,
                                                  std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_add_pd(acc1, _mm256_and_pd(abs_mask, d1));
  }
  if (i + 4 <= n) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    sum += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum;
}

__attribute__((target("avx2,fma"))) double LmaxAvx2(const float* a,
                                                    const float* b,
                                                    std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i + 4)),
                      _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4)));
    acc1 = _mm256_max_pd(acc1, _mm256_and_pd(abs_mask, d1));
  }
  if (i + 4 <= n) {
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                                     _mm256_cvtps_pd(_mm_loadu_ps(b + i)));
    acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
    i += 4;
  }
  double best = HorizontalMax(_mm256_max_pd(acc0, acc1));
  for (; i < n; ++i) {
    best = std::max(best, std::abs(static_cast<double>(a[i]) -
                                   static_cast<double>(b[i])));
  }
  return best;
}

#endif  // PARSIM_METRIC_X86

using PairKernel = double (*)(const float*, const float*, std::size_t);

// ---------------------------------------------------------------------
// Many-to-many block kernels: Q queries against one contiguous block of
// candidate rows (an SoA leaf block), out[q * count + i]. The scalar
// fallbacks stream the pair kernel point-major so each candidate row is
// loaded once per sweep; the AVX2 variants additionally hoist the
// candidate row into registers for dim <= 16 (one to four widened
// vectors) and replay the pair kernel's exact op sequence per query, so
// every value stays bit-identical to the one-to-one kernel.
// ---------------------------------------------------------------------

using BlockKernel = void (*)(const float*, std::size_t, const float*,
                             std::size_t, std::size_t, double*);

void SquaredL2BlockUnrolled(const float* queries, std::size_t num_queries,
                            const float* points, std::size_t count,
                            std::size_t dim, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = SquaredL2Unrolled(queries + q * dim, p, dim);
    }
  }
}

void L1BlockUnrolled(const float* queries, std::size_t num_queries,
                     const float* points, std::size_t count, std::size_t dim,
                     double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = L1Unrolled(queries + q * dim, p, dim);
    }
  }
}

void LmaxBlockUnrolled(const float* queries, std::size_t num_queries,
                       const float* points, std::size_t count, std::size_t dim,
                       double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    for (std::size_t q = 0; q < num_queries; ++q) {
      out[q * count + i] = LmaxUnrolled(queries + q * dim, p, dim);
    }
  }
}

#ifdef PARSIM_METRIC_X86

/// How many widened 4-lane vectors a row of `dim` floats occupies; rows
/// of dim <= 16 fit in the four-register hoist of the block kernels.
inline constexpr std::size_t kBlockHoistDim = 16;

__attribute__((target("avx2,fma"))) void SquaredL2BlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = SquaredL2Avx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + j));
        const __m256d d0 = _mm256_sub_pd(a0, prow[j / 4]);
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        const __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4));
        const __m256d d1 = _mm256_sub_pd(a1, prow[j / 4 + 1]);
        acc1 = _mm256_fmadd_pd(d1, d1, acc1);
      }
      if (j + 4 <= dim) {
        const __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + j));
        const __m256d d0 = _mm256_sub_pd(a0, prow[j / 4]);
        acc0 = _mm256_fmadd_pd(d0, d0, acc0);
        j += 4;
      }
      double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
      for (; j < dim; ++j) {
        const double d = static_cast<double>(a[j]) - static_cast<double>(p[j]);
        sum += d * d;
      }
      out[q * count + i] = sum;
    }
  }
}

__attribute__((target("avx2,fma"))) void L1BlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = L1Avx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
        const __m256d d1 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4)), prow[j / 4 + 1]);
        acc1 = _mm256_add_pd(acc1, _mm256_and_pd(abs_mask, d1));
      }
      if (j + 4 <= dim) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_add_pd(acc0, _mm256_and_pd(abs_mask, d0));
        j += 4;
      }
      double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
      for (; j < dim; ++j) {
        sum += std::abs(static_cast<double>(a[j]) - static_cast<double>(p[j]));
      }
      out[q * count + i] = sum;
    }
  }
}

__attribute__((target("avx2,fma"))) void LmaxBlockAvx2(
    const float* queries, std::size_t num_queries, const float* points,
    std::size_t count, std::size_t dim, double* out) {
  if (dim > kBlockHoistDim) {
    for (std::size_t i = 0; i < count; ++i) {
      const float* p = points + i * dim;
      for (std::size_t q = 0; q < num_queries; ++q) {
        out[q * count + i] = LmaxAvx2(queries + q * dim, p, dim);
      }
    }
    return;
  }
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  for (std::size_t i = 0; i < count; ++i) {
    const float* p = points + i * dim;
    __m256d prow[kBlockHoistDim / 4] = {_mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd(),
                                        _mm256_setzero_pd()};
    for (std::size_t c = 0; c * 4 + 4 <= dim; ++c) {
      prow[c] = _mm256_cvtps_pd(_mm_loadu_ps(p + c * 4));
    }
    for (std::size_t q = 0; q < num_queries; ++q) {
      const float* a = queries + q * dim;
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      std::size_t j = 0;
      for (; j + 8 <= dim; j += 8) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
        const __m256d d1 = _mm256_sub_pd(
            _mm256_cvtps_pd(_mm_loadu_ps(a + j + 4)), prow[j / 4 + 1]);
        acc1 = _mm256_max_pd(acc1, _mm256_and_pd(abs_mask, d1));
      }
      if (j + 4 <= dim) {
        const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + j)),
                                         prow[j / 4]);
        acc0 = _mm256_max_pd(acc0, _mm256_and_pd(abs_mask, d0));
        j += 4;
      }
      double best = HorizontalMax(_mm256_max_pd(acc0, acc1));
      for (; j < dim; ++j) {
        best = std::max(best, std::abs(static_cast<double>(a[j]) -
                                       static_cast<double>(p[j])));
      }
      out[q * count + i] = best;
    }
  }
}

#endif  // PARSIM_METRIC_X86

struct KernelTable {
  PairKernel squared_l2;
  PairKernel l1;
  PairKernel lmax;
  BlockKernel squared_l2_block;
  BlockKernel l1_block;
  BlockKernel lmax_block;
  bool simd;
};

KernelTable PickKernels() {
#ifdef PARSIM_METRIC_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return {SquaredL2Avx2,      L1Avx2,      LmaxAvx2,
            SquaredL2BlockAvx2, L1BlockAvx2, LmaxBlockAvx2,
            /*simd=*/true};
  }
#endif
  return {SquaredL2Unrolled,      L1Unrolled,      LmaxUnrolled,
          SquaredL2BlockUnrolled, L1BlockUnrolled, LmaxBlockUnrolled,
          /*simd=*/false};
}

const KernelTable& Kernels() {
  static const KernelTable table = PickKernels();
  return table;
}

}  // namespace

namespace detail {

bool SimdEnabled() { return Kernels().simd; }

}  // namespace detail

double SquaredL2(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().squared_l2(a.data(), b.data(), a.size());
}

double L2(PointView a, PointView b) { return std::sqrt(SquaredL2(a, b)); }

double L1(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().l1(a.data(), b.data(), a.size());
}

double Lmax(PointView a, PointView b) {
  PARSIM_DCHECK(a.size() == b.size());
  return Kernels().lmax(a.data(), b.data(), a.size());
}

double Metric::Distance(PointView a, PointView b) const {
  switch (kind_) {
    case MetricKind::kL1:
      return L1(a, b);
    case MetricKind::kL2:
      return L2(a, b);
    case MetricKind::kLmax:
      return Lmax(a, b);
  }
  PARSIM_UNREACHABLE();
}

double Metric::Comparable(PointView a, PointView b) const {
  if (kind_ == MetricKind::kL2) return SquaredL2(a, b);
  return Distance(a, b);
}

double Metric::ToComparable(double distance) const {
  if (kind_ == MetricKind::kL2) return distance * distance;
  return distance;
}

double Metric::FromComparable(double comparable) const {
  if (kind_ == MetricKind::kL2) return std::sqrt(comparable);
  return comparable;
}

void Metric::ComparableMany(PointView query, const Scalar* points,
                            std::size_t count, std::size_t dim,
                            double* out) const {
  PARSIM_DCHECK(query.size() == dim);
  const float* q = query.data();
  PairKernel kernel;
  switch (kind_) {
    case MetricKind::kL1:
      kernel = Kernels().l1;
      break;
    case MetricKind::kL2:
      kernel = Kernels().squared_l2;
      break;
    case MetricKind::kLmax:
      kernel = Kernels().lmax;
      break;
    default:
      PARSIM_UNREACHABLE();
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = kernel(q, points + i * dim, dim);
  }
}

void Metric::ComparableBlock(const Scalar* queries, std::size_t num_queries,
                             const Scalar* points, std::size_t count,
                             std::size_t dim, double* out) const {
  // A one-query block is exactly ComparableMany, whose kernels hoist the
  // query row into registers and stream the points past it; the block
  // kernels instead hoist each point row and re-read every query, which
  // only pays off from two queries up. Both produce bit-identical values,
  // so singleton groups can take the cheaper path.
  if (num_queries == 1) {
    ComparableMany(PointView{queries, dim}, points, count, dim, out);
    return;
  }
  BlockKernel kernel;
  switch (kind_) {
    case MetricKind::kL1:
      kernel = Kernels().l1_block;
      break;
    case MetricKind::kL2:
      kernel = Kernels().squared_l2_block;
      break;
    case MetricKind::kLmax:
      kernel = Kernels().lmax_block;
      break;
    default:
      PARSIM_UNREACHABLE();
  }
  kernel(queries, num_queries, points, count, dim, out);
}

}  // namespace parsim
