#include "src/geometry/point.h"

#include <cstdio>

namespace parsim {

std::string Point::ToString() const {
  std::string out = "(";
  char buf[32];
  for (std::size_t i = 0; i < coords_.size(); ++i) {
    if (i > 0) out += ", ";
    std::snprintf(buf, sizeof(buf), "%g", static_cast<double>(coords_[i]));
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace parsim
