// Lp distance metrics over feature vectors.
//
// Similarity of two multimedia objects is the proximity of their feature
// vectors (Section 1 of the paper); the default metric is Euclidean (L2),
// with L1 and Lmax provided for applications that need them.
//
// The point-to-point kernels are runtime-dispatched: on x86-64 hosts with
// AVX2+FMA they run a vectorized path (floats widened to doubles in
// registers, so results keep double-precision accumulation); elsewhere an
// unrolled scalar path runs. Dispatch is resolved once per process, so
// every call site — one-to-one and one-to-many — computes bit-identical
// values for the same operand pair.

#ifndef PARSIM_SRC_GEOMETRY_METRIC_H_
#define PARSIM_SRC_GEOMETRY_METRIC_H_

#include <cstddef>
#include <cstdint>

#include "src/geometry/point.h"

namespace parsim {

/// Which Lp norm a Metric computes.
enum class MetricKind {
  kL1,
  kL2,
  kLmax,
};

const char* MetricKindToString(MetricKind kind);

/// Squared Euclidean distance (the hot-path primitive: comparisons of
/// distances never need the square root).
double SquaredL2(PointView a, PointView b);

/// Euclidean distance.
double L2(PointView a, PointView b);

/// Manhattan distance.
double L1(PointView a, PointView b);

/// Chebyshev / maximum distance.
double Lmax(PointView a, PointView b);

namespace detail {

/// True when the process dispatched to the AVX2 kernels.
bool SimdEnabled();

/// Portable reference kernels (the pre-dispatch scalar loops). Exposed so
/// tests and benchmarks can compare the dispatched kernels against them;
/// production code should call the dispatched functions above.
double SquaredL2Scalar(PointView a, PointView b);
double L1Scalar(PointView a, PointView b);
double LmaxScalar(PointView a, PointView b);

/// Reference reductions over two uint8 code rows (the SQ8 quantized
/// sweep's per-metric primitives): sum of absolute differences, sum of
/// squared differences, max absolute difference. Integer arithmetic is
/// exact, so the dispatched AVX2 variants must return these values bit
/// for bit; tests compare against these loops.
std::uint32_t Sq8SadScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n);
std::uint32_t Sq8SsdScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n);
std::uint32_t Sq8MadScalar(const std::uint8_t* a, const std::uint8_t* b,
                           std::size_t n);

}  // namespace detail

/// The dispatched pair kernel underlying Comparable(): two row-major
/// float rows of the same length -> comparable-space value.
using ComparableFn = double (*)(const Scalar*, const Scalar*, std::size_t);

/// The dispatched pair reduction over two SQ8 code rows (the integer
/// primitive behind Sq8Many): SAD for L1, SSD for L2, MAD for Lmax.
/// Exact integer arithmetic, so the value is independent of the
/// dispatched implementation.
using Sq8PairFn = std::uint32_t (*)(const std::uint8_t*, const std::uint8_t*,
                                    std::size_t);

/// A metric as a small value object, so indexes and search algorithms can
/// be parameterized without virtual dispatch on the innermost loop.
class Metric {
 public:
  explicit Metric(MetricKind kind = MetricKind::kL2) : kind_(kind) {}

  MetricKind kind() const { return kind_; }

  /// The raw dispatched kernel behind Comparable(), for hot loops that
  /// evaluate scattered single pairs (e.g. re-ranking quantized-sweep
  /// survivors): hoisting the pointer skips the per-call dispatch switch
  /// while producing bit-identical values to Comparable().
  ComparableFn comparable_fn() const;

  /// The raw dispatched SQ8 pair kernel behind Sq8Many, for hot loops
  /// that reduce scattered single code rows (the precision cascade's
  /// full-dimension recheck of prefix-stage survivors). Bit-identical to
  /// the corresponding row of Sq8Many.
  Sq8PairFn sq8_pair_fn() const;

  /// The actual distance.
  double Distance(PointView a, PointView b) const;

  /// A monotone surrogate of Distance: cheaper, order-preserving.
  /// For L2 this is the squared distance; for L1/Lmax it is the distance
  /// itself. Use with ToComparable below.
  double Comparable(PointView a, PointView b) const;

  /// Maps a real distance into the Comparable scale (e.g. squares it
  /// for L2) so pruning thresholds can be pre-transformed once.
  double ToComparable(double distance) const;

  /// Inverse of ToComparable.
  double FromComparable(double comparable) const;

  /// One-query-to-many-points kernel: out[i] = Comparable(query, p_i)
  /// where p_i is `points + i * dim`, row-major and contiguous. The hot
  /// loop of every leaf/page scan: the query stays in registers while
  /// candidate rows stream through the dispatched kernel, and each out[i]
  /// is bit-identical to the corresponding one-to-one Comparable() call.
  void ComparableMany(PointView query, const Scalar* points,
                      std::size_t count, std::size_t dim, double* out) const;

  /// Many-queries-to-many-points kernel, the batched execution path's
  /// workhorse: out[q * count + i] = Comparable(query_q, p_i), where
  /// query_q is `queries + q * dim` and p_i is `points + i * dim`, both
  /// row-major and contiguous (the points side is typically an SoA leaf
  /// block, src/index/leaf_block.h). One pass evaluates every query of a
  /// batch against one leaf page: the AVX2 path keeps the candidate row
  /// resident in registers across queries for dim <= 16 and otherwise
  /// streams the pair kernel point-major. Every out value is bit-identical
  /// to the corresponding one-to-one Comparable() call — the kernels
  /// replay the pair kernel's reduction order exactly — so batched and
  /// per-query searches produce the same results bit for bit.
  void ComparableBlock(const Scalar* queries, std::size_t num_queries,
                       const Scalar* points, std::size_t count,
                       std::size_t dim, double* out) const;

  /// Symmetric self-block kernel, the all-pairs join's sweep primitive:
  /// fills ONLY the strict upper triangle, out[i * count + j] =
  /// Comparable(p_i, p_j) for j > i, leaving the diagonal and lower
  /// triangle untouched — a self-block sweep computes each unordered
  /// pair once instead of twice. Row i runs the one-to-many kernel over
  /// the tail rows i+1..count-1, so every filled entry is bit-identical
  /// to the corresponding ComparableBlock / Comparable() value.
  void ComparableBlockSelf(const Scalar* points, std::size_t count,
                           std::size_t dim, double* out) const;

  /// One-query-to-many-rows integer reduction over SQ8 codes: out[i] is
  /// this metric's lattice reduction of (query, codes + i * dim) — sum
  /// of absolute code differences for L1, sum of squared code
  /// differences for L2, max absolute code difference for Lmax.
  /// Sq8Bound::LowerBound (src/geometry/sq8.h) maps a reduction to a
  /// comparable-space lower bound on the exact distance. The reductions
  /// are exact integer arithmetic, so the AVX2 and scalar paths return
  /// identical values (dim must stay <= 65535 so the L2 sum fits a
  /// uint32; Sq8Mirror::BuildFrom enforces this).
  void Sq8Many(const std::uint8_t* query, const std::uint8_t* codes,
               std::size_t count, std::size_t dim, std::uint32_t* out) const;

  /// Many-queries-to-many-rows variant of Sq8Many, the batched quantized
  /// sweep's workhorse: out[q * count + i] is the reduction of
  /// (queries + q * dim, codes + i * dim). Runs query-major over the
  /// one-to-many kernel: each query's codes are hoisted into registers
  /// once while the block's code rows (4x smaller than the float SoA)
  /// stay cache-hot across queries; integer exactness makes the
  /// evaluation order irrelevant to the values.
  void Sq8Block(const std::uint8_t* queries, std::size_t num_queries,
                const std::uint8_t* codes, std::size_t count, std::size_t dim,
                std::uint32_t* out) const;

  /// Symmetric self-block variant of Sq8Block for the join's quantized
  /// sweep: out[i * count + j] is the reduction of (queries + i * dim,
  /// codes + j * dim) for j > i ONLY (diagonal and lower triangle
  /// untouched). `queries` are the block's own prepared query codes and
  /// `codes` its stored mirror rows — two arrays because the prepared
  /// (clamped, rounded) codes feed the Sq8Bound contract while the
  /// stored codes are what the bound's err[] terms were measured
  /// against. Integer arithmetic, so each filled entry equals the
  /// corresponding Sq8Block / Sq8Many value exactly.
  void Sq8BlockSelf(const std::uint8_t* queries, const std::uint8_t* codes,
                    std::size_t count, std::size_t dim,
                    std::uint32_t* out) const;

  /// Fused prune scan for fixed-threshold sweeps (the similarity
  /// join): computes the same reductions as Sq8Many, compares each
  /// against `cutoff` in-register, writes the indices of surviving
  /// rows (reduction <= cutoff) to out_idx in ascending order, and
  /// returns how many survived. The selected set is exactly what an
  /// Sq8Many pass followed by a <=-cutoff filter would produce, but
  /// the reductions are never stored — at join survivor rates (~1%)
  /// that removes the uint32 result stream and its second filter pass
  /// from the hottest loop. out_idx must have room for `count`
  /// entries.
  std::size_t Sq8ManyUnder(const std::uint8_t* query,
                           const std::uint8_t* codes, std::size_t count,
                           std::size_t dim, std::uint32_t cutoff,
                           std::uint32_t* out_idx) const;

 private:
  MetricKind kind_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_GEOMETRY_METRIC_H_
