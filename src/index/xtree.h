// The X-tree of Berchtold, Keim & Kriegel [BKK 96]: an R*-tree variant
// for high-dimensional data that avoids directory degeneration.
//
// Split cascade on directory overflow:
//   1. topological (R*) split — accepted if the resulting sibling MBRs
//      overlap little;
//   2. overlap-minimal split — the best balanced single-axis split over
//      all axes (guided by the node's split history); accepted under the
//      same overlap bound;
//   3. otherwise the node becomes / extends a *supernode*: it keeps all
//      entries and occupies one more disk page (reading it charges that
//      many page accesses).
//
// Leaves always split topologically (supernodes are a directory concept).

#ifndef PARSIM_SRC_INDEX_XTREE_H_
#define PARSIM_SRC_INDEX_XTREE_H_

#include <string>

#include "src/index/tree_base.h"

namespace parsim {

/// X-tree tuning parameters.
struct XTreeOptions : TreeOptions {
  /// Maximum tolerated overlap of a directory split, as a fraction of the
  /// two siblings' combined volume (the X-tree paper's MAX_OVERLAP is
  /// 20%).
  double max_overlap = 0.2;
  /// Disable to degrade the X-tree into an R*-tree with X-tree splits
  /// (ablation).
  bool enable_supernodes = true;
};

/// An X-tree over a simulated disk.
class XTree : public TreeBase {
 public:
  XTree(std::size_t dim, SimulatedDisk* disk, XTreeOptions options = {})
      : TreeBase(dim, disk, options), xtree_options_(options) {}

  std::string name() const override { return "X-tree"; }

  const XTreeOptions& xtree_options() const { return xtree_options_; }

  /// Number of supernode extensions performed (diagnostics).
  std::uint64_t supernode_extensions() const { return supernode_extensions_; }

 protected:
  NodeId SplitNode(NodeId node_id) override;

 private:
  /// Relative overlap of a computed split: overlap volume divided by the
  /// combined volume of the two sides (0 when both sides are empty-volume).
  double RelativeOverlap(const SplitResult& split) const;

  /// Best balanced single-axis split by ascending-center ordering;
  /// axes from the split history are preferred. Returns the best found.
  SplitResult ComputeOverlapMinimalSplit(const Node& node) const;

  XTreeOptions xtree_options_;
  std::uint64_t supernode_extensions_ = 0;
};

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_XTREE_H_
