#include "src/index/leaf_sweep.h"

#include <cmath>
#include <cstdint>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARSIM_LEAF_SWEEP_X86 1
#include <immintrin.h>
#endif

namespace parsim {

namespace detail {

LeafSweepScratch& SweepScratch() {
  thread_local LeafSweepScratch scratch;
  return scratch;
}

std::uint32_t IntCutoff(double cutoff) {
  // Truncation is floor for non-negative values, and for integer r,
  // double(r) > cutoff  <=>  r > floor(cutoff), so the double compare in
  // PruneCutoff's contract becomes an exact integer compare. Reductions
  // are uint32, so any cutoff at or above 2^32 - 1 prunes nothing.
  if (!(cutoff < 4294967295.0)) return 0xffffffffu;
  return static_cast<std::uint32_t>(cutoff);
}

namespace {

std::size_t CollectSurvivorsScalar(const std::uint32_t* reductions,
                                   std::size_t count, std::uint32_t cutoff,
                                   std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (reductions[i] <= cutoff) out[n++] = static_cast<std::uint32_t>(i);
  }
  return n;
}

#ifdef PARSIM_LEAF_SWEEP_X86

__attribute__((target("avx2"))) std::size_t CollectSurvivorsAvx2(
    const std::uint32_t* reductions, std::size_t count, std::uint32_t cutoff,
    std::uint32_t* out) {
  // Unsigned r > cutoff via signed compare after flipping the sign bit
  // of both sides. A set mask bit means "pruned"; clear bits are
  // appended as survivor indices (in ascending order, same as the
  // scalar loop).
  const __m256i flip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vcut = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(cutoff)), flip);
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i r = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(reductions + i)),
        flip);
    unsigned survivors = static_cast<unsigned>(
        ~_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(r, vcut))) &
        0xff);
    while (survivors != 0) {
      out[n++] = static_cast<std::uint32_t>(
          i + static_cast<std::size_t>(__builtin_ctz(survivors)));
      survivors &= survivors - 1;
    }
  }
  for (; i < count; ++i) {
    if (reductions[i] <= cutoff) out[n++] = static_cast<std::uint32_t>(i);
  }
  return n;
}

#endif  // PARSIM_LEAF_SWEEP_X86

}  // namespace

std::size_t CollectSurvivors(const std::uint32_t* reductions,
                             std::size_t count, std::uint32_t cutoff,
                             std::uint32_t* out) {
#ifdef PARSIM_LEAF_SWEEP_X86
  static const bool kSimd = SimdEnabled();
  if (kSimd) return CollectSurvivorsAvx2(reductions, count, cutoff, out);
#endif
  return CollectSurvivorsScalar(reductions, count, cutoff, out);
}

std::size_t CountSurvivors(const std::uint32_t* reductions, std::size_t count,
                           std::uint32_t cutoff) {
  // Branch-free count the compiler auto-vectorizes; only the approximate
  // tier's exact-attribution pass calls this, so it needs no hand-tuned
  // kernel.
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    n += reductions[i] <= cutoff ? 1 : 0;
  }
  return n;
}

namespace {

// Largest code c with Recon(c) <= bound, or -1 if even code 0 exceeds it
// (clamped to 255 when every code qualifies). The division is only a
// guess — scale is tiny and |lo| can be large, so the quotient may be
// off by an ulp-induced step in either direction; the walk afterwards
// settles on the exact answer of the same Recon expression the encoder
// measured errors against, which is what keeps the interval
// conservative without a second guard term.
int CodeFloor(const Sq8Mirror& sq8, std::size_t j, double bound) {
  const double lo = sq8.lo[j];
  const double scale = sq8.scale;
  double guess = std::floor((bound - lo) / scale);
  if (guess < -2.0) guess = -2.0;
  if (guess > 257.0) guess = 257.0;
  int c = static_cast<int>(guess);
  while (c < 255 && sq8.Recon(static_cast<std::uint8_t>(c + 1), j) <= bound) {
    ++c;
  }
  while (c >= 0 && sq8.Recon(static_cast<std::uint8_t>(c), j) > bound) {
    --c;
  }
  return c < 255 ? c : 255;
}

// Smallest code c with Recon(c) >= bound, or 256 if even code 255 falls
// short (clamped to 0 when every code qualifies).
int CodeCeil(const Sq8Mirror& sq8, std::size_t j, double bound) {
  const double lo = sq8.lo[j];
  const double scale = sq8.scale;
  double guess = std::ceil((bound - lo) / scale);
  if (guess < -2.0) guess = -2.0;
  if (guess > 257.0) guess = 257.0;
  int c = static_cast<int>(guess);
  while (c > 0 && sq8.Recon(static_cast<std::uint8_t>(c - 1), j) >= bound) {
    --c;
  }
  while (c <= 255 && sq8.Recon(static_cast<std::uint8_t>(c), j) < bound) {
    ++c;
  }
  return c > 0 ? c : 0;
}

}  // namespace

}  // namespace detail

LeafSweepStats SweepLeafRange(const LeafBlock& block, const Rect& query,
                              std::vector<PointId>* out) {
  LeafSweepStats sweep;
  // Containment sweeps never charged simulated distance computations
  // before quantization and still don't: exact_distances stays 0 on
  // both paths; only the byte/prune counters differ.
  if (!block.has_sq8 || block.sq8.scale <= 0.0) {
    // scale == 0 means a constant/empty block whose codes carry no
    // information — the code intervals would be all-pass anyway.
    for (std::size_t i = 0; i < block.count; ++i) {
      if (query.Contains(block.row(i))) out->push_back(block.ids[i]);
    }
    sweep.leaf_bytes_scanned = block.count * block.dim * sizeof(Scalar);
    return sweep;
  }
  const Sq8Mirror& sq8 = block.sq8;
  const std::size_t dim = block.dim;
  // Per-dimension code interval [clo_j, chi_j]: any point v with
  // v_j in [query.lo(j), query.hi(j)] has a code c_j whose Recon lies
  // within err[j] of v_j, so c_j's Recon lies in the widened window
  // [lo - err - g, hi + err + g]; g absorbs the float->double read of
  // the rect bounds. A code outside the interval therefore certifies
  // the point is outside the rect in that dimension.
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  scratch.reductions.resize(2 * dim);  // reuse as [clo..., chi...]
  std::uint32_t* clo = scratch.reductions.data();
  std::uint32_t* chi = scratch.reductions.data() + dim;
  bool empty = false;
  for (std::size_t j = 0; j < dim; ++j) {
    const double qlo = static_cast<double>(query.lo(j));
    const double qhi = static_cast<double>(query.hi(j));
    const double g_lo = 1e-9 * (std::abs(qlo) + 1.0);
    const double g_hi = 1e-9 * (std::abs(qhi) + 1.0);
    const int lo_c = detail::CodeCeil(sq8, j, qlo - sq8.err[j] - g_lo);
    const int hi_c = detail::CodeFloor(sq8, j, qhi + sq8.err[j] + g_hi);
    if (lo_c > hi_c) {
      empty = true;
      break;
    }
    clo[j] = static_cast<std::uint32_t>(lo_c);
    chi[j] = static_cast<std::uint32_t>(hi_c);
  }
  std::uint64_t reranked = 0;
  if (!empty) {
    for (std::size_t i = 0; i < block.count; ++i) {
      const std::uint8_t* codes = sq8.row(i);
      bool maybe = true;
      for (std::size_t j = 0; j < dim; ++j) {
        const std::uint32_t c = codes[j];
        if (c < clo[j] || c > chi[j]) {
          maybe = false;
          break;
        }
      }
      if (!maybe) {
        ++sweep.quantized_pruned;
        continue;
      }
      ++reranked;
      if (query.Contains(block.row(i))) out->push_back(block.ids[i]);
    }
  } else {
    sweep.quantized_pruned = block.count;
  }
  // The code-interval prefilter reads full-dimension codes: its prunes
  // are the full-precision quantized stage's in the cascade taxonomy.
  sweep.sq8_pruned = sweep.quantized_pruned;
  sweep.reranked = reranked;
  sweep.leaf_bytes_scanned =
      block.count * dim + reranked * dim * sizeof(Scalar);
  return sweep;
}

}  // namespace parsim
