#include "src/index/leaf_block.h"

#include "src/util/check.h"

namespace parsim {

void LeafBlock::BuildFrom(const Node& leaf, std::size_t dimension,
                          bool quantize, bool prefix) {
  PARSIM_DCHECK(leaf.IsLeaf());
  count = leaf.entries.size();
  dim = dimension;
  coords.resize(count * dim);
  ids.resize(count);
  leaf.GatherLeafCoords(dim, coords.data());
  for (std::size_t i = 0; i < count; ++i) ids[i] = leaf.entries[i].child;
  has_sq8 = quantize;
  if (quantize) {
    sq8.BuildFrom(coords.data(), count, dim);
    if (prefix) sq8.BuildDefaultPrefix();
  } else {
    sq8 = Sq8Mirror{};
  }
}

void LeafBlockCache::Invalidate(std::size_t num_nodes) {
  ++epoch_;
  if (slots_.size() < num_nodes) {
    slots_.reserve(num_nodes);
    while (slots_.size() < num_nodes) {
      slots_.push_back(std::make_unique<Slot>());
    }
  }
}

const LeafBlock& LeafBlockCache::Get(const Node& leaf,
                                     std::size_t dim) const {
  PARSIM_DCHECK(leaf.IsLeaf());
  PARSIM_CHECK(leaf.id < slots_.size());
  Slot& slot = *slots_[leaf.id];
  if (slot.built_epoch.load(std::memory_order_acquire) == epoch_) {
    return slot.block;
  }
  std::lock_guard<std::mutex> lock(slot.build_mutex);
  if (slot.built_epoch.load(std::memory_order_relaxed) != epoch_) {
    slot.block.BuildFrom(leaf, dim, quantize_, prefix_);
    slot.built_epoch.store(epoch_, std::memory_order_release);
  }
  return slot.block;
}

}  // namespace parsim
