// The one place every leaf-page sweep goes through.
//
// Before this helper, the quantized/exact decision would have been
// duplicated across five call-sites (HsKnn, RkvKnn, BallQuery,
// RangeQuery/partial-match, and the coalesced batch expander — the R*
// reinsert's center-distance sort operates on a scratch entry buffer,
// not a LeafBlock, so it is not a leaf sweep in this sense). SweepLeaf*
// centralizes it: on a plain block the sweep is the familiar
// ComparableMany / ComparableBlock / Contains pass; on a quantized block
// (LeafBlock::has_sq8) it first runs the integer SQ8 reduction over the
// uint8 mirror, prunes every candidate whose comparable-space lower
// bound (Sq8Bound::LowerBound, applied through its reduction-space
// inversion PruneCutoff so the hot loop is one compare per candidate)
// exceeds the caller's current threshold, and re-ranks only survivors
// through the exact float kernels. Because
// the bound never exceeds the exact comparable distance, a pruned
// candidate is exactly one the caller's threshold test would have
// rejected — emitted keys, result sets, and page accesses are
// bit-identical to the exact sweep.
//
// Each sweep returns (or fills) LeafSweepStats; callers forward them to
// TreeBase::ChargeLeafSweep so exact re-ranks meter simulated CPU
// (distance_computations) and the prune/re-rank/bytes counters reach the
// per-query stats. The integer bound computations charge no simulated
// CPU: they are the cost the quantized path removes, and the counters
// make the removal auditable instead of invisible.

#ifndef PARSIM_SRC_INDEX_LEAF_SWEEP_H_
#define PARSIM_SRC_INDEX_LEAF_SWEEP_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/rect.h"
#include "src/geometry/sq8.h"
#include "src/index/leaf_block.h"
#include "src/util/phase_timer.h"

namespace parsim {

/// What one leaf sweep did, for cost charging and stats plumbing.
struct LeafSweepStats {
  /// Exact float kernel evaluations: all candidates on the exact path,
  /// only re-ranked survivors on the quantized path (containment sweeps
  /// charge none, matching RangeQuery's pre-quantization accounting).
  std::uint64_t exact_distances = 0;
  /// Candidates eliminated by the SQ8 lower bound before exact work
  /// (total across stages: always base_pruned + prefix_pruned +
  /// sq8_pruned, and identical whether or not the prefix stage ran).
  std::uint64_t quantized_pruned = 0;
  /// Stage split of quantized_pruned. base_pruned: killed by the
  /// candidate-independent base term alone (whole-block prune at entry,
  /// or rest-of-block when the threshold tightens mid-sweep past the
  /// base) — no per-candidate kernel work. prefix_pruned: killed by the
  /// prefix-dimension cascade stage's d'-byte reduction. sq8_pruned:
  /// killed by the full-dimension reduction (the only kernel stage when
  /// no prefix is built, and the range sweep's code-interval prefilter).
  std::uint64_t base_pruned = 0;
  std::uint64_t prefix_pruned = 0;
  std::uint64_t sq8_pruned = 0;
  /// Bound survivors re-ranked through the exact float kernel.
  std::uint64_t reranked = 0;
  /// Approximate tier only (approx_factor > 1): of the pruned
  /// candidates, how many the LOSSLESS cutoff derived from the same
  /// running threshold provably would have pruned too (always <=
  /// quantized_pruned). Conservative: a whole-block relaxed base prune
  /// skips the integer kernel, so when the exact contract would have
  /// needed it, nothing is counted as exactly proven.
  std::uint64_t approx_pruned_exactly = 0;
  /// Bytes the sweep streamed: count * dim * sizeof(Scalar) on the exact
  /// path; count * dim code bytes plus the re-ranked float rows on the
  /// quantized path (zero when the query's base term pruned the whole
  /// block before the mirror was read). Bookkeeping only — simulated
  /// time still derives from page counts and distance computations.
  std::uint64_t leaf_bytes_scanned = 0;
};

namespace detail {

/// Best-effort readahead for loops that touch scattered survivor rows
/// (cold lines: the cascade streams only the prefix codes, so a
/// survivor's full code/float row is usually not cached). No-op where
/// the builtin is unavailable; never affects results.
inline void PrefetchRow(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
#else
  (void)p;
#endif
}

/// Grow-only resize for scratch vectors that are always written before
/// they are read: plain resize() value-initializes every element past
/// the old size, and with per-call sizes that fluctuate block to block
/// that memset re-runs on almost every sweep. Keeping the size at its
/// high-water mark makes the steady state allocation- and memset-free.
template <typename T>
inline void GrowTo(std::vector<T>& v, std::size_t n) {
  if (v.size() < n) v.resize(n);
}

/// "Row not in the gathered union" sentinel of the batched cascade's
/// union slot map (block rows are far below 2^32 - 1).
inline constexpr std::uint32_t kNoUnionSlot = 0xffffffffu;

/// Packs the code rows listed in `rows` contiguously into `dst`
/// (n x dim bytes). A variable-length memcpy per row compiles to a
/// libc call — tens of nanoseconds each, which dominates a cascade
/// full stage that gathers only a handful of survivors — so the common
/// code widths dispatch once per call to a fixed-size copy the
/// compiler inlines to one or two vector moves.
inline void GatherRows(const std::uint8_t* codes, std::size_t dim,
                       const std::uint32_t* rows, std::size_t n,
                       std::uint8_t* dst) {
  switch (dim) {
    case 8:
      for (std::size_t s = 0; s < n; ++s) {
        std::memcpy(dst + s * 8, codes + rows[s] * std::size_t{8}, 8);
      }
      break;
    case 16:
      for (std::size_t s = 0; s < n; ++s) {
        std::memcpy(dst + s * 16, codes + rows[s] * std::size_t{16}, 16);
      }
      break;
    case 32:
      for (std::size_t s = 0; s < n; ++s) {
        std::memcpy(dst + s * 32, codes + rows[s] * std::size_t{32}, 32);
      }
      break;
    default:
      for (std::size_t s = 0; s < n; ++s) {
        if (s + 8 < n) PrefetchRow(codes + rows[s + 8] * dim);
        std::memcpy(dst + s * dim, codes + rows[s] * dim, dim);
      }
  }
}

/// Per-thread buffers of the sweep templates below, so steady-state
/// sweeps allocate nothing (the pattern ScanLeafBlock used before).
struct LeafSweepScratch {
  std::vector<double> dists;
  std::vector<std::uint32_t> reductions;
  Sq8Query query;
  std::vector<std::uint8_t> qcodes;    // batched sweeps: members x dim
  std::vector<Sq8Bound> bounds;        // batched sweeps: one per member
  std::vector<std::uint32_t> survivors;  // bound survivors of one sweep
  std::vector<std::uint32_t> active;   // members surviving the base prune
  std::vector<std::uint8_t> qprefix;   // cascade: query codes gathered to
                                       // prefix order (members x d')
  std::vector<std::uint32_t> full_reductions;  // cascade stage 2: full-d
                                               // reductions of survivors
  std::vector<std::uint8_t> gathered;  // cascade stage 2: survivor code
                                       // rows packed contiguous so the
                                       // many-kernel (not the slower
                                       // per-pair call) reduces them
  std::vector<std::uint32_t> surv_counts;  // batched cascade: survivors
                                           // per active member
  std::vector<double> dcuts;           // batched cascade: stage-1 cutoff
                                       // per active member
  std::vector<std::uint32_t> union_slot;   // block row -> slot in the
                                           // gathered union (or kNoSlot)
  std::vector<std::uint32_t> union_rows;   // union of survivor rows, in
                                           // first-appearance order
};

LeafSweepScratch& SweepScratch();

/// Reduction-space prune cutoff as an exact integer: for any uint32
/// reduction r, double(r) > cutoff <=> r > IntCutoff(cutoff) (truncation
/// is floor for the non-negative values PruneCutoff returns; cutoffs at
/// or past 2^32 - 1, including +infinity, saturate to UINT32_MAX which
/// prunes nothing).
std::uint32_t IntCutoff(double cutoff);

/// Appends to `out` (capacity >= count) every index i with
/// reductions[i] <= cutoff, ascending, and returns how many. The prune
/// hot loop: AVX2 compares 8 reductions per instruction and compresses
/// the clear mask bits where available; the survivor list is identical
/// to the scalar scan's.
std::size_t CollectSurvivors(const std::uint32_t* reductions,
                             std::size_t count, std::uint32_t cutoff,
                             std::uint32_t* out);

/// How many of `count` reductions are <= cutoff (the survivor count of
/// CollectSurvivors without materializing the list). The approximate
/// tier's exact-attribution pass: it re-scores already-computed
/// reductions against the lossless cutoff, so it runs only when
/// approx_factor > 1 and never touches the exact path.
std::size_t CountSurvivors(const std::uint32_t* reductions,
                           std::size_t count, std::uint32_t cutoff);

}  // namespace detail

/// Sweeps one leaf block for a distance-threshold query (k-NN, ball).
/// `threshold()` is the caller's CURRENT comparable-space cutoff — a
/// candidate strictly above it can no longer matter (k-th best bound, or
/// the ball radius); it is re-read after every emit — the only point it
/// can tighten — so each candidate is tested against the threshold in
/// force when the sweep reaches it, exactly as a per-candidate re-read
/// would. `emit(i, comparable)` receives every surviving candidate
/// with its exact comparable distance, in block order — bit-identical,
/// on both paths, to what the exact kernels compute.
///
/// `approx_factor` > 1 enables the approximate tier's bound relaxation
/// (quantized blocks only; the exact path has no cutoff to relax): the
/// SQ8/prefix prune cutoff derives from threshold()/approx_factor
/// instead of threshold(), so candidates whose lower bound clears the
/// exact threshold but not the relaxed one are dropped without a
/// re-rank — deliberately lossy, measured by the recall harness
/// (src/eval/recall.h). approx_pruned_exactly counts, among the pruned,
/// those the lossless cutoff at the same running threshold would also
/// have killed. At 1.0 (the default) every approx branch is dead and
/// the sweep is bit-identical to the pre-approx code.
template <typename ThresholdFn, typename EmitFn>
LeafSweepStats SweepLeafDistances(const LeafBlock& block, PointView query,
                                  const Metric& metric,
                                  ThresholdFn&& threshold, EmitFn&& emit,
                                  double approx_factor = 1.0) {
  LeafSweepStats sweep;
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  if (!block.has_sq8) {
    ScopedPhase phase(Phase::kSweepRerank);
    detail::GrowTo(scratch.dists, block.count);
    metric.ComparableMany(query, block.coords.data(), block.count, block.dim,
                          scratch.dists.data());
    for (std::size_t i = 0; i < block.count; ++i) {
      emit(i, scratch.dists[i]);
    }
    sweep.exact_distances = block.count;
    sweep.leaf_bytes_scanned = block.count * block.dim * sizeof(Scalar);
    return sweep;
  }
  {
    ScopedPhase phase(Phase::kSweepPrep);
    scratch.query.Prepare(block.sq8, query, metric.kind());
  }
  // When the query's candidate-independent `base` term already exceeds
  // the threshold (a query far outside the block's lattice range —
  // PruneCutoff's negative sentinel), every candidate prunes without the
  // integer kernel ever running: the sweep costs one query preparation.
  const bool approx = approx_factor > 1.0;
  double last_threshold = threshold();
  double dcut = scratch.query.bound.PruneCutoff(
      approx ? last_threshold / approx_factor : last_threshold);
  if (dcut < 0.0) {
    sweep.base_pruned = block.count;
    sweep.quantized_pruned = block.count;
    if (approx && scratch.query.bound.PruneCutoff(last_threshold) < 0.0) {
      sweep.approx_pruned_exactly = block.count;
    }
    return sweep;
  }
  // One SIMD pass compresses the survivor indices under the cutoff in
  // force at block entry; the emit loop then re-checks each survivor
  // against the current cutoff, which only tightens when an emit lands.
  // Per candidate this decides exactly what the naive interleaved loop
  // decides: a candidate pruned at entry is pruned under any later
  // (tighter) cutoff too, and one that entry-survives but reaches the
  // emit loop after a tightening is caught by the re-check — so counters
  // and emitted keys are identical, at one compare per candidate plus
  // one per survivor.
  //
  // With a prefix stage (the progressive precision cascade), the entry
  // pass reduces only the d' gathered prefix dimensions: a prefix
  // reduction above the cutoff implies the full-dimension reduction is
  // too (subset of nonnegative terms, same Sq8Bound), so prefix kills
  // are exactly candidates the full kernel would have killed. Prefix
  // survivors then get their full-dimension reduction from the pair
  // kernel, and the emit loop below is IDENTICAL on both shapes — it
  // sees full-dimension reductions either way, so emits, thresholds,
  // and total prune counts match the SQ8-only path bit for bit. Prefix
  // survivors that a tightened cutoff would have entry-killed under the
  // full reduction are caught by the loop's re-check (the entry cutoff
  // only loosens relative to later ones), never emitted.
  const ComparableFn exact = metric.comparable_fn();
  std::uint32_t cutoff = detail::IntCutoff(dcut);
  // Exact-attribution twin of `cutoff` (approx only): the integer
  // cutoff the lossless contract would use at the same threshold.
  // PruneCutoff is monotone in its threshold and the relaxed cutoff was
  // non-negative, so the exact one is too, ecut >= cutoff, and the
  // exactly-proven prunes are a subset of the relaxed prunes.
  std::uint32_t ecut = 0;
  if (approx) {
    ecut = detail::IntCutoff(scratch.query.bound.PruneCutoff(last_threshold));
  }
  const Sq8Mirror& sq8 = block.sq8;
  const bool cascade = sq8.prefix_dim > 0;
  detail::GrowTo(scratch.survivors, block.count);
  std::size_t nsurv;
  if (cascade) {
    {
      ScopedPhase phase(Phase::kSweepPrefix);
      const std::size_t pd = sq8.prefix_dim;
      detail::GrowTo(scratch.qprefix, pd);
      for (std::size_t p = 0; p < pd; ++p) {
        scratch.qprefix[p] = scratch.query.codes[sq8.order[p]];
      }
      detail::GrowTo(scratch.reductions, block.count);
      metric.Sq8Many(scratch.qprefix.data(), sq8.prefix_codes.data(),
                     block.count, pd, scratch.reductions.data());
      nsurv = detail::CollectSurvivors(scratch.reductions.data(), block.count,
                                       cutoff, scratch.survivors.data());
    }
    sweep.prefix_pruned += block.count - nsurv;
    if (approx) {
      sweep.approx_pruned_exactly += block.count - detail::CountSurvivors(
          scratch.reductions.data(), block.count, ecut);
    }
    ScopedPhase phase(Phase::kSweepFull);
    // Pack the survivors' full code rows contiguously and make ONE
    // many-kernel call: the gather is a dim-byte copy per survivor,
    // and the many-kernel's fast paths beat a per-survivor call
    // through the pair-function pointer severalfold. Integer kernels
    // are exact, so each reduction matches the pair call bit for bit.
    detail::GrowTo(scratch.full_reductions, nsurv);
    detail::GrowTo(scratch.gathered, nsurv * block.dim);
    detail::GatherRows(sq8.codes.data(), block.dim, scratch.survivors.data(),
                       nsurv, scratch.gathered.data());
    metric.Sq8Many(scratch.query.codes.data(), scratch.gathered.data(), nsurv,
                   block.dim, scratch.full_reductions.data());
  } else {
    ScopedPhase phase(Phase::kSweepFull);
    detail::GrowTo(scratch.reductions, block.count);
    metric.Sq8Many(scratch.query.codes.data(), sq8.codes.data(), block.count,
                   block.dim, scratch.reductions.data());
    nsurv = detail::CollectSurvivors(scratch.reductions.data(), block.count,
                                     cutoff, scratch.survivors.data());
    sweep.sq8_pruned += block.count - nsurv;
    if (approx) {
      sweep.approx_pruned_exactly += block.count - detail::CountSurvivors(
          scratch.reductions.data(), block.count, ecut);
    }
  }
  {
    ScopedPhase phase(Phase::kSweepRerank);
    // The threshold can only tighten when an emit lands, so it is
    // re-read exactly once per emit instead of once per survivor —
    // every survivor still sees the same (cutoff, dcut) state as the
    // read-every-iteration loop, and the counters match it exactly.
    for (std::size_t s = 0; s < nsurv; ++s) {
      const std::size_t i = scratch.survivors[s];
      const std::uint32_t reduction =
          cascade ? scratch.full_reductions[s] : scratch.reductions[i];
      if (reduction > cutoff) {
        ++sweep.sq8_pruned;
        if (approx && reduction > ecut) ++sweep.approx_pruned_exactly;
        continue;
      }
      ++sweep.reranked;
      emit(i, exact(query.data(), block.row(i).data(), block.dim));
      const double t = threshold();
      if (t != last_threshold) {
        last_threshold = t;
        dcut = scratch.query.bound.PruneCutoff(approx ? t / approx_factor : t);
        if (dcut < 0.0) {
          sweep.base_pruned += nsurv - s - 1;
          if (approx) {
            // Exact attribution of the rest-of-block drop: the exact
            // base may not have crossed yet, in which case each
            // remaining survivor's already-computed reduction decides.
            const double ed = scratch.query.bound.PruneCutoff(t);
            if (ed < 0.0) {
              sweep.approx_pruned_exactly += nsurv - s - 1;
            } else {
              const std::uint32_t ec = detail::IntCutoff(ed);
              for (std::size_t r = s + 1; r < nsurv; ++r) {
                const std::uint32_t red =
                    cascade ? scratch.full_reductions[r]
                            : scratch.reductions[scratch.survivors[r]];
                if (red > ec) ++sweep.approx_pruned_exactly;
              }
            }
          }
          break;
        }
        cutoff = detail::IntCutoff(dcut);
        if (approx) {
          ecut = detail::IntCutoff(scratch.query.bound.PruneCutoff(t));
        }
      }
    }
  }
  sweep.quantized_pruned =
      sweep.base_pruned + sweep.prefix_pruned + sweep.sq8_pruned;
  sweep.exact_distances = sweep.reranked;
  // Honest byte accounting per shape: the cascade streams d' code bytes
  // per candidate plus full code rows only for prefix survivors, so its
  // bytes differ from the SQ8-only path (identity checks cover results,
  // distances, and pages — not bytes).
  const std::uint64_t code_bytes =
      cascade ? block.count * sq8.prefix_dim + nsurv * block.dim
              : block.count * block.dim;
  sweep.leaf_bytes_scanned =
      code_bytes + sweep.reranked * block.dim * sizeof(Scalar);
  return sweep;
}

/// Sweeps one leaf block for a containment query (range / partial
/// match), appending matching ids to `out`. On a quantized block a
/// conservative per-dimension code-interval prefilter runs over the
/// uint8 mirror first; survivors go through the exact float Contains, so
/// the id set matches the exact sweep exactly.
LeafSweepStats SweepLeafRange(const LeafBlock& block, const Rect& query,
                              std::vector<PointId>* out);

/// Batched variant of SweepLeafDistances: `members` queries (row-major,
/// members x block.dim scalars) against one block, one many-to-many
/// kernel call. `threshold(m)` and `emit(m, i, comparable)` are the
/// per-member analogues; for each member, candidates arrive in block
/// order (members in ascending order), so the per-member emit sequence
/// matches the single-query sweep exactly. `stats` must have `members`
/// entries; entry m accumulates member m's share. `approx_factor` is
/// the approximate tier's bound relaxation, exactly as in
/// SweepLeafDistances (1.0 = exact, bit-identical to the pre-approx
/// code).
template <typename ThresholdFn, typename EmitFn>
void SweepLeafBlockMany(const LeafBlock& block, const Scalar* queries,
                        std::size_t members, const Metric& metric,
                        ThresholdFn&& threshold, EmitFn&& emit,
                        LeafSweepStats* stats, double approx_factor = 1.0) {
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  const std::size_t dim = block.dim;
  const bool approx = approx_factor > 1.0;
  if (!block.has_sq8) {
    ScopedPhase phase(Phase::kSweepRerank);
    detail::GrowTo(scratch.dists, members * block.count);
    metric.ComparableBlock(queries, members, block.coords.data(), block.count,
                           dim, scratch.dists.data());
    for (std::size_t m = 0; m < members; ++m) {
      const double* row = scratch.dists.data() + m * block.count;
      for (std::size_t i = 0; i < block.count; ++i) {
        emit(m, i, row[i]);
      }
      stats[m].exact_distances += block.count;
      stats[m].leaf_bytes_scanned += block.count * dim * sizeof(Scalar);
    }
    return;
  }
  {
    ScopedPhase phase(Phase::kSweepPrep);
    detail::GrowTo(scratch.qcodes, members * dim);
    detail::GrowTo(scratch.bounds, members);
    PrepareSq8QueryMany(block.sq8, queries, members, metric.kind(),
                        scratch.qcodes.data(), scratch.bounds.data());
  }
  // Member-level base prune: a member whose candidate-independent `base`
  // term already exceeds its threshold (PruneCutoff's negative sentinel)
  // prunes the whole block before the integer kernel runs. Survivors are
  // compacted in place (ascending, so each code row moves down or stays
  // put) and one many-to-many kernel call covers just them — on hot-spot
  // batches most member/block pairs end here, at the cost of one query
  // preparation and one compare.
  scratch.active.clear();
  for (std::size_t m = 0; m < members; ++m) {
    const double t = threshold(m);
    if (scratch.bounds[m].PruneCutoff(approx ? t / approx_factor : t) < 0.0) {
      stats[m].quantized_pruned += block.count;
      stats[m].base_pruned += block.count;
      if (approx && scratch.bounds[m].PruneCutoff(t) < 0.0) {
        stats[m].approx_pruned_exactly += block.count;
      }
    } else {
      scratch.active.push_back(static_cast<std::uint32_t>(m));
    }
  }
  const std::size_t nactive = scratch.active.size();
  if (nactive == 0) {
    return;
  }
  for (std::size_t a = 0; a < nactive; ++a) {
    const std::size_t m = scratch.active[a];
    if (m != a) {
      std::memcpy(scratch.qcodes.data() + a * dim,
                  scratch.qcodes.data() + m * dim, dim);
    }
  }
  // Cascade stage 1 (when the block carries a prefix stage): the
  // many-to-many pass reduces only the d' gathered prefix dimensions —
  // same lossless contract as the single-query sweep; the per-member
  // loop below then sees full-dimension reductions either way.
  const Sq8Mirror& sq8 = block.sq8;
  const bool cascade = sq8.prefix_dim > 0;
  const std::size_t red_dim = cascade ? sq8.prefix_dim : dim;
  const std::uint8_t* red_codes =
      cascade ? sq8.prefix_codes.data() : sq8.codes.data();
  const std::uint8_t* red_queries = scratch.qcodes.data();
  if (cascade) {
    ScopedPhase phase(Phase::kSweepPrefix);
    const std::size_t pd = sq8.prefix_dim;
    detail::GrowTo(scratch.qprefix, nactive * pd);
    for (std::size_t a = 0; a < nactive; ++a) {
      const std::uint8_t* src = scratch.qcodes.data() + a * dim;
      std::uint8_t* dst = scratch.qprefix.data() + a * pd;
      for (std::size_t p = 0; p < pd; ++p) {
        dst[p] = src[sq8.order[p]];
      }
    }
    red_queries = scratch.qprefix.data();
  }
  {
    ScopedPhase phase(cascade ? Phase::kSweepPrefix : Phase::kSweepFull);
    detail::GrowTo(scratch.reductions, nactive * block.count);
    metric.Sq8Block(red_queries, nactive, red_codes, block.count, red_dim,
                    scratch.reductions.data());
  }
  const ComparableFn exact = metric.comparable_fn();
  // Single active member — the dominant shape once a hot-spot batch has
  // spread over distinct leaves (most rounds group only one or two
  // queries per page). Fully fused cascade path with none of the
  // multi-member bookkeeping (survivor arena strides, per-member cut
  // and count stores, union slot map): collect, gather, one full-d
  // kernel, rerank — per-candidate decisions and every counter exactly
  // as in the general loop below.
  if (cascade && nactive == 1) {
    const std::size_t m = scratch.active[0];
    const Scalar* qrow = queries + m * dim;
    std::uint64_t base_pruned = 0;
    std::uint64_t prefix_pruned = 0;
    std::uint64_t sq8_pruned = 0;
    std::uint64_t reranked = 0;
    std::uint64_t approx_exact = 0;
    std::size_t nsurv = 0;
    double last_threshold = threshold(m);
    double dcut = scratch.bounds[m].PruneCutoff(
        approx ? last_threshold / approx_factor : last_threshold);
    if (dcut < 0.0) {
      base_pruned = block.count;
      if (approx && scratch.bounds[m].PruneCutoff(last_threshold) < 0.0) {
        approx_exact = block.count;
      }
    } else {
      std::uint32_t cutoff = detail::IntCutoff(dcut);
      std::uint32_t ecut = 0;
      if (approx) {
        ecut = detail::IntCutoff(scratch.bounds[m].PruneCutoff(last_threshold));
      }
      detail::GrowTo(scratch.survivors, block.count);
      {
        ScopedPhase phase(Phase::kSweepPrefix);
        nsurv = detail::CollectSurvivors(scratch.reductions.data(),
                                         block.count, cutoff,
                                         scratch.survivors.data());
      }
      prefix_pruned = block.count - nsurv;
      if (approx) {
        approx_exact += block.count - detail::CountSurvivors(
            scratch.reductions.data(), block.count, ecut);
      }
      if (nsurv > 0) {
        ScopedPhase phase(Phase::kSweepFull);
        detail::GrowTo(scratch.gathered, nsurv * dim);
        detail::GatherRows(sq8.codes.data(), dim, scratch.survivors.data(),
                           nsurv, scratch.gathered.data());
        detail::GrowTo(scratch.full_reductions, nsurv);
        metric.Sq8Many(scratch.qcodes.data(), scratch.gathered.data(), nsurv,
                       dim, scratch.full_reductions.data());
      }
      ScopedPhase phase(Phase::kSweepRerank);
      for (std::size_t s = 0; s < nsurv; ++s) {
        const std::size_t i = scratch.survivors[s];
        if (scratch.full_reductions[s] > cutoff) {
          ++sq8_pruned;
          if (approx && scratch.full_reductions[s] > ecut) ++approx_exact;
          continue;
        }
        ++reranked;
        emit(m, i, exact(qrow, block.row(i).data(), dim));
        const double t = threshold(m);
        if (t != last_threshold) {
          last_threshold = t;
          dcut = scratch.bounds[m].PruneCutoff(approx ? t / approx_factor : t);
          if (dcut < 0.0) {
            base_pruned += nsurv - s - 1;
            if (approx) {
              const double ed = scratch.bounds[m].PruneCutoff(t);
              if (ed < 0.0) {
                approx_exact += nsurv - s - 1;
              } else {
                const std::uint32_t ec = detail::IntCutoff(ed);
                for (std::size_t r = s + 1; r < nsurv; ++r) {
                  if (scratch.full_reductions[r] > ec) ++approx_exact;
                }
              }
            }
            break;
          }
          cutoff = detail::IntCutoff(dcut);
          if (approx) {
            ecut = detail::IntCutoff(scratch.bounds[m].PruneCutoff(t));
          }
        }
      }
    }
    stats[m].exact_distances += reranked;
    stats[m].quantized_pruned += base_pruned + prefix_pruned + sq8_pruned;
    stats[m].base_pruned += base_pruned;
    stats[m].prefix_pruned += prefix_pruned;
    stats[m].sq8_pruned += sq8_pruned;
    stats[m].reranked += reranked;
    stats[m].approx_pruned_exactly += approx_exact;
    stats[m].leaf_bytes_scanned += block.count * sq8.prefix_dim +
                                   nsurv * dim +
                                   reranked * dim * sizeof(Scalar);
    return;
  }
  std::size_t union_size = 0;
  if (cascade) {
    // Batched full stage: with a handful of survivors per member, one
    // gather + many-kernel launch per member is dominated by launch
    // overhead (resize, tail handling, call dispatch). Instead collect
    // every member's stage-1 survivors first, gather the UNION of
    // surviving rows once, and reduce the whole (active x union) slab
    // with a single full-dimension block kernel. The reductions are
    // pure integer functions of (query codes, row codes) — independent
    // of the heap thresholds — so hoisting them before the rerank pass
    // cannot change any decision, and each member's rerank reads the
    // exact same uint32 it would have computed for itself.
    ScopedPhase phase(Phase::kSweepPrefix);
    detail::GrowTo(scratch.survivors, nactive * block.count);
    detail::GrowTo(scratch.surv_counts, nactive);
    detail::GrowTo(scratch.dcuts, nactive);
    // union_slot holds the invariant "every entry is kNoUnionSlot
    // between calls": new entries are born with it (resize fill) and
    // the tail of this function restores the touched ones, so no
    // per-call memset over the whole block.
    if (scratch.union_slot.size() < block.count) {
      scratch.union_slot.resize(block.count, detail::kNoUnionSlot);
    }
    detail::GrowTo(scratch.union_rows, block.count);
    std::uint32_t nunion = 0;
    for (std::size_t a = 0; a < nactive; ++a) {
      const std::size_t m = scratch.active[a];
      const std::uint32_t* row = scratch.reductions.data() + a * block.count;
      std::uint32_t* surv = scratch.survivors.data() + a * block.count;
      // Hoisting the threshold read is sound: only member m's own emits
      // move threshold(m), and nothing emits between here and m's
      // rerank pass below (the rerank recomputes the exact-attribution
      // cutoff from the same unchanged threshold).
      const double t = threshold(m);
      const double dcut =
          scratch.bounds[m].PruneCutoff(approx ? t / approx_factor : t);
      scratch.dcuts[a] = dcut;
      std::size_t nsurv = 0;
      if (dcut >= 0.0) {
        nsurv = detail::CollectSurvivors(row, block.count,
                                         detail::IntCutoff(dcut), surv);
        for (std::size_t s = 0; s < nsurv; ++s) {
          const std::uint32_t i = surv[s];
          if (scratch.union_slot[i] == detail::kNoUnionSlot) {
            scratch.union_slot[i] = nunion;
            scratch.union_rows[nunion++] = i;
          }
        }
      }
      scratch.surv_counts[a] = static_cast<std::uint32_t>(nsurv);
    }
    if (nunion > 0) {
      union_size = nunion;
      ScopedPhase full_phase(Phase::kSweepFull);
      detail::GrowTo(scratch.gathered, union_size * dim);
      detail::GatherRows(sq8.codes.data(), dim, scratch.union_rows.data(),
                         union_size, scratch.gathered.data());
      detail::GrowTo(scratch.full_reductions, nactive * union_size);
      metric.Sq8Block(scratch.qcodes.data(), nactive, scratch.gathered.data(),
                      union_size, dim, scratch.full_reductions.data());
    }
  } else {
    detail::GrowTo(scratch.survivors, block.count);
  }
  for (std::size_t a = 0; a < nactive; ++a) {
    const std::size_t m = scratch.active[a];
    const std::uint32_t* row = scratch.reductions.data() + a * block.count;
    const Scalar* qrow = queries + m * dim;
    std::uint64_t base_pruned = 0;
    std::uint64_t prefix_pruned = 0;
    std::uint64_t sq8_pruned = 0;
    std::uint64_t reranked = 0;
    std::uint64_t approx_exact = 0;
    std::size_t nsurv = 0;
    // Same compress-then-recheck structure as SweepLeafDistances, and
    // the same per-candidate decisions as the naive interleaved loop.
    double last_threshold = threshold(m);
    double dcut = cascade ? scratch.dcuts[a]
                          : scratch.bounds[m].PruneCutoff(
                                approx ? last_threshold / approx_factor
                                       : last_threshold);
    const std::uint32_t* surv = scratch.survivors.data();
    const std::uint32_t* full_row = nullptr;
    if (dcut < 0.0) {
      base_pruned += block.count;
      if (approx && scratch.bounds[m].PruneCutoff(last_threshold) < 0.0) {
        approx_exact += block.count;
      }
    } else {
      std::uint32_t cutoff = detail::IntCutoff(dcut);
      std::uint32_t ecut = 0;
      if (approx) {
        ecut = detail::IntCutoff(scratch.bounds[m].PruneCutoff(last_threshold));
      }
      if (cascade) {
        nsurv = scratch.surv_counts[a];
        surv = scratch.survivors.data() + a * block.count;
        full_row = scratch.full_reductions.data() + a * union_size;
        prefix_pruned += block.count - nsurv;
      } else {
        nsurv = detail::CollectSurvivors(row, block.count, cutoff,
                                         scratch.survivors.data());
        sq8_pruned += block.count - nsurv;
      }
      if (approx) {
        // Exact attribution of the stage-1 kills: the stage-1 (prefix
        // or full) reductions of the WHOLE block are still in `row`.
        approx_exact +=
            block.count - detail::CountSurvivors(row, block.count, ecut);
      }
      ScopedPhase phase(Phase::kSweepRerank);
      // Threshold re-read once per emit (it can only change on an
      // emit), as in the single-query sweep — same decisions, same
      // counters, one callback per emit instead of per survivor.
      for (std::size_t s = 0; s < nsurv; ++s) {
        const std::size_t i = surv[s];
        // Full-d reduction source: the union slot map on the cascade,
        // the stage-1 row otherwise — the same uint32 either way.
        const std::uint32_t reduction =
            cascade ? full_row[scratch.union_slot[i]] : row[i];
        if (reduction > cutoff) {
          ++sq8_pruned;
          if (approx && reduction > ecut) ++approx_exact;
          continue;
        }
        ++reranked;
        emit(m, i, exact(qrow, block.row(i).data(), dim));
        const double t = threshold(m);
        if (t != last_threshold) {
          last_threshold = t;
          dcut = scratch.bounds[m].PruneCutoff(approx ? t / approx_factor : t);
          if (dcut < 0.0) {
            base_pruned += nsurv - s - 1;
            if (approx) {
              const double ed = scratch.bounds[m].PruneCutoff(t);
              if (ed < 0.0) {
                approx_exact += nsurv - s - 1;
              } else {
                const std::uint32_t ec = detail::IntCutoff(ed);
                for (std::size_t r = s + 1; r < nsurv; ++r) {
                  const std::uint32_t red =
                      cascade ? full_row[scratch.union_slot[surv[r]]]
                              : row[surv[r]];
                  if (red > ec) ++approx_exact;
                }
              }
            }
            break;
          }
          cutoff = detail::IntCutoff(dcut);
          if (approx) {
            ecut = detail::IntCutoff(scratch.bounds[m].PruneCutoff(t));
          }
        }
      }
    }
    stats[m].exact_distances += reranked;
    stats[m].quantized_pruned += base_pruned + prefix_pruned + sq8_pruned;
    stats[m].base_pruned += base_pruned;
    stats[m].prefix_pruned += prefix_pruned;
    stats[m].sq8_pruned += sq8_pruned;
    stats[m].reranked += reranked;
    stats[m].approx_pruned_exactly += approx_exact;
    // Cascade bytes stay attributed per member's own surviving demand
    // (the shared union fetch is charged to each member that needed the
    // row), keeping the counter independent of how the kernel batches.
    const std::uint64_t code_bytes =
        cascade ? block.count * sq8.prefix_dim + nsurv * dim
                : block.count * dim;
    stats[m].leaf_bytes_scanned +=
        code_bytes + reranked * dim * sizeof(Scalar);
  }
  if (cascade) {
    // Restore the union_slot invariant (all kNoUnionSlot) by touching
    // only the slots this call assigned.
    for (std::size_t s = 0; s < union_size; ++s) {
      scratch.union_slot[scratch.union_rows[s]] = detail::kNoUnionSlot;
    }
  }
}

/// Symmetric self-sweep of one leaf block for the all-pairs similarity
/// join: every unordered pair (i, j), i < j, of the block's own points,
/// computed ONCE via the triangle kernels (Metric::ComparableBlockSelf /
/// Sq8BlockSelf) — the diagonal's self-pairs are skipped entirely.
/// `threshold` is the join's FIXED comparable-space cutoff
/// (ToComparable(epsilon)); unlike the k-NN sweeps it never tightens, so
/// no emit-loop re-read is needed. `emit(i, j, comparable)` receives
/// pairs in lexicographic block order with the exact float comparable
/// distance: on the exact path every pair, on the quantized path every
/// bound survivor (the caller applies the final comparable <= threshold
/// test either way). Pruning uses the same Sq8Bound contract as the
/// query sweeps — each block row is prepared as a query against its own
/// block's mirror — so a pruned pair provably exceeds the threshold and
/// the emitted pair set matches the exact path's.
template <typename EmitFn>
LeafSweepStats SweepLeafBlockSelf(const LeafBlock& block, const Metric& metric,
                                  double threshold, EmitFn&& emit) {
  LeafSweepStats sweep;
  const std::size_t n = block.count;
  if (n < 2) return sweep;
  const std::size_t dim = block.dim;
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  const std::uint64_t total_pairs =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  if (!block.has_sq8) {
    ScopedPhase phase(Phase::kSweepRerank);
    detail::GrowTo(scratch.dists, n * n);
    metric.ComparableBlockSelf(block.coords.data(), n, dim,
                               scratch.dists.data());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double* row = scratch.dists.data() + i * n;
      for (std::size_t j = i + 1; j < n; ++j) {
        emit(i, j, row[j]);
      }
    }
    sweep.exact_distances = total_pairs;
    sweep.leaf_bytes_scanned = n * dim * sizeof(Scalar);
    return sweep;
  }
  {
    // Every row doubles as a query against its own block's mirror: the
    // prepared codes/bounds are exactly what a ball query from that
    // point would use, so the per-pair lower bounds inherit the query
    // sweeps' lossless-pruning proof unchanged.
    ScopedPhase phase(Phase::kSweepPrep);
    detail::GrowTo(scratch.qcodes, n * dim);
    detail::GrowTo(scratch.bounds, n);
    PrepareSq8QueryMany(block.sq8, block.coords.data(), n, metric.kind(),
                        scratch.qcodes.data(), scratch.bounds.data());
  }
  const Sq8Mirror& sq8 = block.sq8;
  const bool cascade = sq8.prefix_dim > 0;
  const std::uint8_t* red_queries = scratch.qcodes.data();
  const std::uint8_t* red_codes = sq8.codes.data();
  std::size_t red_dim = dim;
  if (cascade) {
    ScopedPhase phase(Phase::kSweepPrefix);
    const std::size_t pd = sq8.prefix_dim;
    detail::GrowTo(scratch.qprefix, n * pd);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t* src = scratch.qcodes.data() + i * dim;
      std::uint8_t* dst = scratch.qprefix.data() + i * pd;
      for (std::size_t p = 0; p < pd; ++p) {
        dst[p] = src[sq8.order[p]];
      }
    }
    red_queries = scratch.qprefix.data();
    red_codes = sq8.prefix_codes.data();
    red_dim = pd;
  }
  {
    // Stage-1 reductions for the whole strict upper triangle in one
    // symmetric kernel call (prefix dimensions on the cascade, full
    // dimensions otherwise). Block rows sit inside their own lattice
    // range, so the per-row base term is 0 and the base prune below
    // fires only on degenerate lattices — computing the triangle before
    // the base checks wastes nothing in practice.
    ScopedPhase phase(cascade ? Phase::kSweepPrefix : Phase::kSweepFull);
    detail::GrowTo(scratch.reductions, n * n);
    metric.Sq8BlockSelf(red_queries, red_codes, n, red_dim,
                        scratch.reductions.data());
  }
  const ComparableFn exact = metric.comparable_fn();
  detail::GrowTo(scratch.survivors, n);
  std::uint64_t gathered_rows = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t tail = n - i - 1;
    const double dcut = scratch.bounds[i].PruneCutoff(threshold);
    if (dcut < 0.0) {
      sweep.base_pruned += tail;
      continue;
    }
    const std::uint32_t cutoff = detail::IntCutoff(dcut);
    const std::uint32_t* row = scratch.reductions.data() + i * n + i + 1;
    std::size_t nsurv;
    {
      ScopedPhase phase(cascade ? Phase::kSweepPrefix : Phase::kSweepFull);
      nsurv = detail::CollectSurvivors(row, tail, cutoff,
                                       scratch.survivors.data());
    }
    if (cascade) {
      sweep.prefix_pruned += tail - nsurv;
      if (nsurv == 0) continue;
      // Survivor indices are tail-relative; shift to block rows, then
      // gather + one full-dimension many-kernel call, as in the query
      // sweeps' cascade stage 2.
      for (std::size_t s = 0; s < nsurv; ++s) {
        scratch.survivors[s] += static_cast<std::uint32_t>(i + 1);
      }
      {
        ScopedPhase phase(Phase::kSweepFull);
        detail::GrowTo(scratch.gathered, nsurv * dim);
        detail::GatherRows(sq8.codes.data(), dim, scratch.survivors.data(),
                           nsurv, scratch.gathered.data());
        detail::GrowTo(scratch.full_reductions, nsurv);
        metric.Sq8Many(scratch.qcodes.data() + i * dim,
                       scratch.gathered.data(), nsurv, dim,
                       scratch.full_reductions.data());
      }
      gathered_rows += nsurv;
      ScopedPhase phase(Phase::kSweepRerank);
      const Scalar* qrow = block.row(i).data();
      for (std::size_t s = 0; s < nsurv; ++s) {
        if (scratch.full_reductions[s] > cutoff) {
          ++sweep.sq8_pruned;
          continue;
        }
        const std::size_t j = scratch.survivors[s];
        ++sweep.reranked;
        emit(i, j, exact(qrow, block.row(j).data(), dim));
      }
    } else {
      sweep.sq8_pruned += tail - nsurv;
      // The fixed threshold never tightens, so stage-1 survivors go
      // straight to the exact re-rank — no cutoff re-check loop.
      ScopedPhase phase(Phase::kSweepRerank);
      const Scalar* qrow = block.row(i).data();
      for (std::size_t s = 0; s < nsurv; ++s) {
        const std::size_t j = i + 1 + scratch.survivors[s];
        ++sweep.reranked;
        emit(i, j, exact(qrow, block.row(j).data(), dim));
      }
    }
  }
  sweep.quantized_pruned =
      sweep.base_pruned + sweep.prefix_pruned + sweep.sq8_pruned;
  sweep.exact_distances = sweep.reranked;
  const std::uint64_t code_bytes =
      cascade ? total_pairs * sq8.prefix_dim + gathered_rows * dim
              : total_pairs * dim;
  sweep.leaf_bytes_scanned =
      code_bytes + sweep.reranked * dim * sizeof(Scalar);
  return sweep;
}

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_LEAF_SWEEP_H_
