// The one place every leaf-page sweep goes through.
//
// Before this helper, the quantized/exact decision would have been
// duplicated across five call-sites (HsKnn, RkvKnn, BallQuery,
// RangeQuery/partial-match, and the coalesced batch expander — the R*
// reinsert's center-distance sort operates on a scratch entry buffer,
// not a LeafBlock, so it is not a leaf sweep in this sense). SweepLeaf*
// centralizes it: on a plain block the sweep is the familiar
// ComparableMany / ComparableBlock / Contains pass; on a quantized block
// (LeafBlock::has_sq8) it first runs the integer SQ8 reduction over the
// uint8 mirror, prunes every candidate whose comparable-space lower
// bound (Sq8Bound::LowerBound, applied through its reduction-space
// inversion PruneCutoff so the hot loop is one compare per candidate)
// exceeds the caller's current threshold, and re-ranks only survivors
// through the exact float kernels. Because
// the bound never exceeds the exact comparable distance, a pruned
// candidate is exactly one the caller's threshold test would have
// rejected — emitted keys, result sets, and page accesses are
// bit-identical to the exact sweep.
//
// Each sweep returns (or fills) LeafSweepStats; callers forward them to
// TreeBase::ChargeLeafSweep so exact re-ranks meter simulated CPU
// (distance_computations) and the prune/re-rank/bytes counters reach the
// per-query stats. The integer bound computations charge no simulated
// CPU: they are the cost the quantized path removes, and the counters
// make the removal auditable instead of invisible.

#ifndef PARSIM_SRC_INDEX_LEAF_SWEEP_H_
#define PARSIM_SRC_INDEX_LEAF_SWEEP_H_

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/rect.h"
#include "src/geometry/sq8.h"
#include "src/index/leaf_block.h"

namespace parsim {

/// What one leaf sweep did, for cost charging and stats plumbing.
struct LeafSweepStats {
  /// Exact float kernel evaluations: all candidates on the exact path,
  /// only re-ranked survivors on the quantized path (containment sweeps
  /// charge none, matching RangeQuery's pre-quantization accounting).
  std::uint64_t exact_distances = 0;
  /// Candidates eliminated by the SQ8 lower bound before exact work.
  std::uint64_t quantized_pruned = 0;
  /// Bound survivors re-ranked through the exact float kernel.
  std::uint64_t reranked = 0;
  /// Bytes the sweep streamed: count * dim * sizeof(Scalar) on the exact
  /// path; count * dim code bytes plus the re-ranked float rows on the
  /// quantized path (zero when the query's base term pruned the whole
  /// block before the mirror was read). Bookkeeping only — simulated
  /// time still derives from page counts and distance computations.
  std::uint64_t leaf_bytes_scanned = 0;
};

namespace detail {

/// Per-thread buffers of the sweep templates below, so steady-state
/// sweeps allocate nothing (the pattern ScanLeafBlock used before).
struct LeafSweepScratch {
  std::vector<double> dists;
  std::vector<std::uint32_t> reductions;
  Sq8Query query;
  std::vector<std::uint8_t> qcodes;    // batched sweeps: members x dim
  std::vector<Sq8Bound> bounds;        // batched sweeps: one per member
  std::vector<std::uint32_t> survivors;  // bound survivors of one sweep
  std::vector<std::uint32_t> active;   // members surviving the base prune
};

LeafSweepScratch& SweepScratch();

/// Reduction-space prune cutoff as an exact integer: for any uint32
/// reduction r, double(r) > cutoff <=> r > IntCutoff(cutoff) (truncation
/// is floor for the non-negative values PruneCutoff returns; cutoffs at
/// or past 2^32 - 1, including +infinity, saturate to UINT32_MAX which
/// prunes nothing).
std::uint32_t IntCutoff(double cutoff);

/// Appends to `out` (capacity >= count) every index i with
/// reductions[i] <= cutoff, ascending, and returns how many. The prune
/// hot loop: AVX2 compares 8 reductions per instruction and compresses
/// the clear mask bits where available; the survivor list is identical
/// to the scalar scan's.
std::size_t CollectSurvivors(const std::uint32_t* reductions,
                             std::size_t count, std::uint32_t cutoff,
                             std::uint32_t* out);

}  // namespace detail

/// Sweeps one leaf block for a distance-threshold query (k-NN, ball).
/// `threshold()` is the caller's CURRENT comparable-space cutoff — a
/// candidate strictly above it can no longer matter (k-th best bound, or
/// the ball radius); it is re-read after every emit — the only point it
/// can tighten — so each candidate is tested against the threshold in
/// force when the sweep reaches it, exactly as a per-candidate re-read
/// would. `emit(i, comparable)` receives every surviving candidate
/// with its exact comparable distance, in block order — bit-identical,
/// on both paths, to what the exact kernels compute.
template <typename ThresholdFn, typename EmitFn>
LeafSweepStats SweepLeafDistances(const LeafBlock& block, PointView query,
                                  const Metric& metric,
                                  ThresholdFn&& threshold, EmitFn&& emit) {
  LeafSweepStats sweep;
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  if (!block.has_sq8) {
    scratch.dists.resize(block.count);
    metric.ComparableMany(query, block.coords.data(), block.count, block.dim,
                          scratch.dists.data());
    for (std::size_t i = 0; i < block.count; ++i) {
      emit(i, scratch.dists[i]);
    }
    sweep.exact_distances = block.count;
    sweep.leaf_bytes_scanned = block.count * block.dim * sizeof(Scalar);
    return sweep;
  }
  scratch.query.Prepare(block.sq8, query, metric.kind());
  // When the query's candidate-independent `base` term already exceeds
  // the threshold (a query far outside the block's lattice range —
  // PruneCutoff's negative sentinel), every candidate prunes without the
  // integer kernel ever running: the sweep costs one query preparation.
  double last_threshold = threshold();
  double dcut = scratch.query.bound.PruneCutoff(last_threshold);
  if (dcut < 0.0) {
    sweep.quantized_pruned = block.count;
    return sweep;
  }
  scratch.reductions.resize(block.count);
  metric.Sq8Many(scratch.query.codes.data(), block.sq8.codes.data(),
                 block.count, block.dim, scratch.reductions.data());
  // One SIMD pass compresses the survivor indices under the cutoff in
  // force at block entry; the emit loop then re-checks each survivor
  // against the current cutoff, which only tightens when an emit lands.
  // Per candidate this decides exactly what the naive interleaved loop
  // decides: a candidate pruned at entry is pruned under any later
  // (tighter) cutoff too, and one that entry-survives but reaches the
  // emit loop after a tightening is caught by the re-check — so counters
  // and emitted keys are identical, at one compare per candidate plus
  // one per survivor.
  const ComparableFn exact = metric.comparable_fn();
  std::uint32_t cutoff = detail::IntCutoff(dcut);
  scratch.survivors.resize(block.count);
  const std::size_t nsurv = detail::CollectSurvivors(
      scratch.reductions.data(), block.count, cutoff,
      scratch.survivors.data());
  sweep.quantized_pruned += block.count - nsurv;
  for (std::size_t s = 0; s < nsurv; ++s) {
    const std::size_t i = scratch.survivors[s];
    const double t = threshold();
    if (t != last_threshold) {
      last_threshold = t;
      dcut = scratch.query.bound.PruneCutoff(t);
      if (dcut < 0.0) {
        sweep.quantized_pruned += nsurv - s;
        break;
      }
      cutoff = detail::IntCutoff(dcut);
    }
    if (scratch.reductions[i] > cutoff) {
      ++sweep.quantized_pruned;
      continue;
    }
    ++sweep.reranked;
    emit(i, exact(query.data(), block.row(i).data(), block.dim));
  }
  sweep.exact_distances = sweep.reranked;
  sweep.leaf_bytes_scanned =
      block.count * block.dim + sweep.reranked * block.dim * sizeof(Scalar);
  return sweep;
}

/// Sweeps one leaf block for a containment query (range / partial
/// match), appending matching ids to `out`. On a quantized block a
/// conservative per-dimension code-interval prefilter runs over the
/// uint8 mirror first; survivors go through the exact float Contains, so
/// the id set matches the exact sweep exactly.
LeafSweepStats SweepLeafRange(const LeafBlock& block, const Rect& query,
                              std::vector<PointId>* out);

/// Batched variant of SweepLeafDistances: `members` queries (row-major,
/// members x block.dim scalars) against one block, one many-to-many
/// kernel call. `threshold(m)` and `emit(m, i, comparable)` are the
/// per-member analogues; for each member, candidates arrive in block
/// order (members in ascending order), so the per-member emit sequence
/// matches the single-query sweep exactly. `stats` must have `members`
/// entries; entry m accumulates member m's share.
template <typename ThresholdFn, typename EmitFn>
void SweepLeafBlockMany(const LeafBlock& block, const Scalar* queries,
                        std::size_t members, const Metric& metric,
                        ThresholdFn&& threshold, EmitFn&& emit,
                        LeafSweepStats* stats) {
  detail::LeafSweepScratch& scratch = detail::SweepScratch();
  const std::size_t dim = block.dim;
  if (!block.has_sq8) {
    scratch.dists.resize(members * block.count);
    metric.ComparableBlock(queries, members, block.coords.data(), block.count,
                           dim, scratch.dists.data());
    for (std::size_t m = 0; m < members; ++m) {
      const double* row = scratch.dists.data() + m * block.count;
      for (std::size_t i = 0; i < block.count; ++i) {
        emit(m, i, row[i]);
      }
      stats[m].exact_distances += block.count;
      stats[m].leaf_bytes_scanned += block.count * dim * sizeof(Scalar);
    }
    return;
  }
  scratch.qcodes.resize(members * dim);
  scratch.bounds.resize(members);
  PrepareSq8QueryMany(block.sq8, queries, members, metric.kind(),
                      scratch.qcodes.data(), scratch.bounds.data());
  // Member-level base prune: a member whose candidate-independent `base`
  // term already exceeds its threshold (PruneCutoff's negative sentinel)
  // prunes the whole block before the integer kernel runs. Survivors are
  // compacted in place (ascending, so each code row moves down or stays
  // put) and one many-to-many kernel call covers just them — on hot-spot
  // batches most member/block pairs end here, at the cost of one query
  // preparation and one compare.
  scratch.active.clear();
  for (std::size_t m = 0; m < members; ++m) {
    if (scratch.bounds[m].PruneCutoff(threshold(m)) < 0.0) {
      stats[m].quantized_pruned += block.count;
    } else {
      scratch.active.push_back(static_cast<std::uint32_t>(m));
    }
  }
  const std::size_t nactive = scratch.active.size();
  if (nactive == 0) {
    return;
  }
  for (std::size_t a = 0; a < nactive; ++a) {
    const std::size_t m = scratch.active[a];
    if (m != a) {
      std::memcpy(scratch.qcodes.data() + a * dim,
                  scratch.qcodes.data() + m * dim, dim);
    }
  }
  scratch.reductions.resize(nactive * block.count);
  metric.Sq8Block(scratch.qcodes.data(), nactive, block.sq8.codes.data(),
                  block.count, dim, scratch.reductions.data());
  const ComparableFn exact = metric.comparable_fn();
  scratch.survivors.resize(block.count);
  for (std::size_t a = 0; a < nactive; ++a) {
    const std::size_t m = scratch.active[a];
    const std::uint32_t* row = scratch.reductions.data() + a * block.count;
    const Scalar* qrow = queries + m * dim;
    std::uint64_t pruned = 0;
    std::uint64_t reranked = 0;
    // Same compress-then-recheck structure as SweepLeafDistances, and
    // the same per-candidate decisions as the naive interleaved loop.
    double last_threshold = threshold(m);
    double dcut = scratch.bounds[m].PruneCutoff(last_threshold);
    if (dcut < 0.0) {
      pruned += block.count;
    } else {
      std::uint32_t cutoff = detail::IntCutoff(dcut);
      const std::size_t nsurv = detail::CollectSurvivors(
          row, block.count, cutoff, scratch.survivors.data());
      pruned += block.count - nsurv;
      for (std::size_t s = 0; s < nsurv; ++s) {
        const std::size_t i = scratch.survivors[s];
        const double t = threshold(m);
        if (t != last_threshold) {
          last_threshold = t;
          dcut = scratch.bounds[m].PruneCutoff(t);
          if (dcut < 0.0) {
            pruned += nsurv - s;
            break;
          }
          cutoff = detail::IntCutoff(dcut);
        }
        if (row[i] > cutoff) {
          ++pruned;
          continue;
        }
        ++reranked;
        emit(m, i, exact(qrow, block.row(i).data(), dim));
      }
    }
    stats[m].exact_distances += reranked;
    stats[m].quantized_pruned += pruned;
    stats[m].reranked += reranked;
    stats[m].leaf_bytes_scanned +=
        block.count * dim + reranked * dim * sizeof(Scalar);
  }
}

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_LEAF_SWEEP_H_
