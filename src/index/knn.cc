#include "src/index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/util/check.h"

namespace parsim {

double MinDistComparable(const Rect& rect, PointView query,
                         const Metric& metric) {
  PARSIM_DCHECK(rect.dim() == query.size());
  switch (metric.kind()) {
    case MetricKind::kL2:
      return rect.SquaredMinDist(query);
    case MetricKind::kL1: {
      double sum = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        if (query[i] < rect.lo(i)) {
          sum += static_cast<double>(rect.lo(i)) - query[i];
        } else if (query[i] > rect.hi(i)) {
          sum += static_cast<double>(query[i]) - rect.hi(i);
        }
      }
      return sum;
    }
    case MetricKind::kLmax: {
      double best = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        double diff = 0.0;
        if (query[i] < rect.lo(i)) {
          diff = static_cast<double>(rect.lo(i)) - query[i];
        } else if (query[i] > rect.hi(i)) {
          diff = static_cast<double>(query[i]) - rect.hi(i);
        }
        best = std::max(best, diff);
      }
      return best;
    }
  }
  PARSIM_UNREACHABLE();
}

namespace {

/// Bounded max-heap of the k best candidates in the Comparable scale.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { PARSIM_CHECK(k >= 1); }

  /// The pruning threshold: the k-th best comparable distance so far, or
  /// +inf while fewer than k candidates are known.
  double Threshold() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().first;
  }

  void Offer(double comparable, PointId id) {
    if (heap_.size() < k_) {
      heap_.emplace_back(comparable, id);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (comparable < heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {comparable, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  KnnResult Finish(const Metric& metric) && {
    std::sort(heap_.begin(), heap_.end());
    KnnResult out;
    out.reserve(heap_.size());
    for (const auto& [comparable, id] : heap_) {
      out.push_back(Neighbor{id, metric.FromComparable(comparable)});
    }
    return out;
  }

 private:
  std::size_t k_;
  // (comparable distance, id); max-heap on distance.
  std::vector<std::pair<double, PointId>> heap_;
};

}  // namespace

KnnResult HsKnn(const TreeBase& tree, PointView query, std::size_t k,
                const Metric& metric) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(k >= 1);
  KnnResult result;
  if (tree.root_id() == kInvalidNodeId) return result;

  // The queue holds nodes (is_point == false) keyed by MINDIST and data
  // points keyed by their actual distance, both in the Comparable scale.
  struct Item {
    double key;
    bool is_point;
    std::uint32_t ref;  // NodeId or PointId
  };
  const auto greater_key = [](const Item& a, const Item& b) {
    return a.key > b.key;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(greater_key)> queue(
      greater_key);
  // Max-heap of the k smallest point keys pushed so far. A point whose
  // key exceeds its top can never be popped: at least k point items with
  // smaller keys are already queued ahead of it, and the k-th of those
  // terminates the search. Skipping such pushes therefore leaves the pop
  // sequence — results, page fetches, and distance counts — bit-identical
  // while keeping the frontier orders of magnitude smaller (the batched
  // scheduler in src/parallel/batch_knn.cc interleaves many frontiers, so
  // their total footprint decides cache residency).
  std::vector<double> bound;
  bound.reserve(k);
  const auto push_point = [&](double key, std::uint32_t id) {
    if (bound.size() < k) {
      bound.push_back(key);
      std::push_heap(bound.begin(), bound.end());
    } else if (key > bound.front()) {
      return;
    } else if (key < bound.front()) {
      std::pop_heap(bound.begin(), bound.end());
      bound.back() = key;
      std::push_heap(bound.begin(), bound.end());
    }
    queue.push(Item{key, true, id});
  };
  queue.push(Item{0.0, false, tree.root_id()});
  while (!queue.empty() && result.size() < k) {
    const Item item = queue.top();
    queue.pop();
    if (item.is_point) {
      result.push_back(Neighbor{item.ref, metric.FromComparable(item.key)});
      continue;
    }
    const Node& node = tree.AccessNode(item.ref);
    if (node.IsLeaf()) {
      // The sweep's threshold is the running k-th best point key: a
      // candidate strictly above it would be dropped by push_point's
      // frontier bound anyway, so pruning on it preserves the pop
      // sequence bit for bit (see src/index/leaf_sweep.h).
      const LeafBlock& block = tree.LeafBlockOf(node);
      tree.ChargeLeafSweep(
          node, SweepLeafDistances(
                    block, query, metric,
                    [&] {
                      return bound.size() < k
                                 ? std::numeric_limits<double>::infinity()
                                 : bound.front();
                    },
                    [&](std::size_t i, double key) {
                      push_point(key, block.ids[i]);
                    }));
    } else {
      for (const NodeEntry& e : node.entries) {
        queue.push(
            Item{MinDistComparable(e.rect, query, metric), false, e.child});
      }
    }
  }
  return result;
}

namespace {

void RkvVisit(const TreeBase& tree, NodeId node_id, PointView query,
              std::size_t k, const Metric& metric, TopK* best) {
  const Node& node = tree.AccessNode(node_id);
  if (node.IsLeaf()) {
    // TopK::Offer rejects keys >= Threshold() when full, so pruning on
    // the (re-read, tightening) threshold preserves the heap's update
    // sequence exactly.
    const LeafBlock& block = tree.LeafBlockOf(node);
    tree.ChargeLeafSweep(
        node, SweepLeafDistances(
                  block, query, metric, [&] { return best->Threshold(); },
                  [&](std::size_t i, double key) {
                    best->Offer(key, block.ids[i]);
                  }));
    return;
  }
  struct Branch {
    double mindist;
    double minmaxdist;
    NodeId child;
  };
  std::vector<Branch> branches;
  branches.reserve(node.entries.size());
  for (const NodeEntry& e : node.entries) {
    branches.push_back(Branch{e.rect.SquaredMinDist(query),
                              e.rect.SquaredMinMaxDist(query), e.child});
  }
  std::sort(branches.begin(), branches.end(),
            [](const Branch& a, const Branch& b) {
              return a.mindist < b.mindist;
            });
  // MINMAXDIST pruning (k == 1): some object within the branch lies at
  // distance <= minmaxdist, so the NN distance cannot exceed the smallest
  // minmaxdist; branches whose mindist is beyond it are dead.
  double upper = std::numeric_limits<double>::infinity();
  if (k == 1) {
    for (const Branch& b : branches) upper = std::min(upper, b.minmaxdist);
  }
  for (const Branch& b : branches) {
    if (b.mindist > best->Threshold()) break;  // sorted: rest are worse
    if (b.mindist > upper) break;
    RkvVisit(tree, b.child, query, k, metric, best);
  }
}

}  // namespace

KnnResult RkvKnn(const TreeBase& tree, PointView query, std::size_t k,
                 const Metric& metric) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(metric.kind() == MetricKind::kL2);
  TopK best(k);
  if (tree.root_id() != kInvalidNodeId) {
    RkvVisit(tree, tree.root_id(), query, k, metric, &best);
  }
  return std::move(best).Finish(metric);
}

KnnResult BallQuery(const TreeBase& tree, PointView query, double radius,
                    const Metric& metric) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(radius >= 0.0);
  KnnResult out;
  if (tree.root_id() == kInvalidNodeId) return out;
  const double threshold = metric.ToComparable(radius);
  std::vector<NodeId> stack = {tree.root_id()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& node = tree.AccessNode(id);
    if (node.IsLeaf()) {
      // Constant threshold (the ball radius in the comparable scale):
      // a candidate with lower bound above it fails `<= threshold` for
      // sure, so the emitted set is unchanged.
      const LeafBlock& block = tree.LeafBlockOf(node);
      tree.ChargeLeafSweep(
          node, SweepLeafDistances(
                    block, query, metric, [&] { return threshold; },
                    [&](std::size_t i, double key) {
                      if (key <= threshold) {
                        out.push_back(Neighbor{block.ids[i],
                                               metric.FromComparable(key)});
                      }
                    }));
    } else {
      for (const NodeEntry& e : node.entries) {
        if (MinDistComparable(e.rect, query, metric) <= threshold) {
          stack.push_back(e.child);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

namespace {

/// Block size of the linear-scan drivers: large enough to amortize the
/// kernel dispatch, small enough that the distance block stays in L1.
constexpr std::size_t kScanBlock = 1024;

}  // namespace

KnnResult BruteForceBallQuery(const PointSet& points, PointView query,
                              double radius, const Metric& metric) {
  PARSIM_CHECK(radius >= 0.0);
  const double threshold = metric.ToComparable(radius);
  KnnResult out;
  double dists[kScanBlock];
  const std::size_t dim = points.dim();
  for (std::size_t start = 0; start < points.size(); start += kScanBlock) {
    const std::size_t n = std::min(kScanBlock, points.size() - start);
    metric.ComparableMany(query, points.data() + start * dim, n, dim, dists);
    for (std::size_t i = 0; i < n; ++i) {
      if (dists[i] <= threshold) {
        out.push_back(Neighbor{static_cast<PointId>(start + i),
                               metric.FromComparable(dists[i])});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

KnnResult BruteForceKnn(const PointSet& points, PointView query,
                        std::size_t k, const Metric& metric) {
  PARSIM_CHECK(query.size() == points.dim() || points.empty());
  PARSIM_CHECK(k >= 1);
  // Bounded max-heap of the k best candidates, fed block-wise by the
  // one-to-many kernel — never a full materialize-and-sort.
  TopK best(k);
  double dists[kScanBlock];
  const std::size_t dim = points.dim();
  for (std::size_t start = 0; start < points.size(); start += kScanBlock) {
    const std::size_t n = std::min(kScanBlock, points.size() - start);
    metric.ComparableMany(query, points.data() + start * dim, n, dim, dists);
    for (std::size_t i = 0; i < n; ++i) {
      best.Offer(dists[i], static_cast<PointId>(start + i));
    }
  }
  return std::move(best).Finish(metric);
}

}  // namespace parsim
