#include "src/index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/util/check.h"
#include "src/util/phase_timer.h"

namespace parsim {

double MinDistComparable(const Rect& rect, PointView query,
                         const Metric& metric) {
  PARSIM_DCHECK(rect.dim() == query.size());
  switch (metric.kind()) {
    case MetricKind::kL2:
      return rect.SquaredMinDist(query);
    case MetricKind::kL1: {
      // Branch-free per-dimension gap (see Rect::SquaredMinDist): the
      // max of {lo - q, q - hi, 0} is the exact value the branchy form
      // selects, accumulated in the same order. The branchy original
      // added 0.0 for interior dimensions only implicitly (no add);
      // adding an explicit +0.0 leaves a finite double sum unchanged.
      double sum = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        const double below = static_cast<double>(rect.lo(i)) -
                             static_cast<double>(query[i]);
        const double above = static_cast<double>(query[i]) -
                             static_cast<double>(rect.hi(i));
        sum += std::max(std::max(below, above), 0.0);
      }
      return sum;
    }
    case MetricKind::kLmax: {
      double best = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        const double below = static_cast<double>(rect.lo(i)) -
                             static_cast<double>(query[i]);
        const double above = static_cast<double>(query[i]) -
                             static_cast<double>(rect.hi(i));
        best = std::max(best, std::max(std::max(below, above), 0.0));
      }
      return best;
    }
  }
  PARSIM_UNREACHABLE();
}

double MinDistComparable(const Rect& a, const Rect& b, const Metric& metric) {
  PARSIM_DCHECK(a.dim() == b.dim());
  switch (metric.kind()) {
    case MetricKind::kL2:
      return a.SquaredMinDist(b);
    case MetricKind::kL1: {
      // Per-dimension slab gap between the two intervals (see
      // Rect::SquaredMinDist(const Rect&)), accumulated per metric:
      // summed for L1, maxed for Lmax.
      double sum = 0.0;
      for (std::size_t i = 0; i < a.dim(); ++i) {
        const double below =
            static_cast<double>(a.lo(i)) - static_cast<double>(b.hi(i));
        const double above =
            static_cast<double>(b.lo(i)) - static_cast<double>(a.hi(i));
        sum += std::max(std::max(below, above), 0.0);
      }
      return sum;
    }
    case MetricKind::kLmax: {
      double best = 0.0;
      for (std::size_t i = 0; i < a.dim(); ++i) {
        const double below =
            static_cast<double>(a.lo(i)) - static_cast<double>(b.hi(i));
        const double above =
            static_cast<double>(b.lo(i)) - static_cast<double>(a.hi(i));
        best = std::max(best, std::max(std::max(below, above), 0.0));
      }
      return best;
    }
  }
  PARSIM_UNREACHABLE();
}

bool MinDistExceeds(const Rect& rect, PointView query, const Metric& metric,
                    double cutoff, double* out) {
  PARSIM_DCHECK(rect.dim() == query.size());
  // Each branch replays the corresponding full-MINDIST loop operation
  // for operation (L2: Rect::SquaredMinDist; L1/Lmax: MinDistComparable
  // above), adding only a compare against `cutoff`. The running value is
  // a nondecreasing accumulation of nonnegative per-dimension terms, so
  // partial > cutoff implies final > cutoff; and when the loop finishes,
  // the value is bit-identical to the unbounded computation.
  switch (metric.kind()) {
    case MetricKind::kL2: {
      // Branch-free per-dimension gaps (see Rect::SquaredMinDist) with
      // the early exit kept: the running value is nondecreasing, so
      // exiting on a partial value decides exactly what the final value
      // would, and a completed loop leaves `sum` bit-identical to the
      // unbounded computation.
      double sum = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        const double below = static_cast<double>(rect.lo(i)) -
                             static_cast<double>(query[i]);
        const double above = static_cast<double>(query[i]) -
                             static_cast<double>(rect.hi(i));
        const double diff = std::max(std::max(below, above), 0.0);
        sum += diff * diff;
        if (sum > cutoff) return true;
      }
      *out = sum;
      return false;
    }
    case MetricKind::kL1: {
      double sum = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        const double below = static_cast<double>(rect.lo(i)) -
                             static_cast<double>(query[i]);
        const double above = static_cast<double>(query[i]) -
                             static_cast<double>(rect.hi(i));
        sum += std::max(std::max(below, above), 0.0);
        if (sum > cutoff) return true;
      }
      *out = sum;
      return false;
    }
    case MetricKind::kLmax: {
      double best = 0.0;
      for (std::size_t i = 0; i < query.size(); ++i) {
        const double below = static_cast<double>(rect.lo(i)) -
                             static_cast<double>(query[i]);
        const double above = static_cast<double>(query[i]) -
                             static_cast<double>(rect.hi(i));
        best = std::max(best, std::max(std::max(below, above), 0.0));
        if (best > cutoff) return true;
      }
      *out = best;
      return false;
    }
  }
  PARSIM_UNREACHABLE();
}

namespace {

/// Bounded max-heap of the k best candidates in the Comparable scale.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) { PARSIM_CHECK(k >= 1); }

  /// The pruning threshold: the k-th best comparable distance so far, or
  /// +inf while fewer than k candidates are known.
  double Threshold() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().first;
  }

  void Offer(double comparable, PointId id) {
    if (heap_.size() < k_) {
      heap_.emplace_back(comparable, id);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (comparable < heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {comparable, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  KnnResult Finish(const Metric& metric) && {
    std::sort(heap_.begin(), heap_.end());
    KnnResult out;
    out.reserve(heap_.size());
    for (const auto& [comparable, id] : heap_) {
      out.push_back(Neighbor{id, metric.FromComparable(comparable)});
    }
    return out;
  }

 private:
  std::size_t k_;
  // (comparable distance, id); max-heap on distance.
  std::vector<std::pair<double, PointId>> heap_;
};

}  // namespace

namespace {

/// A frontier entry: a node (is_point == false) keyed by MINDIST or a
/// data point keyed by its actual distance, both in the Comparable
/// scale. The MINDIST is computed once, at push time, and carried in
/// `key` — never recomputed on pop.
struct HsItem {
  double key;
  bool is_point;
  std::uint32_t ref;  // NodeId or PointId
};

struct HsGreaterKey {
  bool operator()(const HsItem& a, const HsItem& b) const {
    return a.key > b.key;
  }
};

/// Per-thread frontier storage, reused across queries: steady-state
/// searches push/pop into already-sized vectors instead of reallocating
/// a fresh priority_queue per query. The explicit push_heap/pop_heap
/// calls are exactly what std::priority_queue runs internally, so the
/// pop sequence is unchanged.
struct HsScratch {
  std::vector<HsItem> heap;
  std::vector<double> bound;
};

HsScratch& HsFrontierScratch() {
  thread_local HsScratch scratch;
  return scratch;
}

}  // namespace

KnnResult HsKnn(const TreeBase& tree, PointView query, std::size_t k,
                const Metric& metric, const ApproxContext& approx) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(k >= 1);
  KnnResult result;
  if (tree.root_id() == kInvalidNodeId) return result;
  // Early-termination mode: node items are tested against the RELAXED
  // cutoff bound/node_factor, at push time and again at pop time (the
  // bound tightens in between, so a pop-time skip saves the page read a
  // push-time test could not). Dropping a node can only LOSE points —
  // the surviving bound is never tighter than the exact search's at the
  // same pops — so the (1+eps) contract of ApproxContext holds, and the
  // full-k guarantee survives: a skip requires a full bound (k point
  // keys pushed), and those k points can only pop into the result.
  const bool node_approx = approx.node_factor > 1.0;
  std::uint64_t approx_skipped = 0;

  HsScratch& scratch = HsFrontierScratch();
  std::vector<HsItem>& heap = scratch.heap;
  // Max-heap of the k smallest point keys pushed so far. A point whose
  // key exceeds its top can never be popped: at least k point items with
  // smaller keys are already queued ahead of it, and the k-th of those
  // terminates the search. Skipping such pushes therefore leaves the pop
  // sequence — results, page fetches, and distance counts — bit-identical
  // while keeping the frontier orders of magnitude smaller (the batched
  // scheduler in src/parallel/batch_knn.cc interleaves many frontiers, so
  // their total footprint decides cache residency).
  std::vector<double>& bound = scratch.bound;
  heap.clear();
  bound.clear();
  bound.reserve(k);
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t skipped = 0;
  const auto push_point = [&](double key, std::uint32_t id) {
    if (bound.size() < k) {
      bound.push_back(key);
      std::push_heap(bound.begin(), bound.end());
    } else if (key > bound.front()) {
      return;
    } else if (key < bound.front()) {
      std::pop_heap(bound.begin(), bound.end());
      bound.back() = key;
      std::push_heap(bound.begin(), bound.end());
    }
    heap.push_back(HsItem{key, true, id});
    std::push_heap(heap.begin(), heap.end(), HsGreaterKey{});
    ++pushes;
  };
  heap.push_back(HsItem{0.0, false, tree.root_id()});
  ++pushes;
  while (!heap.empty() && result.size() < k) {
    HsItem item;
    {
      ScopedPhase phase(Phase::kFrontier);
      std::pop_heap(heap.begin(), heap.end(), HsGreaterKey{});
      item = heap.back();
      heap.pop_back();
      ++pops;
      if (item.is_point) {
        result.push_back(Neighbor{item.ref, metric.FromComparable(item.key)});
        continue;
      }
    }
    if (node_approx && bound.size() >= k &&
        item.key > bound.front() / approx.node_factor) {
      // Never fires on the exact path (factor 1.0): a node whose key
      // strictly exceeds the bound cannot pop before the k-th point.
      ++approx_skipped;
      continue;
    }
    const Node* node;
    {
      ScopedPhase phase(Phase::kIo);
      node = &tree.AccessNode(item.ref);
    }
    if (node->IsLeaf()) {
      // The sweep's threshold is the running k-th best point key: a
      // candidate strictly above it would be dropped by push_point's
      // frontier bound anyway, so pruning on it preserves the pop
      // sequence bit for bit (see src/index/leaf_sweep.h).
      const LeafBlock& block = tree.LeafBlockOf(*node);
      tree.ChargeLeafSweep(
          *node, SweepLeafDistances(
                     block, query, metric,
                     [&] {
                       return bound.size() < k
                                  ? std::numeric_limits<double>::infinity()
                                  : bound.front();
                     },
                     [&](std::size_t i, double key) {
                       push_point(key, block.ids[i]);
                     },
                     approx.sweep_factor));
    } else {
      // Descent fast path: with the result bound full, a child whose
      // MINDIST strictly exceeds the k-th best point key can never pop
      // before the search terminates — the >= k queued point items with
      // keys <= bound.front() all pop first, and the k-th pop ends the
      // loop. Skipping its insertion (and bailing out of the MINDIST
      // accumulation the moment it crosses the bound) changes no pops.
      // Ties MUST still be pushed: a node with key == bound.front()
      // could pop before an equal-keyed point under the heap's internal
      // order, and dropping it could change the visit sequence.
      ScopedPhase phase(Phase::kDescent);
      const double cut = bound.size() < k
                             ? std::numeric_limits<double>::infinity()
                             : bound.front();
      // The exact cutoff test runs first so cutoff_skipped_nodes keeps
      // its exact-path meaning (and its bit-identical count at eps=0);
      // children inside the exact cut but outside the relaxed one are
      // the approximation's own skips.
      const double rcut = node_approx ? cut / approx.node_factor : cut;
      for (const NodeEntry& e : node->entries) {
        double key;
        if (MinDistExceeds(e.rect, query, metric, cut, &key)) {
          ++skipped;
          continue;
        }
        if (node_approx && key > rcut) {
          ++approx_skipped;
          continue;
        }
        heap.push_back(HsItem{key, false, e.child});
        std::push_heap(heap.begin(), heap.end(), HsGreaterKey{});
        ++pushes;
      }
    }
  }
  tree.disk()->RecordFrontier(pushes, pops, skipped, approx_skipped);
  return result;
}

namespace {

void RkvVisit(const TreeBase& tree, NodeId node_id, PointView query,
              std::size_t k, const Metric& metric, TopK* best) {
  const Node& node = tree.AccessNode(node_id);
  if (node.IsLeaf()) {
    // TopK::Offer rejects keys >= Threshold() when full, so pruning on
    // the (re-read, tightening) threshold preserves the heap's update
    // sequence exactly.
    const LeafBlock& block = tree.LeafBlockOf(node);
    tree.ChargeLeafSweep(
        node, SweepLeafDistances(
                  block, query, metric, [&] { return best->Threshold(); },
                  [&](std::size_t i, double key) {
                    best->Offer(key, block.ids[i]);
                  }));
    return;
  }
  struct Branch {
    double mindist;
    double minmaxdist;
    NodeId child;
  };
  std::vector<Branch> branches;
  branches.reserve(node.entries.size());
  for (const NodeEntry& e : node.entries) {
    branches.push_back(Branch{e.rect.SquaredMinDist(query),
                              e.rect.SquaredMinMaxDist(query), e.child});
  }
  std::sort(branches.begin(), branches.end(),
            [](const Branch& a, const Branch& b) {
              return a.mindist < b.mindist;
            });
  // MINMAXDIST pruning (k == 1): some object within the branch lies at
  // distance <= minmaxdist, so the NN distance cannot exceed the smallest
  // minmaxdist; branches whose mindist is beyond it are dead.
  double upper = std::numeric_limits<double>::infinity();
  if (k == 1) {
    for (const Branch& b : branches) upper = std::min(upper, b.minmaxdist);
  }
  for (const Branch& b : branches) {
    if (b.mindist > best->Threshold()) break;  // sorted: rest are worse
    if (b.mindist > upper) break;
    RkvVisit(tree, b.child, query, k, metric, best);
  }
}

}  // namespace

KnnResult RkvKnn(const TreeBase& tree, PointView query, std::size_t k,
                 const Metric& metric) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(k >= 1);
  PARSIM_CHECK(metric.kind() == MetricKind::kL2);
  TopK best(k);
  if (tree.root_id() != kInvalidNodeId) {
    RkvVisit(tree, tree.root_id(), query, k, metric, &best);
  }
  return std::move(best).Finish(metric);
}

KnnResult BallQuery(const TreeBase& tree, PointView query, double radius,
                    const Metric& metric) {
  PARSIM_CHECK(query.size() == tree.dim());
  PARSIM_CHECK(radius >= 0.0);
  KnnResult out;
  if (tree.root_id() == kInvalidNodeId) return out;
  const double threshold = metric.ToComparable(radius);
  std::vector<NodeId> stack = {tree.root_id()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& node = tree.AccessNode(id);
    if (node.IsLeaf()) {
      // Constant threshold (the ball radius in the comparable scale):
      // a candidate with lower bound above it fails `<= threshold` for
      // sure, so the emitted set is unchanged.
      const LeafBlock& block = tree.LeafBlockOf(node);
      tree.ChargeLeafSweep(
          node, SweepLeafDistances(
                    block, query, metric, [&] { return threshold; },
                    [&](std::size_t i, double key) {
                      if (key <= threshold) {
                        out.push_back(Neighbor{block.ids[i],
                                               metric.FromComparable(key)});
                      }
                    }));
    } else {
      for (const NodeEntry& e : node.entries) {
        if (MinDistComparable(e.rect, query, metric) <= threshold) {
          stack.push_back(e.child);
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

namespace {

/// Block size of the linear-scan drivers: large enough to amortize the
/// kernel dispatch, small enough that the distance block stays in L1.
constexpr std::size_t kScanBlock = 1024;

}  // namespace

KnnResult BruteForceBallQuery(const PointSet& points, PointView query,
                              double radius, const Metric& metric) {
  PARSIM_CHECK(radius >= 0.0);
  const double threshold = metric.ToComparable(radius);
  KnnResult out;
  double dists[kScanBlock];
  const std::size_t dim = points.dim();
  for (std::size_t start = 0; start < points.size(); start += kScanBlock) {
    const std::size_t n = std::min(kScanBlock, points.size() - start);
    metric.ComparableMany(query, points.data() + start * dim, n, dim, dists);
    for (std::size_t i = 0; i < n; ++i) {
      if (dists[i] <= threshold) {
        out.push_back(Neighbor{static_cast<PointId>(start + i),
                               metric.FromComparable(dists[i])});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  return out;
}

KnnResult BruteForceKnn(const PointSet& points, PointView query,
                        std::size_t k, const Metric& metric) {
  PARSIM_CHECK(query.size() == points.dim() || points.empty());
  PARSIM_CHECK(k >= 1);
  // Bounded max-heap of the k best candidates, fed block-wise by the
  // one-to-many kernel — never a full materialize-and-sort.
  TopK best(k);
  double dists[kScanBlock];
  const std::size_t dim = points.dim();
  for (std::size_t start = 0; start < points.size(); start += kScanBlock) {
    const std::size_t n = std::min(kScanBlock, points.size() - start);
    metric.ComparableMany(query, points.data() + start * dim, n, dim, dists);
    for (std::size_t i = 0; i < n; ++i) {
      best.Offer(dists[i], static_cast<PointId>(start + i));
    }
  }
  return std::move(best).Finish(metric);
}

}  // namespace parsim
