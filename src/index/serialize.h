// Binary persistence for point sets and index trees.
//
// Format: native-endian fixed-width fields behind a magic + version
// header. Intended for checkpointing built indexes and generated data
// sets between runs of the same build on the same machine (no
// cross-endianness portability guarantee).

#ifndef PARSIM_SRC_INDEX_SERIALIZE_H_
#define PARSIM_SRC_INDEX_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "src/geometry/point.h"
#include "src/index/tree_base.h"
#include "src/util/status.h"

namespace parsim {

/// Writes `points` to `path` (overwriting). Binary, versioned.
Status SavePointSet(const PointSet& points, const std::string& path);

/// Reads a point set written by SavePointSet.
Result<PointSet> LoadPointSet(const std::string& path);

/// Stream variants (used by the file variants; handy for composing).
Status WritePointSet(const PointSet& points, std::ostream& out);
Result<PointSet> ReadPointSet(std::istream& in);

/// Writes the full structure of `tree` (nodes, entries, root) to `path`.
Status SaveTree(const TreeBase& tree, const std::string& path);

/// Restores a tree saved by SaveTree into `tree`, which must be empty
/// and have the same dimensionality. The tree's disk/charging setup is
/// unaffected (structure only); one page write per restored node is
/// charged, like a build.
Status LoadTree(TreeBase* tree, const std::string& path);

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_SERIALIZE_H_
