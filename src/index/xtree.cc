#include "src/index/xtree.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/util/check.h"

namespace parsim {

double XTree::RelativeOverlap(const SplitResult& split) const {
  Rect left = Rect::Empty(dim_);
  for (const NodeEntry& e : split.left) left.ExtendToInclude(e.rect);
  Rect right = Rect::Empty(dim_);
  for (const NodeEntry& e : split.right) right.ExtendToInclude(e.rect);
  const double overlap = left.OverlapVolume(right);
  const double combined = left.Volume() + right.Volume();
  if (combined <= 0.0) return overlap > 0.0 ? 1.0 : 0.0;
  return overlap / combined;
}

XTree::SplitResult XTree::ComputeOverlapMinimalSplit(const Node& node) const {
  const std::size_t total = node.entries.size();
  PARSIM_CHECK(total >= 2);
  const auto m = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.min_fill *
                                  static_cast<double>(total)));

  SplitResult best;
  double best_overlap = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(total);

  // Candidate axes: the split history first (dimensions along which the
  // subtree has been split before admit overlap-free partitions), then
  // all others.
  std::vector<std::size_t> axes;
  for (std::size_t a = 0; a < dim_; ++a) {
    if (a < 32 && (node.split_history >> a) & 1u) axes.push_back(a);
  }
  for (std::size_t a = 0; a < dim_; ++a) {
    if (!(a < 32 && (node.split_history >> a) & 1u)) axes.push_back(a);
  }

  for (std::size_t axis : axes) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const Rect& rx = node.entries[x].rect;
      const Rect& ry = node.entries[y].rect;
      const double cx =
          static_cast<double>(rx.lo(axis)) + static_cast<double>(rx.hi(axis));
      const double cy =
          static_cast<double>(ry.lo(axis)) + static_cast<double>(ry.hi(axis));
      return cx < cy;
    });
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc = Rect::Empty(dim_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.ExtendToInclude(node.entries[order[i]].rect);
      prefix[i] = acc;
    }
    acc = Rect::Empty(dim_);
    for (std::size_t i = total; i-- > 0;) {
      acc.ExtendToInclude(node.entries[order[i]].rect);
      suffix[i] = acc;
    }
    for (std::size_t k = m; k + m <= total; ++k) {
      const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
      if (overlap < best_overlap) {
        best_overlap = overlap;
        best.axis = static_cast<int>(axis);
        best.overlap_volume = overlap;
        best.left.clear();
        best.right.clear();
        for (std::size_t i = 0; i < total; ++i) {
          const NodeEntry& e = node.entries[order[i]];
          if (i < k) {
            best.left.push_back(e);
          } else {
            best.right.push_back(e);
          }
        }
        if (overlap == 0.0 && (axis < 32 && ((node.split_history >> axis) & 1u))) {
          return best;  // overlap-free along a historic axis: take it
        }
      }
    }
  }
  PARSIM_CHECK(best.axis >= 0);
  return best;
}

NodeId XTree::SplitNode(NodeId node_id) {
  const Node& node = PeekNode(node_id);

  // Leaves: plain topological split (point MBRs always split cleanly
  // enough; supernodes are directory-only).
  if (node.IsLeaf()) {
    SplitResult split = ComputeRStarSplit(node);
    return ApplySplit(node_id, std::move(split));
  }

  // 1. Topological split.
  SplitResult topological = ComputeRStarSplit(node);
  if (RelativeOverlap(topological) <= xtree_options_.max_overlap) {
    return ApplySplit(node_id, std::move(topological));
  }

  // 2. Overlap-minimal split.
  SplitResult minimal = ComputeOverlapMinimalSplit(node);
  if (RelativeOverlap(minimal) <= xtree_options_.max_overlap) {
    return ApplySplit(node_id, std::move(minimal));
  }

  // 3. No good split exists: supernode.
  if (xtree_options_.enable_supernodes) {
    Node& mutable_node = MutableNode(node_id);
    ++mutable_node.pages;
    ++supernode_extensions_;
    disk()->WritePages(1);
    return kInvalidNodeId;
  }
  // Supernodes disabled (ablation): fall back to the less-bad split.
  if (RelativeOverlap(minimal) < RelativeOverlap(topological)) {
    return ApplySplit(node_id, std::move(minimal));
  }
  return ApplySplit(node_id, std::move(topological));
}

}  // namespace parsim
