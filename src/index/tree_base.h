// Common machinery of the R*-tree and X-tree: node storage on a simulated
// disk, R* insertion (ChooseSubtree, forced reinsert), topological R*
// split computation, range queries, bulk loading and invariant checks.
//
// Subclasses supply the split policy only: the R*-tree applies the
// topological split unconditionally, the X-tree falls back to an
// overlap-minimal split and, when none exists, to supernodes
// (Berchtold/Keim/Kriegel, VLDB'96).

#ifndef PARSIM_SRC_INDEX_TREE_BASE_H_
#define PARSIM_SRC_INDEX_TREE_BASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/index/node.h"
#include "src/io/disk.h"
#include "src/util/status.h"

namespace parsim {

class ThreadPool;

/// How BulkLoad orders points before packing them into leaves.
enum class BulkLoadOrder {
  /// Hilbert-curve order (default): best locality in most settings.
  kHilbert,
  /// Sort-Tile-Recursive (Leutenegger et al.): recursive slab sorting.
  kStr,
};

/// Tuning parameters shared by the tree family.
struct TreeOptions {
  /// Minimum node fill as a fraction of capacity (R*: 40%).
  double min_fill = 0.4;
  /// Fraction of entries removed by forced reinsert (R*: 30%).
  double reinsert_fraction = 0.3;
  /// Enable R* forced reinsert on first overflow per level.
  bool forced_reinsert = true;
  /// Leaf fill fraction used by BulkLoad.
  double bulk_load_fill = 0.7;
  /// Packing order used by BulkLoad.
  BulkLoadOrder bulk_load_order = BulkLoadOrder::kHilbert;
};

/// Base class of RStarTree and XTree.
class TreeBase {
 public:
  /// The tree stores its nodes on `disk` (not owned; must outlive the
  /// tree). Every node touched by a query charges page reads to it.
  TreeBase(std::size_t dim, SimulatedDisk* disk, TreeOptions options = {});
  virtual ~TreeBase() = default;

  TreeBase(const TreeBase&) = delete;
  TreeBase& operator=(const TreeBase&) = delete;

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of allocated node slots (valid NodeIds are < num_nodes();
  /// includes dissolved nodes, whose slots are never reused).
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Number of levels (0 for the empty tree; 1 = root is a leaf).
  int height() const;

  /// Total data (leaf) pages reachable from the root — the page count a
  /// query would be charged for reading this tree's entire data set.
  /// Cached after the first call; every structural change drops the
  /// cache (same hook as the leaf-block cache). Safe under concurrent
  /// readers: the recompute is idempotent and the slot is atomic.
  std::uint64_t DataPages() const;

  std::size_t leaf_capacity_per_page() const { return leaf_capacity_; }
  std::size_t dir_capacity_per_page() const { return dir_capacity_; }
  const TreeOptions& options() const { return options_; }
  SimulatedDisk* disk() const { return disk_; }

  /// Inserts one data point. Ids need not be unique, but queries report
  /// them verbatim, so unique ids are advisable.
  Status Insert(PointView p, PointId id);

  /// Deletes the exact record (p, id). Returns kNotFound if absent.
  /// Underfull nodes are condensed R*-style: the node is dissolved and
  /// its entries reinserted. (Node slots of dissolved nodes are not
  /// recycled; an all-deletes workload grows the node table.)
  Status Delete(PointView p, PointId id);

  /// Bulk loads an empty tree by Hilbert-order packing: points are sorted
  /// along a Hilbert curve and packed into leaves at options().bulk_load
  /// fill, then directory levels are built bottom-up. The id of points[i]
  /// is ids[i] when `ids` is given (must match points.size()), else i.
  ///
  /// With a non-null `pool` every phase — key computation, the
  /// (key, index) sort, STR slab tiling, leaf packing and per-level MBR
  /// construction — fans out over the pool's workers, and the resulting
  /// tree is BIT-IDENTICAL to the serial build at any thread count:
  /// the sort keys carry the point index as a tiebreak (a strict total
  /// order has exactly one sorted permutation), every packing boundary
  /// is a pure function of (n, fill, capacity), and page-write
  /// accounting is batched per level so simulated disk counters match
  /// the serial ones exactly. See DESIGN.md "Parallel bulk load".
  Status BulkLoad(const PointSet& points,
                  const std::vector<PointId>* ids = nullptr,
                  ThreadPool* pool = nullptr);

  /// All point ids whose point lies inside `query` (inclusive). Charges
  /// page accesses for every node visited.
  std::vector<PointId> RangeQuery(const Rect& query) const;

  /// True iff the exact record (p, id) is stored. Charges accesses.
  bool Contains(PointView p, PointId id) const;

  /// Root node id (kInvalidNodeId when empty).
  NodeId root_id() const { return root_; }

  /// Where a node access lands, plus its fault-handling annotations. The
  /// default route (no resolver) is the tree's own disk, healthy.
  struct DiskRoute {
    SimulatedDisk* disk = nullptr;
    /// Timed-out read attempts against a failed primary, charged to
    /// `disk` (the replica) before the failover read itself.
    std::uint32_t retry_attempts = 0;
    /// True when `disk` is the replica of a failed primary; the access
    /// is then also tallied as replica pages.
    bool failover = false;
    /// True when no healthy copy exists; `disk` is the failed primary,
    /// and the access is tallied as unavailable.
    bool unavailable = false;
  };

  /// Routes a node's charges to a disk. The default (unset resolver)
  /// charges everything to the tree's own disk; the shared-tree parallel
  /// engine resolves leaves to the disk owning their page (or, for a
  /// failed disk, its replica) and directory nodes to the query host.
  using NodeDiskResolver = std::function<DiskRoute(const Node&)>;

  /// Installs (or clears, with nullptr) the charge-routing policy.
  void set_node_disk_resolver(NodeDiskResolver resolver) {
    node_disk_resolver_ = std::move(resolver);
  }

  /// Resolves where `node`'s charges land without reading anything: the
  /// installed resolver's route, or the tree's own disk (healthy) when no
  /// resolver is set. The batched k-NN scheduler uses this to attribute a
  /// coalesced page fetch to the right disk for every query in a group.
  DiskRoute ResolveRoute(const Node& node) const;

  /// Reads a node, charging its pages to the resolved disk. Directory
  /// and data pages are metered separately, matching the paper's
  /// accounting.
  const Node& AccessNode(NodeId id) const;

  /// The SoA block of `leaf`, built lazily and cached until the next
  /// structural change. Safe for concurrent queries; see LeafBlockCache.
  const LeafBlock& LeafBlockOf(const Node& leaf) const {
    return leaf_blocks_.Get(leaf, dim_);
  }

  /// Charges `n` distance computations to the disk that serves `node`
  /// (the CPU doing the work sits next to that disk).
  void ChargeNodeDistances(const Node& node, std::uint64_t n) const;

  /// Charges one leaf sweep's outcome to the disk that serves `node`:
  /// exact re-ranks meter simulated CPU like ChargeNodeDistances, and
  /// the prune/re-rank/byte counters land in the same stats sink.
  void ChargeLeafSweep(const Node& node, const LeafSweepStats& sweep) const;

  /// Whether leaf blocks carry SQ8 mirrors for error-bounded pruned
  /// sweeps (src/index/leaf_sweep.h). Mutation-side toggle — it
  /// invalidates the block cache, so it must not race with queries
  /// (same contract as Insert). Results stay bit-identical either way;
  /// only sweep cost and the quantized counters change.
  void set_quantized_leaf_blocks(bool on) {
    leaf_blocks_.set_quantize(on);
    InvalidateLeafBlocks();
  }
  bool quantized_leaf_blocks() const { return leaf_blocks_.quantize(); }

  /// Whether SQ8 mirrors also carry the variance-ordered prefix stage
  /// (the progressive precision cascade's first tier; see
  /// src/geometry/sq8.h). Same mutation-side contract and bit-identity
  /// guarantee as set_quantized_leaf_blocks. No effect on sweeps unless
  /// quantized leaf blocks are also enabled.
  void set_sq8_prefix_stage(bool on) {
    leaf_blocks_.set_prefix(on);
    InvalidateLeafBlocks();
  }
  bool sq8_prefix_stage() const { return leaf_blocks_.prefix(); }

  /// Prebuilds the SoA block (and, when enabled, the SQ8 mirror plus its
  /// prefix stage) of every leaf, over `pool` when given (nullptr runs
  /// on the caller). Leaf blocks are derived state built lazily on first
  /// access, so without warming the first query wave silently pays the
  /// epoch-cache construction; benchmarks and the throughput harness
  /// call this so they measure steady state. Charges nothing — block
  /// builds never meter pages or CPU (only AccessNode does) — and is
  /// safe to omit entirely.
  void WarmLeafBlocks(ThreadPool* pool = nullptr) const;

  /// Reads a node without charging (tests / diagnostics only).
  const Node& PeekNode(NodeId id) const;

  /// Structural summary.
  struct Stats {
    std::size_t num_nodes = 0;
    std::size_t num_leaves = 0;
    std::size_t num_supernodes = 0;
    std::size_t total_pages = 0;
    int height = 0;
    double avg_leaf_fill = 0.0;
    double avg_dir_fill = 0.0;
  };
  Stats ComputeStats() const;

  /// Full structural audit: MBR containment and exactness, level
  /// consistency, fill bounds, reachability, stored-point count.
  Status ValidateInvariants() const;

  virtual std::string name() const = 0;

 protected:
  /// A computed partition of an overflowing node's entries.
  struct SplitResult {
    std::vector<NodeEntry> left;
    std::vector<NodeEntry> right;
    int axis = -1;
    double overlap_volume = 0.0;
  };

  /// Split policy. Partitions `node`'s entries and returns the new
  /// sibling's id, or kInvalidNodeId if the node absorbed the overflow
  /// in place (X-tree supernode extension).
  virtual NodeId SplitNode(NodeId node_id) = 0;

  /// Capacity of `node` in entries (pages * per-page capacity).
  std::size_t CapacityOf(const Node& node) const;
  /// Minimum entries required in `node` (min_fill of one page).
  std::size_t MinEntriesOf(const Node& node) const;
  bool Overflowing(const Node& node) const;

  /// Classic R* topological split: axis by minimal margin sum, then the
  /// distribution with minimal overlap (ties: minimal area).
  SplitResult ComputeRStarSplit(const Node& node) const;

  /// Creates a sibling from `split`, leaving the left part in `node_id`.
  /// Returns the sibling id. `axis` is recorded in both split histories.
  NodeId ApplySplit(NodeId node_id, SplitResult split);

  Node& MutableNode(NodeId id);
  NodeId AllocateNode(int level);
  /// Allocates `count` nodes at `level` with consecutive ids, returning
  /// the first id, and charges their page writes as ONE batched
  /// disk_->WritePages(count) — by the simulated-disk accounting
  /// (Sink().pages_written += pages) exactly equal to count single-page
  /// writes, so bulk load's per-level batching leaves every counter
  /// bit-identical to the node-at-a-time serial path.
  NodeId AllocateNodes(int level, std::size_t count);

  // Serialization restores private structure directly.
  friend Status LoadTree(TreeBase* tree, const std::string& path);

  std::size_t dim_;
  SimulatedDisk* disk_;
  TreeOptions options_;
  std::size_t leaf_capacity_;
  std::size_t dir_capacity_;
  std::vector<std::unique_ptr<Node>> nodes_;
  NodeId root_ = kInvalidNodeId;
  std::size_t size_ = 0;
  NodeDiskResolver node_disk_resolver_;
  LeafBlockCache leaf_blocks_;

  /// Marks every cached leaf block stale and drops the data-page count.
  /// Every mutating entry point (Insert, Delete, BulkLoad,
  /// deserialization) must call this before returning control to queries.
  void InvalidateLeafBlocks() {
    leaf_blocks_.Invalidate(nodes_.size());
    data_pages_cache_.store(0, std::memory_order_relaxed);
  }

  /// Cached DataPages() sum; 0 = unknown (a non-empty tree has >= 1).
  mutable std::atomic<std::uint64_t> data_pages_cache_{0};

 private:
  // One top-down insertion of `entry` at `target_level`, with R* overflow
  // treatment. `reinsert_done` has one flag per level for the enclosing
  // logical insertion.
  void InsertEntryAtLevel(NodeEntry entry, int target_level,
                          std::vector<bool>* reinsert_done);

  // R* ChooseSubtree from the root down to `target_level`; returns the
  // path of node ids (root first, target node last).
  std::vector<NodeId> ChoosePath(const Rect& rect, int target_level) const;

  // Recomputes parent-entry MBRs bottom-up along `path`.
  void RefreshPathMbrs(const std::vector<NodeId>& path);

  // Forced reinsert of the configured fraction of `node_id`'s entries.
  void ForcedReinsert(NodeId node_id, const std::vector<NodeId>& path,
                      std::vector<bool>* reinsert_done);

  // Replaces the root when it splits.
  void GrowRoot(NodeId left, NodeId right);

  Status ValidateSubtree(NodeId id, int expected_level, bool is_root,
                         std::size_t* points_seen) const;

  // Finds the path (root..leaf) to the leaf holding the exact record;
  // empty if absent.
  std::vector<NodeId> FindLeafPath(PointView p, PointId id) const;

  // R* CondenseTree after a removal along `path`: dissolves underfull
  // nodes, reinserts their entries, shrinks the root.
  void CondenseTree(const std::vector<NodeId>& path);
};

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_TREE_BASE_H_
