// k-nearest-neighbor search algorithms over the tree family:
//
//   * HsKnn  — incremental best-first search of Hjaltason & Samet
//              [HS 95]: a priority queue ordered by MINDIST; optimal in
//              the number of pages read. The default in the engine.
//   * RkvKnn — depth-first branch-and-bound of Roussopoulos, Kelley &
//              Vincent [RKV 95] with MINDIST ordering and MINMAXDIST
//              pruning; the algorithm the paper used on the X-tree.
//   * BruteForceKnn — exact linear scan; the test oracle.

#ifndef PARSIM_SRC_INDEX_KNN_H_
#define PARSIM_SRC_INDEX_KNN_H_

#include <vector>

#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/index/tree_base.h"

namespace parsim {

/// One answer of a k-NN query.
struct Neighbor {
  PointId id = kInvalidPointId;
  /// Real (not squared) distance.
  double distance = 0.0;

  friend bool operator==(const Neighbor& a, const Neighbor& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Result of a k-NN query: at most k neighbors, ascending by distance.
using KnnResult = std::vector<Neighbor>;

/// Resolved (1+eps)-approximate search parameters in the metric's
/// Comparable scale. Both factors are contraction divisors applied to
/// the running k-th-best bound: a node (or SQ8 leaf candidate) whose
/// lower bound exceeds bound/factor is dropped even though it might
/// still hold a true neighbor. The engine derives them from
/// EngineOptions::approx as Metric::ToComparable(1 + epsilon) —
/// (1+eps)^2 for L2, whose comparable scale is squared distance, and
/// (1+eps) for L1/Lmax — so a dropped candidate always has REAL
/// distance > d_k / (1+eps).
///
/// Guarantee (see DESIGN.md "Approximate tier"): because the bound only
/// tightens and finishes equal to the reported k-th distance D_k, every
/// true neighbor missed by the search has distance > D_k/(1+eps). Two
/// testable corollaries: every true neighbor within d_true_k/(1+eps) is
/// returned, and D_k <= (1+eps) * d_true_k.
///
/// The default (both factors 1.0) is EXACT search: every approx branch
/// is gated on factor > 1.0, so results, stats, and page counts are
/// bit-identical to the pre-approx code paths.
struct ApproxContext {
  /// Early-termination divisor for HS descent/pop node skips.
  double node_factor = 1.0;
  /// Bound-relaxation divisor for the SQ8/prefix PruneCutoff guard.
  double sweep_factor = 1.0;
};

/// Best-first (Hjaltason-Samet) k-NN. Charges page reads and distance
/// computations to the tree's disk. Supports L1, L2 and Lmax.
/// `approx` (default: exact) enables the (1+eps)-approximate tier.
KnnResult HsKnn(const TreeBase& tree, PointView query, std::size_t k,
                const Metric& metric = Metric(),
                const ApproxContext& approx = ApproxContext());

/// Branch-and-bound (RKV) k-NN with MINDIST ordering; MINMAXDIST pruning
/// is applied for k == 1 (its classic form). L2 only.
KnnResult RkvKnn(const TreeBase& tree, PointView query, std::size_t k,
                 const Metric& metric = Metric());

/// Linear-scan oracle over a PointSet (ids are positions).
KnnResult BruteForceKnn(const PointSet& points, PointView query,
                        std::size_t k, const Metric& metric = Metric());

/// ε-similarity (ball) query: every stored object within `radius` of
/// `query` (inclusive), ascending by distance. The similarity-threshold
/// counterpart of k-NN ("all images at least this similar"). Charges
/// page reads like the other searches.
KnnResult BallQuery(const TreeBase& tree, PointView query, double radius,
                    const Metric& metric = Metric());

/// Linear-scan oracle for BallQuery.
KnnResult BruteForceBallQuery(const PointSet& points, PointView query,
                              double radius, const Metric& metric = Metric());

/// MINDIST between a query point and a rectangle in the metric's
/// Comparable scale (squared for L2).
double MinDistComparable(const Rect& rect, PointView query,
                         const Metric& metric);

/// MINDIST between two rectangles in the metric's Comparable scale: a
/// lower bound on Comparable(a, b) for any point a in `a` and b in `b`,
/// 0 when they intersect. The block-pair pruning predicate of the
/// all-pairs similarity join (compare against ToComparable(epsilon)).
double MinDistComparable(const Rect& a, const Rect& b, const Metric& metric);

/// Early-exit MINDIST against a known cutoff (the descent fast path,
/// shared by HsKnn and the batched scheduler): returns true iff
/// MinDistComparable(rect, query, metric) > cutoff, bailing out of the
/// per-dimension loop as soon as the partial accumulation — a
/// nondecreasing sum/max of nonnegative terms — already exceeds it.
/// When it returns false, *out is the full MINDIST, bit-identical to
/// MinDistComparable (the loops replay its exact operation sequence;
/// the extra compare changes no arithmetic).
bool MinDistExceeds(const Rect& rect, PointView query, const Metric& metric,
                    double cutoff, double* out);

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_KNN_H_
