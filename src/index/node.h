// On-"disk" node layout of the R*-tree / X-tree family.
//
// Nodes live on a simulated disk: a directory node or leaf normally
// occupies one 4 KB page; X-tree supernodes span several contiguous
// pages and charge that many page accesses when read.

#ifndef PARSIM_SRC_INDEX_NODE_H_
#define PARSIM_SRC_INDEX_NODE_H_

#include <cstdint>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/io/disk_model.h"

namespace parsim {

/// Identifier of a node within one tree.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNodeId = static_cast<NodeId>(-1);

/// One slot of a node: an MBR plus either a child node (directory levels)
/// or a data object id (leaf level). Leaf entries carry the degenerate
/// rectangle of their point, which keeps the split/MBR machinery uniform
/// across levels.
struct NodeEntry {
  Rect rect;
  std::uint32_t child = 0;  // NodeId (directory) or PointId (leaf)

  /// The point of a leaf entry (its rect is degenerate).
  PointView AsPoint() const { return rect.lo(); }
};

/// A tree node. `level` 0 is the leaf level.
struct Node {
  NodeId id = kInvalidNodeId;
  int level = 0;
  /// Number of disk pages the node occupies (> 1 only for X-tree
  /// supernodes).
  std::uint32_t pages = 1;
  /// Dimensions used by splits in this node's history (X-tree split
  /// history, one bit per dimension). Propagated to split siblings.
  std::uint32_t split_history = 0;
  std::vector<NodeEntry> entries;

  bool IsLeaf() const { return level == 0; }

  /// The MBR of all entries.
  Rect ComputeMbr(std::size_t dim) const;

  /// Copies this leaf's points into `out` (entries.size() * dim scalars,
  /// row-major): the gather step of the SoA leaf-block build
  /// (src/index/leaf_block.h), peeling the coordinates out of the AoS
  /// NodeEntry layout so page scans become one contiguous sweep.
  void GatherLeafCoords(std::size_t dim, Scalar* out) const;
};

/// Entries per leaf page: a leaf record is the point plus its id.
std::size_t LeafCapacityPerPage(std::size_t dim);

/// Entries per directory page: a directory record is an MBR (lo and hi)
/// plus a child pointer.
std::size_t DirCapacityPerPage(std::size_t dim);

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_NODE_H_
