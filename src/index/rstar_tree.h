// The R*-tree of Beckmann, Kriegel, Schneider & Seeger [BKSS 90]:
// R* ChooseSubtree + forced reinsert (in TreeBase) and the topological
// R* split applied unconditionally.

#ifndef PARSIM_SRC_INDEX_RSTAR_TREE_H_
#define PARSIM_SRC_INDEX_RSTAR_TREE_H_

#include <string>

#include "src/index/tree_base.h"

namespace parsim {

/// A classic R*-tree over a simulated disk.
class RStarTree : public TreeBase {
 public:
  RStarTree(std::size_t dim, SimulatedDisk* disk, TreeOptions options = {})
      : TreeBase(dim, disk, options) {}

  std::string name() const override { return "R*-tree"; }

 protected:
  NodeId SplitNode(NodeId node_id) override;
};

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_RSTAR_TREE_H_
