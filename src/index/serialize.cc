#include "src/index/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/util/check.h"

namespace parsim {
namespace {

constexpr char kPointSetMagic[8] = {'P', 'S', 'I', 'M', 'P', 'T', 'S', '1'};
constexpr char kTreeMagic[8] = {'P', 'S', 'I', 'M', 'T', 'R', 'E', '1'};
constexpr std::uint32_t kFormatVersion = 1;

template <typename T>
void WriteRaw(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadRaw(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

bool CheckMagic(std::istream& in, const char (&magic)[8]) {
  char buffer[8];
  in.read(buffer, sizeof(buffer));
  return in && std::memcmp(buffer, magic, sizeof(buffer)) == 0;
}

void WriteRect(std::ostream& out, const Rect& rect) {
  for (std::size_t i = 0; i < rect.dim(); ++i) WriteRaw(out, rect.lo(i));
  for (std::size_t i = 0; i < rect.dim(); ++i) WriteRaw(out, rect.hi(i));
}

bool ReadRect(std::istream& in, std::size_t dim, Rect* rect) {
  std::vector<Scalar> lo(dim), hi(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (!ReadRaw(in, &lo[i])) return false;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    if (!ReadRaw(in, &hi[i])) return false;
  }
  for (std::size_t i = 0; i < dim; ++i) {
    if (lo[i] > hi[i]) return false;
  }
  *rect = Rect(std::move(lo), std::move(hi));
  return true;
}

}  // namespace

Status WritePointSet(const PointSet& points, std::ostream& out) {
  out.write(kPointSetMagic, sizeof(kPointSetMagic));
  WriteRaw(out, kFormatVersion);
  WriteRaw(out, static_cast<std::uint64_t>(points.dim()));
  WriteRaw(out, static_cast<std::uint64_t>(points.size()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointView p = points[i];
    out.write(reinterpret_cast<const char*>(p.data()),
              static_cast<std::streamsize>(p.size() * sizeof(Scalar)));
  }
  if (!out) return Status::Internal("write failed");
  return Status::Ok();
}

Result<PointSet> ReadPointSet(std::istream& in) {
  if (!CheckMagic(in, kPointSetMagic)) {
    return Status::InvalidArgument("not a parsim point-set file");
  }
  std::uint32_t version = 0;
  std::uint64_t dim = 0, count = 0;
  if (!ReadRaw(in, &version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported point-set format version");
  }
  if (!ReadRaw(in, &dim) || !ReadRaw(in, &count) || dim == 0) {
    return Status::InvalidArgument("corrupt point-set header");
  }
  PointSet points(static_cast<std::size_t>(dim));
  points.Reserve(static_cast<std::size_t>(count));
  Point p(static_cast<std::size_t>(dim));
  for (std::uint64_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(p.data()),
            static_cast<std::streamsize>(dim * sizeof(Scalar)));
    if (!in) return Status::InvalidArgument("truncated point-set file");
    points.Add(p);
  }
  return points;
}

Status SavePointSet(const PointSet& points, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return WritePointSet(points, out);
}

Result<PointSet> LoadPointSet(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  return ReadPointSet(in);
}

Status SaveTree(const TreeBase& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  out.write(kTreeMagic, sizeof(kTreeMagic));
  WriteRaw(out, kFormatVersion);
  WriteRaw(out, static_cast<std::uint64_t>(tree.dim()));
  WriteRaw(out, static_cast<std::uint64_t>(tree.size()));
  WriteRaw(out, tree.root_id());

  // Count reachable nodes, then emit them in a root-first walk.
  std::vector<NodeId> reachable;
  if (tree.root_id() != kInvalidNodeId) {
    std::vector<NodeId> stack = {tree.root_id()};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      reachable.push_back(id);
      const Node& node = tree.PeekNode(id);
      if (!node.IsLeaf()) {
        for (const NodeEntry& e : node.entries) stack.push_back(e.child);
      }
    }
  }
  WriteRaw(out, static_cast<std::uint64_t>(reachable.size()));
  for (NodeId id : reachable) {
    const Node& node = tree.PeekNode(id);
    WriteRaw(out, node.id);
    WriteRaw(out, node.level);
    WriteRaw(out, node.pages);
    WriteRaw(out, node.split_history);
    WriteRaw(out, static_cast<std::uint64_t>(node.entries.size()));
    for (const NodeEntry& e : node.entries) {
      WriteRect(out, e.rect);
      WriteRaw(out, e.child);
    }
  }
  if (!out) return Status::Internal("write failed");
  return Status::Ok();
}

Status LoadTree(TreeBase* tree, const std::string& path) {
  PARSIM_CHECK(tree != nullptr);
  if (!tree->empty() || tree->root_id() != kInvalidNodeId) {
    return Status::FailedPrecondition("LoadTree requires an empty tree");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  if (!CheckMagic(in, kTreeMagic)) {
    return Status::InvalidArgument("not a parsim tree file");
  }
  std::uint32_t version = 0;
  std::uint64_t dim = 0, size = 0, node_count = 0;
  NodeId root = kInvalidNodeId;
  if (!ReadRaw(in, &version) || version != kFormatVersion) {
    return Status::InvalidArgument("unsupported tree format version");
  }
  if (!ReadRaw(in, &dim) || dim != tree->dim()) {
    return Status::InvalidArgument("tree dimensionality mismatch");
  }
  if (!ReadRaw(in, &size) || !ReadRaw(in, &root) || !ReadRaw(in, &node_count)) {
    return Status::InvalidArgument("corrupt tree header");
  }
  // Node ids index a dense table; size it to the maximum id seen.
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::uint64_t n = 0; n < node_count; ++n) {
    auto node = std::make_unique<Node>();
    std::uint64_t entries = 0;
    if (!ReadRaw(in, &node->id) || !ReadRaw(in, &node->level) ||
        !ReadRaw(in, &node->pages) || !ReadRaw(in, &node->split_history) ||
        !ReadRaw(in, &entries)) {
      return Status::InvalidArgument("corrupt node header");
    }
    if (node->level < 0 || node->pages == 0) {
      return Status::InvalidArgument("corrupt node fields");
    }
    node->entries.reserve(entries);
    for (std::uint64_t e = 0; e < entries; ++e) {
      NodeEntry entry;
      if (!ReadRect(in, static_cast<std::size_t>(dim), &entry.rect) ||
          !ReadRaw(in, &entry.child)) {
        return Status::InvalidArgument("corrupt node entry");
      }
      node->entries.push_back(std::move(entry));
    }
    const std::size_t slot = node->id;
    if (slot >= nodes.size()) nodes.resize(slot + 1);
    if (nodes[slot] != nullptr) {
      return Status::InvalidArgument("duplicate node id");
    }
    nodes[slot] = std::move(node);
  }
  if (root != kInvalidNodeId &&
      (root >= nodes.size() || nodes[root] == nullptr)) {
    return Status::InvalidArgument("root id out of range");
  }
  // Unreferenced slots (dissolved nodes of the source tree) become empty
  // placeholder leaves so the dense id table stays valid.
  for (auto& slot : nodes) {
    if (slot == nullptr) slot = std::make_unique<Node>();
  }
  tree->nodes_ = std::move(nodes);
  tree->root_ = root;
  tree->size_ = static_cast<std::size_t>(size);
  tree->InvalidateLeafBlocks();
  tree->disk_->WritePages(node_count);
  Status valid = tree->ValidateInvariants();
  if (!valid.ok()) {
    tree->nodes_.clear();
    tree->root_ = kInvalidNodeId;
    tree->size_ = 0;
    return Status::InvalidArgument("loaded tree fails validation: " +
                                   valid.message());
  }
  return Status::Ok();
}

}  // namespace parsim
