#include "src/index/node.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {

Rect Node::ComputeMbr(std::size_t dim) const {
  Rect mbr = Rect::Empty(dim);
  for (const NodeEntry& e : entries) mbr.ExtendToInclude(e.rect);
  return mbr;
}

void Node::GatherLeafCoords([[maybe_unused]] std::size_t dim,
                            Scalar* out) const {
  PARSIM_DCHECK(IsLeaf());
  for (const NodeEntry& e : entries) {
    const PointView p = e.AsPoint();
    PARSIM_DCHECK(p.size() == dim);
    out = std::copy(p.begin(), p.end(), out);
  }
}

std::size_t LeafCapacityPerPage(std::size_t dim) {
  PARSIM_CHECK(dim >= 1);
  const std::size_t record = dim * sizeof(Scalar) + sizeof(PointId);
  const std::size_t capacity = kPageSizeBytes / record;
  PARSIM_CHECK(capacity >= 2);  // a page must hold at least two records
  return capacity;
}

std::size_t DirCapacityPerPage(std::size_t dim) {
  PARSIM_CHECK(dim >= 1);
  const std::size_t record = 2 * dim * sizeof(Scalar) + sizeof(NodeId);
  const std::size_t capacity = kPageSizeBytes / record;
  PARSIM_CHECK(capacity >= 2);
  return capacity;
}

}  // namespace parsim
