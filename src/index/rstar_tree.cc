#include "src/index/rstar_tree.h"

namespace parsim {

NodeId RStarTree::SplitNode(NodeId node_id) {
  SplitResult split = ComputeRStarSplit(PeekNode(node_id));
  return ApplySplit(node_id, std::move(split));
}

}  // namespace parsim
