#include "src/index/tree_base.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/geometry/metric.h"
#include "src/hilbert/hilbert.h"
#include "src/util/check.h"
#include "src/util/parallel_sort.h"
#include "src/util/thread_pool.h"

namespace parsim {

TreeBase::TreeBase(std::size_t dim, SimulatedDisk* disk, TreeOptions options)
    : dim_(dim),
      disk_(disk),
      options_(options),
      leaf_capacity_(LeafCapacityPerPage(dim)),
      dir_capacity_(DirCapacityPerPage(dim)) {
  PARSIM_CHECK(dim >= 1);
  PARSIM_CHECK(disk != nullptr);
  PARSIM_CHECK(options_.min_fill > 0.0 && options_.min_fill <= 0.5);
  PARSIM_CHECK(options_.reinsert_fraction > 0.0 &&
               options_.reinsert_fraction < 1.0);
  PARSIM_CHECK(options_.bulk_load_fill > 0.0 && options_.bulk_load_fill <= 1.0);
}

int TreeBase::height() const {
  if (root_ == kInvalidNodeId) return 0;
  return nodes_[root_]->level + 1;
}

std::size_t TreeBase::CapacityOf(const Node& node) const {
  const std::size_t per_page = node.IsLeaf() ? leaf_capacity_ : dir_capacity_;
  return per_page * node.pages;
}

std::size_t TreeBase::MinEntriesOf(const Node& node) const {
  const std::size_t per_page = node.IsLeaf() ? leaf_capacity_ : dir_capacity_;
  const auto m = static_cast<std::size_t>(
      options_.min_fill * static_cast<double>(per_page));
  return std::max<std::size_t>(1, m);
}

bool TreeBase::Overflowing(const Node& node) const {
  return node.entries.size() > CapacityOf(node);
}

Node& TreeBase::MutableNode(NodeId id) {
  PARSIM_CHECK(id < nodes_.size());
  return *nodes_[id];
}

NodeId TreeBase::AllocateNode(int level) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  auto node = std::make_unique<Node>();
  node->id = id;
  node->level = level;
  nodes_.push_back(std::move(node));
  disk_->WritePages(1);
  return id;
}

NodeId TreeBase::AllocateNodes(int level, std::size_t count) {
  PARSIM_CHECK(count >= 1);
  const NodeId first = static_cast<NodeId>(nodes_.size());
  nodes_.reserve(nodes_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    auto node = std::make_unique<Node>();
    node->id = static_cast<NodeId>(first + i);
    node->level = level;
    nodes_.push_back(std::move(node));
  }
  // One batched charge; Sink().pages_written += count is exactly what
  // `count` AllocateNode calls would have accumulated.
  disk_->WritePages(static_cast<std::uint64_t>(count));
  return first;
}

TreeBase::DiskRoute TreeBase::ResolveRoute(const Node& node) const {
  const DiskRoute route =
      node_disk_resolver_ ? node_disk_resolver_(node) : DiskRoute{disk_};
  PARSIM_CHECK(route.disk != nullptr);
  return route;
}

const Node& TreeBase::AccessNode(NodeId id) const {
  PARSIM_CHECK(id < nodes_.size());
  const Node& node = *nodes_[id];
  const DiskRoute route = ResolveRoute(node);
  // Fault annotations are recorded exactly once per node READ (distance
  // charges re-resolve the route but do not repeat them).
  if (route.failover) route.disk->RecordFailover(route.retry_attempts,
                                                node.pages);
  if (route.unavailable) route.disk->RecordUnavailable(node.pages);
  if (node.IsLeaf()) {
    route.disk->ReadDataPagesBuffered(node.id, node.pages);
  } else {
    route.disk->ReadDirectoryPagesBuffered(node.id, node.pages);
  }
  return node;
}

void TreeBase::ChargeNodeDistances(const Node& node, std::uint64_t n) const {
  ResolveRoute(node).disk->ChargeDistanceComputations(n);
}

void TreeBase::ChargeLeafSweep(const Node& node,
                               const LeafSweepStats& sweep) const {
  SimulatedDisk* disk = ResolveRoute(node).disk;
  disk->ChargeDistanceComputations(sweep.exact_distances);
  disk->RecordLeafSweep(sweep.quantized_pruned, sweep.base_pruned,
                        sweep.prefix_pruned, sweep.sq8_pruned, sweep.reranked,
                        sweep.leaf_bytes_scanned, sweep.approx_pruned_exactly);
}

void TreeBase::WarmLeafBlocks(ThreadPool* pool) const {
  if (root_ == kInvalidNodeId) return;
  const auto warm = [this](std::size_t i) {
    const Node& node = *nodes_[i];
    // Dissolved leaves (condensed away by deletes) keep their slot but
    // hold no entries; building their empty block would be harmless,
    // skipping it is cheaper.
    if (!node.IsLeaf() || node.entries.empty()) return;
    (void)leaf_blocks_.Get(node, dim_);
  };
  if (pool != nullptr && nodes_.size() > 1) {
    pool->ParallelFor(0, nodes_.size(), warm);
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) warm(i);
  }
}

const Node& TreeBase::PeekNode(NodeId id) const {
  PARSIM_CHECK(id < nodes_.size());
  return *nodes_[id];
}

Status TreeBase::Insert(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  if (root_ == kInvalidNodeId) {
    root_ = AllocateNode(/*level=*/0);
  }
  NodeEntry entry;
  entry.rect = Rect::AroundPoint(p);
  entry.child = id;
  std::vector<bool> reinsert_done(static_cast<std::size_t>(height()) + 2,
                                  false);
  InsertEntryAtLevel(std::move(entry), /*target_level=*/0, &reinsert_done);
  ++size_;
  InvalidateLeafBlocks();
  return Status::Ok();
}

std::vector<NodeId> TreeBase::ChoosePath(const Rect& rect,
                                         int target_level) const {
  PARSIM_CHECK(root_ != kInvalidNodeId);
  std::vector<NodeId> path;
  NodeId current = root_;
  for (;;) {
    path.push_back(current);
    const Node& node = *nodes_[current];
    if (node.level == target_level) break;
    PARSIM_CHECK(node.level > target_level);
    PARSIM_CHECK(!node.entries.empty());

    std::size_t best = 0;
    if (node.level == 1 && target_level == 0) {
      // Children are leaves: R* picks by (nearly) minimum overlap
      // enlargement among the candidates with least area enlargement.
      constexpr std::size_t kOverlapCandidates = 8;
      std::vector<std::size_t> order(node.entries.size());
      std::iota(order.begin(), order.end(), 0);
      auto area_enlargement = [&](std::size_t i) {
        const Rect& r = node.entries[i].rect;
        return Rect::Union(r, rect).Volume() - r.Volume();
      };
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return area_enlargement(a) < area_enlargement(b);
      });
      const std::size_t candidates =
          std::min(kOverlapCandidates, order.size());
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_area_enl = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < candidates; ++c) {
        const std::size_t i = order[c];
        const Rect enlarged = Rect::Union(node.entries[i].rect, rect);
        double overlap_delta = 0.0;
        for (std::size_t j = 0; j < node.entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta +=
              enlarged.OverlapVolume(node.entries[j].rect) -
              node.entries[i].rect.OverlapVolume(node.entries[j].rect);
        }
        const double enl = area_enlargement(i);
        const double area = node.entries[i].rect.Volume();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap &&
             (enl < best_area_enl ||
              (enl == best_area_enl && area < best_area)))) {
          best_overlap = overlap_delta;
          best_area_enl = enl;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Inner levels: least area enlargement, ties by least area.
      double best_enl = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        const Rect& r = node.entries[i].rect;
        const double enl = Rect::Union(r, rect).Volume() - r.Volume();
        const double area = r.Volume();
        if (enl < best_enl || (enl == best_enl && area < best_area)) {
          best_enl = enl;
          best_area = area;
          best = i;
        }
      }
    }
    current = node.entries[best].child;
  }
  return path;
}

void TreeBase::RefreshPathMbrs(const std::vector<NodeId>& path) {
  // Bottom-up: make each parent entry's rect exactly its child's MBR.
  for (std::size_t i = path.size(); i-- > 1;) {
    const NodeId child = path[i];
    const NodeId parent = path[i - 1];
    const Rect mbr = nodes_[child]->ComputeMbr(dim_);
    bool found = false;
    for (NodeEntry& e : nodes_[parent]->entries) {
      if (e.child == child) {
        e.rect = mbr;
        found = true;
        break;
      }
    }
    PARSIM_CHECK(found);
  }
}

void TreeBase::InsertEntryAtLevel(NodeEntry entry, int target_level,
                                  std::vector<bool>* reinsert_done) {
  std::vector<NodeId> path = ChoosePath(entry.rect, target_level);
  nodes_[path.back()]->entries.push_back(std::move(entry));
  RefreshPathMbrs(path);

  // Overflow treatment bottom-up along the insertion path.
  std::size_t i = path.size();
  while (i-- > 0) {
    const NodeId nid = path[i];
    if (!Overflowing(*nodes_[nid])) break;
    const int level = nodes_[nid]->level;
    const bool is_root = (nid == root_);
    if (!is_root && options_.forced_reinsert &&
        static_cast<std::size_t>(level) < reinsert_done->size() &&
        !(*reinsert_done)[static_cast<std::size_t>(level)]) {
      (*reinsert_done)[static_cast<std::size_t>(level)] = true;
      std::vector<NodeId> prefix(path.begin(),
                                 path.begin() + static_cast<std::ptrdiff_t>(i) +
                                     1);
      ForcedReinsert(nid, prefix, reinsert_done);
      // The reinsertions ran their own overflow treatment; ancestors on
      // `path` may have been restructured, so stop here.
      break;
    }
    const NodeId sibling = SplitNode(nid);
    if (sibling == kInvalidNodeId) break;  // absorbed in place (supernode)
    if (is_root) {
      GrowRoot(nid, sibling);
      break;
    }
    // Register the sibling with the parent; the parent's own MBR does not
    // change (the entries were partitioned), so ancestors stay exact.
    const NodeId parent = path[i - 1];
    Node& pnode = *nodes_[parent];
    bool found = false;
    for (NodeEntry& e : pnode.entries) {
      if (e.child == nid) {
        e.rect = nodes_[nid]->ComputeMbr(dim_);
        found = true;
        break;
      }
    }
    PARSIM_CHECK(found);
    NodeEntry sibling_entry;
    sibling_entry.rect = nodes_[sibling]->ComputeMbr(dim_);
    sibling_entry.child = sibling;
    pnode.entries.push_back(std::move(sibling_entry));
    // Continue: the parent may now overflow.
  }
}

void TreeBase::ForcedReinsert(NodeId node_id, const std::vector<NodeId>& path,
                              std::vector<bool>* reinsert_done) {
  Node& node = *nodes_[node_id];
  const Rect mbr = node.ComputeMbr(dim_);
  const Point center = mbr.Center();
  // Sort entries by distance of their rect center to the node center,
  // descending; the farthest `reinsert_fraction` leave the node. The
  // entry centers are gathered into one contiguous buffer so a single
  // one-to-many kernel call computes every distance ((a-b)^2 == (b-a)^2
  // bitwise, so swapping operands relative to the old per-pair loop
  // cannot change the ordering).
  std::vector<std::size_t> order(node.entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<Scalar> centers(node.entries.size() * dim_);
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    const Point c = node.entries[i].rect.Center();
    std::copy(c.data(), c.data() + dim_,
              centers.data() + i * dim_);
  }
  std::vector<double> dist(node.entries.size());
  Metric(MetricKind::kL2).ComparableMany(center, centers.data(),
                                         node.entries.size(), dim_,
                                         dist.data());
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.reinsert_fraction *
                                  static_cast<double>(node.entries.size())));
  std::vector<NodeEntry> removed;
  removed.reserve(k);
  std::vector<bool> take(node.entries.size(), false);
  for (std::size_t i = 0; i < k; ++i) take[order[i]] = true;
  std::vector<NodeEntry> kept;
  kept.reserve(node.entries.size() - k);
  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    if (take[i]) {
      removed.push_back(std::move(node.entries[i]));
    } else {
      kept.push_back(std::move(node.entries[i]));
    }
  }
  node.entries = std::move(kept);
  RefreshPathMbrs(path);
  const int level = node.level;
  // Reinsert closest-first (R* found this ordering best).
  for (std::size_t i = removed.size(); i-- > 0;) {
    InsertEntryAtLevel(std::move(removed[i]), level, reinsert_done);
  }
}

void TreeBase::GrowRoot(NodeId left, NodeId right) {
  const int new_level = nodes_[left]->level + 1;
  const NodeId new_root = AllocateNode(new_level);
  Node& root_node = *nodes_[new_root];
  NodeEntry le;
  le.rect = nodes_[left]->ComputeMbr(dim_);
  le.child = left;
  NodeEntry re;
  re.rect = nodes_[right]->ComputeMbr(dim_);
  re.child = right;
  root_node.entries.push_back(std::move(le));
  root_node.entries.push_back(std::move(re));
  root_ = new_root;
}

TreeBase::SplitResult TreeBase::ComputeRStarSplit(const Node& node) const {
  const std::size_t total = node.entries.size();
  PARSIM_CHECK(total >= 2);
  const auto m = std::max<std::size_t>(
      1, static_cast<std::size_t>(options_.min_fill *
                                  static_cast<double>(total)));
  PARSIM_CHECK(m <= total - m);

  // For one sorted order, evaluate all legal distributions and
  // accumulate the margin sum; track the best (overlap, area) choice.
  struct Best {
    double overlap = std::numeric_limits<double>::infinity();
    double area = std::numeric_limits<double>::infinity();
    std::size_t cut = 0;
    std::vector<std::size_t> order;
    int axis = -1;
  };

  double best_margin_sum = std::numeric_limits<double>::infinity();
  int best_axis = -1;
  std::vector<std::vector<std::size_t>> best_axis_orders;

  std::vector<std::size_t> order(total);
  for (std::size_t axis = 0; axis < dim_; ++axis) {
    double margin_sum = 0.0;
    std::vector<std::vector<std::size_t>> orders(2);
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  const Rect& ra = node.entries[a].rect;
                  const Rect& rb = node.entries[b].rect;
                  if (by_hi) {
                    if (ra.hi(axis) != rb.hi(axis)) {
                      return ra.hi(axis) < rb.hi(axis);
                    }
                    return ra.lo(axis) < rb.lo(axis);
                  }
                  if (ra.lo(axis) != rb.lo(axis)) {
                    return ra.lo(axis) < rb.lo(axis);
                  }
                  return ra.hi(axis) < rb.hi(axis);
                });
      // Prefix and suffix MBRs for O(total) distribution evaluation.
      std::vector<Rect> prefix(total), suffix(total);
      Rect acc = Rect::Empty(dim_);
      for (std::size_t i = 0; i < total; ++i) {
        acc.ExtendToInclude(node.entries[order[i]].rect);
        prefix[i] = acc;
      }
      acc = Rect::Empty(dim_);
      for (std::size_t i = total; i-- > 0;) {
        acc.ExtendToInclude(node.entries[order[i]].rect);
        suffix[i] = acc;
      }
      for (std::size_t k = m; k + m <= total; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      orders[static_cast<std::size_t>(by_hi)] = order;
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = static_cast<int>(axis);
      best_axis_orders = std::move(orders);
    }
  }
  PARSIM_CHECK(best_axis >= 0);

  // Along the chosen axis, pick the distribution with minimal overlap
  // volume (ties: minimal total area).
  Best best;
  for (const auto& ord : best_axis_orders) {
    std::vector<Rect> prefix(total), suffix(total);
    Rect acc = Rect::Empty(dim_);
    for (std::size_t i = 0; i < total; ++i) {
      acc.ExtendToInclude(node.entries[ord[i]].rect);
      prefix[i] = acc;
    }
    acc = Rect::Empty(dim_);
    for (std::size_t i = total; i-- > 0;) {
      acc.ExtendToInclude(node.entries[ord[i]].rect);
      suffix[i] = acc;
    }
    for (std::size_t k = m; k + m <= total; ++k) {
      const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
      const double area = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best.overlap ||
          (overlap == best.overlap && area < best.area)) {
        best.overlap = overlap;
        best.area = area;
        best.cut = k;
        best.order = ord;
        best.axis = best_axis;
      }
    }
  }
  PARSIM_CHECK(!best.order.empty());

  SplitResult split;
  split.axis = best.axis;
  split.overlap_volume = best.overlap;
  split.left.reserve(best.cut);
  split.right.reserve(total - best.cut);
  for (std::size_t i = 0; i < total; ++i) {
    const NodeEntry& e = node.entries[best.order[i]];
    if (i < best.cut) {
      split.left.push_back(e);
    } else {
      split.right.push_back(e);
    }
  }
  return split;
}

NodeId TreeBase::ApplySplit(NodeId node_id, SplitResult split) {
  Node& node = *nodes_[node_id];
  const NodeId sibling_id = AllocateNode(node.level);
  Node& sibling = *nodes_[sibling_id];  // note: AllocateNode may reallocate
  Node& left_node = *nodes_[node_id];

  const std::uint32_t history =
      split.axis >= 0 && split.axis < 32
          ? (left_node.split_history | (1u << split.axis))
          : left_node.split_history;
  left_node.entries = std::move(split.left);
  left_node.split_history = history;
  sibling.entries = std::move(split.right);
  sibling.split_history = history;

  const std::size_t per_page =
      left_node.IsLeaf() ? leaf_capacity_ : dir_capacity_;
  auto pages_for = [per_page](std::size_t count) {
    return static_cast<std::uint32_t>(
        std::max<std::size_t>(1, (count + per_page - 1) / per_page));
  };
  left_node.pages = pages_for(left_node.entries.size());
  sibling.pages = pages_for(sibling.entries.size());
  disk_->WritePages(left_node.pages + sibling.pages);
  return sibling_id;
}

namespace {

// Runs body(i) for i in [0, n): over `pool` when given, inline otherwise.
// Every use below writes disjoint state per iteration, so the two modes
// are interchangeable and the parallel build stays bit-identical.
void ForEachIndex(ThreadPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (pool != nullptr && n > 1) {
    pool->ParallelFor(0, n, body);
  } else {
    for (std::size_t i = 0; i < n; ++i) body(i);
  }
}

// Hilbert sort record: the key's 64-bit words most-significant FIRST (so
// lexicographic word comparison is numeric big-integer comparison) plus
// the point index as tiebreak. (key, index) is a strict total order: the
// sorted permutation is unique, so serial std::sort and the pool's merge
// ladder produce the same order bit for bit at any thread count. Sorting
// contiguous records also beats the old comparator-indirection sort
// (`order` indices chasing keys[a] through two pointer hops) on cache
// behavior — the sort's working set is the record array itself.
template <std::size_t W>
struct HilbertKeyRec {
  std::uint64_t words[W];
  std::uint32_t index;

  friend bool operator<(const HilbertKeyRec& a, const HilbertKeyRec& b) {
    for (std::size_t i = 0; i < W; ++i) {
      if (a.words[i] != b.words[i]) return a.words[i] < b.words[i];
    }
    return a.index < b.index;
  }
};

// Keys are computed in chunks of this many points: one batch
// IndexOfPoints call (a single scratch allocation) per chunk, one
// ParallelFor iteration per chunk.
constexpr std::size_t kHilbertChunk = 4096;

template <std::size_t W>
void HilbertOrderFixed(const PointSet& points, const HilbertCurve& curve,
                       ThreadPool* pool, std::vector<std::size_t>* order) {
  const std::size_t n = points.size();
  std::vector<HilbertKeyRec<W>> recs(n);
  const std::size_t chunks = (n + kHilbertChunk - 1) / kHilbertChunk;
  ForEachIndex(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = c * kHilbertChunk;
    const std::size_t end = std::min(n, begin + kHilbertChunk);
    std::vector<std::uint64_t> words((end - begin) * W);
    curve.IndexOfPoints(points, begin, end, words.data());
    for (std::size_t i = begin; i < end; ++i) {
      HilbertKeyRec<W>& rec = recs[i];
      const std::uint64_t* w = words.data() + (i - begin) * W;
      // IndexOfPoints emits little-endian words; flip to MSW-first.
      for (std::size_t j = 0; j < W; ++j) rec.words[j] = w[W - 1 - j];
      rec.index = static_cast<std::uint32_t>(i);
    }
  });
  ParallelSort(pool, recs.begin(), recs.end(),
               [](const HilbertKeyRec<W>& a, const HilbertKeyRec<W>& b) {
                 return a < b;
               });
  for (std::size_t i = 0; i < n; ++i) (*order)[i] = recs[i].index;
}

// Keys wider than 4 words (dim * 8 bits > 256, i.e. dim > 32) fall back
// to flat key storage with an indirect comparator — still a strict total
// order, still deterministic, just without the record-sort cache win.
void HilbertOrderGeneric(const PointSet& points, const HilbertCurve& curve,
                         ThreadPool* pool, std::vector<std::size_t>* order) {
  const std::size_t n = points.size();
  const std::size_t kw = curve.key_words();
  std::vector<std::uint64_t> keys(n * kw);
  const std::size_t chunks = (n + kHilbertChunk - 1) / kHilbertChunk;
  ForEachIndex(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = c * kHilbertChunk;
    const std::size_t end = std::min(n, begin + kHilbertChunk);
    curve.IndexOfPoints(points, begin, end, keys.data() + begin * kw);
  });
  ParallelSort(pool, order->begin(), order->end(),
               [&](std::size_t a, std::size_t b) {
                 const std::uint64_t* wa = keys.data() + a * kw;
                 const std::uint64_t* wb = keys.data() + b * kw;
                 for (std::size_t i = kw; i-- > 0;) {  // LE: MSW last
                   if (wa[i] != wb[i]) return wa[i] < wb[i];
                 }
                 return a < b;
               });
}

// STR slab recursions below this many points run on the calling thread;
// larger slabs fan out over the pool (and their internal sorts may fan
// out again — ParallelFor nests safely).
constexpr std::size_t kStrParallelCutoff = 8192;

}  // namespace

Status TreeBase::BulkLoad(const PointSet& points,
                          const std::vector<PointId>* ids, ThreadPool* pool) {
  if (points.dim() != dim_) {
    return Status::InvalidArgument("point set dimension mismatch");
  }
  if (ids != nullptr && ids->size() != points.size()) {
    return Status::InvalidArgument("ids size must match points size");
  }
  if (!empty() || root_ != kInvalidNodeId) {
    return Status::FailedPrecondition("BulkLoad requires an empty tree");
  }
  const std::size_t n = points.size();
  if (n == 0) return Status::Ok();
  // HilbertKeyRec carries the tiebreak index in 32 bits (PointId width).
  PARSIM_CHECK(n <= std::numeric_limits<std::uint32_t>::max());

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options_.bulk_load_order == BulkLoadOrder::kHilbert) {
    // Hilbert-order the points (8 bits of resolution per dimension) by
    // sorting (key, index) records; see HilbertKeyRec above.
    const HilbertCurve curve(dim_, /*bits=*/8);
    switch (curve.key_words()) {
      case 1: HilbertOrderFixed<1>(points, curve, pool, &order); break;
      case 2: HilbertOrderFixed<2>(points, curve, pool, &order); break;
      case 3: HilbertOrderFixed<3>(points, curve, pool, &order); break;
      case 4: HilbertOrderFixed<4>(points, curve, pool, &order); break;
      default: HilbertOrderGeneric(points, curve, pool, &order); break;
    }
  } else {
    // Sort-Tile-Recursive: sort by the first dimension, cut into slabs
    // holding whole columns of leaves, recurse on the remaining
    // dimensions within each slab. The comparator's index tiebreak makes
    // each slab sort a strict total order, so every slab boundary — and
    // with it the whole tiling — is identical at any thread count.
    const std::size_t leaf_points = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.bulk_load_fill *
                                    static_cast<double>(leaf_capacity_)));
    std::function<void(std::size_t, std::size_t, std::size_t)> tile =
        [&](std::size_t begin, std::size_t end, std::size_t dim_index) {
          const std::size_t count = end - begin;
          if (count <= leaf_points || dim_index >= dim_) return;
          ParallelSort(pool, order.begin() + static_cast<std::ptrdiff_t>(begin),
                       order.begin() + static_cast<std::ptrdiff_t>(end),
                       [&points, dim_index](std::size_t a, std::size_t b) {
                         const Scalar va = points[a][dim_index];
                         const Scalar vb = points[b][dim_index];
                         if (va != vb) return va < vb;
                         return a < b;
                       });
          if (dim_index + 1 >= dim_) return;  // last dim: sorted run packs
          const double leaves = std::ceil(static_cast<double>(count) /
                                          static_cast<double>(leaf_points));
          const double dims_left = static_cast<double>(dim_ - dim_index);
          const auto slabs = static_cast<std::size_t>(
              std::ceil(std::pow(leaves, 1.0 / dims_left)));
          const std::size_t slab_size = (count + slabs - 1) / slabs;
          std::vector<std::pair<std::size_t, std::size_t>> ranges;
          for (std::size_t s = begin; s < end; s += slab_size) {
            ranges.emplace_back(s, std::min(end, s + slab_size));
          }
          // Slabs are disjoint subranges of `order`: recurse over the
          // pool when the range is worth splitting, serially otherwise.
          ForEachIndex(
              count >= kStrParallelCutoff ? pool : nullptr, ranges.size(),
              [&](std::size_t s) {
                tile(ranges[s].first, ranges[s].second, dim_index + 1);
              });
        };
    tile(0, n, 0);
  }

  // Group sizes for one packed level: as close to the target fill as
  // possible, spread evenly so every group respects the minimum fill
  // (a single group — the future root — may underfill).
  const auto pack_groups = [](std::size_t total, std::size_t fill,
                              std::size_t min_fill, std::size_t capacity) {
    PARSIM_CHECK(min_fill <= fill && fill <= capacity);
    std::size_t groups = (total + fill - 1) / fill;
    // Even distribution must keep every group >= min_fill; shrink the
    // group count if the remainder would dilute groups below it.
    if (groups > 1 && total / groups < min_fill) {
      groups = std::max<std::size_t>(1, total / min_fill);
    }
    // ...but never exceed capacity.
    while ((total + groups - 1) / groups > capacity) ++groups;
    std::vector<std::size_t> sizes(groups, total / groups);
    for (std::size_t i = 0; i < total % groups; ++i) ++sizes[i];
    return sizes;
  };

  // Pack the leaf level. Group sizes and start offsets are pure
  // functions of (n, fill, capacity) — no parallel state — so the
  // groups can be filled in any order: each writes only its own node.
  const auto leaf_fill = std::max<std::size_t>(
      MinEntriesOf(Node{}),  // Node{} is a leaf (level 0)
      static_cast<std::size_t>(options_.bulk_load_fill *
                               static_cast<double>(leaf_capacity_)));
  const auto leaf_sizes =
      pack_groups(n, leaf_fill, MinEntriesOf(Node{}), leaf_capacity_);
  std::vector<std::size_t> leaf_starts(leaf_sizes.size());
  std::size_t start = 0;
  for (std::size_t g = 0; g < leaf_sizes.size(); ++g) {
    leaf_starts[g] = start;
    start += leaf_sizes[g];
  }
  PARSIM_CHECK(start == n);
  const NodeId first_leaf = AllocateNodes(/*level=*/0, leaf_sizes.size());
  ForEachIndex(pool, leaf_sizes.size(), [&](std::size_t g) {
    Node& leaf = *nodes_[first_leaf + g];
    leaf.entries.reserve(leaf_sizes[g]);
    for (std::size_t i = 0; i < leaf_sizes[g]; ++i) {
      const std::size_t src = order[leaf_starts[g] + i];
      NodeEntry e;
      e.rect = Rect::AroundPoint(points[src]);
      e.child = ids != nullptr ? (*ids)[src] : static_cast<PointId>(src);
      leaf.entries.push_back(std::move(e));
    }
  });
  std::vector<NodeId> level_nodes(leaf_sizes.size());
  std::iota(level_nodes.begin(), level_nodes.end(), first_leaf);

  // Build directory levels bottom-up. Each level is a barrier: its
  // groups read only fully-built child nodes (ComputeMbr is pure) and
  // write only their own node, so the groups fan out over the pool.
  int level = 1;
  Node dir_probe;
  dir_probe.level = 1;
  const std::size_t dir_min = MinEntriesOf(dir_probe);
  const auto dir_fill = std::max<std::size_t>(
      2, static_cast<std::size_t>(options_.bulk_load_fill *
                                  static_cast<double>(dir_capacity_)));
  while (level_nodes.size() > 1) {
    const auto sizes =
        pack_groups(level_nodes.size(), dir_fill, dir_min, dir_capacity_);
    std::vector<std::size_t> child_starts(sizes.size());
    std::size_t child_index = 0;
    for (std::size_t g = 0; g < sizes.size(); ++g) {
      child_starts[g] = child_index;
      child_index += sizes[g];
    }
    PARSIM_CHECK(child_index == level_nodes.size());
    const NodeId first_dir = AllocateNodes(level, sizes.size());
    ForEachIndex(pool, sizes.size(), [&](std::size_t g) {
      Node& dir = *nodes_[first_dir + g];
      dir.entries.reserve(sizes[g]);
      for (std::size_t i = 0; i < sizes[g]; ++i) {
        const NodeId child = level_nodes[child_starts[g] + i];
        NodeEntry e;
        e.rect = nodes_[child]->ComputeMbr(dim_);
        e.child = child;
        dir.entries.push_back(std::move(e));
      }
    });
    std::vector<NodeId> next_level(sizes.size());
    std::iota(next_level.begin(), next_level.end(), first_dir);
    level_nodes = std::move(next_level);
    ++level;
  }
  root_ = level_nodes.front();
  size_ = n;
  InvalidateLeafBlocks();
  return Status::Ok();
}

std::vector<NodeId> TreeBase::FindLeafPath(PointView p, PointId id) const {
  if (root_ == kInvalidNodeId) return {};
  const Rect probe = Rect::AroundPoint(p);
  std::vector<NodeId> path;
  // Depth-first search with an explicit path stack (several subtrees may
  // cover the probe point).
  std::function<bool(NodeId)> descend = [&](NodeId nid) -> bool {
    path.push_back(nid);
    const Node& node = *nodes_[nid];
    if (node.IsLeaf()) {
      for (const NodeEntry& e : node.entries) {
        if (e.child == id && e.rect == probe) return true;
      }
    } else {
      for (const NodeEntry& e : node.entries) {
        if (!e.rect.ContainsRect(probe)) continue;
        if (descend(e.child)) return true;
      }
    }
    path.pop_back();
    return false;
  };
  if (!descend(root_)) return {};
  return path;
}

Status TreeBase::Delete(PointView p, PointId id) {
  if (p.size() != dim_) {
    return Status::InvalidArgument("point dimension mismatch");
  }
  const std::vector<NodeId> path = FindLeafPath(p, id);
  if (path.empty()) return Status::NotFound("record not stored");
  Node& leaf = *nodes_[path.back()];
  const Rect probe = Rect::AroundPoint(p);
  bool removed = false;
  for (std::size_t i = 0; i < leaf.entries.size(); ++i) {
    if (leaf.entries[i].child == id && leaf.entries[i].rect == probe) {
      leaf.entries.erase(leaf.entries.begin() +
                         static_cast<std::ptrdiff_t>(i));
      removed = true;
      break;
    }
  }
  PARSIM_CHECK(removed);
  --size_;
  CondenseTree(path);
  InvalidateLeafBlocks();
  return Status::Ok();
}

void TreeBase::CondenseTree(const std::vector<NodeId>& path) {
  // Walk bottom-up: dissolve underfull non-root nodes, collecting their
  // surviving entries (with the level they must be reinserted at).
  struct Orphan {
    NodeEntry entry;
    int level;
  };
  std::vector<Orphan> orphans;
  for (std::size_t i = path.size(); i-- > 1;) {
    Node& node = *nodes_[path[i]];
    Node& parent = *nodes_[path[i - 1]];
    if (node.entries.size() < MinEntriesOf(node)) {
      // Dissolve: unhook from the parent, queue the entries.
      for (NodeEntry& e : node.entries) {
        orphans.push_back(Orphan{std::move(e), node.level});
      }
      node.entries.clear();
      bool unhooked = false;
      for (std::size_t j = 0; j < parent.entries.size(); ++j) {
        if (parent.entries[j].child == path[i]) {
          parent.entries.erase(parent.entries.begin() +
                               static_cast<std::ptrdiff_t>(j));
          unhooked = true;
          break;
        }
      }
      PARSIM_CHECK(unhooked);
    } else {
      // Keep, but tighten the parent entry's MBR.
      const Rect mbr = node.ComputeMbr(dim_);
      for (NodeEntry& e : parent.entries) {
        if (e.child == path[i]) {
          e.rect = mbr;
          break;
        }
      }
    }
  }
  // The bottom-up loop above already tightened every surviving
  // parent-child MBR along the path; now shrink the root. A directory
  // root with one child hands over; an empty root empties the tree.
  while (root_ != kInvalidNodeId) {
    Node& root_node = *nodes_[root_];
    if (!root_node.IsLeaf() && root_node.entries.size() == 1) {
      root_ = root_node.entries[0].child;
      continue;
    }
    if (root_node.entries.empty()) {
      root_ = kInvalidNodeId;
    }
    break;
  }

  // Reinsert orphans. Subtree entries go back at their original level
  // when the tree is still tall enough; otherwise (the tree shrank) the
  // subtree is unpacked into its points, which always reinsert cleanly.
  std::function<void(const NodeEntry&, int, std::vector<NodeEntry>*)>
      collect_points = [&](const NodeEntry& entry, int level,
                           std::vector<NodeEntry>* out) {
        if (level == 0) {
          out->push_back(entry);
          return;
        }
        const Node& child = *nodes_[entry.child];
        for (const NodeEntry& e : child.entries) {
          collect_points(e, level - 1, out);
        }
      };
  // Deepest (lowest-level) entries first so the tree regains height
  // before higher-level subtrees arrive.
  std::sort(orphans.begin(), orphans.end(),
            [](const Orphan& a, const Orphan& b) { return a.level < b.level; });
  for (Orphan& orphan : orphans) {
    if (root_ == kInvalidNodeId) {
      root_ = AllocateNode(0);
    }
    if (orphan.level < height()) {
      std::vector<bool> reinsert_done(static_cast<std::size_t>(height()) + 2,
                                      false);
      InsertEntryAtLevel(std::move(orphan.entry), orphan.level,
                         &reinsert_done);
      continue;
    }
    std::vector<NodeEntry> points;
    collect_points(orphan.entry, orphan.level, &points);
    for (NodeEntry& e : points) {
      std::vector<bool> reinsert_done(static_cast<std::size_t>(height()) + 2,
                                      false);
      InsertEntryAtLevel(std::move(e), /*target_level=*/0, &reinsert_done);
    }
  }
}

std::vector<PointId> TreeBase::RangeQuery(const Rect& query) const {
  std::vector<PointId> out;
  if (root_ == kInvalidNodeId) return out;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& node = AccessNode(id);
    if (node.IsLeaf()) {
      // Sweep the SoA block instead of the AoS entries: a leaf entry's
      // rect is the degenerate rect of its point, so Intersects(e.rect)
      // is exactly Contains(point), and the block preserves entry order.
      const LeafBlock& block = LeafBlockOf(node);
      ChargeLeafSweep(node, SweepLeafRange(block, query, &out));
      continue;
    }
    for (const NodeEntry& e : node.entries) {
      if (query.Intersects(e.rect)) stack.push_back(e.child);
    }
  }
  return out;
}

bool TreeBase::Contains(PointView p, PointId id) const {
  if (root_ == kInvalidNodeId) return false;
  const Rect probe = Rect::AroundPoint(p);
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& node = AccessNode(nid);
    for (const NodeEntry& e : node.entries) {
      if (!e.rect.ContainsRect(probe)) continue;
      if (node.IsLeaf()) {
        if (e.child == id && e.rect == probe) return true;
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return false;
}

std::uint64_t TreeBase::DataPages() const {
  const std::uint64_t cached =
      data_pages_cache_.load(std::memory_order_relaxed);
  if (cached != 0 || root_ == kInvalidNodeId) return cached;
  std::uint64_t pages = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const Node& node = *nodes_[stack.back()];
    stack.pop_back();
    if (node.IsLeaf()) {
      pages += node.pages;
    } else {
      for (const NodeEntry& e : node.entries) stack.push_back(e.child);
    }
  }
  data_pages_cache_.store(pages, std::memory_order_relaxed);
  return pages;
}

TreeBase::Stats TreeBase::ComputeStats() const {
  Stats stats;
  stats.height = height();
  if (root_ == kInvalidNodeId) return stats;
  std::size_t leaf_entries = 0, dir_entries = 0, dir_nodes = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const Node& node = *nodes_[stack.back()];
    stack.pop_back();
    ++stats.num_nodes;
    stats.total_pages += node.pages;
    if (node.pages > 1) ++stats.num_supernodes;
    if (node.IsLeaf()) {
      ++stats.num_leaves;
      leaf_entries += node.entries.size();
    } else {
      ++dir_nodes;
      dir_entries += node.entries.size();
      for (const NodeEntry& e : node.entries) stack.push_back(e.child);
    }
  }
  if (stats.num_leaves > 0) {
    stats.avg_leaf_fill =
        static_cast<double>(leaf_entries) /
        (static_cast<double>(stats.num_leaves * leaf_capacity_));
  }
  if (dir_nodes > 0) {
    stats.avg_dir_fill = static_cast<double>(dir_entries) /
                         (static_cast<double>(dir_nodes * dir_capacity_));
  }
  return stats;
}

Status TreeBase::ValidateInvariants() const {
  if (root_ == kInvalidNodeId) {
    if (size_ != 0) return Status::Internal("empty tree with nonzero size");
    return Status::Ok();
  }
  std::size_t points_seen = 0;
  Status s = ValidateSubtree(root_, nodes_[root_]->level, /*is_root=*/true,
                             &points_seen);
  if (!s.ok()) return s;
  if (points_seen != size_) {
    return Status::Internal("stored point count does not match size()");
  }
  return Status::Ok();
}

Status TreeBase::ValidateSubtree(NodeId id, int expected_level, bool is_root,
                                 std::size_t* points_seen) const {
  if (id >= nodes_.size()) return Status::Internal("dangling node id");
  const Node& node = *nodes_[id];
  if (node.level != expected_level) {
    return Status::Internal("node level inconsistent with tree structure");
  }
  if (node.entries.size() > CapacityOf(node)) {
    return Status::Internal("node exceeds its capacity");
  }
  if (!is_root && node.entries.size() < MinEntriesOf(node)) {
    return Status::Internal("non-root node under minimum fill");
  }
  if (is_root && node.entries.empty() && size_ != 0) {
    return Status::Internal("root empty but tree non-empty");
  }
  if (node.IsLeaf()) {
    for (const NodeEntry& e : node.entries) {
      for (std::size_t i = 0; i < dim_; ++i) {
        if (e.rect.lo(i) != e.rect.hi(i)) {
          return Status::Internal("leaf entry rect is not a point");
        }
      }
    }
    *points_seen += node.entries.size();
    return Status::Ok();
  }
  for (const NodeEntry& e : node.entries) {
    if (e.child >= nodes_.size()) {
      return Status::Internal("dangling child id");
    }
    const Rect child_mbr = nodes_[e.child]->ComputeMbr(dim_);
    if (!(e.rect == child_mbr)) {
      return Status::Internal("directory entry rect is not the child MBR");
    }
    Status s = ValidateSubtree(e.child, node.level - 1, /*is_root=*/false,
                               points_seen);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace parsim
