// Structure-of-arrays mirror of a leaf page.
//
// A leaf Node stores its points AoS — each NodeEntry carries a degenerate
// Rect (lo == hi == the point) plus the point id — which keeps the
// split/MBR machinery uniform across levels but scatters the coordinates
// a page scan needs across Rect allocations. A LeafBlock peels them out
// into two dense arrays (coords: count x dim row-major scalars; ids:
// count PointIds), so a page scan is one contiguous sweep the one-to-many
// and many-to-many distance kernels (Metric::ComparableMany /
// ComparableBlock) stream over without a per-query gather.
//
// Blocks are derived state: LeafBlockCache builds them lazily on first
// access and invalidates them wholesale whenever the tree's structure
// changes (insert, delete, bulk load, deserialize). The tree's
// concurrency contract — queries never race with mutations — makes a
// single epoch counter sufficient: mutations bump the epoch between
// query waves, and concurrent readers synchronize on a per-slot atomic.

#ifndef PARSIM_SRC_INDEX_LEAF_BLOCK_H_
#define PARSIM_SRC_INDEX_LEAF_BLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/geometry/point.h"
#include "src/geometry/sq8.h"
#include "src/index/node.h"

namespace parsim {

/// The SoA layout of one leaf page: coordinates and ids of its points in
/// entry order, contiguous.
struct LeafBlock {
  std::size_t count = 0;
  std::size_t dim = 0;
  /// count * dim scalars, row-major (point i at coords[i * dim]).
  std::vector<Scalar> coords;
  /// count point ids, parallel to coords.
  std::vector<PointId> ids;

  /// Opt-in SQ8 mirror of `coords` (src/geometry/sq8.h): per-block
  /// lattice plus uint8 codes, built together with the block when the
  /// owning cache has quantization enabled, so mirror and floats are
  /// always of the same structural epoch. Empty when has_sq8 is false.
  Sq8Mirror sq8;
  bool has_sq8 = false;

  PointView row(std::size_t i) const {
    return {coords.data() + i * dim, dim};
  }

  /// Rebuilds this block from `leaf` (entries in order); with `quantize`
  /// also (re)builds the SQ8 mirror from the gathered coordinates, and
  /// with `prefix` additionally its default variance-ordered prefix
  /// stage (the progressive precision cascade's first tier).
  void BuildFrom(const Node& leaf, std::size_t dimension,
                 bool quantize = false, bool prefix = false);
};

/// Per-tree cache of leaf blocks, safe for concurrent read-only queries.
///
/// Thread-safety contract (the tree family's): any number of concurrent
/// Get() calls may race with each other — the first one through a slot's
/// build mutex materializes the block, the rest wait or take the fast
/// atomic-epoch path — but Invalidate() must not race with Get(); it is
/// called from the tree's mutating entry points, which are documented as
/// exclusive with queries (like SetFaultPlan / Insert / Remove).
class LeafBlockCache {
 public:
  /// Marks every cached block stale and makes room for `num_nodes`
  /// slots. Call after any structural change, from the mutation side.
  void Invalidate(std::size_t num_nodes);

  /// Whether rebuilt blocks carry SQ8 mirrors. Flip from the mutation
  /// side only (TreeBase::set_quantized_leaf_blocks invalidates
  /// alongside, so no block built under the old setting survives).
  void set_quantize(bool on) { quantize_ = on; }
  bool quantize() const { return quantize_; }

  /// Whether SQ8 mirrors also carry the prefix-dimension cascade stage.
  /// Same mutation-side contract as set_quantize.
  void set_prefix(bool on) { prefix_ = on; }
  bool prefix() const { return prefix_; }

  /// The current block of `leaf`, building it if stale or absent.
  const LeafBlock& Get(const Node& leaf, std::size_t dim) const;

 private:
  struct Slot {
    /// Epoch the block was built at; acquire/release pairs with the
    /// build below so a reader that sees the current epoch also sees
    /// the fully built block.
    std::atomic<std::uint64_t> built_epoch{0};
    std::mutex build_mutex;
    LeafBlock block;
  };

  // unique_ptr slots: Invalidate() may grow the vector, and Slot holds
  // a mutex/atomic (neither movable).
  std::vector<std::unique_ptr<Slot>> slots_;
  /// Bumped by Invalidate; slots at an older epoch rebuild on access.
  /// Starts above the slots' initial built_epoch of 0 so fresh slots
  /// count as stale.
  std::uint64_t epoch_ = 1;
  /// Mutation-side settings read by Get's (re)builds.
  bool quantize_ = false;
  bool prefix_ = false;
};

}  // namespace parsim

#endif  // PARSIM_SRC_INDEX_LEAF_BLOCK_H_
