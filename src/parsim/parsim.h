// Umbrella header: the full public API of parsim, the parallel
// similarity-search library (reproduction of Berchtold, Böhm,
// Braunmüller, Keim & Kriegel, "Fast Parallel Similarity Search in
// Multimedia Databases", SIGMOD 1997).
//
// Quick tour:
//   * NearOptimalDeclusterer / RecursiveDeclusterer — the paper's
//     contribution: ColorOf() vertex coloring over quadrant buckets.
//   * RoundRobin / DiskModulo / Fx / Hilbert Declusterer — baselines.
//   * ParallelSearchEngine — declusters a PointSet over simulated disks,
//     one X-tree per disk, merged parallel k-NN queries.
//   * XTree / RStarTree + HsKnn / RkvKnn — the index substrate.
//   * workload generators, analytic cost model, experiment runner.

#ifndef PARSIM_SRC_PARSIM_PARSIM_H_
#define PARSIM_SRC_PARSIM_PARSIM_H_

#include "src/core/baselines.h"
#include "src/core/bucket.h"
#include "src/core/coloring.h"
#include "src/core/declusterer.h"
#include "src/core/disk_assignment_graph.h"
#include "src/core/folding.h"
#include "src/core/near_optimal.h"
#include "src/core/neighborhood.h"
#include "src/core/quantile.h"
#include "src/core/recursive.h"
#include "src/core/replica.h"
#include "src/cost/model.h"
#include "src/eval/experiment.h"
#include "src/eval/open_loop.h"
#include "src/eval/recall.h"
#include "src/eval/throughput.h"
#include "src/geometry/metric.h"
#include "src/geometry/point.h"
#include "src/geometry/rect.h"
#include "src/geometry/sq8.h"
#include "src/hilbert/hilbert.h"
#include "src/index/knn.h"
#include "src/index/leaf_block.h"
#include "src/index/leaf_sweep.h"
#include "src/index/rstar_tree.h"
#include "src/index/serialize.h"
#include "src/index/xtree.h"
#include "src/io/buffer_pool.h"
#include "src/io/disk.h"
#include "src/io/disk_array.h"
#include "src/io/disk_model.h"
#include "src/parallel/batch_knn.h"
#include "src/parallel/engine.h"
#include "src/parallel/join.h"
#include "src/parallel/route_memo.h"
#include "src/parallel/round_scheduler.h"
#include "src/service/query_service.h"
#include "src/util/phase_timer.h"
#include "src/util/random.h"
#include "src/util/status.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"
#include "src/workload/generators.h"

#endif  // PARSIM_SRC_PARSIM_PARSIM_H_
