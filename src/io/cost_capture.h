// Per-query cost capture: the mechanism that makes read-only queries
// safe to execute concurrently without giving up the simulator's
// deterministic accounting.
//
// A query allocates a QueryCostAccumulator (one DiskStats slot per
// simulated disk, plus one for the query host) and installs it with a
// ScopedCostCapture for the duration of its traversal. While a capture is
// active on a thread, every charge a SimulatedDisk would normally apply
// to its shared counters is recorded in the accumulator slot of that
// disk instead — traversal never mutates shared disk state, so any number
// of queries can run in parallel. At query end the engine derives the
// QueryStats from the accumulator (bit-identical to the old
// reset-charge-read protocol, because the same increments feed the same
// formulas) and folds the counters into the shared cumulative stats under
// a lock.
//
// The capture pointer is thread_local: worker threads of a batch each
// install the accumulator of the query they are currently executing.

#ifndef PARSIM_SRC_IO_COST_CAPTURE_H_
#define PARSIM_SRC_IO_COST_CAPTURE_H_

#include <cstddef>
#include <vector>

#include "src/io/disk_model.h"
#include "src/util/check.h"

namespace parsim {

/// Local cost counters for one query: one DiskStats per charge target.
/// Slot i belongs to disk id i; the engine sizes the accumulator as
/// num_disks + 1 so the query host (id == num_disks) gets the last slot.
class QueryCostAccumulator {
 public:
  explicit QueryCostAccumulator(std::size_t num_slots) : slots_(num_slots) {}

  DiskStats& slot(std::size_t id) {
    PARSIM_DCHECK(id < slots_.size());
    return slots_[id];
  }
  const DiskStats& slot(std::size_t id) const {
    PARSIM_DCHECK(id < slots_.size());
    return slots_[id];
  }
  std::size_t num_slots() const { return slots_.size(); }

  /// Pages of index work this query has consumed so far, summed over all
  /// slots and invariant under buffering and coalescing: charged reads
  /// plus buffer hits plus coalesced rides all count. The query service's
  /// page budgets meter against this, so a budget means the same amount
  /// of logical work whether or not a buffer pool or a batch happens to
  /// absorb the I/O.
  std::uint64_t TotalPagesTouched() const {
    std::uint64_t total = 0;
    for (const DiskStats& s : slots_) {
      total += s.TotalPagesRead() + s.buffer_hit_pages + s.coalesced_pages;
    }
    return total;
  }

 private:
  std::vector<DiskStats> slots_;
};

namespace internal_cost {

inline thread_local QueryCostAccumulator* g_active_capture = nullptr;

}  // namespace internal_cost

/// The accumulator charges on this thread are currently routed to, or
/// nullptr when charges go to the shared disk counters (serial protocol).
inline QueryCostAccumulator* ActiveCostCapture() {
  return internal_cost::g_active_capture;
}

/// RAII installer of a capture on the current thread. Nestable (the
/// previous capture is restored on destruction), though the engine never
/// nests captures in practice.
class ScopedCostCapture {
 public:
  explicit ScopedCostCapture(QueryCostAccumulator* accumulator)
      : previous_(internal_cost::g_active_capture) {
    internal_cost::g_active_capture = accumulator;
  }
  ~ScopedCostCapture() { internal_cost::g_active_capture = previous_; }

  ScopedCostCapture(const ScopedCostCapture&) = delete;
  ScopedCostCapture& operator=(const ScopedCostCapture&) = delete;

 private:
  QueryCostAccumulator* previous_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_COST_CAPTURE_H_
