#include "src/io/disk_array.h"

#include <algorithm>

#include "src/util/check.h"

namespace parsim {

DiskArray::DiskArray(std::size_t n, DiskParameters params) {
  PARSIM_CHECK(n >= 1);
  disks_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    disks_.emplace_back(static_cast<DiskId>(i), params);
  }
}

SimulatedDisk& DiskArray::disk(DiskId id) {
  PARSIM_CHECK(id < disks_.size());
  return disks_[id];
}

const SimulatedDisk& DiskArray::disk(DiskId id) const {
  PARSIM_CHECK(id < disks_.size());
  return disks_[id];
}

double DiskArray::ParallelElapsedMs() const {
  double worst = 0.0;
  for (const auto& d : disks_) worst = std::max(worst, d.ElapsedMs());
  return worst;
}

double DiskArray::SequentialElapsedMs() const {
  double total = 0.0;
  for (const auto& d : disks_) total += d.ElapsedMs();
  return total;
}

DiskId DiskArray::BusiestDisk() const {
  DiskId best = 0;
  double worst = -1.0;
  for (const auto& d : disks_) {
    if (d.ElapsedMs() > worst) {
      worst = d.ElapsedMs();
      best = d.id();
    }
  }
  return best;
}

std::uint64_t DiskArray::MaxPagesRead() const {
  std::uint64_t worst = 0;
  for (const auto& d : disks_) {
    worst = std::max(worst, d.stats().TotalPagesRead());
  }
  return worst;
}

std::uint64_t DiskArray::TotalPagesRead() const {
  std::uint64_t total = 0;
  for (const auto& d : disks_) total += d.stats().TotalPagesRead();
  return total;
}

DiskStats DiskArray::TotalStats() const {
  DiskStats total;
  for (const auto& d : disks_) total += d.stats();
  return total;
}

double DiskArray::BalanceRatio() const {
  const std::uint64_t max_pages = MaxPagesRead();
  if (max_pages == 0) return 1.0;
  const double avg = static_cast<double>(TotalPagesRead()) /
                     static_cast<double>(disks_.size());
  return avg / static_cast<double>(max_pages);
}

void DiskArray::ResetStats() {
  for (auto& d : disks_) d.ResetStats();
}

void DiskArray::ConfigureBufferPool(std::uint64_t pages_per_disk) {
  if (pages_per_disk == 0) {
    AttachBufferPool(nullptr);
    return;
  }
  auto pool = std::make_unique<BufferPool>(disks_.size(), pages_per_disk);
  AttachBufferPool(pool.get());
  owned_pool_ = std::move(pool);  // after attach: AttachBufferPool resets it
}

void DiskArray::AttachBufferPool(BufferPool* pool) {
  PARSIM_CHECK(pool == nullptr || pool->num_shards() >= disks_.size());
  owned_pool_.reset();
  for (std::size_t i = 0; i < disks_.size(); ++i) {
    disks_[i].AttachBufferPool(pool, i);
  }
}

void DiskArray::ApplyFaultPlan(const FaultPlan& plan) {
  if (plan.empty()) {
    ClearFaults();
    return;
  }
  PARSIM_CHECK(plan.num_disks() == disks_.size());
  for (std::size_t d = 0; d < disks_.size(); ++d) {
    disks_[d].set_fault(plan.fault(static_cast<DiskId>(d)));
  }
  fault_plan_ = plan;
}

void DiskArray::ClearFaults() {
  for (auto& d : disks_) d.set_fault(DiskFault{});
  fault_plan_ = FaultPlan{};
}

std::size_t DiskArray::NumFailedDisks() const {
  std::size_t n = 0;
  for (const auto& d : disks_) if (d.is_failed()) ++n;
  return n;
}

std::size_t DiskArray::NumSlowDisks() const {
  std::size_t n = 0;
  for (const auto& d : disks_) if (d.is_slow()) ++n;
  return n;
}

}  // namespace parsim
