// One simulated disk: a page-access meter.
//
// Indexes charge every node they touch to their disk. Charges land in one
// of two places:
//
//   * normally, the disk's own cumulative counters (`stats()`), the
//     single-threaded protocol experiment code uses directly;
//   * while a ScopedCostCapture is active on the calling thread, the
//     per-query accumulator slot of this disk — shared state is then not
//     mutated mid-traversal, which is what makes concurrent queries safe
//     (see src/io/cost_capture.h).
//
// The only shared state a captured read still touches is the optional
// main-memory page buffer (an LRU is history-dependent by design); that
// access is serialized by a per-disk mutex.

#ifndef PARSIM_SRC_IO_DISK_H_
#define PARSIM_SRC_IO_DISK_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "src/io/cost_capture.h"
#include "src/io/disk_model.h"
#include "src/util/lru_cache.h"

namespace parsim {

/// Identifier of a disk within a DiskArray.
using DiskId = std::uint32_t;

/// A simulated disk. Cumulative counters are not thread-safe; concurrent
/// queries must run under a ScopedCostCapture (the engine's query paths
/// always do) so traversals only write per-query accumulators.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskId id, DiskParameters params = {})
      : id_(id),
        params_(params),
        buffer_mutex_(std::make_unique<std::mutex>()) {}

  DiskId id() const { return id_; }
  const DiskParameters& parameters() const { return params_; }

  /// Injected fault state. Setting it must not race with queries: inject
  /// faults between query waves, like Insert/Remove.
  void set_fault(const DiskFault& fault) { fault_ = fault; }
  const DiskFault& fault() const { return fault_; }
  bool is_failed() const { return fault_.health == DiskHealth::kFailed; }
  bool is_slow() const { return fault_.health == DiskHealth::kSlow; }
  /// Elapsed-time multiplier of the current fault state (1.0 if healthy).
  double time_scale() const { return fault_.TimeScale(); }

  /// Records a failover served by THIS disk (the replica of a failed
  /// primary): `attempts` timed-out reads against the primary plus
  /// `pages` pages served here on its behalf. The actual page charges
  /// follow separately through the normal Read* calls.
  void RecordFailover(std::uint64_t attempts, std::uint64_t pages) {
    DiskStats& sink = Sink();
    sink.failed_read_attempts += attempts;
    sink.replica_pages_read += pages;
  }

  /// Records `pages` that no healthy copy could serve (this disk failed
  /// and had no replica). Queries seeing any unavailable page report
  /// kUnavailable through the engine's TryQuery.
  void RecordUnavailable(std::uint64_t pages) {
    Sink().unavailable_pages += pages;
  }

  /// Charges one data-page (leaf) read. `pages` > 1 models a multi-page
  /// read, e.g. an X-tree supernode.
  void ReadDataPages(std::uint64_t pages = 1) {
    Sink().data_pages_read += pages;
  }

  /// Charges one directory-page (inner node) read.
  void ReadDirectoryPages(std::uint64_t pages = 1) {
    Sink().directory_pages_read += pages;
  }

  /// Installs a main-memory page buffer of `pages` pages (0 removes it).
  /// Resident blocks are served without I/O charges. The buffer persists
  /// across ResetStats() — that is its purpose.
  void ConfigureBuffer(std::uint64_t pages) {
    buffer_ = pages == 0 ? nullptr
                         : std::make_unique<LruCache<std::uint64_t>>(pages);
  }

  bool has_buffer() const { return buffer_ != nullptr; }

  /// Buffered variant of ReadDataPages: `key` identifies the block (a
  /// node id); hits charge nothing but are counted.
  void ReadDataPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    DiskStats& sink = Sink();
    if (buffer_ != nullptr && TouchBuffer(key, pages)) {
      sink.buffer_hit_pages += pages;
      return;
    }
    sink.data_pages_read += pages;
  }

  /// Buffered variant of ReadDirectoryPages.
  void ReadDirectoryPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    DiskStats& sink = Sink();
    if (buffer_ != nullptr && TouchBuffer(key, pages)) {
      sink.buffer_hit_pages += pages;
      return;
    }
    sink.directory_pages_read += pages;
  }

  /// Charges page writes (index construction).
  void WritePages(std::uint64_t pages = 1) { Sink().pages_written += pages; }

  /// Charges CPU for distance computations.
  void ChargeDistanceComputations(std::uint64_t n = 1) {
    Sink().distance_computations += n;
  }

  const DiskStats& stats() const { return stats_; }

  /// Simulated elapsed time for everything charged since the last reset,
  /// scaled by the disk's fault state (a slow disk takes slow_factor
  /// times longer for the same accesses).
  double ElapsedMs() const {
    return parsim::ElapsedMs(stats_, params_) * time_scale();
  }

  /// Elapsed time at healthy rates, ignoring the fault state.
  double HealthyElapsedMs() const {
    return parsim::HealthyElapsedMs(stats_, params_);
  }

  void ResetStats() { stats_ = DiskStats{}; }

  /// Folds externally captured per-query counters into the cumulative
  /// stats. Callers serialize (the engine merges under its own lock).
  void MergeStats(const DiskStats& delta) { stats_ += delta; }

 private:
  /// Where charges from the current thread go: the active per-query
  /// capture's slot for this disk, or the shared cumulative counters.
  DiskStats& Sink() {
    if (QueryCostAccumulator* capture = ActiveCostCapture()) {
      return capture->slot(id_);
    }
    return stats_;
  }

  bool TouchBuffer(std::uint64_t key, std::uint64_t pages) {
    std::lock_guard<std::mutex> lock(*buffer_mutex_);
    return buffer_->Touch(key, pages);
  }

  DiskId id_;
  DiskParameters params_;
  DiskFault fault_;
  DiskStats stats_;
  std::unique_ptr<LruCache<std::uint64_t>> buffer_;
  // Guards buffer_->Touch only: the LRU is the single piece of shared
  // state a captured (concurrent) read still mutates. unique_ptr keeps
  // SimulatedDisk movable for DiskArray's vector storage.
  std::unique_ptr<std::mutex> buffer_mutex_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_H_
