// One simulated disk: a page-access meter.
//
// Indexes charge every node they touch to their disk; experiment code
// snapshots / resets the counters around each query.

#ifndef PARSIM_SRC_IO_DISK_H_
#define PARSIM_SRC_IO_DISK_H_

#include <cstdint>
#include <memory>

#include "src/io/disk_model.h"
#include "src/util/lru_cache.h"

namespace parsim {

/// Identifier of a disk within a DiskArray.
using DiskId = std::uint32_t;

/// A simulated disk. Not thread-safe; the simulator is single-threaded by
/// design (simulated time is computed, not measured).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskId id, DiskParameters params = {})
      : id_(id), params_(params) {}

  DiskId id() const { return id_; }
  const DiskParameters& parameters() const { return params_; }

  /// Charges one data-page (leaf) read. `pages` > 1 models a multi-page
  /// read, e.g. an X-tree supernode.
  void ReadDataPages(std::uint64_t pages = 1) {
    stats_.data_pages_read += pages;
  }

  /// Charges one directory-page (inner node) read.
  void ReadDirectoryPages(std::uint64_t pages = 1) {
    stats_.directory_pages_read += pages;
  }

  /// Installs a main-memory page buffer of `pages` pages (0 removes it).
  /// Resident blocks are served without I/O charges. The buffer persists
  /// across ResetStats() — that is its purpose.
  void ConfigureBuffer(std::uint64_t pages) {
    buffer_ = pages == 0 ? nullptr
                         : std::make_unique<LruCache<std::uint64_t>>(pages);
  }

  bool has_buffer() const { return buffer_ != nullptr; }

  /// Buffered variant of ReadDataPages: `key` identifies the block (a
  /// node id); hits charge nothing but are counted.
  void ReadDataPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    if (buffer_ != nullptr && buffer_->Touch(key, pages)) {
      stats_.buffer_hit_pages += pages;
      return;
    }
    stats_.data_pages_read += pages;
  }

  /// Buffered variant of ReadDirectoryPages.
  void ReadDirectoryPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    if (buffer_ != nullptr && buffer_->Touch(key, pages)) {
      stats_.buffer_hit_pages += pages;
      return;
    }
    stats_.directory_pages_read += pages;
  }

  /// Charges page writes (index construction).
  void WritePages(std::uint64_t pages = 1) { stats_.pages_written += pages; }

  /// Charges CPU for distance computations.
  void ChargeDistanceComputations(std::uint64_t n = 1) {
    stats_.distance_computations += n;
  }

  const DiskStats& stats() const { return stats_; }

  /// Simulated elapsed time for everything charged since the last reset.
  double ElapsedMs() const { return parsim::ElapsedMs(stats_, params_); }

  void ResetStats() { stats_ = DiskStats{}; }

 private:
  DiskId id_;
  DiskParameters params_;
  DiskStats stats_;
  std::unique_ptr<LruCache<std::uint64_t>> buffer_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_H_
