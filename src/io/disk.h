// One simulated disk: a page-access meter.
//
// Indexes charge every node they touch to their disk. Charges land in one
// of two places:
//
//   * normally, the disk's own cumulative counters (`stats()`), the
//     single-threaded protocol experiment code uses directly;
//   * while a ScopedCostCapture is active on the calling thread, the
//     per-query accumulator slot of this disk — shared state is then not
//     mutated mid-traversal, which is what makes concurrent queries safe
//     (see src/io/cost_capture.h).
//
// The only shared state a captured read still touches is the optional
// main-memory page buffer (an LRU is history-dependent by design); that
// access goes through a BufferPool shard, serialized by the shard's own
// mutex (src/io/buffer_pool.h).

#ifndef PARSIM_SRC_IO_DISK_H_
#define PARSIM_SRC_IO_DISK_H_

#include <cstdint>
#include <memory>

#include "src/io/buffer_pool.h"
#include "src/io/cost_capture.h"
#include "src/io/disk_model.h"

namespace parsim {

/// Identifier of a disk within a DiskArray.
using DiskId = std::uint32_t;

/// A simulated disk. Cumulative counters are not thread-safe; concurrent
/// queries must run under a ScopedCostCapture (the engine's query paths
/// always do) so traversals only write per-query accumulators.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskId id, DiskParameters params = {})
      : id_(id), params_(params) {}

  DiskId id() const { return id_; }
  const DiskParameters& parameters() const { return params_; }

  /// Injected fault state. Setting it must not race with queries: inject
  /// faults between query waves, like Insert/Remove.
  void set_fault(const DiskFault& fault) { fault_ = fault; }
  const DiskFault& fault() const { return fault_; }
  bool is_failed() const { return fault_.health == DiskHealth::kFailed; }
  bool is_slow() const { return fault_.health == DiskHealth::kSlow; }
  /// Elapsed-time multiplier of the current fault state (1.0 if healthy).
  double time_scale() const { return fault_.TimeScale(); }

  /// Records a failover served by THIS disk (the replica of a failed
  /// primary): `attempts` timed-out reads against the primary plus
  /// `pages` pages served here on its behalf. The actual page charges
  /// follow separately through the normal Read* calls.
  void RecordFailover(std::uint64_t attempts, std::uint64_t pages) {
    DiskStats& sink = Sink();
    sink.failed_read_attempts += attempts;
    sink.replica_pages_read += pages;
  }

  /// Records `pages` that no healthy copy could serve (this disk failed
  /// and had no replica). Queries seeing any unavailable page report
  /// kUnavailable through the engine's TryQuery.
  void RecordUnavailable(std::uint64_t pages) {
    Sink().unavailable_pages += pages;
  }

  /// Charges one data-page (leaf) read. `pages` > 1 models a multi-page
  /// read, e.g. an X-tree supernode.
  void ReadDataPages(std::uint64_t pages = 1) {
    Sink().data_pages_read += pages;
  }

  /// Charges one directory-page (inner node) read.
  void ReadDirectoryPages(std::uint64_t pages = 1) {
    Sink().directory_pages_read += pages;
  }

  /// Attaches shard `shard` of `pool` (not owned; must outlive this
  /// disk) as the main-memory page buffer. nullptr detaches. Resident
  /// blocks are served without I/O charges. The buffer persists across
  /// ResetStats() — that is its purpose.
  void AttachBufferPool(BufferPool* pool, std::size_t shard) {
    owned_pool_.reset();
    pool_ = pool;
    shard_ = pool != nullptr ? shard : 0;
  }

  /// Convenience for a standalone disk: installs a private single-shard
  /// pool of `pages` pages (0 removes any buffer, attached or owned).
  void ConfigureBuffer(std::uint64_t pages) {
    if (pages == 0) {
      AttachBufferPool(nullptr, 0);
      return;
    }
    owned_pool_ = std::make_unique<BufferPool>(/*num_shards=*/1, pages);
    pool_ = owned_pool_.get();
    shard_ = 0;
  }

  bool has_buffer() const { return pool_ != nullptr; }

  /// The attached pool (nullptr without one) and this disk's shard in it.
  const BufferPool* buffer_pool() const { return pool_; }
  std::size_t buffer_shard() const { return shard_; }

  /// Buffered variant of ReadDataPages: `key` identifies the block (a
  /// node id); hits charge nothing but are counted.
  void ReadDataPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    DiskStats& sink = Sink();
    if (pool_ != nullptr && pool_->Touch(shard_, key, pages)) {
      sink.buffer_hit_pages += pages;
      return;
    }
    sink.data_pages_read += pages;
  }

  /// Buffered variant of ReadDirectoryPages.
  void ReadDirectoryPagesBuffered(std::uint64_t key, std::uint64_t pages = 1) {
    DiskStats& sink = Sink();
    if (pool_ != nullptr && pool_->Touch(shard_, key, pages)) {
      sink.buffer_hit_pages += pages;
      return;
    }
    sink.directory_pages_read += pages;
  }

  /// Charges page writes (index construction).
  void WritePages(std::uint64_t pages = 1) { Sink().pages_written += pages; }

  /// Charges CPU for distance computations.
  void ChargeDistanceComputations(std::uint64_t n = 1) {
    Sink().distance_computations += n;
  }

  /// Records one leaf sweep's quantization counters (no simulated time:
  /// these audit the work the SQ8 bound removed or left; exact re-ranks
  /// are charged separately via ChargeDistanceComputations).
  void RecordLeafSweep(std::uint64_t pruned, std::uint64_t base,
                       std::uint64_t prefix, std::uint64_t sq8,
                       std::uint64_t reranked_points, std::uint64_t bytes,
                       std::uint64_t approx_exact = 0) {
    DiskStats& sink = Sink();
    sink.quantized_pruned += pruned;
    sink.base_pruned += base;
    sink.prefix_pruned += prefix;
    sink.sq8_pruned += sq8;
    sink.reranked += reranked_points;
    sink.leaf_bytes_scanned += bytes;
    sink.approx_pruned_exactly += approx_exact;
  }

  /// Records one query's HS frontier traffic (no simulated time; audits
  /// the descent/frontier fast path and the approximate tier's node
  /// skips).
  void RecordFrontier(std::uint64_t pushes, std::uint64_t pops,
                      std::uint64_t skipped_nodes,
                      std::uint64_t approx_skipped = 0) {
    DiskStats& sink = Sink();
    sink.frontier_pushes += pushes;
    sink.frontier_pops += pops;
    sink.cutoff_skipped_nodes += skipped_nodes;
    sink.approx_skipped_nodes += approx_skipped;
  }

  const DiskStats& stats() const { return stats_; }

  /// Simulated elapsed time for everything charged since the last reset,
  /// scaled by the disk's fault state (a slow disk takes slow_factor
  /// times longer for the same accesses).
  double ElapsedMs() const {
    return parsim::ElapsedMs(stats_, params_) * time_scale();
  }

  /// Elapsed time at healthy rates, ignoring the fault state.
  double HealthyElapsedMs() const {
    return parsim::HealthyElapsedMs(stats_, params_);
  }

  void ResetStats() { stats_ = DiskStats{}; }

  /// Folds externally captured per-query counters into the cumulative
  /// stats. Callers serialize (the engine merges under its own lock).
  void MergeStats(const DiskStats& delta) { stats_ += delta; }

 private:
  /// Where charges from the current thread go: the active per-query
  /// capture's slot for this disk, or the shared cumulative counters.
  DiskStats& Sink() {
    if (QueryCostAccumulator* capture = ActiveCostCapture()) {
      return capture->slot(id_);
    }
    return stats_;
  }

  DiskId id_;
  DiskParameters params_;
  DiskFault fault_;
  DiskStats stats_;
  // ConfigureBuffer's private pool; empty when AttachBufferPool wired
  // this disk into a shared (engine- or array-owned) pool.
  std::unique_ptr<BufferPool> owned_pool_;
  BufferPool* pool_ = nullptr;
  std::size_t shard_ = 0;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_H_
