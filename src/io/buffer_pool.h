// A thread-safe, sharded page-buffer pool: one mutex-guarded LRU shard
// per simulated disk, shared by all concurrent queries.
//
// Why sharded: the page buffer is the single piece of shared state a
// captured (concurrent) read still mutates — an LRU is history-dependent
// by design. One global lock would re-serialize the whole query batch;
// one lock per shard means queries only contend when they touch the same
// simulated disk at the same instant. Touch() is the batched per-node
// call: a leaf or supernode is one (key, pages) run, so a query takes
// each shard lock exactly once per node it reads, never per page.
//
// Accounting contract. Which individual touch hits or misses depends on
// the interleaving (that IS the LRU), but the *aggregate* is exact under
// any schedule: every touched page is counted as exactly one hit or one
// miss, so per-shard hit_pages + miss_pages equals the pages touched on
// that shard — a deterministic quantity of the workload. The
// deterministic-replay mode that keeps per-query numbers reproducible
// lives above this class (EngineOptions::deterministic_batch serializes
// the batch); the pool itself is always safe to hammer from any number
// of threads.

#ifndef PARSIM_SRC_IO_BUFFER_POOL_H_
#define PARSIM_SRC_IO_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/lru_cache.h"

namespace parsim {

/// A fixed array of independently locked LRU page-buffer shards. Shard i
/// buffers the pages of simulated disk i (the engine gives the query
/// host the last shard).
class BufferPool {
 public:
  /// Creates `num_shards` shards (>= 1) of `pages_per_shard` pages each.
  /// A capacity of 0 makes every Touch miss (buffering disabled).
  BufferPool(std::size_t num_shards, std::uint64_t pages_per_shard);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  std::uint64_t pages_per_shard() const { return pages_per_shard_; }

  /// Looks up the block `key` (a node id) of `pages` pages on `shard`;
  /// promotes/admits it LRU-style and returns true iff it was resident.
  /// Thread-safe; takes the shard's lock once for the whole run.
  bool Touch(std::size_t shard, std::uint64_t key, std::uint64_t pages);

  /// True iff `key` is resident on `shard` (no promotion). Thread-safe.
  bool Contains(std::size_t shard, std::uint64_t key) const;

  /// Resident weight of one shard, in pages. Thread-safe.
  std::uint64_t ShardWeight(std::size_t shard) const;

  /// Aggregate counters over all shards since construction (or the last
  /// Clear). Exact under any interleaving: TotalHitPages() +
  /// TotalMissPages() == TotalTouchedPages() always.
  std::uint64_t TotalHitPages() const;
  std::uint64_t TotalMissPages() const;
  std::uint64_t TotalTouchedPages() const;

  /// Per-shard touched pages (hits + misses): deterministic for a fixed
  /// workload, independent of thread count and query order.
  std::vector<std::uint64_t> TouchedPagesPerShard() const;

  /// Drops every shard's contents and counters (cold buffers).
  void Clear();

 private:
  struct Shard {
    explicit Shard(std::uint64_t capacity) : lru(capacity) {}
    mutable std::mutex mutex;
    LruCache<std::uint64_t> lru;
    std::uint64_t hit_pages = 0;
    std::uint64_t miss_pages = 0;
  };

  Shard& shard(std::size_t index) const;

  // unique_ptr keeps shard addresses (and their mutexes) stable.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t pages_per_shard_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_BUFFER_POOL_H_
