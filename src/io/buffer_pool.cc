#include "src/io/buffer_pool.h"

#include "src/util/check.h"

namespace parsim {

BufferPool::BufferPool(std::size_t num_shards, std::uint64_t pages_per_shard)
    : pages_per_shard_(pages_per_shard) {
  PARSIM_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(pages_per_shard));
  }
}

BufferPool::Shard& BufferPool::shard(std::size_t index) const {
  PARSIM_CHECK(index < shards_.size());
  return *shards_[index];
}

bool BufferPool::Touch(std::size_t shard_index, std::uint64_t key,
                       std::uint64_t pages) {
  Shard& s = shard(shard_index);
  std::lock_guard<std::mutex> lock(s.mutex);
  const bool hit = s.lru.Touch(key, pages);
  (hit ? s.hit_pages : s.miss_pages) += pages;
  return hit;
}

bool BufferPool::Contains(std::size_t shard_index, std::uint64_t key) const {
  Shard& s = shard(shard_index);
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.lru.Contains(key);
}

std::uint64_t BufferPool::ShardWeight(std::size_t shard_index) const {
  Shard& s = shard(shard_index);
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.lru.weight();
}

std::uint64_t BufferPool::TotalHitPages() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->hit_pages;
  }
  return total;
}

std::uint64_t BufferPool::TotalMissPages() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->miss_pages;
  }
  return total;
}

std::uint64_t BufferPool::TotalTouchedPages() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->hit_pages + s->miss_pages;
  }
  return total;
}

std::vector<std::uint64_t> BufferPool::TouchedPagesPerShard() const {
  std::vector<std::uint64_t> touched;
  touched.reserve(shards_.size());
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    touched.push_back(s->hit_pages + s->miss_pages);
  }
  return touched;
}

void BufferPool::Clear() {
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->lru.Clear();
    s->hit_pages = 0;
    s->miss_pages = 0;
  }
}

}  // namespace parsim
