#include <algorithm>
#include <numeric>

#include "src/io/disk_model.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace parsim {

const char* DiskHealthToString(DiskHealth health) {
  switch (health) {
    case DiskHealth::kHealthy:
      return "HEALTHY";
    case DiskHealth::kSlow:
      return "SLOW";
    case DiskHealth::kFailed:
      return "FAILED";
  }
  return "UNKNOWN";
}

namespace {

// First `count` positions of a seeded shuffle of [0, num_disks): the
// deterministic fault schedule both factories draw from.
std::vector<std::uint32_t> PickDisks(std::size_t num_disks, std::size_t count,
                                     std::uint64_t seed) {
  PARSIM_CHECK(count <= num_disks);
  std::vector<std::uint32_t> disks(num_disks);
  std::iota(disks.begin(), disks.end(), 0u);
  Rng rng(seed);
  rng.Shuffle(&disks);
  disks.resize(count);
  return disks;
}

}  // namespace

FaultPlan FaultPlan::WithRandomFailures(std::size_t num_disks,
                                        std::size_t failures,
                                        std::uint64_t seed) {
  FaultPlan plan(num_disks);
  for (std::uint32_t disk : PickDisks(num_disks, failures, seed)) {
    plan.FailDisk(disk);
  }
  return plan;
}

FaultPlan FaultPlan::WithRandomSlowdowns(std::size_t num_disks,
                                         std::size_t slow, double factor,
                                         std::uint64_t seed) {
  FaultPlan plan(num_disks);
  for (std::uint32_t disk : PickDisks(num_disks, slow, seed)) {
    plan.SlowDisk(disk, factor);
  }
  return plan;
}

void FaultPlan::FailDisk(std::uint32_t disk) {
  PARSIM_CHECK(disk < faults_.size());
  faults_[disk] = DiskFault{DiskHealth::kFailed, 1.0};
}

void FaultPlan::SlowDisk(std::uint32_t disk, double factor) {
  PARSIM_CHECK(disk < faults_.size());
  PARSIM_CHECK(factor >= 1.0);
  faults_[disk] = DiskFault{DiskHealth::kSlow, factor};
}

void FaultPlan::HealDisk(std::uint32_t disk) {
  PARSIM_CHECK(disk < faults_.size());
  faults_[disk] = DiskFault{};
}

const DiskFault& FaultPlan::fault(std::uint32_t disk) const {
  // An empty (default) plan is documented to apply to an array of any
  // size with every disk healthy, so it must answer for any disk id
  // instead of indexing into its empty schedule.
  static const DiskFault kHealthy{};
  if (faults_.empty()) return kHealthy;
  PARSIM_CHECK(disk < faults_.size());
  return faults_[disk];
}

bool FaultPlan::IsFailed(std::uint32_t disk) const {
  return fault(disk).health == DiskHealth::kFailed;
}

std::size_t FaultPlan::NumFailed() const {
  return static_cast<std::size_t>(
      std::count_if(faults_.begin(), faults_.end(), [](const DiskFault& f) {
        return f.health == DiskHealth::kFailed;
      }));
}

std::size_t FaultPlan::NumSlow() const {
  return static_cast<std::size_t>(
      std::count_if(faults_.begin(), faults_.end(), [](const DiskFault& f) {
        return f.health == DiskHealth::kSlow;
      }));
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (std::size_t d = 0; d < faults_.size(); ++d) {
    const DiskFault& f = faults_[d];
    if (f.health == DiskHealth::kHealthy) continue;
    if (!out.empty()) out += ", ";
    out += "disk " + std::to_string(d) + ": " +
           DiskHealthToString(f.health);
    if (f.health == DiskHealth::kSlow) {
      out += " x" + std::to_string(f.slow_factor);
    }
  }
  return out.empty() ? "all healthy" : out;
}

}  // namespace parsim
