// An array of n simulated disks served in parallel.
//
// The parallel-response-time rule is the paper's own: the elapsed time of
// a parallel operation is the elapsed time of the *slowest* disk (all
// disks work concurrently, the query completes when the last one does).

#ifndef PARSIM_SRC_IO_DISK_ARRAY_H_
#define PARSIM_SRC_IO_DISK_ARRAY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "src/io/buffer_pool.h"
#include "src/io/disk.h"
#include "src/io/disk_model.h"

namespace parsim {

/// A fixed-size array of simulated disks.
class DiskArray {
 public:
  /// Creates `n` disks (n >= 1) with identical parameters.
  explicit DiskArray(std::size_t n, DiskParameters params = {});

  std::size_t size() const { return disks_.size(); }

  SimulatedDisk& disk(DiskId id);
  const SimulatedDisk& disk(DiskId id) const;

  /// Elapsed time of a parallel operation: max over disks. This is the
  /// paper's measurement rule (Section 5).
  double ParallelElapsedMs() const;

  /// Elapsed time if the same accesses were served by one disk: sum over
  /// disks. ParallelElapsedMs()/SequentialElapsedMs() of the same access
  /// trace bounds the achievable speed-up (ablation: "sum vs max").
  double SequentialElapsedMs() const;

  /// The id of the disk with the largest elapsed time.
  DiskId BusiestDisk() const;

  /// Total page reads of the busiest disk (the paper's raw metric).
  std::uint64_t MaxPagesRead() const;

  /// Total page reads across all disks.
  std::uint64_t TotalPagesRead() const;

  /// Aggregated stats over all disks.
  DiskStats TotalStats() const;

  /// Load-balance quality in [1/n, 1]: average load / max load. 1 means
  /// perfectly even page distribution across disks.
  double BalanceRatio() const;

  void ResetStats();

  /// Creates an array-owned BufferPool with one shard of
  /// `pages_per_disk` pages per disk and attaches disk i to shard i
  /// (0 removes it). Standalone-array convenience; the engine instead
  /// owns one pool covering the disks and the query host and wires it
  /// in through AttachBufferPool.
  void ConfigureBufferPool(std::uint64_t pages_per_disk);

  /// Attaches disk i to shard i of `pool` (not owned; must have at
  /// least size() shards and outlive the array). nullptr detaches.
  void AttachBufferPool(BufferPool* pool);

  /// The array-owned pool (nullptr unless ConfigureBufferPool made one).
  const BufferPool* buffer_pool() const { return owned_pool_.get(); }

  /// Applies `plan` to every disk. The plan must be empty (all healthy)
  /// or cover exactly size() disks. Do not race with in-flight queries:
  /// inject faults between query waves.
  void ApplyFaultPlan(const FaultPlan& plan);

  /// Restores every disk to healthy.
  void ClearFaults();

  /// The plan last applied (empty if none / cleared).
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Number of currently failed / slow disks.
  std::size_t NumFailedDisks() const;
  std::size_t NumSlowDisks() const;

 private:
  std::vector<SimulatedDisk> disks_;
  std::unique_ptr<BufferPool> owned_pool_;
  FaultPlan fault_plan_;
};

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_ARRAY_H_
