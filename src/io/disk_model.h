// Cost model for one simulated disk.
//
// The paper's experiments ran on a cluster of 16 HP 735/755 workstations
// with local disks; its performance metric is "the disk which accesses
// most pages during query processing ... we used the search time of this
// disk as the search time of the whole parallel X-tree" (Section 5).
// We reproduce exactly that metric on one machine: every page access is
// charged to the owning simulated disk, and elapsed time is derived from
// the page count through this cost model.

#ifndef PARSIM_SRC_IO_DISK_MODEL_H_
#define PARSIM_SRC_IO_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parsim {

/// Page size used throughout, matching the paper ("The block size used is
/// 4 KBytes", Section 5).
inline constexpr std::size_t kPageSizeBytes = 4096;

/// Timing parameters of one simulated disk. Defaults approximate a
/// mid-1990s SCSI disk (the paper's era): ~8 ms average seek, ~4 ms
/// average rotational latency (7200 rpm half-rotation), ~5 MB/s sustained
/// transfer (0.8 ms for a 4 KB page).
struct DiskParameters {
  double avg_seek_ms = 8.0;
  double avg_rotational_ms = 4.0;
  double transfer_ms_per_page = 0.8;
  /// CPU cost charged per distance computation during search; models the
  /// (small but nonzero) CPU share of nearest-neighbor search.
  double cpu_ms_per_distance = 0.001;
  /// Cost of one timed-out read attempt against a failed disk before the
  /// engine fails over to a replica (fail-fast detection, not a full SCSI
  /// timeout — the array learns quickly that a disk is dead).
  double failover_timeout_ms = 1.0;

  /// Cost of one random page read.
  double PageAccessMs() const {
    return avg_seek_ms + avg_rotational_ms + transfer_ms_per_page;
  }
};

// ---------------------------------------------------------------------------
// Fault injection.

/// Health of one simulated disk.
enum class DiskHealth {
  kHealthy = 0,
  /// Serves every request, but `slow_factor` times slower (a degraded
  /// spindle, a congested node).
  kSlow,
  /// Serves nothing; reads must fail over to a replica or go unavailable.
  kFailed,
};

const char* DiskHealthToString(DiskHealth health);

/// Injected state of one disk.
struct DiskFault {
  DiskHealth health = DiskHealth::kHealthy;
  /// Elapsed-time multiplier, applied when health == kSlow (>= 1).
  double slow_factor = 1.0;

  /// Multiplier this fault applies to the disk's elapsed time (1.0 for
  /// healthy and failed disks — a failed disk does no work at all).
  double TimeScale() const {
    return health == DiskHealth::kSlow ? slow_factor : 1.0;
  }
};

/// A deterministic per-disk fault schedule, injectable into a DiskArray.
/// An empty (default) plan means every disk is healthy. The seeded
/// factories make fault runs exactly reproducible: the same
/// (num_disks, count, seed) triple always yields the same plan.
class FaultPlan {
 public:
  /// Empty plan: all disks healthy, applies to an array of any size.
  FaultPlan() = default;

  /// All-healthy plan for `num_disks` disks.
  explicit FaultPlan(std::size_t num_disks) : faults_(num_disks) {}

  /// `failures` distinct disks failed, chosen by a seeded shuffle.
  static FaultPlan WithRandomFailures(std::size_t num_disks,
                                      std::size_t failures,
                                      std::uint64_t seed);

  /// `slow` distinct disks slowed by `factor`, chosen by a seeded shuffle.
  static FaultPlan WithRandomSlowdowns(std::size_t num_disks,
                                       std::size_t slow, double factor,
                                       std::uint64_t seed);

  std::size_t num_disks() const { return faults_.size(); }
  bool empty() const { return faults_.empty(); }

  void FailDisk(std::uint32_t disk);
  void SlowDisk(std::uint32_t disk, double factor);
  void HealDisk(std::uint32_t disk);

  /// The fault of `disk`. On an empty plan any disk id answers healthy
  /// (the empty plan covers arrays of every size); a non-empty plan
  /// requires disk < num_disks().
  const DiskFault& fault(std::uint32_t disk) const;
  bool IsFailed(std::uint32_t disk) const;

  std::size_t NumFailed() const;
  std::size_t NumSlow() const;

  /// "disk 3: FAILED, disk 7: SLOW x4.0" (healthy disks omitted).
  std::string ToString() const;

 private:
  std::vector<DiskFault> faults_;
};

/// Cumulative access statistics of one disk (or of a whole array).
struct DiskStats {
  std::uint64_t data_pages_read = 0;
  std::uint64_t directory_pages_read = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t distance_computations = 0;
  /// Pages served from the disk's main-memory buffer (no I/O charged).
  std::uint64_t buffer_hit_pages = 0;
  /// Of data_pages_read: pages this disk served as the replica of a
  /// failed primary (tag-along counter; already inside data_pages_read).
  std::uint64_t replica_pages_read = 0;
  /// Timed-out read attempts against a failed primary that this disk
  /// absorbed before serving the failover (each costs failover_timeout_ms).
  std::uint64_t failed_read_attempts = 0;
  /// Pages that could not be served at all: the disk failed and no
  /// healthy replica existed. Queries that saw any unavailable page
  /// report an error through the engine's TryQuery. (The shared-tree
  /// engine still charges the would-be page reads to the failed primary
  /// for accounting continuity; the federated engines skip the
  /// partition's work entirely and record only this counter.)
  std::uint64_t unavailable_pages = 0;
  /// Pages this query obtained for free because another query of the same
  /// coalesced batch round paid for the fetch (batched execution path).
  /// Not part of TotalPagesRead() — coalescing is exactly the removal of
  /// these reads from the cost model — but kept so the saving is visible
  /// and auditable: per query, pages_read + coalesced_pages equals the
  /// pages the single-query path would have read.
  std::uint64_t coalesced_pages = 0;
  /// Many-to-many kernel calls (Metric::ComparableBlock) issued on this
  /// query's behalf: one per (leaf group, member) pair per batch round.
  std::uint64_t block_kernel_invocations = 0;
  /// Leaf candidates eliminated by the SQ8 lower bound before any exact
  /// float distance was computed (quantized leaf blocks only; see
  /// src/index/leaf_sweep.h). distance_computations then counts only the
  /// re-ranked survivors, so pruned + reranked recovers the exact path's
  /// distance count for k-NN/ball sweeps.
  std::uint64_t quantized_pruned = 0;
  /// Per-stage split of quantized_pruned (base_pruned + prefix_pruned +
  /// sq8_pruned == quantized_pruned): candidates killed by the
  /// candidate-independent base term alone (whole-block or rest-of-block
  /// drops, no kernel work), by the prefix-dimension cascade stage, and
  /// by the full-dimension SQ8 kernel test respectively.
  std::uint64_t base_pruned = 0;
  std::uint64_t prefix_pruned = 0;
  std::uint64_t sq8_pruned = 0;
  /// Leaf candidates that survived the SQ8 bound and went through the
  /// exact float kernel (equals distance_computations' leaf share on the
  /// quantized path).
  std::uint64_t reranked = 0;
  /// Bytes leaf sweeps streamed on this query's behalf: full float rows
  /// on the exact path, code bytes plus re-ranked float rows on the
  /// quantized path. Bookkeeping only — never enters ElapsedMs; the cost
  /// model stays pages + distance_computations.
  std::uint64_t leaf_bytes_scanned = 0;
  /// HS frontier traffic booked on this query's behalf: priority-queue
  /// pushes (points and nodes) and pops. Bookkeeping only — never enters
  /// ElapsedMs.
  std::uint64_t frontier_pushes = 0;
  std::uint64_t frontier_pops = 0;
  /// Interior children whose MINDIST provably exceeded the running
  /// k-th-best cutoff and were dropped before frontier insertion (the
  /// descent fast path; result-neutral, see src/index/knn.cc).
  std::uint64_t cutoff_skipped_nodes = 0;
  /// Approximate-tier accounting (zero unless EngineOptions::approx is
  /// enabled with epsilon > 0; see src/parallel/engine.h). Nodes the
  /// early-termination mode dropped because their MINDIST exceeded the
  /// RELAXED cutoff bound/(1+eps) — each such drop may lose true
  /// neighbors, which is exactly what the recall harness measures.
  std::uint64_t approx_skipped_nodes = 0;
  /// Of the leaf candidates the relaxed SQ8 cutoff pruned, how many the
  /// lossless cutoff (derived from the same running threshold) provably
  /// would have pruned too. quantized_pruned - approx_pruned_exactly is
  /// an upper bound on the prunes attributable to the approximation; the
  /// count is conservative (a whole-block relaxed base prune whose exact
  /// counterpart would have needed the kernel contributes zero).
  std::uint64_t approx_pruned_exactly = 0;

  std::uint64_t TotalPagesRead() const {
    return data_pages_read + directory_pages_read;
  }

  DiskStats& operator+=(const DiskStats& other) {
    data_pages_read += other.data_pages_read;
    directory_pages_read += other.directory_pages_read;
    pages_written += other.pages_written;
    distance_computations += other.distance_computations;
    buffer_hit_pages += other.buffer_hit_pages;
    replica_pages_read += other.replica_pages_read;
    failed_read_attempts += other.failed_read_attempts;
    unavailable_pages += other.unavailable_pages;
    coalesced_pages += other.coalesced_pages;
    block_kernel_invocations += other.block_kernel_invocations;
    quantized_pruned += other.quantized_pruned;
    base_pruned += other.base_pruned;
    prefix_pruned += other.prefix_pruned;
    sq8_pruned += other.sq8_pruned;
    reranked += other.reranked;
    leaf_bytes_scanned += other.leaf_bytes_scanned;
    frontier_pushes += other.frontier_pushes;
    frontier_pops += other.frontier_pops;
    cutoff_skipped_nodes += other.cutoff_skipped_nodes;
    approx_skipped_nodes += other.approx_skipped_nodes;
    approx_pruned_exactly += other.approx_pruned_exactly;
    return *this;
  }
};

/// Simulated elapsed time at healthy rates: page and CPU work only, no
/// fault penalties. This is the paper's original cost formula.
inline double HealthyElapsedMs(const DiskStats& stats,
                               const DiskParameters& params) {
  return static_cast<double>(stats.TotalPagesRead()) * params.PageAccessMs() +
         static_cast<double>(stats.distance_computations) *
             params.cpu_ms_per_distance;
}

/// Simulated elapsed time including failover retry penalties. Identical
/// (bit for bit) to HealthyElapsedMs when no faults were encountered.
inline double ElapsedMs(const DiskStats& stats, const DiskParameters& params) {
  return HealthyElapsedMs(stats, params) +
         static_cast<double>(stats.failed_read_attempts) *
             params.failover_timeout_ms;
}

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_MODEL_H_
