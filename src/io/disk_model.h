// Cost model for one simulated disk.
//
// The paper's experiments ran on a cluster of 16 HP 735/755 workstations
// with local disks; its performance metric is "the disk which accesses
// most pages during query processing ... we used the search time of this
// disk as the search time of the whole parallel X-tree" (Section 5).
// We reproduce exactly that metric on one machine: every page access is
// charged to the owning simulated disk, and elapsed time is derived from
// the page count through this cost model.

#ifndef PARSIM_SRC_IO_DISK_MODEL_H_
#define PARSIM_SRC_IO_DISK_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace parsim {

/// Page size used throughout, matching the paper ("The block size used is
/// 4 KBytes", Section 5).
inline constexpr std::size_t kPageSizeBytes = 4096;

/// Timing parameters of one simulated disk. Defaults approximate a
/// mid-1990s SCSI disk (the paper's era): ~8 ms average seek, ~4 ms
/// average rotational latency (7200 rpm half-rotation), ~5 MB/s sustained
/// transfer (0.8 ms for a 4 KB page).
struct DiskParameters {
  double avg_seek_ms = 8.0;
  double avg_rotational_ms = 4.0;
  double transfer_ms_per_page = 0.8;
  /// CPU cost charged per distance computation during search; models the
  /// (small but nonzero) CPU share of nearest-neighbor search.
  double cpu_ms_per_distance = 0.001;

  /// Cost of one random page read.
  double PageAccessMs() const {
    return avg_seek_ms + avg_rotational_ms + transfer_ms_per_page;
  }
};

/// Cumulative access statistics of one disk (or of a whole array).
struct DiskStats {
  std::uint64_t data_pages_read = 0;
  std::uint64_t directory_pages_read = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t distance_computations = 0;
  /// Pages served from the disk's main-memory buffer (no I/O charged).
  std::uint64_t buffer_hit_pages = 0;

  std::uint64_t TotalPagesRead() const {
    return data_pages_read + directory_pages_read;
  }

  DiskStats& operator+=(const DiskStats& other) {
    data_pages_read += other.data_pages_read;
    directory_pages_read += other.directory_pages_read;
    pages_written += other.pages_written;
    distance_computations += other.distance_computations;
    buffer_hit_pages += other.buffer_hit_pages;
    return *this;
  }
};

/// Simulated elapsed time for the given stats under the given parameters.
inline double ElapsedMs(const DiskStats& stats, const DiskParameters& params) {
  return static_cast<double>(stats.TotalPagesRead()) * params.PageAccessMs() +
         static_cast<double>(stats.distance_computations) *
             params.cpu_ms_per_distance;
}

}  // namespace parsim

#endif  // PARSIM_SRC_IO_DISK_MODEL_H_
