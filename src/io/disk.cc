#include "src/io/disk.h"

// SimulatedDisk is header-only today; this translation unit anchors the
// library target and is the home for any future out-of-line method.
