// parsim command-line tool: generate workloads, build/persist indexes,
// and run declustering experiments without writing C++.
//
//   parsim_cli generate --workload=fourier --mb=8 --dim=15 --seed=7 \
//              --out=/tmp/parts.bin
//   parsim_cli experiment --data=/tmp/parts.bin --declusterer=new \
//              --disks=16 --k=10 --queries=20
//   parsim_cli compare --data=/tmp/parts.bin --disks=16 --k=10
//   parsim_cli info --data=/tmp/parts.bin

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/parsim/parsim.h"

namespace parsim {
namespace cli {
namespace {

/// Minimal --key=value parser; positional arguments are rejected.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        ok_ = false;
        continue;
      }
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  bool ok() const { return ok_; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }

  long GetInt(const std::string& key, long fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atol(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: parsim_cli <command> [--flags]\n"
      "\n"
      "commands:\n"
      "  generate    synthesize a workload and save it\n"
      "              --workload=uniform|fourier|text|clustered\n"
      "              --mb=8 | --n=100000   --dim=15   --seed=1\n"
      "              --out=points.bin\n"
      "  info        describe a saved point set: --data=points.bin\n"
      "  experiment  run k-NN queries over one declusterer\n"
      "              --data=... [--declusterer=new|HIL|RR|DM|FX]\n"
      "              [--disks=16] [--k=10] [--queries=20]\n"
      "              [--arch=shared|federated|scan] [--quantile]\n"
      "              [--recursive] [--buffer=pages]\n"
      "  compare     run all declusterers side by side (same flags)\n");
  return 2;
}

PointSet GenerateWorkload(const std::string& kind, std::size_t n,
                          std::size_t dim, std::uint64_t seed) {
  if (kind == "fourier") {
    FourierOptions options;
    options.base_shapes = 16;
    options.variation = 0.15;
    return GenerateFourierPoints(n, dim, seed, options);
  }
  if (kind == "text") return GenerateTextDescriptors(n, dim, seed);
  if (kind == "clustered") {
    return GenerateClusteredGaussian(n, dim, 8, 0.03, seed);
  }
  return GenerateUniform(n, dim, seed);
}

int RunGenerate(const Flags& flags) {
  const std::string kind = flags.GetString("workload", "uniform");
  const auto dim = static_cast<std::size_t>(flags.GetInt("dim", 15));
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  std::size_t n = static_cast<std::size_t>(flags.GetInt("n", 0));
  if (n == 0) {
    n = NumPointsForMegabytes(flags.GetDouble("mb", 8.0), dim);
  }
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const PointSet points = GenerateWorkload(kind, n, dim, seed);
  const Status s = SavePointSet(points, out);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu %s points (d=%zu, %.1f MB of records) to %s\n",
              points.size(), kind.c_str(), dim,
              MegabytesForPoints(points.size(), dim), out.c_str());
  return 0;
}

int RunInfo(const Flags& flags) {
  const std::string path = flags.GetString("data", "");
  const Result<PointSet> loaded = LoadPointSet(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const PointSet& points = loaded.value();
  std::printf("points: %zu\ndim: %zu\nMB: %.2f\n", points.size(),
              points.dim(), MegabytesForPoints(points.size(), points.dim()));
  if (!points.empty()) {
    const auto splits = EstimateQuantileSplits(points);
    std::printf("per-dimension medians:");
    for (Scalar s : splits) std::printf(" %.3f", static_cast<double>(s));
    std::printf("\n");
    const NearOptimalDeclusterer dec(points.dim(),
                                     NumColors(points.dim()));
    std::printf("quadrant-load imbalance (midpoint buckets, %u disks): %.2f\n",
                dec.num_disks(), LoadImbalance(DiskLoads(dec, points)));
  }
  return 0;
}

Architecture ParseArchitecture(const std::string& name) {
  if (name == "federated") return Architecture::kFederatedTrees;
  if (name == "scan") return Architecture::kFederatedScan;
  return Architecture::kSharedTree;
}

std::unique_ptr<Declusterer> MakeCliDeclusterer(const Flags& flags,
                                                const PointSet& data,
                                                const std::string& name,
                                                std::uint32_t disks) {
  const std::size_t dim = data.dim();
  if (name == "new") {
    Bucketizer buckets =
        flags.GetString("quantile", "false") != "false"
            ? Bucketizer(EstimateQuantileSplits(data))
            : Bucketizer(dim);
    if (flags.GetString("recursive", "false") != "false") {
      RecursiveOptions options;
      options.overload_threshold = 1.2;
      auto dec = std::make_unique<RecursiveDeclusterer>(std::move(buckets),
                                                        disks, options);
      dec->Fit(data);
      return dec;
    }
    return std::make_unique<NearOptimalDeclusterer>(std::move(buckets), disks);
  }
  if (name == "HIL") return std::make_unique<HilbertDeclusterer>(dim, disks, 1);
  if (name == "RR") return std::make_unique<RoundRobinDeclusterer>(disks);
  if (name == "DM") return std::make_unique<DiskModuloDeclusterer>(dim, disks);
  if (name == "FX") return std::make_unique<FxDeclusterer>(dim, disks);
  return nullptr;
}

struct ExperimentRow {
  std::string name;
  WorkloadResult result;
};

int RunExperimentRows(const Flags& flags,
                      const std::vector<std::string>& declusterers) {
  const std::string path = flags.GetString("data", "");
  const Result<PointSet> loaded = LoadPointSet(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const PointSet& data = loaded.value();
  const auto disks = static_cast<std::uint32_t>(flags.GetInt("disks", 16));
  const auto k = static_cast<std::size_t>(flags.GetInt("k", 10));
  const auto num_queries =
      static_cast<std::size_t>(flags.GetInt("queries", 20));
  const PointSet queries =
      SampleQueriesFromData(data, num_queries, 0.02,
                            static_cast<std::uint64_t>(flags.GetInt("seed", 2)));

  EngineOptions options;
  options.architecture =
      ParseArchitecture(flags.GetString("arch", "federated"));
  options.bulk_load = true;
  options.buffer_pages_per_disk =
      static_cast<std::uint64_t>(flags.GetInt("buffer", 0));

  Table table({"declusterer", "avg ms (max rule)", "max pages", "balance"});
  for (const std::string& name : declusterers) {
    auto dec = MakeCliDeclusterer(flags, data, name, disks);
    if (dec == nullptr) {
      std::fprintf(stderr, "unknown declusterer: %s\n", name.c_str());
      return 2;
    }
    ParallelSearchEngine engine(data.dim(), std::move(dec), options);
    const Status s = engine.Build(data);
    if (!s.ok()) {
      std::fprintf(stderr, "build failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const WorkloadResult r = RunKnnWorkload(engine, queries, k);
    table.AddRow({name, Table::Num(r.avg_parallel_ms, 1),
                  Table::Num(r.avg_max_pages, 1),
                  Table::Num(r.avg_balance, 2)});
  }
  std::printf("%zu points d=%zu, %u disks, %zu-NN, %zu queries\n",
              data.size(), data.dim(), disks, k, queries.size());
  table.Print(stdout);
  return 0;
}

int RunExperiment(const Flags& flags) {
  return RunExperimentRows(flags,
                           {flags.GetString("declusterer", "new")});
}

int RunCompare(const Flags& flags) {
  return RunExperimentRows(flags, {"new", "HIL", "RR", "DM", "FX"});
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (!flags.ok()) return Usage();
  if (command == "generate") return RunGenerate(flags);
  if (command == "info") return RunInfo(flags);
  if (command == "experiment") return RunExperiment(flags);
  if (command == "compare") return RunCompare(flags);
  return Usage();
}

}  // namespace
}  // namespace cli
}  // namespace parsim

int main(int argc, char** argv) { return parsim::cli::Main(argc, argv); }
