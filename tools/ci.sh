#!/usr/bin/env bash
# CI driver for the execution layer.
#
#   1. Release build + the full test suite (the tier-1 gate).
#   2. ASAN+UBSAN build + the full test suite: any heap error, leak, or
#      undefined behavior anywhere in the library fails the run
#      (-fno-sanitize-recover makes every UBSAN report fatal).
#   3. ThreadSanitizer build running the concurrency-sensitive tests:
#      any data race in the cost-capture / thread-pool / QueryBatch path
#      fails the run.
#   4. Smoke run of every microbench (seconds-scale workloads): their
#      built-in identity and invariant checks run on every CI pass, not
#      just when someone regenerates the BENCH_*.json files.
#
# Usage: tools/ci.sh            (from anywhere; builds into build-ci/,
#                                build-asan/ and build-tsan/ next to the
#                                sources)
#        JOBS=8 tools/ci.sh     (override build/test parallelism)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== [1/4] Release build + full suite =="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "== [2/4] ASAN+UBSAN build + full suite =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j "$JOBS"
# The index tests churn millions of tiny Rect allocations; ASAN's
# default per-malloc stack capture (30 frames) and 256 MB quarantine
# turn the largest of them from seconds into the better part of an hour
# on a small CI box. Shallow alloc stacks + a small quarantine keep
# every check (and leak detection) enabled at ~4x the speed; when a
# report does fire, re-run the one test with ASAN_OPTIONS unset to get
# full allocation stacks back.
ASAN_OPTIONS="detect_leaks=1:abort_on_error=1:malloc_context_size=2:quarantine_size_mb=16" \
UBSAN_OPTIONS="print_stacktrace=1" \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo "== [3/4] TSAN build + concurrency tests =="
# io_buffer_pool_test hammers the sharded pool from raw threads;
# parallel_concurrency_test covers concurrent buffered batches;
# parallel_batch_coalesced_test runs the coalesced round scheduler (and
# with it the LeafBlockCache epoch path) on an 8-worker pool;
# golden_stats_test pins the buffered deterministic-replay accounting;
# index_quantized_block_test exercises the SQ8 sweep path (whose
# per-thread scratch and cached kernel dispatch must stay race-free)
# alongside the concurrent engines; and index_cascade_test adds the
# prefix-stage cascade, WarmLeafBlocks prebuild, and the phase-profiled
# coalesced batch (thread-local capture install/remove under a pool);
# index_approx_knn_test runs the approximate tier's relaxed skips and
# their per-query counters on a multi-worker coalesced batch;
# parallel_service_test runs the query service's dispatcher thread
# against concurrent submitters (deadlines, backpressure, priorities,
# 8-worker determinism); util_parallel_sort_test and
# index_bulk_load_parallel_test run the deterministic parallel merge
# sort and the full parallel bulk-load path (key batches, slab tiling,
# level packing, warm-up fan-out) on 8-worker pools; parallel_join_test
# fans the self-join's codebook builds and block-pair row sweeps over
# pools of several widths and asserts the pair list and every counter
# are thread-count invariant.
TSAN_TESTS=(util_thread_pool_test util_parallel_sort_test
            io_buffer_pool_test
            parallel_concurrency_test parallel_threads_test
            parallel_batch_coalesced_test
            parallel_degraded_query_test golden_stats_test
            index_quantized_block_test index_cascade_test
            index_approx_knn_test parallel_service_test
            index_bulk_load_parallel_test parallel_join_test)
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j "$JOBS" --target "${TSAN_TESTS[@]}"
for t in "${TSAN_TESTS[@]}"; do
    echo "-- tsan: ${t}"
    "./build-tsan/tests/${t}"
done

echo "== [4/4] microbench smoke lane =="
# Seconds-scale workloads; each bench exits nonzero if its bit-identity
# or page-conservation checks fail.
MICROBENCHES=(microbench_query_parallel microbench_buffer_pool
              microbench_fault_injection microbench_batch_knn
              microbench_quantized_knn microbench_cascade
              microbench_recall microbench_service
              microbench_bulk_load microbench_join)
cmake --build build-ci -j "$JOBS" --target "${MICROBENCHES[@]}"
# Run from build-ci so the smoke-sized JSON files do not overwrite the
# committed full-run BENCH_*.json at the repo root (tools/bench.sh
# regenerates those).
for b in "${MICROBENCHES[@]}"; do
    echo "-- smoke: ${b}"
    (cd build-ci && "./bench/${b}" --smoke)
done

echo "ci: all green"
