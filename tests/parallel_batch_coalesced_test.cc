// Coalesced batched k-NN (EngineOptions::coalesced_batch) vs the
// single-query execution it must be indistinguishable from: bit-identical
// answers across batch sizes and dimensions, the page-conservation
// invariant, composition with fault injection and the buffer pool, and
// schedule determinism at any thread count.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/parsim/parsim.h"

namespace parsim {
namespace {

constexpr std::size_t kK = 10;

std::unique_ptr<ParallelSearchEngine> MakeEngine(
    const PointSet& data, std::uint32_t disks, bool coalesced,
    std::uint64_t buffer_pages = 0, bool replicas = false) {
  EngineOptions options;
  options.architecture = Architecture::kSharedTree;
  options.bulk_load = true;
  options.coalesced_batch = coalesced;
  options.buffer_pages_per_disk = buffer_pages;
  options.deterministic_batch = buffer_pages > 0;
  options.enable_replicas = replicas;
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), disks),
      options);
  EXPECT_TRUE(engine->Build(data).ok());
  return engine;
}

void ExpectSameResults(const std::vector<KnnResult>& a,
                       const std::vector<KnnResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    ASSERT_EQ(a[q].size(), b[q].size()) << "query " << q;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      EXPECT_EQ(a[q][i].id, b[q][i].id) << "query " << q << " rank " << i;
      EXPECT_EQ(a[q][i].distance, b[q][i].distance)
          << "query " << q << " rank " << i;
    }
  }
}

void ExpectSameStats(const std::vector<QueryStats>& a,
                     const std::vector<QueryStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    EXPECT_EQ(a[q].parallel_ms, b[q].parallel_ms);
    EXPECT_EQ(a[q].total_pages, b[q].total_pages);
    EXPECT_EQ(a[q].directory_pages, b[q].directory_pages);
    EXPECT_EQ(a[q].buffer_hit_pages, b[q].buffer_hit_pages);
    EXPECT_EQ(a[q].coalesced_reads, b[q].coalesced_reads);
    EXPECT_EQ(a[q].block_kernel_invocations, b[q].block_kernel_invocations);
    EXPECT_EQ(a[q].pages_per_disk, b[q].pages_per_disk);
    EXPECT_EQ(a[q].replica_pages, b[q].replica_pages);
    EXPECT_EQ(a[q].failed_read_attempts, b[q].failed_read_attempts);
  }
}

TEST(CoalescedBatchTest, BitIdenticalAcrossBatchSizesAndDims) {
  for (const std::size_t dim : {4u, 8u}) {
    const PointSet data = GenerateUniform(5000, dim, 8101 + dim);
    const auto plain = MakeEngine(data, 8, /*coalesced=*/false);
    const auto coalesced = MakeEngine(data, 8, /*coalesced=*/true);
    for (const std::size_t batch : {1u, 5u, 16u}) {
      SCOPED_TRACE("dim " + std::to_string(dim) + " batch " +
                   std::to_string(batch));
      // Clustered queries so the batch genuinely shares pages.
      PointSet queries = GenerateUniformQueries(batch, dim, 8103);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        for (Scalar& c : queries.Mutable(i)) c = 0.4f + 0.2f * c;
      }
      std::vector<QueryStats> plain_stats, co_stats;
      const auto plain_results = plain->QueryBatch(queries, kK, &plain_stats);
      const auto co_results = coalesced->QueryBatch(queries, kK, &co_stats);
      ExpectSameResults(co_results, plain_results);

      // Page conservation: what a query did not read itself it must have
      // received from a round leader, page for page.
      for (std::size_t q = 0; q < batch; ++q) {
        EXPECT_EQ(co_stats[q].total_pages + co_stats[q].directory_pages +
                      co_stats[q].coalesced_reads,
                  plain_stats[q].total_pages + plain_stats[q].directory_pages)
            << "query " << q;
      }
      if (batch > 1) {
        std::uint64_t coalesced_total = 0;
        for (const QueryStats& s : co_stats) {
          coalesced_total += s.coalesced_reads;
        }
        EXPECT_GT(coalesced_total, 0u) << "clustered batch never shared";
      }
    }
  }
}

TEST(CoalescedBatchTest, ComposesWithDiskFailureAndReplicas) {
  const std::size_t dim = 6;
  const std::uint32_t disks = 8;
  const PointSet data = GenerateUniform(4000, dim, 8201);
  const PointSet queries = GenerateUniformQueries(12, dim, 8203);

  const auto plain = MakeEngine(data, disks, false, 0, /*replicas=*/true);
  const auto coalesced = MakeEngine(data, disks, true, 0, /*replicas=*/true);
  const auto healthy = plain->QueryBatch(queries, kK);

  for (const std::uint32_t failed : {0u, 3u, 7u}) {
    SCOPED_TRACE("failed disk " + std::to_string(failed));
    FaultPlan plan(disks);
    plan.FailDisk(failed);
    plain->SetFaultPlan(plan);
    coalesced->SetFaultPlan(plan);

    std::vector<QueryStats> plain_stats, co_stats;
    const auto plain_results = plain->QueryBatch(queries, kK, &plain_stats);
    const auto co_results = coalesced->QueryBatch(queries, kK, &co_stats);

    // Degraded answers still match the healthy ones and each other.
    ExpectSameResults(plain_results, healthy);
    ExpectSameResults(co_results, healthy);

    std::uint64_t plain_attempts = 0, co_attempts = 0;
    for (std::size_t q = 0; q < queries.size(); ++q) {
      // Every page a replica served is attributed to the query it
      // served, whether that query read it or a round leader did.
      EXPECT_EQ(co_stats[q].replica_pages, plain_stats[q].replica_pages)
          << "query " << q;
      EXPECT_EQ(co_stats[q].unavailable_pages, 0u);
      plain_attempts += plain_stats[q].failed_read_attempts;
      co_attempts += co_stats[q].failed_read_attempts;
    }
    // Coalescing collapses the retry storm: one timed-out attempt per
    // shared fetch instead of one per sharing query.
    EXPECT_LE(co_attempts, plain_attempts);
    EXPECT_GT(co_attempts, 0u);

    plain->ClearFaults();
    coalesced->ClearFaults();
  }
}

TEST(CoalescedBatchTest, DeterministicAtAnyThreadCount) {
  const std::size_t dim = 8;
  const PointSet data = GenerateUniform(6000, dim, 8301);
  const PointSet queries = GenerateUniformQueries(24, dim, 8303);

  const auto engine = MakeEngine(data, 8, /*coalesced=*/true);
  std::vector<QueryStats> serial_stats;
  const auto serial = engine->QueryBatch(queries, kK, &serial_stats, 1);

  // The round schedule is a pure function of the query frontiers, so
  // worker count (and repetition) must not change a single bit of the
  // answers or the accounting. Run on 8 workers twice to give TSAN a
  // real interleaving to chew on.
  for (int rep = 0; rep < 2; ++rep) {
    SCOPED_TRACE("rep " + std::to_string(rep));
    std::vector<QueryStats> pooled_stats;
    const auto pooled = engine->QueryBatch(queries, kK, &pooled_stats, 8);
    ExpectSameResults(pooled, serial);
    ExpectSameStats(pooled_stats, serial_stats);
  }
}

TEST(CoalescedBatchTest, ComposesWithBufferPool) {
  const std::size_t dim = 6;
  const PointSet data = GenerateUniform(5000, dim, 8401);
  const PointSet queries = GenerateUniformQueries(16, dim, 8403);

  const auto unbuffered = MakeEngine(data, 8, /*coalesced=*/false);
  const auto buffered = MakeEngine(data, 8, /*coalesced=*/true,
                                   /*buffer_pages=*/64);
  const auto plain_results = unbuffered->QueryBatch(queries, kK);
  std::vector<QueryStats> stats;
  const auto buffered_results = buffered->QueryBatch(queries, kK, &stats);
  ExpectSameResults(buffered_results, plain_results);

  // The pool's global ledger stays conserved under coalescing: every
  // touch is exactly one hit or one miss.
  const BufferPool& pool = *buffered->buffer_pool();
  EXPECT_EQ(pool.TotalHitPages() + pool.TotalMissPages(),
            pool.TotalTouchedPages());
  std::uint64_t hits = 0;
  for (const QueryStats& s : stats) hits += s.buffer_hit_pages;
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace parsim
