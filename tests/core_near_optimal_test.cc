#include "src/core/near_optimal.h"

#include <gtest/gtest.h>

#include "src/core/disk_assignment_graph.h"
#include "src/core/quantile.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

TEST(NearOptimalTest, BucketMappingIsFoldedColor) {
  const NearOptimalDeclusterer dec(8, 16);
  for (BucketId b = 0; b < 256; ++b) {
    EXPECT_EQ(dec.DiskOfBucket(b), ColorOf(b));
  }
}

TEST(NearOptimalTest, PointRoutingMatchesBucketRouting) {
  const NearOptimalDeclusterer dec(4, 8);
  const Point p = {0.7f, 0.2f, 0.9f, 0.4f};
  const BucketId bucket = dec.bucketizer().BucketOf(p);
  EXPECT_EQ(dec.DiskOfPoint(p, 0), dec.DiskOfBucket(bucket));
  EXPECT_EQ(dec.DiskOfPoint(p, 99), dec.DiskOfPoint(p, 0)) << "id-independent";
}

TEST(NearOptimalTest, NearOptimalWithFullDiskComplement) {
  for (std::size_t d : {2u, 3u, 5u, 8u, 12u}) {
    const NearOptimalDeclusterer dec(d, NumColors(d));
    const DiskAssignmentGraph g(d);
    EXPECT_TRUE(
        g.IsNearOptimal([&](BucketId b) { return dec.DiskOfBucket(b); }))
        << "d=" << d;
  }
}

TEST(NearOptimalTest, DirectNeighborsSeparatedAfterHalving) {
  // Fold to C/2 disks: direct neighbors must still mostly (here: all,
  // see folding analysis) be separated for d=8.
  const std::size_t d = 8;
  const NearOptimalDeclusterer dec(d, NumColors(d) / 2);
  const DiskAssignmentGraph g(d);
  std::uint64_t direct_collisions = 0;
  g.ForEachEdge([&](BucketId a, BucketId b, bool direct) {
    if (direct && dec.DiskOfBucket(a) == dec.DiskOfBucket(b)) {
      ++direct_collisions;
    }
    return true;
  });
  EXPECT_EQ(direct_collisions, 0u);
}

TEST(NearOptimalTest, ArbitraryDiskCountsAreBoundedAndSurjective) {
  const std::size_t d = 10;  // C = 16
  const PointSet data = GenerateUniform(4000, d, 21);
  for (std::uint32_t disks = 1; disks <= 16; ++disks) {
    const NearOptimalDeclusterer dec(d, disks);
    EXPECT_EQ(dec.num_disks(), disks);
    const auto loads = DiskLoads(dec, data);
    for (std::size_t i = 0; i < loads.size(); ++i) {
      EXPECT_GT(loads[i], 0u) << "disk " << i << " idle with n=" << disks;
    }
  }
}

TEST(NearOptimalTest, MoreDisksThanColorsLeavesExtrasIdle) {
  // d=3 -> C=4: a 6-disk array can only be addressed on 4 disks at this
  // bucket granularity (the recursive extension addresses the rest).
  const NearOptimalDeclusterer dec(3, 6);
  EXPECT_EQ(dec.num_disks(), 4u);
}

TEST(NearOptimalTest, UniformDataLoadsBalanced) {
  const std::size_t d = 15;
  const PointSet data = GenerateUniform(64000, d, 23);
  const NearOptimalDeclusterer dec(d, 16);
  const auto loads = DiskLoads(dec, data);
  EXPECT_LT(LoadImbalance(loads), 1.1);
}

TEST(NearOptimalTest, QuantileBucketizerBalancesSkewedData) {
  // Skewed data (all mass in low coordinates): midpoint splits put
  // everything in bucket 0; quantile splits rebalance.
  const std::size_t d = 6;
  PointSet data(d);
  Rng rng(29);
  Point p(d);
  for (int i = 0; i < 20000; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double u = rng.NextDouble();
      p[j] = static_cast<Scalar>(0.4 * u * u);  // concentrated near 0
    }
    data.Add(p);
  }
  const NearOptimalDeclusterer midpoint(d, 8);
  const NearOptimalDeclusterer quantile(
      Bucketizer(EstimateQuantileSplits(data)), 8);
  const double imbalance_mid = LoadImbalance(DiskLoads(midpoint, data));
  const double imbalance_q = LoadImbalance(DiskLoads(quantile, data));
  EXPECT_GT(imbalance_mid, 4.0) << "midpoint must be badly skewed here";
  EXPECT_LT(imbalance_q, 1.2);
}

TEST(NearOptimalTest, SetBucketizerRetargetsRouting) {
  NearOptimalDeclusterer dec(2, 4);
  const Point p = {0.4f, 0.4f};
  const DiskId before = dec.DiskOfPoint(p, 0);
  dec.set_bucketizer(Bucketizer(std::vector<Scalar>{0.3f, 0.3f}));
  const DiskId after = dec.DiskOfPoint(p, 0);
  // Bucket moved from 00 to 11: disks must differ (col(0)=0, col(3)=3).
  EXPECT_NE(before, after);
}

TEST(NearOptimalTest, NameIsStable) {
  EXPECT_EQ(NearOptimalDeclusterer(4, 4).name(), "near-optimal");
}

TEST(NearOptimalDeathTest, MismatchedBucketizerDim) {
  NearOptimalDeclusterer dec(3, 4);
  EXPECT_DEATH(dec.set_bucketizer(Bucketizer(2)), "PARSIM_CHECK");
}

}  // namespace
}  // namespace parsim
