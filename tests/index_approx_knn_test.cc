// The approximate search tier vs the exact path it relaxes.
//
// Two properties carry the whole tier and both are testable without any
// tolerance for hand-waving:
//
//   1. eps = 0 is EXACT — not "close", bit-identical: results,
//      distances, page counts, per-disk page spreads, and every
//      quantized-prune counter, because each approx branch is gated on
//      factor > 1.0 and therefore compiled-in but never taken.
//   2. eps > 0 honors the (1+eps) contract. The HS bound only tightens
//      and finishes equal to the reported k-th distance D_k, so every
//      skipped candidate has true distance > D_k/(1+eps). Corollaries
//      pinned here per query: D_k <= (1+eps) * d_true_k, every true
//      neighbor with d * (1+eps) < D_k is returned, and measured recall
//      is at least the analytic floor |{i : d_i * (1+eps) <= d_true_k}|
//      / k.
//
// Both are checked across metrics, both approx mechanisms in isolation
// (bound relaxation without early termination and vice versa), the
// single-query and coalesced-batch paths, and thread counts (the skip
// decisions depend only on each query's own frontier state, so the
// batch must stay deterministic under any worker count).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/near_optimal.h"
#include "src/eval/recall.h"
#include "src/geometry/metric.h"
#include "src/parallel/engine.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

constexpr MetricKind kAllKinds[] = {MetricKind::kL1, MetricKind::kL2,
                                    MetricKind::kLmax};

struct EngineConfig {
  MetricKind metric = MetricKind::kL2;
  bool approx = false;
  double epsilon = 0.0;
  bool relax_bounds = true;
  bool early_termination = true;
  bool coalesced = true;
};

std::unique_ptr<ParallelSearchEngine> MakeEngine(const PointSet& data,
                                                 const EngineConfig& config) {
  EngineOptions options;
  options.architecture = Architecture::kSharedTree;
  options.bulk_load = true;
  options.metric = Metric(config.metric);
  options.coalesced_batch = config.coalesced;
  options.quantized_leaf_blocks = true;
  options.cascade_prefix_stage = true;
  options.approx.enabled = config.approx;
  options.approx.epsilon = config.epsilon;
  options.approx.relax_bounds = config.relax_bounds;
  options.approx.early_termination = config.early_termination;
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), 4),
      options);
  EXPECT_TRUE(engine->Build(data).ok());
  return engine;
}

void ExpectRunsBitIdentical(const std::vector<KnnResult>& a,
                            const std::vector<KnnResult>& b,
                            const std::vector<QueryStats>& sa,
                            const std::vector<QueryStats>& sb) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t qi = 0; qi < a.size(); ++qi) {
    ASSERT_EQ(a[qi].size(), b[qi].size()) << "query " << qi;
    for (std::size_t i = 0; i < a[qi].size(); ++i) {
      EXPECT_EQ(a[qi][i].id, b[qi][i].id) << "query " << qi << " rank " << i;
      EXPECT_EQ(a[qi][i].distance, b[qi][i].distance)
          << "query " << qi << " rank " << i;
    }
    EXPECT_EQ(sa[qi].total_pages, sb[qi].total_pages) << "query " << qi;
    EXPECT_EQ(sa[qi].directory_pages, sb[qi].directory_pages) << "query "
                                                              << qi;
    EXPECT_EQ(sa[qi].pages_per_disk, sb[qi].pages_per_disk) << "query " << qi;
    EXPECT_EQ(sa[qi].quantized_pruned, sb[qi].quantized_pruned)
        << "query " << qi;
    EXPECT_EQ(sa[qi].approx_skipped_nodes, 0u) << "query " << qi;
    EXPECT_EQ(sb[qi].approx_skipped_nodes, 0u) << "query " << qi;
    EXPECT_EQ(sa[qi].approx_pruned_exactly, 0u) << "query " << qi;
  }
}

// Relative fp slop for contract checks across the float kernel / double
// bound boundary.
constexpr double kSlop = 1e-9;

/// Checks the full (1+eps) contract of one approximate run against the
/// oracle truth; returns the number of queries whose answer differed
/// from exact at all (so callers can assert the approximation actually
/// did something).
void ExpectContractHolds(const std::vector<KnnResult>& results,
                         const std::vector<KnnResult>& truth, std::size_t k,
                         double epsilon) {
  ASSERT_EQ(results.size(), truth.size());
  for (std::size_t qi = 0; qi < results.size(); ++qi) {
    const std::size_t want = std::min(k, truth[qi].size());
    ASSERT_EQ(results[qi].size(), want) << "query " << qi;
    if (want == 0) continue;
    const double d_true = truth[qi][want - 1].distance;
    const double d_got = results[qi][want - 1].distance;
    // Corollary 1: the reported k-th distance is (1+eps)-competitive.
    EXPECT_LE(d_got, (1.0 + epsilon) * d_true * (1.0 + kSlop))
        << "query " << qi;
    // Corollary 2: every true neighbor clearly inside D_k/(1+eps) is
    // present in the returned set.
    for (std::size_t i = 0; i < want; ++i) {
      if (truth[qi][i].distance * (1.0 + epsilon) >= d_got * (1.0 - kSlop)) {
        continue;  // inside the allowed loss band
      }
      bool found = false;
      for (const Neighbor& n : results[qi]) {
        if (n.id == truth[qi][i].id) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "query " << qi << " lost true neighbor rank " << i
                         << " (dist " << truth[qi][i].distance << ", D_k "
                         << d_got << ", eps " << epsilon << ")";
    }
    // Corollary 3: recall is at least the analytic floor.
    const double floor_count = [&] {
      std::size_t inside = 0;
      for (std::size_t i = 0; i < want; ++i) {
        if (truth[qi][i].distance * (1.0 + epsilon) <
            d_true * (1.0 - kSlop)) {
          ++inside;
        }
      }
      return static_cast<double>(inside);
    }();
    EXPECT_GE(RecallAtK(results[qi], truth[qi], k) *
                  static_cast<double>(want),
              floor_count - 0.5)
        << "query " << qi;
  }
}

class ApproxKnnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = GenerateClusteredGaussian(1500, 8, /*clusters=*/12,
                                      /*stddev=*/0.04, 91);
    queries_ = GenerateUniform(24, 8, 93);
  }
  PointSet data_;
  PointSet queries_;
};

TEST_F(ApproxKnnTest, EpsilonZeroIsBitIdenticalCoalesced) {
  for (const MetricKind kind : kAllKinds) {
    SCOPED_TRACE(MetricKindToString(kind));
    EngineConfig exact_config{kind};
    EngineConfig approx_config{kind};
    approx_config.approx = true;
    approx_config.epsilon = 0.0;
    const auto exact = MakeEngine(data_, exact_config);
    const auto approx = MakeEngine(data_, approx_config);
    std::vector<QueryStats> exact_stats, approx_stats;
    const auto exact_results =
        exact->QueryBatch(queries_, 9, &exact_stats, 1);
    const auto approx_results =
        approx->QueryBatch(queries_, 9, &approx_stats, 1);
    ExpectRunsBitIdentical(exact_results, approx_results, exact_stats,
                           approx_stats);
  }
}

TEST_F(ApproxKnnTest, EpsilonZeroIsBitIdenticalSingleQuery) {
  for (const MetricKind kind : kAllKinds) {
    SCOPED_TRACE(MetricKindToString(kind));
    EngineConfig exact_config{kind};
    exact_config.coalesced = false;
    EngineConfig approx_config = exact_config;
    approx_config.approx = true;
    // enabled with epsilon == 0 must resolve to the exact context.
    const auto exact = MakeEngine(data_, exact_config);
    const auto approx = MakeEngine(data_, approx_config);
    std::vector<QueryStats> exact_stats(queries_.size());
    std::vector<QueryStats> approx_stats(queries_.size());
    std::vector<KnnResult> exact_results, approx_results;
    for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
      exact_results.push_back(
          exact->Query(queries_[qi], 9, &exact_stats[qi]));
      approx_results.push_back(
          approx->Query(queries_[qi], 9, &approx_stats[qi]));
    }
    ExpectRunsBitIdentical(exact_results, approx_results, exact_stats,
                           approx_stats);
  }
}

TEST_F(ApproxKnnTest, ContractHoldsAcrossMetricsAndEpsilons) {
  const std::size_t k = 9;
  for (const MetricKind kind : kAllKinds) {
    SCOPED_TRACE(MetricKindToString(kind));
    const std::vector<KnnResult> truth =
        ComputeGroundTruth(data_, queries_, k, Metric(kind));
    for (const double eps : {0.1, 0.5, 2.0}) {
      SCOPED_TRACE(eps);
      EngineConfig config{kind};
      config.approx = true;
      config.epsilon = eps;
      const auto engine = MakeEngine(data_, config);
      const auto results = engine->QueryBatch(queries_, k, nullptr, 1);
      ExpectContractHolds(results, truth, k, eps);
    }
  }
}

TEST_F(ApproxKnnTest, ContractHoldsPerMechanism) {
  const std::size_t k = 9;
  const std::vector<KnnResult> truth = ComputeGroundTruth(data_, queries_, k);
  for (const bool relax : {true, false}) {
    EngineConfig config;
    config.approx = true;
    config.epsilon = 0.75;
    config.relax_bounds = relax;
    config.early_termination = !relax;
    SCOPED_TRACE(relax ? "relax_bounds only" : "early_termination only");
    const auto engine = MakeEngine(data_, config);
    std::vector<QueryStats> stats;
    const auto results = engine->QueryBatch(queries_, k, &stats, 1);
    ExpectContractHolds(results, truth, k, 0.75);
    std::uint64_t skipped = 0, pruned_exactly = 0, quantized = 0;
    for (const QueryStats& s : stats) {
      skipped += s.approx_skipped_nodes;
      pruned_exactly += s.approx_pruned_exactly;
      quantized += s.quantized_pruned;
    }
    if (relax) {
      // Bound relaxation alone never skips frontier nodes...
      EXPECT_EQ(skipped, 0u);
      // ... and attributes its prunes: the exactly-attributed share can
      // never exceed all quantized prunes.
      EXPECT_LE(pruned_exactly, quantized);
      EXPECT_GT(pruned_exactly, 0u);
    } else {
      // Early termination alone never relaxes the sweep cutoff.
      EXPECT_EQ(pruned_exactly, 0u);
      EXPECT_GT(skipped, 0u);
    }
  }
}

TEST_F(ApproxKnnTest, DeterministicAcrossThreadCounts) {
  EngineConfig config;
  config.approx = true;
  config.epsilon = 0.6;
  const auto engine = MakeEngine(data_, config);
  std::vector<QueryStats> serial_stats;
  const auto serial = engine->QueryBatch(queries_, 7, &serial_stats, 1);
  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE(threads);
    std::vector<QueryStats> stats;
    const auto results = engine->QueryBatch(queries_, 7, &stats, threads);
    ASSERT_EQ(results.size(), serial.size());
    for (std::size_t qi = 0; qi < serial.size(); ++qi) {
      ASSERT_EQ(results[qi].size(), serial[qi].size());
      for (std::size_t i = 0; i < serial[qi].size(); ++i) {
        EXPECT_EQ(results[qi][i].id, serial[qi][i].id);
        EXPECT_EQ(results[qi][i].distance, serial[qi][i].distance);
      }
      EXPECT_EQ(stats[qi].total_pages, serial_stats[qi].total_pages);
      EXPECT_EQ(stats[qi].approx_skipped_nodes,
                serial_stats[qi].approx_skipped_nodes);
      EXPECT_EQ(stats[qi].approx_pruned_exactly,
                serial_stats[qi].approx_pruned_exactly);
    }
  }
}

TEST_F(ApproxKnnTest, LargeEpsilonActuallySkipsWork) {
  EngineConfig exact_config;
  EngineConfig approx_config;
  approx_config.approx = true;
  approx_config.epsilon = 1.0;
  const auto exact = MakeEngine(data_, exact_config);
  const auto approx = MakeEngine(data_, approx_config);
  std::vector<QueryStats> exact_stats, approx_stats;
  (void)exact->QueryBatch(queries_, 9, &exact_stats, 1);
  (void)approx->QueryBatch(queries_, 9, &approx_stats, 1);
  std::uint64_t exact_pages = 0, approx_pages = 0, skipped = 0;
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    exact_pages += exact_stats[qi].total_pages;
    approx_pages += approx_stats[qi].total_pages;
    skipped += approx_stats[qi].approx_skipped_nodes;
  }
  // At eps = 1 on clustered data the skip must fire and save real pages.
  EXPECT_GT(skipped, 0u);
  EXPECT_LT(approx_pages, exact_pages);
}

}  // namespace
}  // namespace parsim
