// ParallelSort property suite: for a strict total order the result must
// be bit-identical to std::sort at every pool size (the determinism the
// parallel bulk load is built on).

#include "src/util/parallel_sort.h"

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/thread_pool.h"

namespace parsim {
namespace {

using Rec = std::pair<std::uint64_t, std::uint32_t>;  // (key, index)

// Keys drawn from a tiny alphabet so duplicate keys are everywhere; the
// index component restores the strict total order.
std::vector<Rec> MakeRecords(std::size_t n, std::uint64_t seed,
                             std::uint64_t key_range) {
  std::mt19937_64 rng(seed);
  std::vector<Rec> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = {rng() % key_range, static_cast<std::uint32_t>(i)};
  }
  return out;
}

TEST(ParallelSortTest, MatchesStdSortAcrossPoolSizesAndLengths) {
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const std::size_t sizes[] = {0,     1,     2,      100,   4096,
                               16383, 16384, 100000, 250000};
  for (const std::size_t n : sizes) {
    const auto base = MakeRecords(n, 1234 + n, /*key_range=*/97);
    auto expected = base;
    std::sort(expected.begin(), expected.end());
    for (ThreadPool* pool :
         {static_cast<ThreadPool*>(nullptr), &pool1, &pool8}) {
      auto got = base;
      ParallelSort(pool, got.begin(), got.end(),
                   [](const Rec& a, const Rec& b) { return a < b; });
      ASSERT_EQ(got, expected) << "n=" << n;
    }
  }
}

TEST(ParallelSortTest, AlreadySortedAndReversedInputs) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<Rec> asc(n), desc(n);
  for (std::size_t i = 0; i < n; ++i) {
    asc[i] = {i, static_cast<std::uint32_t>(i)};
    desc[i] = {n - i, static_cast<std::uint32_t>(i)};
  }
  auto sorted_desc = desc;
  std::sort(sorted_desc.begin(), sorted_desc.end());
  auto a = asc;
  ParallelSort(&pool, a.begin(), a.end(),
               [](const Rec& x, const Rec& y) { return x < y; });
  EXPECT_EQ(a, asc);
  auto d = desc;
  ParallelSort(&pool, d.begin(), d.end(),
               [](const Rec& x, const Rec& y) { return x < y; });
  EXPECT_EQ(d, sorted_desc);
}

TEST(ParallelSortTest, AllEqualKeysPreserveIndexOrder) {
  ThreadPool pool(8);
  auto recs = MakeRecords(200000, 77, /*key_range=*/1);
  ParallelSort(&pool, recs.begin(), recs.end(),
               [](const Rec& a, const Rec& b) { return a < b; });
  for (std::size_t i = 0; i < recs.size(); ++i) {
    ASSERT_EQ(recs[i].second, i);
  }
}

TEST(ParallelSortTest, NestsInsideAPoolTask) {
  // ParallelSort from inside a pool task must neither deadlock nor lose
  // determinism (the STR tiler recurses exactly like this).
  ThreadPool pool(2);
  const auto base = MakeRecords(50000, 99, /*key_range=*/13);
  auto expected = base;
  std::sort(expected.begin(), expected.end());
  std::vector<Rec> got;
  pool.ParallelFor(0, 1, [&](std::size_t) {
    got = base;
    ParallelSort(&pool, got.begin(), got.end(),
                 [](const Rec& a, const Rec& b) { return a < b; });
  });
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace parsim
