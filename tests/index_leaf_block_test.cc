// SoA leaf blocks vs the AoS entry layout they mirror.
//
// The refactored query paths (HsKnn, RangeQuery, BallQuery, the batched
// scheduler) read leaf pages through LeafBlockOf() instead of the
// per-entry rects, so these properties pin the contract the whole PR
// rests on: blocks are bitwise mirrors of their leaves, kernel sweeps
// over them are bitwise equal to per-entry distance calls, every query
// kind returns bit-identical answers to a pre-SoA oracle, and mutations
// invalidate stale blocks.

#include "src/index/leaf_block.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/index/knn.h"
#include "src/index/rstar_tree.h"
#include "src/index/xtree.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

/// Every (tree, brute-force) answer must match bit for bit: same ids in
/// the same order is too strict only at ties, so distances compare
/// exactly and ids as sets.
void ExpectBitIdentical(const KnnResult& got, const KnnResult& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
  std::vector<PointId> got_ids, want_ids;
  for (const auto& n : got) got_ids.push_back(n.id);
  for (const auto& n : want) want_ids.push_back(n.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  EXPECT_EQ(got_ids, want_ids);
}

/// Collects every leaf id reachable from the root.
std::vector<NodeId> CollectLeaves(const TreeBase& tree) {
  std::vector<NodeId> leaves;
  if (tree.root_id() == kInvalidNodeId) return leaves;
  std::vector<NodeId> stack{tree.root_id()};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const Node& node = tree.AccessNode(id);
    if (node.IsLeaf()) {
      leaves.push_back(id);
      continue;
    }
    for (const NodeEntry& e : node.entries) stack.push_back(e.child);
  }
  return leaves;
}

class LeafBlockPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LeafBlockPropertyTest, BlocksMirrorLeafEntriesBitwise) {
  const std::size_t dim = GetParam();
  const PointSet data = GenerateUniform(700, dim, 7001 + dim);
  SimulatedDisk disk(0);
  XTree tree(dim, &disk);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  for (const NodeId leaf_id : CollectLeaves(tree)) {
    const Node& leaf = tree.AccessNode(leaf_id);
    const LeafBlock& block = tree.LeafBlockOf(leaf);
    ASSERT_EQ(block.count, leaf.entries.size());
    ASSERT_EQ(block.dim, dim);
    for (std::size_t i = 0; i < block.count; ++i) {
      EXPECT_EQ(block.ids[i], leaf.entries[i].child);
      // Leaf entries store points as degenerate rects; the block must
      // carry the identical scalars.
      for (std::size_t d = 0; d < dim; ++d) {
        EXPECT_EQ(block.coords[i * dim + d], leaf.entries[i].rect.lo(d));
      }
    }
  }
}

TEST_P(LeafBlockPropertyTest, KernelSweepMatchesPerEntryDistances) {
  const std::size_t dim = GetParam();
  const PointSet data = GenerateUniform(500, dim, 7101 + dim);
  const PointSet queries = GenerateUniformQueries(4, dim, 7103 + dim);
  SimulatedDisk disk(0);
  XTree tree(dim, &disk);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  for (const MetricKind kind :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kLmax}) {
    const Metric metric(kind);
    for (const NodeId leaf_id : CollectLeaves(tree)) {
      const Node& leaf = tree.AccessNode(leaf_id);
      const LeafBlock& block = tree.LeafBlockOf(leaf);
      std::vector<double> swept(block.count);
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        metric.ComparableMany(queries[qi], block.coords.data(), block.count,
                              dim, swept.data());
        for (std::size_t i = 0; i < block.count; ++i) {
          EXPECT_EQ(swept[i], metric.Comparable(queries[qi], block.row(i)))
              << "metric " << static_cast<int>(kind) << " point " << i;
        }
      }
    }
  }
}

TEST_P(LeafBlockPropertyTest, QueriesMatchOracleOnBulkLoadedTree) {
  const std::size_t dim = GetParam();
  const PointSet data = GenerateUniform(800, dim, 7201 + dim);
  const PointSet queries = GenerateUniformQueries(6, dim, 7203 + dim);
  SimulatedDisk disk(0);
  XTree tree(dim, &disk);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE("query " + std::to_string(qi));
    // k-NN through the SoA sweep vs the linear-scan oracle.
    ExpectBitIdentical(HsKnn(tree, queries[qi], 8),
                       BruteForceKnn(data, queries[qi], 8));
    // Ball query (same leaf path, threshold semantics).
    ExpectBitIdentical(BallQuery(tree, queries[qi], 0.4),
                       BruteForceBallQuery(data, queries[qi], 0.4));
  }
}

TEST_P(LeafBlockPropertyTest, RangeAndPartialMatchQueriesMatchScan) {
  const std::size_t dim = GetParam();
  const PointSet data = GenerateUniform(800, dim, 7301 + dim);
  SimulatedDisk disk(0);
  XTree tree(dim, &disk);
  ASSERT_TRUE(tree.BulkLoad(data).ok());

  const auto expect_matches_scan = [&](const Rect& query) {
    std::vector<PointId> got = tree.RangeQuery(query);
    std::vector<PointId> want;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (query.Contains(data[i])) want.push_back(static_cast<PointId>(i));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
    EXPECT_FALSE(want.empty());  // the windows below are wide enough
  };

  // Full range query: a wide window (0.9^16 of the space still holds
  // ~150 of the 800 points, so the check never goes vacuous).
  {
    std::vector<Scalar> lo(dim, 0.05f), hi(dim, 0.95f);
    expect_matches_scan(Rect(std::move(lo), std::move(hi)));
  }
  // Partial-match query: only every other dimension is constrained, the
  // rest stay at the full domain — the classic "some attributes given"
  // similarity query, exercised through the same leaf sweep.
  {
    std::vector<Scalar> lo(dim, 0.0f), hi(dim, 1.0f);
    for (std::size_t d = 0; d < dim; d += 2) {
      lo[d] = 0.15f;
      hi[d] = 0.85f;
    }
    expect_matches_scan(Rect(std::move(lo), std::move(hi)));
  }
}

TEST_P(LeafBlockPropertyTest, InsertAndDeleteInvalidateCachedBlocks) {
  const std::size_t dim = GetParam();
  PointSet data = GenerateUniform(400, dim, 7401 + dim);
  SimulatedDisk disk(0);
  RStarTree tree(dim, &disk);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  // Materialize every block, then mutate: stale blocks must not leak
  // into any query answer.
  for (const NodeId leaf_id : CollectLeaves(tree)) {
    (void)tree.LeafBlockOf(tree.AccessNode(leaf_id));
  }

  const Point probe(std::vector<Scalar>(dim, 0.5f));
  const PointId extra_id = 100000;
  ASSERT_TRUE(tree.Insert(probe, extra_id).ok());
  KnnResult nearest = HsKnn(tree, probe, 1);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_EQ(nearest[0].id, extra_id);
  EXPECT_EQ(nearest[0].distance, 0.0);

  ASSERT_TRUE(tree.Delete(probe, extra_id).ok());
  nearest = HsKnn(tree, probe, 1);
  ASSERT_EQ(nearest.size(), 1u);
  EXPECT_NE(nearest[0].id, extra_id);

  // After the mutations every block still mirrors its leaf exactly.
  for (const NodeId leaf_id : CollectLeaves(tree)) {
    const Node& leaf = tree.AccessNode(leaf_id);
    const LeafBlock& block = tree.LeafBlockOf(leaf);
    ASSERT_EQ(block.count, leaf.entries.size());
    for (std::size_t i = 0; i < block.count; ++i) {
      EXPECT_EQ(block.ids[i], leaf.entries[i].child);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LeafBlockPropertyTest,
                         ::testing::Values(2, 3, 4, 6, 8, 11, 13, 16),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parsim
