#include "src/index/knn.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "src/index/rstar_tree.h"
#include "src/index/xtree.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

void ExpectSameNeighbors(const KnnResult& got, const KnnResult& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Distances must agree exactly up to float rounding; ids may swap
    // among equidistant neighbors, so compare by distance and set.
    EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9) << "rank " << i;
  }
  std::vector<PointId> got_ids, want_ids;
  for (const auto& n : got) got_ids.push_back(n.id);
  for (const auto& n : expected) want_ids.push_back(n.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::sort(want_ids.begin(), want_ids.end());
  // Ties at the k-th distance can legitimately differ; only check ids
  // when the k-th and (k+1)-th distances differ, which the caller
  // guarantees by using generic float data (ties have measure ~0).
  EXPECT_EQ(got_ids, want_ids);
}

TEST(BruteForceKnnTest, FindsExactNearest) {
  PointSet data(2);
  data.Add(Point({0.0f, 0.0f}));   // id 0
  data.Add(Point({0.5f, 0.5f}));   // id 1
  data.Add(Point({1.0f, 1.0f}));   // id 2
  const auto result = BruteForceKnn(data, Point({0.4f, 0.4f}), 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id, 1u);
  EXPECT_EQ(result[1].id, 0u);
  EXPECT_NEAR(result[0].distance, std::sqrt(0.02), 1e-6);
}

TEST(BruteForceKnnTest, KLargerThanDataset) {
  PointSet data(1);
  data.Add(Point({0.1f}));
  data.Add(Point({0.9f}));
  const auto result = BruteForceKnn(data, Point({0.0f}), 10);
  EXPECT_EQ(result.size(), 2u);
}

TEST(HsKnnTest, EmptyTreeReturnsNothing) {
  SimulatedDisk disk(0);
  XTree tree(2, &disk);
  EXPECT_TRUE(HsKnn(tree, Point({0.5f, 0.5f}), 3).empty());
}

TEST(HsKnnTest, SinglePoint) {
  SimulatedDisk disk(0);
  XTree tree(2, &disk);
  ASSERT_TRUE(tree.Insert(Point({0.25f, 0.75f}), 9).ok());
  const auto result = HsKnn(tree, Point({0.0f, 0.0f}), 1);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 9u);
}

TEST(HsKnnTest, ResultsSortedAscending) {
  SimulatedDisk disk(0);
  XTree tree(3, &disk);
  const PointSet data = GenerateUniform(2000, 3, 111);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  const auto result = HsKnn(tree, Point({0.5f, 0.5f, 0.5f}), 20);
  ASSERT_EQ(result.size(), 20u);
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].distance, result[i].distance);
  }
}

TEST(HsKnnTest, ChargesPageReadsAndDistances) {
  SimulatedDisk disk(0);
  XTree tree(4, &disk);
  const PointSet data = GenerateUniform(5000, 4, 113);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  disk.ResetStats();
  (void)HsKnn(tree, Point({0.2f, 0.4f, 0.6f, 0.8f}), 10);
  EXPECT_GT(disk.stats().TotalPagesRead(), 0u);
  EXPECT_GT(disk.stats().distance_computations, 0u);
}

TEST(HsKnnTest, ReadsFewerPagesThanFullScan) {
  // The whole point of the index: NN search in low-d touches a small
  // fraction of the pages.
  SimulatedDisk disk(0);
  XTree tree(2, &disk);
  const PointSet data = GenerateUniform(30000, 2, 115);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  const std::size_t total_pages = tree.ComputeStats().total_pages;
  disk.ResetStats();
  (void)HsKnn(tree, Point({0.3f, 0.7f}), 1);
  EXPECT_LT(disk.stats().TotalPagesRead(), total_pages / 10);
}

TEST(RkvKnnTest, RequiresL2) {
  SimulatedDisk disk(0);
  XTree tree(2, &disk);
  ASSERT_TRUE(tree.Insert(Point({0.5f, 0.5f}), 0).ok());
  EXPECT_DEATH(RkvKnn(tree, Point({0.1f, 0.1f}), 1, Metric(MetricKind::kL1)),
               "PARSIM_CHECK");
}

TEST(HsKnnTest, SupportsL1AndLmax) {
  SimulatedDisk disk(0);
  XTree tree(3, &disk);
  const PointSet data = GenerateUniform(3000, 3, 117);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  const Point q = {0.3f, 0.6f, 0.2f};
  for (MetricKind kind : {MetricKind::kL1, MetricKind::kLmax}) {
    const Metric metric(kind);
    const auto got = HsKnn(tree, q, 5, metric);
    const auto expected = BruteForceKnn(data, q, 5, metric);
    ExpectSameNeighbors(got, expected);
  }
}

// ---------------------------------------------------------------------------
// Oracle sweeps: HS and RKV against brute force across dimensions, tree
// kinds, build methods, and k.

struct KnnSweepParam {
  std::size_t dim;
  std::size_t n;
  std::size_t k;
  bool use_xtree;
  bool bulk;
};

class KnnSweepTest : public ::testing::TestWithParam<KnnSweepParam> {};

TEST_P(KnnSweepTest, BothAlgorithmsMatchBruteForce) {
  const KnnSweepParam p = GetParam();
  SimulatedDisk disk(0);
  std::unique_ptr<TreeBase> tree;
  if (p.use_xtree) {
    tree = std::make_unique<XTree>(p.dim, &disk);
  } else {
    tree = std::make_unique<RStarTree>(p.dim, &disk);
  }
  const PointSet data = GenerateUniform(p.n, p.dim, 121 + p.dim * 7 + p.k);
  if (p.bulk) {
    ASSERT_TRUE(tree->BulkLoad(data).ok());
  } else {
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_TRUE(tree->Insert(data[i], static_cast<PointId>(i)).ok());
    }
  }
  const PointSet queries = GenerateUniformQueries(15, p.dim, 999 + p.dim);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = BruteForceKnn(data, queries[qi], p.k);
    {
      SCOPED_TRACE("HS query " + std::to_string(qi));
      ExpectSameNeighbors(HsKnn(*tree, queries[qi], p.k), expected);
    }
    {
      SCOPED_TRACE("RKV query " + std::to_string(qi));
      ExpectSameNeighbors(RkvKnn(*tree, queries[qi], p.k), expected);
    }
  }
}

TEST_P(KnnSweepTest, HsNeverReadsMorePagesThanRkv) {
  // HS is page-optimal; RKV's depth-first order can only read at least
  // as many nodes for the same query.
  const KnnSweepParam p = GetParam();
  SimulatedDisk disk(0);
  XTree tree(p.dim, &disk);
  const PointSet data = GenerateUniform(p.n, p.dim, 131 + p.dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  const PointSet queries = GenerateUniformQueries(10, p.dim, 877);
  std::uint64_t hs_pages = 0, rkv_pages = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    disk.ResetStats();
    (void)HsKnn(tree, queries[qi], p.k);
    hs_pages += disk.stats().TotalPagesRead();
    disk.ResetStats();
    (void)RkvKnn(tree, queries[qi], p.k);
    rkv_pages += disk.stats().TotalPagesRead();
  }
  EXPECT_LE(hs_pages, rkv_pages);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KnnSweepTest,
    ::testing::Values(KnnSweepParam{2, 2000, 1, true, false},
                      KnnSweepParam{2, 2000, 10, false, false},
                      KnnSweepParam{3, 3000, 5, true, true},
                      KnnSweepParam{5, 4000, 1, true, false},
                      KnnSweepParam{5, 4000, 20, false, true},
                      KnnSweepParam{8, 4000, 10, true, false},
                      KnnSweepParam{15, 3000, 1, true, false},
                      KnnSweepParam{15, 3000, 10, true, true}),
    [](const auto& info) {
      const KnnSweepParam& p = info.param;
      return "d" + std::to_string(p.dim) + "n" + std::to_string(p.n) + "k" +
             std::to_string(p.k) + (p.use_xtree ? "x" : "r") +
             (p.bulk ? "bulk" : "ins");
    });

}  // namespace
}  // namespace parsim
