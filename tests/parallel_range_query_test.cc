// Range and partial-match queries through the parallel engine, across
// all architectures and declusterers.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/near_optimal.h"
#include "src/parallel/engine.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

std::vector<PointId> BruteForceRange(const PointSet& points,
                                     const Rect& query) {
  std::vector<PointId> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (query.Contains(points[i])) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

class RangeQueryArchTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(RangeQueryArchTest, MatchesBruteForce) {
  const std::size_t d = 4;
  const PointSet data = GenerateUniform(3000, d, 701);
  EngineOptions options;
  options.architecture = GetParam();
  ParallelSearchEngine engine(
      d, std::make_unique<NearOptimalDeclusterer>(d, 4), options);
  ASSERT_TRUE(engine.Build(data).ok());

  Rng rng(703);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Scalar> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double a = rng.NextDouble(), b = rng.NextDouble();
      lo[j] = static_cast<Scalar>(std::min(a, b));
      hi[j] = static_cast<Scalar>(std::max(a, b));
    }
    const Rect query(std::move(lo), std::move(hi));
    const auto got = engine.RangeQuery(query);
    const auto expected = BruteForceRange(data, query);
    EXPECT_EQ(got, expected);  // engine returns sorted ids
  }
}

TEST_P(RangeQueryArchTest, StatsPopulated) {
  const std::size_t d = 3;
  const PointSet data = GenerateUniform(2000, d, 705);
  EngineOptions options;
  options.architecture = GetParam();
  ParallelSearchEngine engine(
      d, std::make_unique<NearOptimalDeclusterer>(d, 4), options);
  ASSERT_TRUE(engine.Build(data).ok());
  QueryStats stats;
  const auto hits = engine.RangeQuery(Rect::UnitCube(d), &stats);
  EXPECT_EQ(hits.size(), data.size());
  EXPECT_GT(stats.total_pages, 0u);
  EXPECT_GT(stats.parallel_ms, 0.0);
  EXPECT_GE(stats.sum_ms, stats.parallel_ms);
}

INSTANTIATE_TEST_SUITE_P(Architectures, RangeQueryArchTest,
                         ::testing::Values(Architecture::kSharedTree,
                                           Architecture::kFederatedTrees,
                                           Architecture::kFederatedScan),
                         [](const auto& info) {
                           switch (info.param) {
                             case Architecture::kSharedTree:
                               return "shared";
                             case Architecture::kFederatedTrees:
                               return "federated";
                             case Architecture::kFederatedScan:
                               return "scan";
                           }
                           return "unknown";
                         });

TEST(PartialMatchTest, FixedDimensionsFilter) {
  const std::size_t d = 5;
  PointSet data(d);
  // A grid of points with known coordinates.
  for (int a = 0; a < 10; ++a) {
    for (int b = 0; b < 10; ++b) {
      Point p(d, Scalar{0.5});
      p[1] = static_cast<Scalar>(a) / 10;
      p[3] = static_cast<Scalar>(b) / 10;
      data.Add(p);
    }
  }
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 4));
  ASSERT_TRUE(engine.Build(data).ok());

  // Fix dimension 1 to 0.3 exactly: matches the 10 points with a = 3.
  const auto hits = engine.PartialMatchQuery({{1, 0.3f}}, /*tolerance=*/0.0f);
  EXPECT_EQ(hits.size(), 10u);
  for (PointId id : hits) {
    EXPECT_FLOAT_EQ(data[id][1], 0.3f);
  }
}

TEST(PartialMatchTest, ToleranceWidensTheMatch) {
  const std::size_t d = 3;
  const PointSet data = GenerateUniform(5000, d, 707);
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 4));
  ASSERT_TRUE(engine.Build(data).ok());
  const auto narrow = engine.PartialMatchQuery({{0, 0.5f}}, 0.01f);
  const auto wide = engine.PartialMatchQuery({{0, 0.5f}}, 0.1f);
  EXPECT_LT(narrow.size(), wide.size());
  // ~2% and ~20% selectivity on dimension 0.
  EXPECT_NEAR(static_cast<double>(narrow.size()), 100.0, 60.0);
  EXPECT_NEAR(static_cast<double>(wide.size()), 1000.0, 200.0);
  // narrow is a subset of wide.
  for (PointId id : narrow) {
    EXPECT_TRUE(std::binary_search(wide.begin(), wide.end(), id));
  }
}

TEST(PartialMatchTest, MultipleFixedDimensions) {
  const std::size_t d = 6;
  const PointSet data = GenerateUniform(5000, d, 709);
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 8));
  ASSERT_TRUE(engine.Build(data).ok());
  const auto hits =
      engine.PartialMatchQuery({{0, 0.5f}, {2, 0.5f}, {4, 0.5f}}, 0.2f);
  for (PointId id : hits) {
    for (std::size_t j : {0u, 2u, 4u}) {
      EXPECT_GE(data[id][j], 0.3f);
      EXPECT_LE(data[id][j], 0.7f);
    }
  }
  // Against brute force.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool match = true;
    for (std::size_t j : {0u, 2u, 4u}) {
      if (data[i][j] < 0.3f || data[i][j] > 0.7f) {
        match = false;
        break;
      }
    }
    if (match) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(PartialMatchTest, NoFixedDimensionsReturnsEverything) {
  const std::size_t d = 3;
  const PointSet data = GenerateUniform(500, d, 711);
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 2));
  ASSERT_TRUE(engine.Build(data).ok());
  EXPECT_EQ(engine.PartialMatchQuery({}, 0.0f).size(), data.size());
}

TEST(RangeQueryBalanceTest, DeclusteredRangeQueriesUseManyDisks) {
  // Range queries were the Hilbert method's home turf; our near-optimal
  // declustering still spreads large range queries across disks.
  const std::size_t d = 8;
  const PointSet data = GenerateUniform(20000, d, 713);
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 8));
  ASSERT_TRUE(engine.Build(data).ok());
  QueryStats stats;
  std::vector<Scalar> lo(d, Scalar{0.1f}), hi(d, Scalar{0.9f});
  (void)engine.RangeQuery(Rect(std::move(lo), std::move(hi)), &stats);
  EXPECT_GT(stats.balance, 0.4);
}

// Property test for PartialMatchQuery at Scalar extremes: value ±
// tolerance computed in float can overflow to ±inf (or lose the
// tolerance entirely), producing Rect edges that disagree with the
// real-number predicate |coord - value| <= tolerance. The engine
// computes the bounds in double and clamps them to the finite Scalar
// range, so every (extreme value, extreme tolerance) pair must match a
// double-arithmetic brute-force oracle exactly.
TEST(PartialMatchTest, ExtremeBoundsMatchDoubleOracle) {
  constexpr std::size_t d = 3;
  constexpr Scalar kLowest = std::numeric_limits<Scalar>::lowest();
  constexpr Scalar kMax = std::numeric_limits<Scalar>::max();
  PointSet data(d);
  // Points spanning the whole finite Scalar range, extremes included.
  const std::vector<Scalar> coords = {kLowest,  -1e30f, -1.0f, -0.0f, 0.0f,
                                      1.0f,     1e30f,  kMax,  0.5f,  -0.5f};
  for (const Scalar a : coords) {
    for (const Scalar b : coords) {
      Point p(d, Scalar{0.25f});
      p[0] = a;
      p[2] = b;
      data.Add(p);
    }
  }
  ParallelSearchEngine engine(d,
                              std::make_unique<NearOptimalDeclusterer>(d, 4));
  ASSERT_TRUE(engine.Build(data).ok());

  const std::vector<Scalar> values = {kLowest, -1.0f, 0.0f, 1.0f, kMax};
  const std::vector<Scalar> tolerances = {0.0f, 1.0f, kMax};
  for (const Scalar value : values) {
    for (const Scalar tolerance : tolerances) {
      SCOPED_TRACE("value " + std::to_string(value) + " tolerance " +
                   std::to_string(tolerance));
      const auto hits = engine.PartialMatchQuery({{0, value}}, tolerance);
      std::vector<PointId> expected;
      for (std::size_t i = 0; i < data.size(); ++i) {
        const double c = static_cast<double>(data[i][0]);
        const double v = static_cast<double>(value);
        const double t = static_cast<double>(tolerance);
        if (c >= v - t && c <= v + t) {
          expected.push_back(static_cast<PointId>(i));
        }
      }
      EXPECT_EQ(hits, expected);
    }
  }
}

}  // namespace
}  // namespace parsim
