#include <algorithm>

#include <gtest/gtest.h>

#include "src/index/rstar_tree.h"
#include "src/index/xtree.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

TEST(BulkLoadTest, EmptyInputIsOk) {
  SimulatedDisk disk(0);
  RStarTree tree(3, &disk);
  EXPECT_TRUE(tree.BulkLoad(PointSet(3)).ok());
  EXPECT_TRUE(tree.empty());
}

TEST(BulkLoadTest, RequiresEmptyTree) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  ASSERT_TRUE(tree.Insert(Point({0.5f, 0.5f}), 0).ok());
  const PointSet data = GenerateUniform(10, 2, 87);
  EXPECT_EQ(tree.BulkLoad(data).code(), StatusCode::kFailedPrecondition);
}

TEST(BulkLoadTest, DimensionMismatchRejected) {
  SimulatedDisk disk(0);
  RStarTree tree(3, &disk);
  const PointSet data = GenerateUniform(10, 2, 89);
  EXPECT_EQ(tree.BulkLoad(data).code(), StatusCode::kInvalidArgument);
}

TEST(BulkLoadTest, IdsVectorSizeMustMatch) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const PointSet data = GenerateUniform(10, 2, 91);
  const std::vector<PointId> ids = {1, 2, 3};
  EXPECT_EQ(tree.BulkLoad(data, &ids).code(), StatusCode::kInvalidArgument);
}

TEST(BulkLoadTest, StructureValidAndComplete) {
  SimulatedDisk disk(0);
  RStarTree tree(6, &disk);
  const PointSet data = GenerateUniform(20000, 6, 93);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_EQ(tree.size(), 20000u);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_GE(tree.height(), 2);
  const auto stats = tree.ComputeStats();
  // Packed at ~70% fill.
  EXPECT_GT(stats.avg_leaf_fill, 0.6);
}

TEST(BulkLoadTest, DefaultIdsArePositions) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const PointSet data = GenerateUniform(500, 2, 95);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(tree.Contains(data[i], static_cast<PointId>(i)));
  }
}

TEST(BulkLoadTest, ExplicitIdsRespected) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  PointSet data(2);
  std::vector<PointId> ids;
  for (int i = 0; i < 300; ++i) {
    data.Add(Point({static_cast<Scalar>(i) / 300, 0.5f}));
    ids.push_back(static_cast<PointId>(1000 + i * 2));
  }
  ASSERT_TRUE(tree.BulkLoad(data, &ids).ok());
  for (int i = 0; i < 300; i += 37) {
    EXPECT_TRUE(
        tree.Contains(data[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(i)]));
    EXPECT_FALSE(
        tree.Contains(data[static_cast<std::size_t>(i)], ids[static_cast<std::size_t>(i)] + 1));
  }
}

TEST(BulkLoadTest, RangeQueriesMatchBruteForce) {
  SimulatedDisk disk(0);
  XTree tree(4, &disk);
  const PointSet data = GenerateUniform(10000, 4, 97);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Scalar> lo(4), hi(4);
    for (std::size_t j = 0; j < 4; ++j) {
      const double a = rng.NextDouble(), b = rng.NextDouble();
      lo[j] = static_cast<Scalar>(std::min(a, b));
      hi[j] = static_cast<Scalar>(std::max(a, b));
    }
    const Rect query(std::move(lo), std::move(hi));
    auto got = tree.RangeQuery(query);
    std::vector<PointId> expected;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (query.Contains(data[i])) expected.push_back(static_cast<PointId>(i));
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(BulkLoadTest, HilbertPackingClustersSpatially) {
  // Hilbert packing should give far fewer leaf overlaps than random
  // insertion order would pack sequentially: proxy check, average leaf
  // MBR volume is small.
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const PointSet data = GenerateUniform(20000, 2, 101);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const auto stats = tree.ComputeStats();
  // ~94 points per leaf over 20000 points -> ~213 leaves; a spatially
  // clustered leaf covers ~1/213 of the space. Allow 5x slack.
  double total_volume = 0.0;
  std::vector<NodeId> stack = {tree.root_id()};
  std::size_t leaves = 0;
  while (!stack.empty()) {
    const Node& node = tree.PeekNode(stack.back());
    stack.pop_back();
    if (node.IsLeaf()) {
      total_volume += node.ComputeMbr(2).Volume();
      ++leaves;
    } else {
      for (const NodeEntry& e : node.entries) stack.push_back(e.child);
    }
  }
  ASSERT_GT(leaves, 0u);
  EXPECT_LT(total_volume / static_cast<double>(leaves),
            5.0 / static_cast<double>(leaves));
}

TEST(BulkLoadTest, StrOrderProducesValidTree) {
  SimulatedDisk disk(0);
  TreeOptions options;
  options.bulk_load_order = BulkLoadOrder::kStr;
  RStarTree tree(5, &disk, options);
  const PointSet data = GenerateUniform(15000, 5, 151);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_EQ(tree.size(), 15000u);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_GT(tree.ComputeStats().avg_leaf_fill, 0.6);
  // Query correctness.
  const auto hits = tree.RangeQuery(Rect({0.0f, 0.0f, 0.0f, 0.0f, 0.0f},
                                         {0.5f, 0.5f, 0.5f, 0.5f, 0.5f}));
  std::size_t expected = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    bool inside = true;
    for (std::size_t j = 0; j < 5; ++j) {
      if (data[i][j] > 0.5f) {
        inside = false;
        break;
      }
    }
    if (inside) ++expected;
  }
  EXPECT_EQ(hits.size(), expected);
}

TEST(BulkLoadTest, StrPacksLowDimensionsTightly) {
  // In 2-d STR's tiles are near-square: total leaf MBR volume must be
  // within a small factor of the ideal 1/leaves each.
  SimulatedDisk disk(0);
  TreeOptions options;
  options.bulk_load_order = BulkLoadOrder::kStr;
  RStarTree tree(2, &disk, options);
  const PointSet data = GenerateUniform(20000, 2, 153);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  double total_volume = 0.0;
  std::size_t leaves = 0;
  std::vector<NodeId> stack = {tree.root_id()};
  while (!stack.empty()) {
    const Node& node = tree.PeekNode(stack.back());
    stack.pop_back();
    if (node.IsLeaf()) {
      total_volume += node.ComputeMbr(2).Volume();
      ++leaves;
    } else {
      for (const NodeEntry& e : node.entries) stack.push_back(e.child);
    }
  }
  ASSERT_GT(leaves, 0u);
  EXPECT_LT(total_volume, 5.0) << "tiles must not overlap wildly";
}

TEST(BulkLoadTest, SmallInputsAllSizes) {
  // Edge sizes around capacity boundaries must produce valid trees.
  for (std::size_t n : {1u, 2u, 5u, 63u, 64u, 65u, 340u, 341u, 342u, 1000u}) {
    SimulatedDisk disk(0);
    RStarTree tree(2, &disk);
    const PointSet data = GenerateUniform(n, 2, 103 + n);
    ASSERT_TRUE(tree.BulkLoad(data).ok()) << "n=" << n;
    EXPECT_EQ(tree.size(), n);
    EXPECT_TRUE(tree.ValidateInvariants().ok()) << "n=" << n;
    EXPECT_EQ(tree.RangeQuery(Rect::UnitCube(2)).size(), n);
  }
}

}  // namespace
}  // namespace parsim
