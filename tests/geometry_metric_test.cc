#include "src/geometry/metric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace parsim {
namespace {

TEST(MetricTest, SquaredL2Basic) {
  Point a = {0, 0};
  Point b = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(L2(a, b), 5.0);
}

TEST(MetricTest, L1Basic) {
  Point a = {1, 2, 3};
  Point b = {4, 0, 3};
  EXPECT_DOUBLE_EQ(L1(a, b), 5.0);
}

TEST(MetricTest, LmaxBasic) {
  Point a = {1, 2, 3};
  Point b = {4, 0, 3};
  EXPECT_DOUBLE_EQ(Lmax(a, b), 3.0);
}

TEST(MetricTest, ZeroDistanceToSelf) {
  Point p = {0.1f, 0.9f, 0.5f};
  EXPECT_EQ(L1(p, p), 0.0);
  EXPECT_EQ(L2(p, p), 0.0);
  EXPECT_EQ(Lmax(p, p), 0.0);
}

TEST(MetricTest, KindToString) {
  EXPECT_STREQ(MetricKindToString(MetricKind::kL1), "L1");
  EXPECT_STREQ(MetricKindToString(MetricKind::kL2), "L2");
  EXPECT_STREQ(MetricKindToString(MetricKind::kLmax), "Lmax");
}

TEST(MetricTest, DistanceDispatch) {
  Point a = {0, 0};
  Point b = {1, 1};
  EXPECT_DOUBLE_EQ(Metric(MetricKind::kL1).Distance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(Metric(MetricKind::kL2).Distance(a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Metric(MetricKind::kLmax).Distance(a, b), 1.0);
}

TEST(MetricTest, ComparableIsSquaredForL2) {
  Point a = {0, 0};
  Point b = {3, 4};
  const Metric m(MetricKind::kL2);
  EXPECT_DOUBLE_EQ(m.Comparable(a, b), 25.0);
  EXPECT_DOUBLE_EQ(m.ToComparable(5.0), 25.0);
  EXPECT_DOUBLE_EQ(m.FromComparable(25.0), 5.0);
}

TEST(MetricTest, ComparableIsIdentityForL1AndLmax) {
  Point a = {0, 0};
  Point b = {3, 4};
  for (MetricKind kind : {MetricKind::kL1, MetricKind::kLmax}) {
    const Metric m(kind);
    EXPECT_DOUBLE_EQ(m.Comparable(a, b), m.Distance(a, b));
    EXPECT_DOUBLE_EQ(m.ToComparable(7.0), 7.0);
    EXPECT_DOUBLE_EQ(m.FromComparable(7.0), 7.0);
  }
}

// Property sweep: metric axioms on random points, per metric kind.
class MetricPropertyTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(MetricPropertyTest, SymmetryAndNonNegativity) {
  const Metric m(GetParam());
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    Point a(8), b(8);
    for (std::size_t i = 0; i < 8; ++i) {
      a[i] = static_cast<Scalar>(rng.NextDouble());
      b[i] = static_cast<Scalar>(rng.NextDouble());
    }
    const double dab = m.Distance(a, b);
    EXPECT_GE(dab, 0.0);
    EXPECT_DOUBLE_EQ(dab, m.Distance(b, a));
  }
}

TEST_P(MetricPropertyTest, TriangleInequality) {
  const Metric m(GetParam());
  Rng rng(103);
  for (int trial = 0; trial < 200; ++trial) {
    Point a(6), b(6), c(6);
    for (std::size_t i = 0; i < 6; ++i) {
      a[i] = static_cast<Scalar>(rng.NextDouble());
      b[i] = static_cast<Scalar>(rng.NextDouble());
      c[i] = static_cast<Scalar>(rng.NextDouble());
    }
    EXPECT_LE(m.Distance(a, c),
              m.Distance(a, b) + m.Distance(b, c) + 1e-12);
  }
}

TEST_P(MetricPropertyTest, ComparablePreservesOrder) {
  const Metric m(GetParam());
  Rng rng(107);
  Point q(5);
  for (std::size_t i = 0; i < 5; ++i) {
    q[i] = static_cast<Scalar>(rng.NextDouble());
  }
  for (int trial = 0; trial < 200; ++trial) {
    Point a(5), b(5);
    for (std::size_t i = 0; i < 5; ++i) {
      a[i] = static_cast<Scalar>(rng.NextDouble());
      b[i] = static_cast<Scalar>(rng.NextDouble());
    }
    const bool by_distance = m.Distance(q, a) < m.Distance(q, b);
    const bool by_comparable = m.Comparable(q, a) < m.Comparable(q, b);
    EXPECT_EQ(by_distance, by_comparable);
  }
}

TEST_P(MetricPropertyTest, NormOrderingL1GeL2GeLmax) {
  // For any pair: L1 >= L2 >= Lmax.
  Rng rng(109);
  for (int trial = 0; trial < 200; ++trial) {
    Point a(7), b(7);
    for (std::size_t i = 0; i < 7; ++i) {
      a[i] = static_cast<Scalar>(rng.NextDouble());
      b[i] = static_cast<Scalar>(rng.NextDouble());
    }
    EXPECT_GE(L1(a, b), L2(a, b) - 1e-12);
    EXPECT_GE(L2(a, b), Lmax(a, b) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(MetricKind::kL1, MetricKind::kL2,
                                           MetricKind::kLmax),
                         [](const auto& info) {
                           return MetricKindToString(info.param);
                         });

}  // namespace
}  // namespace parsim
