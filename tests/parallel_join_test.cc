// All-pairs ε-similarity self-join (ParallelSearchEngine::SelfJoin) vs
// the O(n^2) linear-scan oracle: exact pair sets across dimensions,
// metrics, engine configurations (exact / quantized / cascade) and an
// epsilon grid including 0 and values straddling a planted pair's
// distance; determinism of results AND stats across thread counts; and
// composition with fault plans, replicas, and the buffer pool, with the
// page-conservation invariant under leader-pays coalescing.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/parsim/parsim.h"

namespace parsim {
namespace {

enum class SweepMode { kExact, kQuantized, kCascade };

const char* ModeName(SweepMode mode) {
  switch (mode) {
    case SweepMode::kExact:
      return "exact";
    case SweepMode::kQuantized:
      return "quantized";
    case SweepMode::kCascade:
      return "cascade";
  }
  return "?";
}

std::unique_ptr<ParallelSearchEngine> MakeEngine(
    const PointSet& data, std::uint32_t disks, SweepMode mode,
    MetricKind metric = MetricKind::kL2, unsigned workers = 0,
    std::uint64_t buffer_pages = 0, bool replicas = false) {
  EngineOptions options;
  options.architecture = Architecture::kSharedTree;
  options.bulk_load = true;
  options.metric = Metric(metric);
  options.parallel_workers = workers;
  options.buffer_pages_per_disk = buffer_pages;
  options.enable_replicas = replicas;
  options.quantized_leaf_blocks = mode != SweepMode::kExact;
  options.cascade_prefix_stage = mode == SweepMode::kCascade;
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), disks),
      options);
  EXPECT_TRUE(engine->Build(data).ok());
  return engine;
}

void ExpectSamePairs(const std::vector<JoinPair>& expected,
                     const std::vector<JoinPair>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].a, actual[i].a) << "pair " << i;
    EXPECT_EQ(expected[i].b, actual[i].b) << "pair " << i;
    EXPECT_EQ(expected[i].distance, actual[i].distance) << "pair " << i;
  }
}

void ExpectSameStats(const JoinStats& a, const JoinStats& b) {
  EXPECT_EQ(a.leaf_blocks, b.leaf_blocks);
  EXPECT_EQ(a.block_pairs_considered, b.block_pairs_considered);
  EXPECT_EQ(a.block_pairs_pruned, b.block_pairs_pruned);
  EXPECT_EQ(a.block_pairs_swept, b.block_pairs_swept);
  EXPECT_EQ(a.pairs_emitted, b.pairs_emitted);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.directory_pages, b.directory_pages);
  EXPECT_EQ(a.max_pages, b.max_pages);
  EXPECT_EQ(a.buffer_hit_pages, b.buffer_hit_pages);
  EXPECT_EQ(a.coalesced_reads, b.coalesced_reads);
  EXPECT_EQ(a.replica_pages, b.replica_pages);
  EXPECT_EQ(a.failed_read_attempts, b.failed_read_attempts);
  EXPECT_EQ(a.unavailable_pages, b.unavailable_pages);
  EXPECT_EQ(a.exact_distances, b.exact_distances);
  EXPECT_EQ(a.quantized_pruned, b.quantized_pruned);
  EXPECT_EQ(a.base_pruned, b.base_pruned);
  EXPECT_EQ(a.prefix_pruned, b.prefix_pruned);
  EXPECT_EQ(a.sq8_pruned, b.sq8_pruned);
  EXPECT_EQ(a.reranked, b.reranked);
  EXPECT_EQ(a.leaf_bytes_scanned, b.leaf_bytes_scanned);
  EXPECT_EQ(a.block_kernel_invocations, b.block_kernel_invocations);
  // Simulated times are derived from the counters, so they must match
  // bit for bit too.
  EXPECT_EQ(a.parallel_ms, b.parallel_ms);
  EXPECT_EQ(a.sum_ms, b.sum_ms);
  EXPECT_EQ(a.balance, b.balance);
}

// The structural invariants every healthy join run must satisfy,
// whatever the configuration.
void ExpectJoinInvariants(const JoinStats& s) {
  const std::uint64_t n = s.leaf_blocks;
  EXPECT_EQ(s.block_pairs_considered, n * (n + 1) / 2);
  EXPECT_EQ(s.block_pairs_swept + s.block_pairs_pruned,
            s.block_pairs_considered);
  // Self pairs have MINDIST 0 and are always swept.
  EXPECT_GE(s.block_pairs_swept, n);
  EXPECT_EQ(s.quantized_pruned,
            s.base_pruned + s.prefix_pruned + s.sq8_pruned);
}

// Page conservation on a healthy engine: leaves are one page each and
// every distinct leaf is fetched exactly once (every leaf is in its own
// surviving self pair), while every ADDITIONAL pair-touch of a leaf
// books a coalesced read. Cross pairs touch two leaves, self pairs one,
// so the spared touches are 2 * (swept - leaf_blocks).
void ExpectPageConservation(const JoinStats& s) {
  EXPECT_EQ(s.total_pages + s.buffer_hit_pages, s.leaf_blocks);
  EXPECT_EQ(s.coalesced_reads,
            2 * (s.block_pairs_swept - s.leaf_blocks));
  EXPECT_EQ(s.replica_pages, 0u);
  EXPECT_EQ(s.unavailable_pages, 0u);
  EXPECT_FALSE(s.degraded);
}

TEST(SimilarityJoinTest, MatchesOracleAcrossDimsAndSweepModes) {
  for (const std::size_t dim : {2ul, 3ul, 4ul, 8ul, 16ul}) {
    const PointSet data =
        GenerateClusteredGaussian(1500, dim, 8, 0.05, 4101 + dim);
    // Calibrate epsilon per dimension so the join is neither empty nor
    // quadratic: distances grow with sqrt(dim).
    const double eps = 0.03 * std::sqrt(static_cast<double>(dim));
    const std::vector<JoinPair> oracle = BruteForceSelfJoin(data, eps);
    for (const SweepMode mode :
         {SweepMode::kExact, SweepMode::kQuantized, SweepMode::kCascade}) {
      SCOPED_TRACE("dim " + std::to_string(dim) + " mode " + ModeName(mode));
      const auto engine = MakeEngine(data, 8, mode);
      const JoinResult result = engine->SelfJoin(eps);
      ExpectSamePairs(oracle, result.pairs);
      ExpectJoinInvariants(result.stats);
      ExpectPageConservation(result.stats);
      EXPECT_EQ(result.stats.pairs_emitted, oracle.size());
      EXPECT_GT(result.stats.directory_pages, 0u);
    }
  }
}

TEST(SimilarityJoinTest, MatchesOracleAcrossMetrics) {
  const PointSet data = GenerateClusteredGaussian(1200, 6, 6, 0.05, 4301);
  for (const MetricKind kind :
       {MetricKind::kL1, MetricKind::kL2, MetricKind::kLmax}) {
    const Metric metric(kind);
    // L1 distances are larger, Lmax smaller, than L2 at the same scale.
    const double eps = kind == MetricKind::kL1   ? 0.15
                       : kind == MetricKind::kL2 ? 0.08
                                                 : 0.05;
    const std::vector<JoinPair> oracle = BruteForceSelfJoin(data, eps, metric);
    EXPECT_FALSE(oracle.empty());
    for (const SweepMode mode : {SweepMode::kExact, SweepMode::kCascade}) {
      SCOPED_TRACE(std::string("metric ") + MetricKindToString(kind) +
                   " mode " + ModeName(mode));
      const auto engine = MakeEngine(data, 8, mode, kind);
      const JoinResult result = engine->SelfJoin(eps);
      ExpectSamePairs(oracle, result.pairs);
      ExpectJoinInvariants(result.stats);
      ExpectPageConservation(result.stats);
    }
  }
}

TEST(SimilarityJoinTest, EpsilonEdgeCasesIncludingPlantedPair) {
  const std::size_t dim = 4;
  PointSet data = GenerateUniform(800, dim, 4501);
  // Plant a pair at a known, isolated distance: copy point 0 and push it
  // delta away along the first axis.
  const double delta = 1e-4;
  Point twin(dim);
  for (std::size_t d = 0; d < dim; ++d) twin[d] = data[0][d];
  twin[0] = static_cast<Scalar>(twin[0] < 0.5 ? twin[0] + delta
                                              : twin[0] - delta);
  data.Add(twin);
  // The planted distance as the engine computes it (float coordinates).
  const Metric metric;
  const double planted =
      metric.FromComparable(metric.Comparable(data[0], data[data.size() - 1]));
  ASSERT_GT(planted, 0.0);

  for (const double eps :
       {0.0, planted * 0.5, planted * (1.0 - 1e-6), planted,
        planted * (1.0 + 1e-6), planted * 4.0}) {
    SCOPED_TRACE("eps " + std::to_string(eps));
    const std::vector<JoinPair> oracle = BruteForceSelfJoin(data, eps);
    for (const SweepMode mode : {SweepMode::kExact, SweepMode::kCascade}) {
      const auto engine = MakeEngine(data, 4, mode);
      const JoinResult result = engine->SelfJoin(eps);
      ExpectSamePairs(oracle, result.pairs);
      ExpectJoinInvariants(result.stats);
    }
    // The threshold is inclusive: at eps == planted the pair is present.
    const bool has_planted =
        std::any_of(oracle.begin(), oracle.end(), [&](const JoinPair& p) {
          return p.a == 0 && p.b == data.size() - 1;
        });
    if (eps >= planted) {
      EXPECT_TRUE(has_planted);
    } else if (eps < planted * 0.9) {
      EXPECT_FALSE(has_planted);
    }
  }
}

TEST(SimilarityJoinTest, EpsilonZeroEmitsOnlyDuplicates) {
  PointSet data = GenerateUniform(500, 3, 4701);
  // Exact duplicate rows: distance 0 pairs must survive eps = 0.
  data.Add(data[7]);
  data.Add(data[42]);
  const std::vector<JoinPair> oracle = BruteForceSelfJoin(data, 0.0);
  ASSERT_GE(oracle.size(), 2u);
  for (const JoinPair& p : oracle) {
    EXPECT_EQ(p.distance, 0.0);
  }
  for (const SweepMode mode : {SweepMode::kExact, SweepMode::kQuantized}) {
    SCOPED_TRACE(ModeName(mode));
    const auto engine = MakeEngine(data, 4, mode);
    const JoinResult result = engine->SelfJoin(0.0);
    ExpectSamePairs(oracle, result.pairs);
  }
}

TEST(SimilarityJoinTest, DeterministicAcrossThreadCounts) {
  const PointSet data = GenerateClusteredGaussian(4000, 8, 10, 0.05, 4901);
  const double eps = 0.08;
  for (const SweepMode mode : {SweepMode::kExact, SweepMode::kCascade}) {
    SCOPED_TRACE(ModeName(mode));
    // Serial engine as the reference.
    const auto serial_engine = MakeEngine(data, 8, mode);
    const JoinResult reference = serial_engine->SelfJoin(eps);
    ExpectJoinInvariants(reference.stats);
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      const auto engine = MakeEngine(data, 8, mode, MetricKind::kL2, threads);
      JoinOptions options;
      options.threads = threads;
      const JoinResult result = engine->SelfJoin(eps, options);
      ExpectSamePairs(reference.pairs, result.pairs);
      ExpectSameStats(reference.stats, result.stats);
    }
  }
}

TEST(SimilarityJoinTest, ComposesWithBufferPool) {
  const PointSet data = GenerateClusteredGaussian(3000, 6, 8, 0.05, 5101);
  const double eps = 0.07;
  const auto plain = MakeEngine(data, 8, SweepMode::kCascade);
  const std::vector<JoinPair> expected = plain->SelfJoin(eps).pairs;

  const auto buffered = MakeEngine(data, 8, SweepMode::kCascade,
                                   MetricKind::kL2, 0, /*buffer_pages=*/4096);
  const JoinResult cold = buffered->SelfJoin(eps);
  ExpectSamePairs(expected, cold.pairs);
  // Cold run: everything read from disk, nothing in the buffer yet.
  EXPECT_EQ(cold.stats.total_pages, cold.stats.leaf_blocks);
  EXPECT_EQ(cold.stats.buffer_hit_pages, 0u);
  ExpectPageConservation(cold.stats);

  const JoinResult warm = buffered->SelfJoin(eps);
  ExpectSamePairs(expected, warm.pairs);
  // Warm run: same pair set, same sweep work, but the fetches are served
  // from the buffer. buffer_hit_pages covers host directory hits too
  // (same semantics as QueryStats), so conservation reads: every page
  // touch — data or directory, buffered or not — is accounted once.
  EXPECT_EQ(warm.stats.total_pages + warm.stats.buffer_hit_pages +
                warm.stats.directory_pages,
            warm.stats.leaf_blocks + cold.stats.directory_pages);
  EXPECT_GT(warm.stats.buffer_hit_pages, 0u);
  EXPECT_LT(warm.stats.total_pages, cold.stats.total_pages);
  EXPECT_EQ(warm.stats.coalesced_reads, cold.stats.coalesced_reads);
  EXPECT_EQ(warm.stats.pairs_emitted, cold.stats.pairs_emitted);
}

TEST(SimilarityJoinTest, ComposesWithFaultPlanAndReplicas) {
  const PointSet data = GenerateClusteredGaussian(3000, 6, 8, 0.05, 5301);
  const double eps = 0.07;
  const auto engine = MakeEngine(data, 8, SweepMode::kCascade,
                                 MetricKind::kL2, 0, 0, /*replicas=*/true);
  const JoinResult healthy = engine->SelfJoin(eps);
  ExpectPageConservation(healthy.stats);

  FaultPlan plan(8);
  plan.FailDisk(2);
  engine->SetFaultPlan(plan);
  const JoinResult degraded = engine->SelfJoin(eps);
  engine->ClearFaults();

  // The answer is unaffected by the failure; only the routing changes.
  ExpectSamePairs(healthy.pairs, degraded.pairs);
  EXPECT_TRUE(degraded.stats.degraded);
  EXPECT_GT(degraded.stats.replica_pages, 0u);
  EXPECT_EQ(degraded.stats.unavailable_pages, 0u);
  // Every leaf is still read exactly once (failovers included).
  EXPECT_EQ(degraded.stats.total_pages + degraded.stats.buffer_hit_pages,
            degraded.stats.leaf_blocks);
  EXPECT_EQ(degraded.stats.coalesced_reads, healthy.stats.coalesced_reads);

  const JoinResult recovered = engine->SelfJoin(eps);
  ExpectSamePairs(healthy.pairs, recovered.pairs);
  EXPECT_FALSE(recovered.stats.degraded);
}

TEST(SimilarityJoinTest, QuantizedSweepAccountingTiesToExact) {
  const PointSet data = GenerateClusteredGaussian(2500, 8, 8, 0.05, 5501);
  const double eps = 0.06;
  const auto exact = MakeEngine(data, 8, SweepMode::kExact);
  const auto quant = MakeEngine(data, 8, SweepMode::kQuantized);
  const auto cascade = MakeEngine(data, 8, SweepMode::kCascade);
  const JoinResult re = exact->SelfJoin(eps);
  const JoinResult rq = quant->SelfJoin(eps);
  const JoinResult rc = cascade->SelfJoin(eps);
  ExpectSamePairs(re.pairs, rq.pairs);
  ExpectSamePairs(re.pairs, rc.pairs);
  // The quantized sweeps triage exactly the candidate pairs the exact
  // sweep evaluated: every candidate is either pruned by a provable
  // lower bound or re-ranked through the exact kernel.
  EXPECT_EQ(rq.stats.quantized_pruned + rq.stats.reranked,
            re.stats.exact_distances);
  EXPECT_EQ(rc.stats.quantized_pruned + rc.stats.reranked,
            re.stats.exact_distances);
  // Pruning must actually bite on clustered data at a selective eps.
  EXPECT_GT(rq.stats.quantized_pruned, re.stats.exact_distances / 2);
  // Same-parent pairs sweep the shared parent codebook (full-dimension
  // reductions, no prefix stage), so prefix attribution can only come
  // from cross-parent fallback sweeps — it never exceeds the cascade's
  // own full+base share and both engines triage the same total.
  EXPECT_EQ(rc.stats.quantized_pruned, rc.stats.base_pruned +
                                           rc.stats.prefix_pruned +
                                           rc.stats.sq8_pruned);
  EXPECT_EQ(rq.stats.quantized_pruned + rq.stats.reranked,
            rc.stats.quantized_pruned + rc.stats.reranked);
  // Re-ranked exact evaluations are the only float kernel work.
  EXPECT_EQ(rq.stats.exact_distances, rq.stats.reranked);
  EXPECT_LT(rq.stats.exact_distances, re.stats.exact_distances);
}

TEST(SimilarityJoinTest, TinyInputs) {
  // n = 1: no pairs, but the join must run (one leaf, one self pair).
  PointSet one(4);
  one.Add(Point(4, 0.5f));
  const auto e1 = MakeEngine(one, 2, SweepMode::kExact);
  const JoinResult r1 = e1->SelfJoin(1.0);
  EXPECT_TRUE(r1.pairs.empty());
  EXPECT_EQ(r1.stats.leaf_blocks, 1u);
  EXPECT_EQ(r1.stats.block_pairs_swept, 1u);

  // n = 2 within range: exactly one pair.
  PointSet two(4);
  two.Add(Point(4, 0.4f));
  two.Add(Point(4, 0.6f));
  const auto e2 = MakeEngine(two, 2, SweepMode::kExact);
  const JoinResult r2 = e2->SelfJoin(1.0);
  ASSERT_EQ(r2.pairs.size(), 1u);
  EXPECT_EQ(r2.pairs[0].a, 0u);
  EXPECT_EQ(r2.pairs[0].b, 1u);
  ExpectSamePairs(BruteForceSelfJoin(two, 1.0), r2.pairs);

  // Huge epsilon: all n*(n-1)/2 pairs, still matching the oracle.
  const PointSet small = GenerateUniform(60, 3, 5701);
  const auto e3 = MakeEngine(small, 2, SweepMode::kCascade);
  const JoinResult r3 = e3->SelfJoin(10.0);
  EXPECT_EQ(r3.pairs.size(), small.size() * (small.size() - 1) / 2);
  ExpectSamePairs(BruteForceSelfJoin(small, 10.0), r3.pairs);
  EXPECT_EQ(r3.stats.block_pairs_pruned, 0u);
}

TEST(SimilarityJoinTest, MbrPruningBitesOnSeparatedClusters) {
  // Two tight, well-separated clusters: cross-cluster block pairs must
  // be pruned by MBR MINDIST without touching any page.
  const std::size_t dim = 4;
  PointSet data(dim);
  Rng rng(5901);
  for (std::size_t i = 0; i < 2000; ++i) {
    Point p(dim);
    const double base = i < 1000 ? 0.1 : 0.9;
    for (std::size_t d = 0; d < dim; ++d) {
      p[d] = static_cast<Scalar>(base + 0.02 * (rng.NextDouble() - 0.5));
    }
    data.Add(p);
  }
  const double eps = 0.05;  // far below the ~1.6 cluster separation
  const auto engine = MakeEngine(data, 8, SweepMode::kExact);
  const JoinResult result = engine->SelfJoin(eps);
  ExpectSamePairs(BruteForceSelfJoin(data, eps), result.pairs);
  ExpectJoinInvariants(result.stats);
  EXPECT_GT(result.stats.block_pairs_pruned, 0u);
  // No pair may bridge the clusters.
  for (const JoinPair& p : result.pairs) {
    EXPECT_EQ(p.a < 1000, p.b < 1000);
  }
}

}  // namespace
}  // namespace parsim
