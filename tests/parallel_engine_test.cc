#include "src/parallel/engine.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/near_optimal.h"
#include "src/index/knn.h"
#include "src/parallel/route_memo.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

std::unique_ptr<ParallelSearchEngine> MakeEngine(
    const PointSet& data, std::uint32_t disks, EngineOptions options = {}) {
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), disks),
      options);
  const Status s = engine->Build(data);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine;
}

TEST(EngineTest, ConstructionWiring) {
  auto dec = std::make_unique<RoundRobinDeclusterer>(4);
  ParallelSearchEngine engine(3, std::move(dec));
  EXPECT_EQ(engine.num_disks(), 4u);
  EXPECT_EQ(engine.dim(), 3u);
  EXPECT_EQ(engine.size(), 0u);
  EXPECT_EQ(engine.declusterer().name(), "RR");
  EXPECT_EQ(engine.disks().size(), 4u);
}

TEST(EngineTest, BuildPartitionsAllPoints) {
  const PointSet data = GenerateUniform(4000, 5, 301);
  EngineOptions options;
  options.architecture = Architecture::kFederatedTrees;
  auto engine = MakeEngine(data, 8, options);
  EXPECT_EQ(engine->size(), 4000u);
  std::size_t stored = 0;
  for (DiskId d = 0; d < 8; ++d) stored += engine->tree(d).size();
  EXPECT_EQ(stored, 4000u);
}

TEST(EngineTest, SharedTreeBuildsOneGlobalIndex) {
  const PointSet data = GenerateUniform(4000, 5, 301);
  auto engine = MakeEngine(data, 8);  // default architecture
  EXPECT_EQ(engine->size(), 4000u);
  EXPECT_EQ(engine->tree(0).size(), 4000u);
  // tree(d) returns the same global tree for any d.
  EXPECT_EQ(&engine->tree(0), &engine->tree(7));
}

TEST(EngineTest, ScanArchitectureMatchesBruteForce) {
  const PointSet data = GenerateUniform(3000, 5, 341);
  EngineOptions options;
  options.architecture = Architecture::kFederatedScan;
  auto engine = MakeEngine(data, 8, options);
  const PointSet queries = GenerateUniformQueries(10, 5, 343);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto got = engine->Query(queries[qi], 5);
    const auto expected = BruteForceKnn(data, queries[qi], 5);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
      EXPECT_EQ(got[i].id, expected[i].id);
    }
  }
}

TEST(EngineTest, ScanArchitectureReadsEveryPageEveryQuery) {
  const PointSet data = GenerateUniform(4000, 5, 345);
  EngineOptions options;
  options.architecture = Architecture::kFederatedScan;
  ParallelSearchEngine engine(5, std::make_unique<RoundRobinDeclusterer>(4),
                              options);
  ASSERT_TRUE(engine.Build(data).ok());
  QueryStats stats;
  (void)engine.Query(data[0], 1, &stats);
  // 4000 points round-robin: 1000 per disk; d=5 records are 24 bytes,
  // 170 per page -> 6 pages per disk.
  EXPECT_EQ(stats.total_pages, 24u);
  EXPECT_EQ(stats.max_pages, 6u);
  EXPECT_DOUBLE_EQ(stats.balance, 1.0);
}

TEST(EngineTest, BuildTwiceRejected) {
  const PointSet data = GenerateUniform(100, 3, 303);
  auto engine = MakeEngine(data, 4);
  EXPECT_EQ(engine->Build(data).code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, DimensionMismatchRejected) {
  const PointSet data = GenerateUniform(100, 3, 305);
  ParallelSearchEngine engine(4,
                              std::make_unique<NearOptimalDeclusterer>(4, 4));
  EXPECT_EQ(engine.Build(data).code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, QueryMatchesBruteForce) {
  const PointSet data = GenerateUniform(6000, 8, 307);
  auto engine = MakeEngine(data, 8);
  const PointSet queries = GenerateUniformQueries(20, 8, 309);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto got = engine->Query(queries[qi], 10);
    const auto expected = BruteForceKnn(data, queries[qi], 10);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST(EngineTest, QueryMatchesBruteForceAcrossDeclusterers) {
  // Correctness must not depend on the declustering method.
  const PointSet data = GenerateUniform(3000, 5, 311);
  const PointSet queries = GenerateUniformQueries(10, 5, 313);
  std::vector<std::unique_ptr<Declusterer>> decs;
  decs.push_back(std::make_unique<RoundRobinDeclusterer>(5));
  decs.push_back(std::make_unique<DiskModuloDeclusterer>(5, 5));
  decs.push_back(std::make_unique<FxDeclusterer>(5, 5));
  decs.push_back(std::make_unique<HilbertDeclusterer>(5, 5));
  decs.push_back(std::make_unique<NearOptimalDeclusterer>(5, 5));
  for (auto& dec : decs) {
    const std::string name = dec->name();
    ParallelSearchEngine engine(5, std::move(dec));
    ASSERT_TRUE(engine.Build(data).ok());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const auto got = engine.Query(queries[qi], 5);
      const auto expected = BruteForceKnn(data, queries[qi], 5);
      ASSERT_EQ(got.size(), expected.size()) << name;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9) << name;
      }
    }
  }
}

TEST(EngineTest, BulkLoadBuildMatchesInsertBuildResults) {
  const PointSet data = GenerateUniform(5000, 6, 315);
  EngineOptions bulk_options;
  bulk_options.bulk_load = true;
  auto bulk_engine = MakeEngine(data, 8, bulk_options);
  auto insert_engine = MakeEngine(data, 8);
  const PointSet queries = GenerateUniformQueries(15, 6, 317);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto a = bulk_engine->Query(queries[qi], 7);
    const auto b = insert_engine->Query(queries[qi], 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
  }
}

TEST(EngineTest, RkvAlgorithmOptionWorks) {
  const PointSet data = GenerateUniform(3000, 4, 319);
  EngineOptions options;
  options.knn_algorithm = KnnAlgorithm::kRkv;
  auto engine = MakeEngine(data, 4, options);
  const PointSet queries = GenerateUniformQueries(10, 4, 321);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto got = engine->Query(queries[qi], 3);
    const auto expected = BruteForceKnn(data, queries[qi], 3);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
  }
}

TEST(EngineTest, RStarTreeKindOptionWorks) {
  const PointSet data = GenerateUniform(2000, 3, 323);
  EngineOptions options;
  options.tree_kind = TreeKind::kRStarTree;
  auto engine = MakeEngine(data, 4, options);
  EXPECT_EQ(engine->tree(0).name(), "R*-tree");
  const auto got = engine->Query(data[0], 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].distance, 0.0);
}

TEST(EngineTest, QueryStatsPopulated) {
  const PointSet data = GenerateUniform(8000, 8, 325);
  auto engine = MakeEngine(data, 8);
  QueryStats stats;
  (void)engine->Query(Point(std::vector<Scalar>(8, 0.5f)), 10, &stats);
  EXPECT_GT(stats.parallel_ms, 0.0);
  EXPECT_GE(stats.sum_ms, stats.parallel_ms);
  EXPECT_GT(stats.max_pages, 0u);
  EXPECT_GE(stats.total_pages, stats.max_pages);
  EXPECT_GT(stats.balance, 0.0);
  EXPECT_LE(stats.balance, 1.0 + 1e-12);
  ASSERT_EQ(stats.pages_per_disk.size(), 8u);
  std::uint64_t sum = 0;
  for (auto p : stats.pages_per_disk) sum += p;
  EXPECT_EQ(sum, stats.total_pages);
}

TEST(EngineTest, SingleDiskEngineIsSequentialBaseline) {
  const PointSet data = GenerateUniform(4000, 6, 327);
  auto engine = MakeEngine(data, 1);
  QueryStats stats;
  (void)engine->Query(data[42], 5, &stats);
  EXPECT_DOUBLE_EQ(stats.parallel_ms, stats.sum_ms);
  EXPECT_EQ(stats.max_pages, stats.total_pages);
}

TEST(EngineTest, DynamicInsertAfterBuild) {
  const PointSet data = GenerateUniform(1000, 4, 329);
  auto engine = MakeEngine(data, 4);
  const Point novel = {0.111f, 0.222f, 0.333f, 0.444f};
  ASSERT_TRUE(engine->Insert(novel, 555555).ok());
  EXPECT_EQ(engine->size(), 1001u);
  const auto got = engine->Query(novel, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 555555u);
  EXPECT_EQ(got[0].distance, 0.0);
}

TEST(EngineTest, NearOptimalBalancesPagesBetterThanRoundRobin) {
  // The core claim, in miniature: on uniform data a near-optimal
  // declustered NN search spreads its page reads over many disks, so the
  // average balance ratio (avg pages / max pages) stays well above the
  // one-disk-does-everything floor of 1/n.
  const std::size_t d = 10;
  const PointSet data = GenerateUniform(16000, d, 331);
  auto engine = MakeEngine(data, 16);
  const PointSet queries = GenerateUniformQueries(20, d, 333);
  double balance_sum = 0.0;
  QueryStats stats;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    (void)engine->Query(queries[qi], 10, &stats);
    balance_sum += stats.balance;
  }
  EXPECT_GT(balance_sum / static_cast<double>(queries.size()), 0.3)
      << "declustered search must involve many disks per query";
}

TEST(EngineTest, PageBufferMakesRepeatedQueriesCheaper) {
  const PointSet data = GenerateUniform(8000, 6, 351);
  EngineOptions options;
  options.buffer_pages_per_disk = 4096;  // effectively everything fits
  auto engine = MakeEngine(data, 8, options);
  const Point q = {0.2f, 0.4f, 0.6f, 0.8f, 0.3f, 0.7f};
  QueryStats cold, warm;
  (void)engine->Query(q, 10, &cold);
  (void)engine->Query(q, 10, &warm);
  EXPECT_GT(cold.total_pages, 0u);
  EXPECT_EQ(warm.total_pages, 0u) << "second identical query is all hits";
  EXPECT_GT(warm.buffer_hit_pages, 0u);
  EXPECT_LT(warm.parallel_ms, cold.parallel_ms);
}

TEST(EngineTest, PageBufferDoesNotChangeAnswers) {
  const PointSet data = GenerateUniform(5000, 5, 353);
  EngineOptions buffered;
  buffered.buffer_pages_per_disk = 64;
  auto plain = MakeEngine(data, 4);
  auto cached = MakeEngine(data, 4, buffered);
  const PointSet queries = GenerateUniformQueries(15, 5, 355);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto a = plain->Query(queries[qi], 7);
    const auto b = cached->Query(queries[qi], 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST(EngineTest, BuildStatsRecordedAndQueriesStartClean) {
  const PointSet data = GenerateUniform(2000, 4, 335);
  auto engine = MakeEngine(data, 4);
  EXPECT_GT(engine->BuildStats().pages_written, 0u);
  QueryStats stats;
  (void)engine->Query(data[0], 1, &stats);
  // Query stats must not include build-time writes.
  EXPECT_EQ(engine->disks().TotalStats().pages_written, 0u);
}

// Pins the memo-word fix: the packed leaf route guards BOTH fields now.
// Formerly only the primary disk id was range-checked while the bucket
// was shifted into bits 16..47 unchecked — a bucket at or above 2^32
// would spill into the reserved bits (and, at bucket bit 47, clobber
// the valid flag). Unpackable routes must simply not be cached.
TEST(RouteMemoTest, RoundTripsMaximalInRangeFields) {
  const std::uint64_t max_primary = (1ull << route_memo::kPrimaryBits) - 1;
  const std::uint64_t max_bucket = (1ull << route_memo::kBucketBits) - 1;
  for (const std::uint64_t primary :
       std::vector<std::uint64_t>{0, 7, max_primary}) {
    for (const std::uint64_t bucket :
         std::vector<std::uint64_t>{0, 123456789, max_bucket}) {
      const std::uint64_t word = route_memo::Pack(primary, bucket);
      ASSERT_NE(word, 0u);
      EXPECT_TRUE(route_memo::IsValid(word));
      EXPECT_EQ(route_memo::PrimaryOf(word), primary);
      EXPECT_EQ(route_memo::BucketOf(word), bucket);
    }
  }
}

TEST(RouteMemoTest, WideFieldsAreNotCached) {
  const std::uint64_t wide_primary = 1ull << route_memo::kPrimaryBits;
  const std::uint64_t wide_bucket = 1ull << route_memo::kBucketBits;
  EXPECT_FALSE(route_memo::Fits(wide_primary, 0));
  EXPECT_FALSE(route_memo::Fits(0, wide_bucket));
  EXPECT_EQ(route_memo::Pack(wide_primary, 0), 0u);
  EXPECT_EQ(route_memo::Pack(0, wide_bucket), 0u);
  // The corruption the guard prevents: the bucket bit that would land on
  // the valid flag if it were shifted in unchecked.
  const std::uint64_t flag_clobber_bucket = 1ull << (63 - 16);
  EXPECT_EQ(route_memo::Pack(0, flag_clobber_bucket), 0u);
  // An unchecked shift of that bucket lands its top bit on bit 63: the
  // word reads back "valid" with bucket 0 — a wrong route, silently.
  const std::uint64_t unchecked =
      route_memo::kValidBit |
      (flag_clobber_bucket << route_memo::kPrimaryBits);
  EXPECT_TRUE(route_memo::IsValid(unchecked));
  EXPECT_NE(route_memo::BucketOf(unchecked), flag_clobber_bucket)
      << "unguarded packing would round-trip the bucket wrongly";
}

}  // namespace
}  // namespace parsim
