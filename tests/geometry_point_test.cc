#include "src/geometry/point.h"

#include <gtest/gtest.h>

namespace parsim {
namespace {

TEST(PointTest, DefaultIsZeroDimensional) {
  Point p;
  EXPECT_EQ(p.dim(), 0u);
}

TEST(PointTest, FilledConstruction) {
  Point p(3, Scalar{0.5});
  ASSERT_EQ(p.dim(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(p[i], Scalar{0.5});
}

TEST(PointTest, InitializerList) {
  Point p = {Scalar{0.1}, Scalar{0.2}, Scalar{0.3}};
  ASSERT_EQ(p.dim(), 3u);
  EXPECT_FLOAT_EQ(p[1], 0.2f);
}

TEST(PointTest, MutationThroughIndex) {
  Point p(2);
  p[0] = Scalar{1};
  p[1] = Scalar{2};
  EXPECT_EQ(p[0], Scalar{1});
  EXPECT_EQ(p[1], Scalar{2});
}

TEST(PointTest, ViewConversionSharesData) {
  Point p = {Scalar{1}, Scalar{2}};
  PointView v = p;
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.data(), p.data());
  EXPECT_EQ(v[1], Scalar{2});
}

TEST(PointTest, Equality) {
  EXPECT_EQ(Point({1, 2}), Point({1, 2}));
  EXPECT_FALSE(Point({1, 2}) == Point({1, 3}));
  EXPECT_FALSE(Point({1, 2}) == Point({1, 2, 3}));
}

TEST(PointTest, ToString) {
  Point p = {Scalar{0.25}, Scalar{0.75}};
  EXPECT_EQ(p.ToString(), "(0.25, 0.75)");
}

TEST(PointSetTest, EmptyByDefault) {
  PointSet s(4);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.dim(), 4u);
}

TEST(PointSetTest, AddAndRead) {
  PointSet s(2);
  s.Add(Point({1, 2}));
  s.Add(Point({3, 4}));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0][0], Scalar{1});
  EXPECT_EQ(s[1][1], Scalar{4});
}

TEST(PointSetTest, MaterializeCopies) {
  PointSet s(2);
  s.Add(Point({5, 6}));
  Point p = s.Materialize(0);
  EXPECT_EQ(p, Point({5, 6}));
}

TEST(PointSetTest, MutableAccess) {
  PointSet s(2);
  s.Add(Point({0, 0}));
  s.Mutable(0)[1] = Scalar{9};
  EXPECT_EQ(s[0][1], Scalar{9});
}

TEST(PointSetTest, BytesAccounting) {
  PointSet s(15);
  EXPECT_EQ(s.BytesPerPoint(), 15 * sizeof(Scalar) + sizeof(PointId));
  s.Add(Point(15));
  s.Add(Point(15));
  EXPECT_EQ(s.TotalBytes(), 2 * s.BytesPerPoint());
}

TEST(PointSetTest, ViewsStayContiguous) {
  PointSet s(3);
  for (int i = 0; i < 10; ++i) {
    s.Add(Point({Scalar(i), Scalar(i + 1), Scalar(i + 2)}));
  }
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(s[i][0], Scalar(i));
    EXPECT_EQ(s[i][2], Scalar(i + 2));
  }
}

TEST(PointSetDeathTest, DimensionMismatchOnAdd) {
  PointSet s(3);
  EXPECT_DEATH(s.Add(Point({1, 2})), "PARSIM_CHECK");
}

TEST(PointSetDeathTest, ZeroDimensionForbidden) {
  EXPECT_DEATH(PointSet(0), "PARSIM_CHECK");
}

}  // namespace
}  // namespace parsim
