#include "src/eval/throughput.h"

#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/near_optimal.h"
#include "src/eval/experiment.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

TEST(ThroughputTest, BasicAccounting) {
  const std::size_t d = 6;
  const PointSet data = GenerateUniform(5000, d, 801);
  auto engine =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 8));
  const PointSet queries = GenerateUniformQueries(16, d, 803);
  const ThroughputResult r = SimulateThroughput(*engine, queries, 10);
  EXPECT_EQ(r.num_queries, 16u);
  EXPECT_GT(r.makespan_ms, 0.0);
  EXPECT_GT(r.throughput_qps, 0.0);
  EXPECT_GT(r.avg_latency_ms, 0.0);
  EXPECT_GT(r.avg_disk_utilization, 0.0);
  EXPECT_LE(r.avg_disk_utilization, 1.0 + 1e-12);
  ASSERT_EQ(r.pages_per_disk.size(), 8u);
  std::uint64_t total = 0;
  for (auto p : r.pages_per_disk) total += p;
  EXPECT_GT(total, 0u);
}

TEST(ThroughputTest, ThroughputConsistentWithMakespan) {
  const std::size_t d = 5;
  const PointSet data = GenerateUniform(3000, d, 805);
  auto engine =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kHilbert, d, 4));
  const PointSet queries = GenerateUniformQueries(10, d, 807);
  const ThroughputResult r = SimulateThroughput(*engine, queries, 5);
  EXPECT_NEAR(r.throughput_qps,
              static_cast<double>(r.num_queries) / (r.makespan_ms / 1000.0),
              1e-9);
}

TEST(ThroughputTest, BatchAmortizesBetterThanSerialLatency) {
  // Makespan of the batch must be at most the sum of individual max-rule
  // latencies (parallel disks overlap work across queries), and the
  // batch rate must beat the serial rate.
  const std::size_t d = 8;
  const PointSet data = GenerateUniform(10000, d, 809);
  auto engine =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 8));
  const PointSet queries = GenerateUniformQueries(20, d, 811);
  const ThroughputResult r = SimulateThroughput(*engine, queries, 10);
  EXPECT_LE(r.makespan_ms,
            r.avg_latency_ms * static_cast<double>(r.num_queries) + 1e-6);
  const double serial_qps =
      1000.0 / r.avg_latency_ms;  // one query at a time
  EXPECT_GE(r.throughput_qps, serial_qps * 0.99);
}

TEST(ThroughputTest, MoreDisksMoreThroughput) {
  const std::size_t d = 10;
  const PointSet data = GenerateUniform(12000, d, 813);
  const PointSet queries = GenerateUniformQueries(20, d, 815);
  auto small =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 2));
  auto large =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 16));
  const ThroughputResult r2 = SimulateThroughput(*small, queries, 10);
  const ThroughputResult r16 = SimulateThroughput(*large, queries, 10);
  EXPECT_GT(r16.throughput_qps, 2.0 * r2.throughput_qps);
}

TEST(ThroughputTest, RoundRobinAggregateBalanceIsHigh) {
  // The divergence the paper's future-work remark anticipates: RR has
  // poor per-query balance on bucketed workloads but near-perfect
  // aggregate balance, so its *throughput* utilization is high.
  const std::size_t d = 8;
  const PointSet data = GenerateUniform(12000, d, 817);
  EngineOptions fed;
  fed.architecture = Architecture::kFederatedTrees;
  fed.bulk_load = true;
  auto rr = BuildEngine(data, std::make_unique<RoundRobinDeclusterer>(8), fed);
  const PointSet queries = GenerateUniformQueries(24, d, 819);
  const ThroughputResult r = SimulateThroughput(*rr, queries, 10);
  EXPECT_GT(r.avg_disk_utilization, 0.8);
}

}  // namespace
}  // namespace parsim
