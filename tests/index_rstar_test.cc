#include "src/index/rstar_tree.h"

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "src/workload/generators.h"

namespace parsim {
namespace {

std::vector<PointId> BruteForceRange(const PointSet& points,
                                     const Rect& query) {
  std::vector<PointId> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (query.Contains(points[i])) out.push_back(static_cast<PointId>(i));
  }
  return out;
}

TEST(RStarTreeTest, EmptyTree) {
  SimulatedDisk disk(0);
  RStarTree tree(3, &disk);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_EQ(tree.root_id(), kInvalidNodeId);
  EXPECT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_TRUE(tree.RangeQuery(Rect::UnitCube(3)).empty());
  EXPECT_FALSE(tree.Contains(Point({0, 0, 0}), 0));
}

TEST(RStarTreeTest, SingleInsert) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  ASSERT_TRUE(tree.Insert(Point({0.5f, 0.5f}), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Contains(Point({0.5f, 0.5f}), 7));
  EXPECT_FALSE(tree.Contains(Point({0.5f, 0.5f}), 8));
  EXPECT_TRUE(tree.ValidateInvariants().ok());
}

TEST(RStarTreeTest, DimensionMismatchRejected) {
  SimulatedDisk disk(0);
  RStarTree tree(3, &disk);
  const Status s = tree.Insert(Point({0.5f, 0.5f}), 0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(RStarTreeTest, GrowsBeyondOneNode) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const PointSet data = GenerateUniform(2000, 2, 51);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  EXPECT_EQ(tree.size(), 2000u);
  EXPECT_GE(tree.height(), 2);
  ASSERT_TRUE(tree.ValidateInvariants().ok());
  const auto stats = tree.ComputeStats();
  EXPECT_GT(stats.num_leaves, 1u);
  EXPECT_EQ(stats.num_supernodes, 0u) << "R*-tree never builds supernodes";
  EXPECT_GT(stats.avg_leaf_fill, 0.4);
}

TEST(RStarTreeTest, AccessChargesDisk) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const PointSet data = GenerateUniform(500, 2, 53);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  disk.ResetStats();
  (void)tree.RangeQuery(Rect({0.0f, 0.0f}, {0.2f, 0.2f}));
  EXPECT_GT(disk.stats().TotalPagesRead(), 0u);
  const auto before = disk.stats().TotalPagesRead();
  (void)tree.PeekNode(tree.root_id());
  EXPECT_EQ(disk.stats().TotalPagesRead(), before) << "PeekNode is free";
}

TEST(RStarTreeTest, DuplicatePointsSupported) {
  SimulatedDisk disk(0);
  RStarTree tree(2, &disk);
  const Point p = {0.5f, 0.5f};
  for (PointId id = 0; id < 500; ++id) {
    ASSERT_TRUE(tree.Insert(p, id).ok());
  }
  EXPECT_TRUE(tree.ValidateInvariants().ok());
  const auto hits = tree.RangeQuery(Rect::AroundPoint(p));
  EXPECT_EQ(hits.size(), 500u);
}

TEST(RStarTreeTest, NoForcedReinsertOptionStillValid) {
  SimulatedDisk disk(0);
  TreeOptions options;
  options.forced_reinsert = false;
  RStarTree tree(3, &disk, options);
  const PointSet data = GenerateUniform(3000, 3, 55);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  EXPECT_TRUE(tree.ValidateInvariants().ok());
  EXPECT_EQ(tree.size(), 3000u);
}

// ---------------------------------------------------------------------------
// Parameterized structural + query-correctness sweeps.

class RStarSweepTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RStarSweepTest, InvariantsAndRangeQueriesMatchBruteForce) {
  const auto [dim, n] = GetParam();
  SimulatedDisk disk(0);
  RStarTree tree(dim, &disk);
  const PointSet data = GenerateUniform(n, dim, 57 + dim + n);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  ASSERT_TRUE(tree.ValidateInvariants().ok());

  Rng rng(100 + dim);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Scalar> lo(dim), hi(dim);
    for (std::size_t j = 0; j < dim; ++j) {
      const double a = rng.NextDouble();
      const double b = rng.NextDouble();
      lo[j] = static_cast<Scalar>(std::min(a, b));
      hi[j] = static_cast<Scalar>(std::max(a, b));
    }
    const Rect query(std::move(lo), std::move(hi));
    auto got = tree.RangeQuery(query);
    auto expected = BruteForceRange(data, query);
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected);
  }
}

TEST_P(RStarSweepTest, EveryPointRetrievable) {
  const auto [dim, n] = GetParam();
  SimulatedDisk disk(0);
  RStarTree tree(dim, &disk);
  const PointSet data = GenerateUniform(n, dim, 61 + dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Insert(data[i], static_cast<PointId>(i)).ok());
  }
  // Spot-check membership of a sample (full scan is O(n^2) page touches).
  Rng rng(63);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t i = rng.NextBounded(data.size());
    EXPECT_TRUE(tree.Contains(data[i], static_cast<PointId>(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimSize, RStarSweepTest,
    ::testing::Values(std::make_tuple(std::size_t{2}, std::size_t{100}),
                      std::make_tuple(std::size_t{2}, std::size_t{5000}),
                      std::make_tuple(std::size_t{3}, std::size_t{2000}),
                      std::make_tuple(std::size_t{5}, std::size_t{3000}),
                      std::make_tuple(std::size_t{8}, std::size_t{4000}),
                      std::make_tuple(std::size_t{15}, std::size_t{3000})),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace parsim
