#include "src/workload/generators.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/core/bucket.h"
#include "src/geometry/metric.h"

namespace parsim {
namespace {

bool AllInUnitCube(const PointSet& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.dim(); ++j) {
      if (points[i][j] < 0.0f || points[i][j] > 1.0f) return false;
    }
  }
  return true;
}

double MeanOfDim(const PointSet& points, std::size_t dim_index) {
  double sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    sum += static_cast<double>(points[i][dim_index]);
  }
  return sum / static_cast<double>(points.size());
}

TEST(SizingTest, PointsForMegabytesMatchesPaperRecordMath) {
  // d=15: 64-byte records; 30 MB ~ 491520 points.
  EXPECT_EQ(NumPointsForMegabytes(30.0, 15), 30u * 1024 * 1024 / 64);
  EXPECT_NEAR(MegabytesForPoints(NumPointsForMegabytes(30.0, 15), 15), 30.0,
              0.01);
}

TEST(UniformTest, DeterministicAndInRange) {
  const PointSet a = GenerateUniform(1000, 5, 7);
  const PointSet b = GenerateUniform(1000, 5, 7);
  const PointSet c = GenerateUniform(1000, 5, 8);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_TRUE(AllInUnitCube(a));
  // Same seed -> same data; different seed -> different data.
  EXPECT_EQ(a[0][0], b[0][0]);
  EXPECT_EQ(a[999][4], b[999][4]);
  EXPECT_NE(a[0][0], c[0][0]);
}

TEST(UniformTest, MarginalsUniform) {
  const PointSet points = GenerateUniform(50000, 3, 9);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(MeanOfDim(points, j), 0.5, 0.01);
  }
}

TEST(UniformTest, BucketsEvenlyPopulated) {
  const PointSet points = GenerateUniform(32000, 5, 11);
  const Bucketizer bucketizer(5);
  std::vector<int> counts(32, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++counts[bucketizer.BucketOf(points[i])];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(ClusteredTest, FormsTightClusters) {
  const PointSet points = GenerateClusteredGaussian(10000, 4, 3, 0.02, 13);
  EXPECT_TRUE(AllInUnitCube(points));
  // Average nearest-cluster spread: most points lie within ~4 sigma of
  // one of few modes, so the global per-dimension variance is dominated
  // by the cluster centers, not 1/12 (uniform). Check data is NOT
  // uniform: bucket occupancy is extremely uneven.
  const Bucketizer bucketizer(4);
  std::vector<int> counts(16, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ++counts[bucketizer.BucketOf(points[i])];
  }
  const int occupied =
      static_cast<int>(std::count_if(counts.begin(), counts.end(),
                                     [](int c) { return c > 100; }));
  EXPECT_LE(occupied, 6) << "3 tight clusters cover few quadrants";
}

TEST(ClusteredTest, SingleClusterDegenerate) {
  const PointSet points = GenerateClusteredGaussian(2000, 3, 1, 0.01, 17);
  // All points within a small ball around one center.
  Point center(3);
  for (std::size_t j = 0; j < 3; ++j) {
    center[j] = static_cast<Scalar>(MeanOfDim(points, j));
  }
  std::size_t outliers = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (L2(points[i], center) > 0.1) ++outliers;
  }
  EXPECT_LT(outliers, 10u);
}

TEST(FourierTest, InRangeAndDeterministic) {
  const PointSet a = GenerateFourierPoints(5000, 12, 19);
  const PointSet b = GenerateFourierPoints(5000, 12, 19);
  EXPECT_TRUE(AllInUnitCube(a));
  EXPECT_EQ(a[123][7], b[123][7]);
}

TEST(FourierTest, VariantsClusterAroundBaseShapes) {
  FourierOptions options;
  options.base_shapes = 4;
  options.variation = 0.02;
  const PointSet points = GenerateFourierPoints(8000, 10, 23, options);
  // With 4 base shapes and tiny variation, points form 4 tight clusters:
  // the distance from any point to its nearest "centroid" (approximated
  // by another point of the same cluster) is small. Proxy: nearest
  // neighbor of each of a sample is much closer than the typical
  // inter-point distance of uniform data.
  double nn_sum = 0.0;
  const std::size_t sample = 50;
  for (std::size_t i = 0; i < sample; ++i) {
    double best = 1e9;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (j == i) continue;
      best = std::min(best, L2(points[i], points[j]));
    }
    nn_sum += best;
  }
  EXPECT_LT(nn_sum / sample, 0.05);
}

TEST(FourierTest, SpectralDecayAcrossDimensions) {
  // Higher harmonics have smaller scale, so after the affine map the
  // spread of high dimensions around 0.5 is similar... the *pre-map*
  // scale decays; post-map all dims are normalized. What survives is the
  // clustering: verify instead that per-dimension means differ strongly
  // across base shapes (correlation structure), i.e. marginals are
  // multi-modal rather than uniform: variance of dimension means across
  // clusters > 0. Simplest robust check: the marginal variance is well
  // below uniform's 1/12 for small variation (clusters collapse it).
  FourierOptions options;
  options.base_shapes = 2;
  options.variation = 0.01;
  const PointSet points = GenerateFourierPoints(4000, 8, 29, options);
  for (std::size_t j = 0; j < 8; ++j) {
    double mean = MeanOfDim(points, j);
    double var = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = static_cast<double>(points[i][j]) - mean;
      var += d * d;
    }
    var /= static_cast<double>(points.size());
    EXPECT_LT(var, 1.0 / 12.0) << "dim " << j;
  }
}

TEST(TextTest, InRangeAndSkewed) {
  const PointSet points = GenerateTextDescriptors(5000, 15, 31);
  EXPECT_TRUE(AllInUnitCube(points));
  EXPECT_EQ(points.dim(), 15u);
  // Zipf letter groups: a few dimensions have high mean frequency, most
  // are near zero. Sorted means must be heavily skewed.
  std::vector<double> means(15);
  for (std::size_t j = 0; j < 15; ++j) means[j] = MeanOfDim(points, j);
  std::sort(means.begin(), means.end());
  EXPECT_GT(means[14], 5 * means[7])
      << "top letter group >> median letter group";
  // Coordinates of one point sum to ~1 (frequencies of a partition).
  double sum = 0.0;
  for (std::size_t j = 0; j < 15; ++j) {
    sum += static_cast<double>(points[0][j]);
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(TextTest, Deterministic) {
  const PointSet a = GenerateTextDescriptors(100, 15, 37);
  const PointSet b = GenerateTextDescriptors(100, 15, 37);
  for (std::size_t j = 0; j < 15; ++j) EXPECT_EQ(a[99][j], b[99][j]);
}

TEST(QueriesTest, UniformQueriesAreUniformPoints) {
  const PointSet q = GenerateUniformQueries(100, 6, 41);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q.dim(), 6u);
  EXPECT_TRUE(AllInUnitCube(q));
}

TEST(QueriesTest, SampledQueriesFollowData) {
  const PointSet data = GenerateClusteredGaussian(5000, 4, 2, 0.02, 43);
  const PointSet queries = SampleQueriesFromData(data, 200, 0.01, 47);
  EXPECT_TRUE(AllInUnitCube(queries));
  // Each query is near some data point.
  for (std::size_t i = 0; i < 20; ++i) {
    double best = 1e9;
    for (std::size_t j = 0; j < data.size(); ++j) {
      best = std::min(best, L2(queries[i], data[j]));
    }
    EXPECT_LT(best, 0.1);
  }
}

TEST(QueriesTest, ZeroJitterSamplesExactPoints) {
  const PointSet data = GenerateUniform(50, 3, 53);
  const PointSet queries = SampleQueriesFromData(data, 20, 0.0, 59);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < data.size(); ++j) {
      if (SquaredL2(queries[i], data[j]) == 0.0) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "query " << i << " is not a data point";
  }
}

}  // namespace
}  // namespace parsim
