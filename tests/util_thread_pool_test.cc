#include "src/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace parsim {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto f1 = pool.Submit([] { return 41 + 1; });
  auto f2 = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(100, 200, [&](std::size_t i) { sum.fetch_add(i); });
  // sum of 100..199
  EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2u);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingletonRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1000,
                                [](std::size_t i) {
                                  if (i == 137) {
                                    throw std::runtime_error("body failed");
                                  }
                                }),
               std::runtime_error);
  // The pool must remain usable after a failed loop.
  std::atomic<int> ok{0};
  pool.ParallelFor(0, 10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPoolTest, ReusableAcrossManyBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 50; ++batch) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(0, 64, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // The caller of ParallelFor always participates in the loop, so a body
  // that itself calls ParallelFor on the same pool makes progress even
  // when every worker is occupied by outer iterations.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 8, [&](std::size_t) {
    pool.ParallelFor(0, 16, [&](std::size_t j) { total.fetch_add(j); });
  });
  EXPECT_EQ(total.load(), 8u * (16u * 15u / 2u));
}

TEST(ThreadPoolTest, ZeroRequestedThreadsStillWorks) {
  // 0 means "hardware concurrency", clamped to at least one worker.
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 32, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPoolTest, DestructorDrainsPendingSubmissions) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(done.load(), 20);
}

}  // namespace
}  // namespace parsim
