#include "src/core/quantile.h"

#include <gtest/gtest.h>

#include "src/util/random.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

TEST(QuantileEstimateTest, MedianOfKnownColumn) {
  PointSet points(1);
  for (int i = 1; i <= 9; ++i) {
    points.Add(Point({static_cast<Scalar>(i) / 10}));
  }
  const auto splits = EstimateQuantileSplits(points, 0.5);
  ASSERT_EQ(splits.size(), 1u);
  // rank = floor(0.5 * 9) = 4 -> 5th smallest = 0.5.
  EXPECT_FLOAT_EQ(splits[0], 0.5f);
}

TEST(QuantileEstimateTest, PerDimensionIndependent) {
  PointSet points(2);
  points.Add(Point({0.0f, 1.0f}));
  points.Add(Point({0.2f, 0.9f}));
  points.Add(Point({0.4f, 0.8f}));
  points.Add(Point({0.6f, 0.7f}));
  const auto splits = EstimateQuantileSplits(points, 0.5);
  EXPECT_FLOAT_EQ(splits[0], 0.4f);
  EXPECT_FLOAT_EQ(splits[1], 0.9f);
}

TEST(QuantileEstimateTest, QuantileOfUniformNearAlpha) {
  const PointSet points = GenerateUniform(20000, 3, /*seed=*/5);
  for (double alpha : {0.25, 0.5, 0.75}) {
    const auto splits = EstimateQuantileSplits(points, alpha);
    for (Scalar s : splits) {
      EXPECT_NEAR(static_cast<double>(s), alpha, 0.02);
    }
  }
}

TEST(QuantileEstimateTest, SkewedDataMedianBelowMidpoint) {
  // Squared uniform values concentrate near 0; the median is ~0.25.
  Rng rng(9);
  PointSet points(1);
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.NextDouble();
    points.Add(Point({static_cast<Scalar>(u * u)}));
  }
  const auto splits = EstimateQuantileSplits(points, 0.5);
  EXPECT_NEAR(static_cast<double>(splits[0]), 0.25, 0.02);
}

TEST(QuantileSplitterTest, StartsAtMidpoints) {
  const QuantileSplitter splitter(4);
  for (Scalar s : splitter.splits()) EXPECT_EQ(s, Scalar{0.5});
}

TEST(QuantileSplitterTest, NoReorganizationOnBalancedStream) {
  QuantileSplitter splitter(2);
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    Point p(2);
    p[0] = static_cast<Scalar>(rng.NextDouble());
    p[1] = static_cast<Scalar>(rng.NextDouble());
    splitter.Record(p);
  }
  EXPECT_FALSE(splitter.NeedsReorganization());
}

TEST(QuantileSplitterTest, MinimumSampleBeforeTriggering) {
  QuantileSplitter splitter(1);
  // All points on one side, but fewer than the 64-point minimum.
  for (int i = 0; i < 63; ++i) splitter.Record(Point({0.9f}));
  EXPECT_FALSE(splitter.NeedsReorganization());
  splitter.Record(Point({0.9f}));
  EXPECT_TRUE(splitter.NeedsReorganization());
}

TEST(QuantileSplitterTest, SkewTriggersReorganization) {
  QuantileSplitter splitter(2, 0.5, /*imbalance_threshold=*/2.0);
  Rng rng(17);
  // Dimension 0 balanced, dimension 1 heavily below 0.5.
  for (int i = 0; i < 500; ++i) {
    Point p(2);
    p[0] = static_cast<Scalar>(rng.NextDouble());
    p[1] = static_cast<Scalar>(rng.NextDouble() * 0.3);
    splitter.Record(p);
  }
  EXPECT_TRUE(splitter.NeedsReorganization());
}

TEST(QuantileSplitterTest, ReorganizeAdoptsDataMedians) {
  QuantileSplitter splitter(1);
  Rng rng(19);
  PointSet data(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    data.Add(Point({static_cast<Scalar>(u * 0.4)}));  // uniform on [0, 0.4]
  }
  for (std::size_t i = 0; i < data.size(); ++i) splitter.Record(data[i]);
  ASSERT_TRUE(splitter.NeedsReorganization());
  EXPECT_TRUE(splitter.Reorganize(data));
  EXPECT_EQ(splitter.reorganization_count(), 1);
  EXPECT_NEAR(static_cast<double>(splitter.splits()[0]), 0.2, 0.01);
  // Counters are reset; the splitter needs new evidence.
  EXPECT_FALSE(splitter.NeedsReorganization());
}

TEST(QuantileSplitterTest, ReorganizeBalancesSubsequentStream) {
  QuantileSplitter splitter(1);
  Rng rng(23);
  PointSet data(1);
  for (int i = 0; i < 5000; ++i) {
    data.Add(Point({static_cast<Scalar>(rng.NextDouble() * 0.2)}));
  }
  for (std::size_t i = 0; i < data.size(); ++i) splitter.Record(data[i]);
  splitter.Reorganize(data);
  // Re-recording the same stream against the new splits is now balanced.
  for (std::size_t i = 0; i < data.size(); ++i) splitter.Record(data[i]);
  EXPECT_FALSE(splitter.NeedsReorganization());
}

TEST(QuantileSplitterTest, ReorganizeReturnsFalseWhenUnchanged) {
  QuantileSplitter splitter(1);
  PointSet data(1);
  // Data whose median is exactly the current split 0.5.
  for (int i = 0; i < 101; ++i) {
    data.Add(Point({static_cast<Scalar>(i) / 100}));
  }
  // rank = floor(0.5*101) = 50 -> value 0.50 == the midpoint split, so
  // nothing changes and Reorganize reports false (but still counts).
  EXPECT_FALSE(splitter.Reorganize(data));
  EXPECT_EQ(splitter.reorganization_count(), 1);
}

TEST(QuantileSplitterTest, MakeBucketizerUsesCurrentSplits) {
  QuantileSplitter splitter(2);
  PointSet data(2);
  data.Add(Point({0.1f, 0.9f}));
  data.Add(Point({0.2f, 0.8f}));
  data.Add(Point({0.3f, 0.7f}));
  splitter.Reorganize(data);
  const Bucketizer b = splitter.MakeBucketizer();
  EXPECT_EQ(b.split(0), splitter.splits()[0]);
  EXPECT_EQ(b.split(1), splitter.splits()[1]);
}

TEST(QuantileSplitterDeathTest, InvalidParameters) {
  EXPECT_DEATH(QuantileSplitter(0), "PARSIM_CHECK");
  EXPECT_DEATH(QuantileSplitter(2, 0.0), "PARSIM_CHECK");
  EXPECT_DEATH(QuantileSplitter(2, 1.0), "PARSIM_CHECK");
  EXPECT_DEATH(QuantileSplitter(2, 0.5, 1.0), "PARSIM_CHECK");
}

}  // namespace
}  // namespace parsim
