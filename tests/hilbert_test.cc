#include "src/hilbert/hilbert.h"

#include <cstdlib>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace parsim {
namespace {

TEST(HilbertTest, TwoDimensionalOrderFirstOrderCurve) {
  // The 2-d, 1-bit Hilbert curve visits (0,0), (0,1), (1,1), (1,0).
  const HilbertCurve curve(2, 1);
  EXPECT_EQ(curve.EncodeU64({0, 0}), 0u);
  EXPECT_EQ(curve.EncodeU64({0, 1}), 1u);
  EXPECT_EQ(curve.EncodeU64({1, 1}), 2u);
  EXPECT_EQ(curve.EncodeU64({1, 0}), 3u);
}

TEST(HilbertTest, IndexZeroIsOrigin) {
  for (std::size_t dim : {1u, 2u, 3u, 5u, 8u}) {
    for (int bits : {1, 2, 4}) {
      const HilbertCurve curve(dim, bits);
      const std::vector<GridCoord> origin(dim, 0);
      const HilbertIndex h = curve.Encode(origin);
      for (std::uint64_t w : h.words) EXPECT_EQ(w, 0u);
    }
  }
}

TEST(HilbertTest, EncodeU64MatchesMultiWord) {
  const HilbertCurve curve(3, 4);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<GridCoord> c(3);
    for (auto& v : c) v = static_cast<GridCoord>(rng.NextBounded(16));
    EXPECT_EQ(curve.EncodeU64(c), curve.Encode(c).words[0]);
  }
}

TEST(HilbertTest, IndexComparisonIsNumeric) {
  HilbertIndex a{{5, 0}};
  HilbertIndex b{{3, 1}};  // 1*2^64 + 3 > 5
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  HilbertIndex c{{5}};
  EXPECT_FALSE(a < c);  // equal values, different word counts
  EXPECT_FALSE(c < a);
}

TEST(HilbertTest, CellOfClampsToGrid) {
  const HilbertCurve curve(2, 3);
  const auto low = curve.CellOf(Point({-0.5f, 0.0f}));
  EXPECT_EQ(low[0], 0u);
  const auto high = curve.CellOf(Point({1.0f, 2.0f}));
  EXPECT_EQ(high[0], 7u);
  EXPECT_EQ(high[1], 7u);
  const auto mid = curve.CellOf(Point({0.5f, 0.26f}));
  EXPECT_EQ(mid[0], 4u);
  EXPECT_EQ(mid[1], 2u);
}

TEST(HilbertTest, ModSmallValues) {
  HilbertIndex h{{100}};
  EXPECT_EQ(HilbertIndexMod(h, 7), 100u % 7);
  EXPECT_EQ(HilbertIndexMod(h, 1), 0u);
}

TEST(HilbertTest, ModMultiWord) {
  // value = 2^64 + 5; mod 7: 2^64 mod 7 = (2^64 = (7*2635249153387078802)+2)
  // so value mod 7 = (2 + 5) mod 7 = 0.
  HilbertIndex h{{5, 1}};
  EXPECT_EQ(HilbertIndexMod(h, 7), 0u);
  EXPECT_EQ(HilbertIndexMod(h, 2), 1u);       // odd value
  EXPECT_EQ(HilbertIndexMod(h, 1u << 16), 5u);  // low bits
}

TEST(HilbertDeathTest, InvalidConstruction) {
  EXPECT_DEATH(HilbertCurve(0, 4), "PARSIM_CHECK");
  EXPECT_DEATH(HilbertCurve(2, 0), "PARSIM_CHECK");
  EXPECT_DEATH(HilbertCurve(2, 33), "PARSIM_CHECK");
}

TEST(HilbertDeathTest, CoordinateOutOfRange) {
  const HilbertCurve curve(2, 2);
  EXPECT_DEATH(curve.Encode({4, 0}), "PARSIM_CHECK");
}

// ---------------------------------------------------------------------------
// Property sweeps over (dim, bits).

class HilbertPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(HilbertPropertyTest, EncodeDecodeRoundTrip) {
  const auto [dim, bits] = GetParam();
  const HilbertCurve curve(dim, bits);
  Rng rng(500 + dim * 37 + static_cast<std::size_t>(bits));
  const GridCoord limit = bits == 32
                              ? ~GridCoord{0}
                              : static_cast<GridCoord>((1u << bits) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<GridCoord> coords(dim);
    for (auto& c : coords) {
      c = static_cast<GridCoord>(rng.NextBounded(std::uint64_t{limit} + 1));
    }
    const HilbertIndex h = curve.Encode(coords);
    EXPECT_EQ(curve.Decode(h), coords);
  }
}

TEST_P(HilbertPropertyTest, BijectiveOnSmallGrids) {
  const auto [dim, bits] = GetParam();
  const int total_bits = static_cast<int>(dim) * bits;
  if (total_bits > 16) GTEST_SKIP() << "grid too large to enumerate";
  const HilbertCurve curve(dim, bits);
  const std::uint64_t cells = std::uint64_t{1} << total_bits;
  std::set<std::uint64_t> seen;
  // Enumerate all grid cells; indices must be a permutation of [0, cells).
  std::vector<GridCoord> coords(dim, 0);
  const GridCoord per_dim = static_cast<GridCoord>(1u << bits);
  std::uint64_t count = 0;
  for (;;) {
    const std::uint64_t h = curve.EncodeU64(coords);
    EXPECT_LT(h, cells);
    EXPECT_TRUE(seen.insert(h).second) << "duplicate index " << h;
    ++count;
    // Odometer increment.
    std::size_t i = 0;
    while (i < dim && ++coords[i] == per_dim) {
      coords[i] = 0;
      ++i;
    }
    if (i == dim) break;
  }
  EXPECT_EQ(count, cells);
  EXPECT_EQ(seen.size(), cells);
}

TEST_P(HilbertPropertyTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining property of the Hilbert curve: consecutive cells along
  // the curve differ by exactly 1 in exactly one coordinate.
  const auto [dim, bits] = GetParam();
  const int total_bits = static_cast<int>(dim) * bits;
  if (total_bits > 14) GTEST_SKIP() << "grid too large to enumerate";
  const HilbertCurve curve(dim, bits);
  const std::uint64_t cells = std::uint64_t{1} << total_bits;
  std::vector<GridCoord> prev = curve.DecodeU64(0);
  for (std::uint64_t h = 1; h < cells; ++h) {
    const std::vector<GridCoord> cur = curve.DecodeU64(h);
    int diffs = 0;
    for (std::size_t i = 0; i < dim; ++i) {
      if (cur[i] != prev[i]) {
        ++diffs;
        const std::int64_t delta = static_cast<std::int64_t>(cur[i]) -
                                   static_cast<std::int64_t>(prev[i]);
        EXPECT_EQ(std::abs(delta), 1);
      }
    }
    EXPECT_EQ(diffs, dim >= 1 ? 1 : 0) << "at index " << h;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimBits, HilbertPropertyTest,
    ::testing::Values(std::make_tuple(std::size_t{1}, 8),
                      std::make_tuple(std::size_t{2}, 1),
                      std::make_tuple(std::size_t{2}, 4),
                      std::make_tuple(std::size_t{2}, 7),
                      std::make_tuple(std::size_t{3}, 2),
                      std::make_tuple(std::size_t{3}, 4),
                      std::make_tuple(std::size_t{4}, 3),
                      std::make_tuple(std::size_t{5}, 2),
                      std::make_tuple(std::size_t{8}, 1),
                      std::make_tuple(std::size_t{13}, 1),
                      std::make_tuple(std::size_t{15}, 8),
                      std::make_tuple(std::size_t{16}, 2),
                      std::make_tuple(std::size_t{32}, 2)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "b" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace parsim
