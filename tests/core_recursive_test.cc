#include "src/core/recursive.h"

#include <gtest/gtest.h>

#include "src/core/near_optimal.h"
#include "src/util/random.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

PointSet OneQuadrantCluster(std::size_t n, std::size_t dim,
                            std::uint64_t seed) {
  // All points in the lowest quadrant (the extreme case of Section 4.3:
  // "most data points are located in one quadrant of the hypercube").
  Rng rng(seed);
  PointSet out(dim);
  Point p(dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<Scalar>(0.45 * rng.NextDouble());
    }
    out.Add(p);
  }
  return out;
}

TEST(RecursiveTest, UnfittedBehavesLikeNearOptimal) {
  const std::size_t d = 5;
  RecursiveDeclusterer rec(d, 8);
  const NearOptimalDeclusterer flat(d, 8);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    Point p(d);
    for (std::size_t j = 0; j < d; ++j) {
      p[j] = static_cast<Scalar>(rng.NextDouble());
    }
    EXPECT_EQ(rec.DiskOfPoint(p, 0), flat.DiskOfPoint(p, 0));
  }
  EXPECT_EQ(rec.MaxDepth(), 0);
  EXPECT_EQ(rec.NumSplitBuckets(), 0u);
}

TEST(RecursiveTest, FitOnUniformDataDoesNothing) {
  const std::size_t d = 6;
  RecursiveDeclusterer rec(d, 8);
  const PointSet data = GenerateUniform(20000, d, 33);
  const int passes = rec.Fit(data);
  EXPECT_EQ(passes, 0) << "uniform data is already balanced";
  EXPECT_EQ(rec.MaxDepth(), 0);
}

TEST(RecursiveTest, FitRebalancesOneQuadrantCluster) {
  const std::size_t d = 6;
  const std::uint32_t disks = 8;
  const PointSet data = OneQuadrantCluster(20000, d, 35);

  const NearOptimalDeclusterer flat(d, disks);
  const double imbalance_before = LoadImbalance(DiskLoads(flat, data));
  EXPECT_GT(imbalance_before, 7.9) << "everything lands on one disk";

  RecursiveDeclusterer rec(d, disks);
  const int passes = rec.Fit(data);
  EXPECT_GE(passes, 1);
  EXPECT_GE(rec.MaxDepth(), 1);
  const double imbalance_after = LoadImbalance(DiskLoads(rec, data));
  EXPECT_LE(imbalance_after, 1.5);
}

TEST(RecursiveTest, PaperObservationOneStepSufficesForClusteredData) {
  // Figure 16's note: "only one recursive declustering step was
  // necessary". With quantile sub-splits one pass balances a single
  // cluster.
  const std::size_t d = 6;
  const PointSet data = OneQuadrantCluster(10000, d, 37);
  RecursiveDeclusterer rec(d, 8);
  EXPECT_EQ(rec.Fit(data), 1);
}

TEST(RecursiveTest, AssignmentStaysInRange) {
  const std::size_t d = 5;
  const PointSet data = GenerateClusteredGaussian(10000, d, 3, 0.05, 39);
  RecursiveDeclusterer rec(d, 7);
  rec.Fit(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_LT(rec.DiskOfPoint(data[i], static_cast<PointId>(i)),
              rec.num_disks());
  }
}

TEST(RecursiveTest, DeterministicAfterFit) {
  const std::size_t d = 4;
  const PointSet data = OneQuadrantCluster(5000, d, 41);
  RecursiveDeclusterer rec(d, 8);
  rec.Fit(data);
  const Point probe = {0.1f, 0.2f, 0.3f, 0.1f};
  const DiskId first = rec.DiskOfPoint(probe, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rec.DiskOfPoint(probe, static_cast<PointId>(i)), first);
  }
}

TEST(RecursiveTest, MinBucketPointsPreventsMicroSplits) {
  const std::size_t d = 4;
  RecursiveOptions options;
  options.min_bucket_points = 1000000;  // nothing is big enough to split
  RecursiveDeclusterer rec(d, 8, options);
  const PointSet data = OneQuadrantCluster(5000, d, 43);
  const int passes = rec.Fit(data);
  EXPECT_EQ(passes, 0) << "no split possible -> converges immediately";
  EXPECT_EQ(rec.NumSplitBuckets(), 0u);
}

TEST(RecursiveTest, MaxPassesBoundsWork) {
  const std::size_t d = 4;
  RecursiveOptions options;
  options.max_passes = 2;
  // Identical points cannot be balanced by geometric splits; recursion
  // must stop at the pass bound instead of looping.
  PointSet degenerate(d);
  for (int i = 0; i < 5000; ++i) {
    degenerate.Add(Point({0.1f, 0.1f, 0.1f, 0.1f}));
  }
  RecursiveDeclusterer rec(d, 8, options);
  const int passes = rec.Fit(degenerate);
  EXPECT_LE(passes, 2);
}

TEST(RecursiveTest, MidpointSubSplitOption) {
  const std::size_t d = 5;
  RecursiveOptions options;
  options.quantile_splits = false;
  const PointSet data = OneQuadrantCluster(20000, d, 47);
  RecursiveDeclusterer rec(d, 8, options);
  rec.Fit(data);
  // Midpoint sub-splits also rebalance this cluster (its interior is
  // roughly uniform), possibly needing more passes.
  EXPECT_LT(LoadImbalance(DiskLoads(rec, data)), 2.0);
}

TEST(RecursiveTest, GaussianMixtureRebalanced) {
  const std::size_t d = 8;
  const PointSet data = GenerateClusteredGaussian(30000, d, 2, 0.03, 49);
  const NearOptimalDeclusterer flat(d, 16);
  RecursiveDeclusterer rec(d, 16);
  rec.Fit(data);
  EXPECT_LT(LoadImbalance(DiskLoads(rec, data)),
            LoadImbalance(DiskLoads(flat, data)));
}

TEST(RecursiveDeathTest, InvalidOptions) {
  RecursiveOptions bad;
  bad.overload_threshold = 1.0;
  EXPECT_DEATH(RecursiveDeclusterer(3, 4, bad), "PARSIM_CHECK");
}

}  // namespace
}  // namespace parsim
