// Concurrency stress tests for the query execution layer: many threads
// hammer one engine and every result and every per-query simulated stat
// must match the serial run bit for bit. Built into the TSAN suite by
// tools/ci.sh, so any data race in the cost-capture path is caught here.

#include <algorithm>
#include <latch>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/near_optimal.h"
#include "src/parallel/engine.h"
#include "src/util/thread_pool.h"
#include "src/workload/generators.h"

namespace parsim {
namespace {

void ExpectSameResult(const KnnResult& a, const KnnResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].distance, b[i].distance);  // bitwise
  }
}

void ExpectSameStats(const QueryStats& a, const QueryStats& b) {
  EXPECT_EQ(a.max_pages, b.max_pages);
  EXPECT_EQ(a.total_pages, b.total_pages);
  EXPECT_EQ(a.directory_pages, b.directory_pages);
  EXPECT_EQ(a.buffer_hit_pages, b.buffer_hit_pages);
  EXPECT_EQ(a.pages_per_disk, b.pages_per_disk);
  EXPECT_EQ(a.parallel_ms, b.parallel_ms);  // bitwise
  EXPECT_EQ(a.sum_ms, b.sum_ms);
  EXPECT_EQ(a.balance, b.balance);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.replica_pages, b.replica_pages);
  EXPECT_EQ(a.failed_read_attempts, b.failed_read_attempts);
  EXPECT_EQ(a.unavailable_pages, b.unavailable_pages);
  EXPECT_EQ(a.healthy_parallel_ms, b.healthy_parallel_ms);  // bitwise
}

/// Stress-thread count: every core up to 8, but at least 2 so the test
/// still exercises real interleaving on single-core CI machines.
unsigned StressThreads() {
  return std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
}

std::unique_ptr<ParallelSearchEngine> MakeEngine(Architecture arch,
                                                 const PointSet& data,
                                                 std::size_t disks) {
  EngineOptions options;
  options.architecture = arch;
  options.bulk_load = true;
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), disks),
      options);
  EXPECT_TRUE(engine->Build(data).ok());
  return engine;
}

class ConcurrencyTest : public ::testing::TestWithParam<Architecture> {};

// N raw threads issue interleaved queries against one engine; each
// query's result and stats must equal the serial baseline.
TEST_P(ConcurrencyTest, RawThreadsMatchSerialBaseline) {
  const std::size_t d = 8;
  const std::size_t k = 10;
  const PointSet data = GenerateUniform(6000, d, 1301);
  const PointSet queries = GenerateUniformQueries(24, d, 1303);

  const auto engine = MakeEngine(GetParam(), data, 8);

  // Serial baseline (same engine: queries never reset shared state).
  std::vector<KnnResult> expected(queries.size());
  std::vector<QueryStats> expected_stats(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    expected[i] = engine->Query(queries[i], k, &expected_stats[i]);
  }

  const unsigned num_threads = StressThreads();
  constexpr int kRounds = 3;
  std::vector<KnnResult> got(queries.size());
  std::vector<QueryStats> got_stats(queries.size());
  std::vector<std::thread> threads;
  // Start gate: no thread issues a query until all of them exist, so the
  // queries genuinely overlap instead of racing thread creation.
  std::latch start(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();
      // Every thread answers a strided slice, several times over, so
      // queries genuinely overlap in time.
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = t; i < queries.size(); i += num_threads) {
          got[i] = engine->Query(queries[i], k, &got_stats[i]);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResult(expected[i], got[i]);
    ExpectSameStats(expected_stats[i], got_stats[i]);
  }
}

// QueryBatch on the pool returns the same results and per-query stats as
// the serial loop.
TEST_P(ConcurrencyTest, QueryBatchMatchesSerialLoop) {
  const std::size_t d = 6;
  const std::size_t k = 5;
  const PointSet data = GenerateUniform(4000, d, 1305);
  const PointSet queries = GenerateUniformQueries(32, d, 1307);

  const auto engine = MakeEngine(GetParam(), data, 4);

  std::vector<QueryStats> serial_stats(queries.size());
  std::vector<KnnResult> serial(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    serial[i] = engine->Query(queries[i], k, &serial_stats[i]);
  }

  std::vector<QueryStats> batch_stats;
  const std::vector<KnnResult> batch =
      engine->QueryBatch(queries, k, &batch_stats, 4);
  ASSERT_EQ(batch.size(), queries.size());
  ASSERT_EQ(batch_stats.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResult(serial[i], batch[i]);
    ExpectSameStats(serial_stats[i], batch_stats[i]);
  }
}

// Cumulative disk counters are merge-order independent: after the same
// multiset of queries, a serially-driven engine and a concurrently-driven
// engine agree on the totals.
TEST_P(ConcurrencyTest, CumulativeDiskStatsMatchSerialEngine) {
  const std::size_t d = 8;
  const std::size_t k = 8;
  const PointSet data = GenerateUniform(5000, d, 1309);
  const PointSet queries = GenerateUniformQueries(16, d, 1311);

  const auto serial_engine = MakeEngine(GetParam(), data, 8);
  const auto parallel_engine = MakeEngine(GetParam(), data, 8);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    (void)serial_engine->Query(queries[i], k);
  }
  (void)parallel_engine->QueryBatch(queries, k, nullptr, 4);

  const DiskStats serial_total = serial_engine->disks().TotalStats();
  const DiskStats parallel_total = parallel_engine->disks().TotalStats();
  EXPECT_EQ(serial_total.data_pages_read, parallel_total.data_pages_read);
  EXPECT_EQ(serial_total.directory_pages_read,
            parallel_total.directory_pages_read);
  EXPECT_EQ(serial_total.distance_computations,
            parallel_total.distance_computations);
  EXPECT_EQ(serial_total.pages_written, parallel_total.pages_written);
  for (DiskId disk = 0; disk < serial_engine->num_disks(); ++disk) {
    EXPECT_EQ(serial_engine->disks().disk(disk).stats().data_pages_read,
              parallel_engine->disks().disk(disk).stats().data_pages_read)
        << "disk " << disk;
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ConcurrencyTest,
                         ::testing::Values(Architecture::kSharedTree,
                                           Architecture::kFederatedTrees,
                                           Architecture::kFederatedScan),
                         [](const auto& info) {
                           switch (info.param) {
                             case Architecture::kSharedTree:
                               return "SharedTree";
                             case Architecture::kFederatedTrees:
                               return "FederatedTrees";
                             case Architecture::kFederatedScan:
                               return "FederatedScan";
                           }
                           return "Unknown";
                         });

// Mixed query types (k-NN, range, similarity) running concurrently must
// each match their serial counterpart.
TEST(ConcurrencyMixedTest, MixedQueryTypesUnderConcurrency) {
  const std::size_t d = 6;
  const PointSet data = GenerateUniform(4000, d, 1313);
  const PointSet queries = GenerateUniformQueries(12, d, 1315);
  const auto engine = MakeEngine(Architecture::kSharedTree, data, 4);

  const auto box_around = [d](PointView q) {
    std::vector<Scalar> lo(d), hi(d);
    for (std::size_t c = 0; c < d; ++c) {
      lo[c] = q[c] - 0.05f;
      hi[c] = q[c] + 0.05f;
    }
    return Rect(std::move(lo), std::move(hi));
  };

  // Serial expectations.
  std::vector<KnnResult> knn(queries.size());
  std::vector<KnnResult> sim(queries.size());
  std::vector<std::vector<PointId>> range(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    knn[i] = engine->Query(queries[i], 5);
    sim[i] = engine->SimilarityQuery(queries[i], 0.2);
    range[i] = engine->RangeQuery(box_around(queries[i]));
  }

  ThreadPool pool(4);
  pool.ParallelFor(0, queries.size() * 3, [&](std::size_t job) {
    const std::size_t i = job / 3;
    switch (job % 3) {
      case 0: {
        const KnnResult r = engine->Query(queries[i], 5);
        ExpectSameResult(knn[i], r);
        break;
      }
      case 1: {
        const KnnResult r = engine->SimilarityQuery(queries[i], 0.2);
        ExpectSameResult(sim[i], r);
        break;
      }
      default: {
        EXPECT_EQ(engine->RangeQuery(box_around(queries[i])), range[i]);
        break;
      }
    }
  });
}

// With deterministic_batch set, a buffered QueryBatch replays serially
// (whatever thread count is requested) and every per-query stat —
// including the order-dependent buffer hit counts — is reproducible.
TEST(ConcurrencyMixedTest, BufferedEngineDeterministicModeReplaysSerially) {
  const std::size_t d = 4;
  const PointSet data = GenerateUniform(3000, d, 1317);
  const PointSet queries = GenerateUniformQueries(10, d, 1319);

  EngineOptions options;
  options.bulk_load = true;
  options.buffer_pages_per_disk = 64;
  options.deterministic_batch = true;

  std::vector<QueryStats> first_stats;
  std::vector<QueryStats> second_stats;
  for (std::vector<QueryStats>* out : {&first_stats, &second_stats}) {
    ParallelSearchEngine engine(
        d, std::make_unique<NearOptimalDeclusterer>(d, 4), options);
    ASSERT_TRUE(engine.Build(data).ok());
    unsigned effective_threads = 0;
    (void)engine.QueryBatch(queries, 5, out, 4, &effective_threads);
    EXPECT_EQ(effective_threads, 1u) << "deterministic mode must serialize";
  }
  ASSERT_EQ(first_stats.size(), second_stats.size());
  for (std::size_t i = 0; i < first_stats.size(); ++i) {
    ExpectSameStats(first_stats[i], second_stats[i]);
  }
  // Warm buffers must actually have produced hits, or the serial-replay
  // path is not being exercised.
  std::uint64_t hits = 0;
  for (const QueryStats& s : first_stats) hits += s.buffer_hit_pages;
  EXPECT_GT(hits, 0u);
}

// Default (concurrent) buffered batches: the interleaving may shift
// which touches hit, but every query's RESULT and the pool's aggregate
// accounting are invariant across thread counts and query order. One
// fresh engine per run — the buffer carries history across batches, so
// reusing an engine would conflate runs.
TEST(ConcurrencyMixedTest, BufferedBatchAggregatesInvariantUnderInterleaving) {
  const std::size_t d = 6;
  const std::size_t k = 5;
  const PointSet data = GenerateUniform(4000, d, 1321);
  const PointSet queries = GenerateUniformQueries(24, d, 1323);

  EngineOptions options;
  options.bulk_load = true;
  options.buffer_pages_per_disk = 64;

  struct Run {
    std::vector<KnnResult> results;
    std::uint64_t touched = 0;
    std::uint64_t hit_plus_miss = 0;
    std::vector<std::uint64_t> touched_per_shard;
    unsigned effective_threads = 0;
  };
  const auto run_batch = [&](unsigned threads,
                             const std::vector<std::size_t>& order) {
    ParallelSearchEngine engine(
        d, std::make_unique<NearOptimalDeclusterer>(d, 4), options);
    EXPECT_TRUE(engine.Build(data).ok());
    PointSet permuted(d);
    for (std::size_t qi : order) permuted.Add(queries[qi]);
    Run run;
    const std::vector<KnnResult> batch =
        engine.QueryBatch(permuted, k, nullptr, threads,
                          &run.effective_threads);
    // Report results in canonical query order whatever the issue order.
    run.results.resize(queries.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      run.results[order[i]] = batch[i];
    }
    const BufferPool* pool = engine.buffer_pool();
    run.touched = pool->TotalTouchedPages();
    run.hit_plus_miss = pool->TotalHitPages() + pool->TotalMissPages();
    run.touched_per_shard = pool->TouchedPagesPerShard();
    return run;
  };

  std::vector<std::size_t> identity(queries.size());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  std::vector<std::size_t> reversed(identity.rbegin(), identity.rend());
  // A fixed interleave permutation (stride walk), deterministic and
  // coprime with the query count.
  std::vector<std::size_t> strided;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    strided.push_back((i * 7) % queries.size());
  }

  const Run baseline = run_batch(1, identity);
  EXPECT_EQ(baseline.effective_threads, 1u);
  EXPECT_EQ(baseline.hit_plus_miss, baseline.touched);
  EXPECT_GT(baseline.touched, 0u);

  const unsigned stress = StressThreads();
  for (const unsigned threads : {4u, 8u, stress}) {
    for (const auto* order : {&identity, &reversed, &strided}) {
      const Run run = run_batch(threads, *order);
      for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        ExpectSameResult(baseline.results[qi], run.results[qi]);
      }
      EXPECT_EQ(run.touched, baseline.touched)
          << threads << " threads: total touched pages must be invariant";
      EXPECT_EQ(run.hit_plus_miss, run.touched)
          << threads << " threads: every touch is exactly one hit or miss";
      EXPECT_EQ(run.touched_per_shard, baseline.touched_per_shard)
          << threads << " threads: per-shard touch totals must be invariant";
    }
  }
}

}  // namespace
}  // namespace parsim
