// Tests of the vertex coloring function `col` — the paper's Lemmas 2-6,
// checked exhaustively for all dimensions where enumeration is feasible.

#include "src/core/coloring.h"

#include <set>

#include <gtest/gtest.h>

#include "src/core/neighborhood.h"
#include "src/util/bits.h"

namespace parsim {
namespace {

TEST(ColoringTest, PaperWorkedExample) {
  // Section 4.2: vertex c = 5 = 101b in G_3. Bits 0 and 2 are set;
  // (0+1) XOR (2+1) = 1 XOR 3 = 2. col(5) = 2.
  EXPECT_EQ(ColorOf(5), 2u);
}

TEST(ColoringTest, OriginHasColorZero) { EXPECT_EQ(ColorOf(0), 0u); }

TEST(ColoringTest, SingleBitBuckets) {
  // col(2^i) = i + 1.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ColorOf(BucketId{1} << i), static_cast<Color>(i + 1));
  }
}

TEST(ColoringTest, Distributivity) {
  // Lemma 2: col(b) XOR col(c) == col(b XOR c), for all pairs in a
  // moderate range.
  for (BucketId b = 0; b < 256; ++b) {
    for (BucketId c = 0; c < 256; ++c) {
      EXPECT_EQ(ColorOf(b) ^ ColorOf(c), ColorOf(b ^ c));
    }
  }
}

TEST(ColoringTest, NumColorsStaircase) {
  // Lemma 6: 2^ceil(log2(d+1)).
  EXPECT_EQ(NumColors(1), 2u);
  EXPECT_EQ(NumColors(2), 4u);
  EXPECT_EQ(NumColors(3), 4u);
  EXPECT_EQ(NumColors(4), 8u);
  EXPECT_EQ(NumColors(7), 8u);
  EXPECT_EQ(NumColors(8), 16u);
  EXPECT_EQ(NumColors(15), 16u);
  EXPECT_EQ(NumColors(16), 32u);
  EXPECT_EQ(NumColors(31), 32u);
  EXPECT_EQ(NumColors(32), 64u);
}

TEST(ColoringTest, StaircaseWithinLinearBounds) {
  // d+1 <= NumColors(d) <= 2d (Lemma 6's bounds; 2d needs d >= 1 and the
  // power-of-two rounding argument).
  for (std::size_t d = 1; d <= 32; ++d) {
    EXPECT_GE(NumColors(d), NumColorsLowerBound(d)) << "d=" << d;
    EXPECT_LE(NumColors(d), NumColorsUpperBound(d)) << "d=" << d;
  }
}

TEST(ColoringTest, BucketWithColorInvertsCol) {
  for (std::size_t d : {1u, 3u, 7u, 15u, 31u}) {
    for (Color c = 0; c < NumColors(d); ++c) {
      const BucketId b = BucketWithColor(c, d);
      EXPECT_LT(b, NumBuckets(d));
      EXPECT_EQ(ColorOf(b), c);
    }
  }
}

// ---------------------------------------------------------------------------
// Exhaustive lemma checks per dimension.

class ColoringLemmaTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ColoringLemmaTest, Lemma3DirectNeighborsDifferentColors) {
  const std::size_t d = GetParam();
  const std::uint64_t n = NumBuckets(d);
  for (std::uint64_t b = 0; b < n; ++b) {
    for (BucketId c : DirectNeighbors(static_cast<BucketId>(b), d)) {
      EXPECT_NE(ColorOf(static_cast<BucketId>(b)), ColorOf(c))
          << "direct neighbors " << b << " and " << c;
    }
  }
}

TEST_P(ColoringLemmaTest, Lemma4IndirectNeighborsDifferentColors) {
  const std::size_t d = GetParam();
  const std::uint64_t n = NumBuckets(d);
  for (std::uint64_t b = 0; b < n; ++b) {
    for (BucketId c : IndirectNeighbors(static_cast<BucketId>(b), d)) {
      EXPECT_NE(ColorOf(static_cast<BucketId>(b)), ColorOf(c))
          << "indirect neighbors " << b << " and " << c;
    }
  }
}

TEST_P(ColoringLemmaTest, Lemma6ExactColorSetUsed) {
  // col uses exactly the colors {0, ..., NumColors(d)-1}.
  const std::size_t d = GetParam();
  const std::uint64_t n = NumBuckets(d);
  std::set<Color> used;
  for (std::uint64_t b = 0; b < n; ++b) {
    used.insert(ColorOf(static_cast<BucketId>(b)));
  }
  EXPECT_EQ(used.size(), NumColors(d));
  EXPECT_EQ(*used.begin(), 0u);
  EXPECT_EQ(*used.rbegin(), NumColors(d) - 1);
}

TEST_P(ColoringLemmaTest, ColorsBalancedAcrossBuckets) {
  // Each color covers the same number of buckets (2^d / NumColors):
  // necessary for even data distribution under uniform data.
  const std::size_t d = GetParam();
  const std::uint64_t n = NumBuckets(d);
  const std::uint64_t colors = NumColors(d);
  if (colors > n) GTEST_SKIP() << "fewer buckets than colors (d+1 > 2^d)";
  std::vector<std::uint64_t> counts(colors, 0);
  for (std::uint64_t b = 0; b < n; ++b) {
    ++counts[ColorOf(static_cast<BucketId>(b))];
  }
  for (std::uint64_t c = 0; c < colors; ++c) {
    EXPECT_EQ(counts[c], n / colors) << "color " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ColoringLemmaTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7, 8,
                                                        10, 12, 14, 16),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parsim
