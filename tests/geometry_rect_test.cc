#include "src/geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/geometry/metric.h"
#include "src/util/random.h"

namespace parsim {
namespace {

Rect MakeRect(std::vector<Scalar> lo, std::vector<Scalar> hi) {
  return Rect(std::move(lo), std::move(hi));
}

TEST(RectTest, EmptyRect) {
  const Rect e = Rect::Empty(3);
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Volume(), 0.0);
  EXPECT_EQ(e.Margin(), 0.0);
}

TEST(RectTest, UnitCube) {
  const Rect u = Rect::UnitCube(4);
  EXPECT_FALSE(u.IsEmpty());
  EXPECT_DOUBLE_EQ(u.Volume(), 1.0);
  EXPECT_DOUBLE_EQ(u.Margin(), 4.0);
  EXPECT_TRUE(u.Contains(Point({0.5f, 0.5f, 0.5f, 0.5f})));
  EXPECT_TRUE(u.Contains(Point({0, 0, 0, 0})));
  EXPECT_TRUE(u.Contains(Point({1, 1, 1, 1})));
  EXPECT_FALSE(u.Contains(Point({1.1f, 0, 0, 0})));
}

TEST(RectTest, AroundPointIsDegenerate) {
  const Point p = {0.3f, 0.7f};
  const Rect r = Rect::AroundPoint(p);
  EXPECT_TRUE(r.Contains(p));
  EXPECT_EQ(r.Volume(), 0.0);
  EXPECT_EQ(r.lo(0), r.hi(0));
  EXPECT_FALSE(r.IsEmpty());
}

TEST(RectTest, ContainsRect) {
  const Rect outer = MakeRect({0, 0}, {1, 1});
  const Rect inner = MakeRect({0.2f, 0.2f}, {0.8f, 0.8f});
  EXPECT_TRUE(outer.ContainsRect(inner));
  EXPECT_FALSE(inner.ContainsRect(outer));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_TRUE(outer.ContainsRect(Rect::Empty(2)));
}

TEST(RectTest, Intersects) {
  const Rect a = MakeRect({0, 0}, {1, 1});
  const Rect b = MakeRect({0.5f, 0.5f}, {2, 2});
  const Rect c = MakeRect({1.5f, 1.5f}, {2, 2});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  // Touching edges count as intersecting (closed rectangles).
  const Rect d = MakeRect({1, 0}, {2, 1});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(RectTest, ExtendToIncludePoint) {
  Rect r = Rect::Empty(2);
  r.ExtendToInclude(Point({0.5f, 0.5f}));
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(r.Contains(Point({0.5f, 0.5f})));
  r.ExtendToInclude(Point({0.1f, 0.9f}));
  EXPECT_TRUE(r.Contains(Point({0.1f, 0.9f})));
  EXPECT_TRUE(r.Contains(Point({0.3f, 0.7f})));  // inside the hull
}

TEST(RectTest, UnionAndIntersection) {
  const Rect a = MakeRect({0, 0}, {1, 1});
  const Rect b = MakeRect({0.5f, 0.5f}, {2, 2});
  const Rect u = Rect::Union(a, b);
  EXPECT_EQ(u, MakeRect({0, 0}, {2, 2}));
  const Rect i = Rect::Intersection(a, b);
  EXPECT_EQ(i, MakeRect({0.5f, 0.5f}, {1, 1}));
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.25);
}

TEST(RectTest, DisjointIntersectionIsEmpty) {
  const Rect a = MakeRect({0, 0}, {1, 1});
  const Rect c = MakeRect({2, 2}, {3, 3});
  EXPECT_TRUE(Rect::Intersection(a, c).IsEmpty());
  EXPECT_EQ(a.OverlapVolume(c), 0.0);
}

TEST(RectTest, Center) {
  const Rect r = MakeRect({0, 1}, {1, 3});
  const Point c = r.Center();
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[1], 2.0f);
}

TEST(RectTest, MinDistInsideIsZero) {
  const Rect r = MakeRect({0, 0}, {1, 1});
  EXPECT_EQ(r.SquaredMinDist(Point({0.5f, 0.5f})), 0.0);
  EXPECT_EQ(r.SquaredMinDist(Point({0, 1})), 0.0);  // boundary
}

TEST(RectTest, MinDistOutside) {
  const Rect r = MakeRect({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(r.SquaredMinDist(Point({2, 0.5f})), 1.0);
  EXPECT_DOUBLE_EQ(r.SquaredMinDist(Point({2, 2})), 2.0);
  EXPECT_DOUBLE_EQ(r.SquaredMinDist(Point({-3, 0.5f})), 9.0);
}

TEST(RectTest, MinMaxDistTwoDimensional) {
  // Unit square, query at the origin corner: for each dimension, the
  // nearer face is at 0, the farther at 1. minmaxdist = min(0+1, 1+0)=1.
  const Rect r = MakeRect({0, 0}, {1, 1});
  EXPECT_DOUBLE_EQ(r.SquaredMinMaxDist(Point({0, 0})), 1.0);
}

TEST(RectTest, IntersectsBall) {
  const Rect r = MakeRect({0, 0}, {1, 1});
  EXPECT_TRUE(r.IntersectsBall(Point({0.5f, 0.5f}), 0.0));  // inside
  EXPECT_TRUE(r.IntersectsBall(Point({2, 0.5f}), 1.0));     // touches
  EXPECT_FALSE(r.IntersectsBall(Point({2, 0.5f}), 0.9));
  EXPECT_TRUE(r.IntersectsBall(Point({2, 2}), std::sqrt(2.0) + 1e-9));
  EXPECT_FALSE(r.IntersectsBall(Point({2, 2}), std::sqrt(2.0) - 1e-9));
}

TEST(RectTest, ToStringRendersIntervals) {
  const Rect r = MakeRect({0, 0.5f}, {1, 2});
  EXPECT_EQ(r.ToString(), "[[0,1] x [0.5,2]]");
}

TEST(RectDeathTest, InvertedBoundsForbidden) {
  EXPECT_DEATH(Rect({1.0f}, {0.0f}), "PARSIM_CHECK");
}

// ---------------------------------------------------------------------------
// Property sweeps over dimensions: MINDIST / MINMAXDIST bounds against
// sampled points, on random rectangles.

class RectPropertyTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  Rect RandomRect(Rng* rng, std::size_t dim) {
    std::vector<Scalar> lo(dim), hi(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      const double a = rng->NextDouble();
      const double b = rng->NextDouble();
      lo[i] = static_cast<Scalar>(std::min(a, b));
      hi[i] = static_cast<Scalar>(std::max(a, b));
    }
    return Rect(std::move(lo), std::move(hi));
  }

  Point RandomPointIn(const Rect& r, Rng* rng) {
    Point p(r.dim());
    for (std::size_t i = 0; i < r.dim(); ++i) {
      p[i] = static_cast<Scalar>(
          rng->NextUniform(static_cast<double>(r.lo(i)),
                           static_cast<double>(r.hi(i))));
    }
    return p;
  }

  Point RandomPoint(std::size_t dim, Rng* rng) {
    Point p(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      p[i] = static_cast<Scalar>(rng->NextUniform(-0.5, 1.5));
    }
    return p;
  }
};

TEST_P(RectPropertyTest, MinDistLowerBoundsContainedPoints) {
  const std::size_t dim = GetParam();
  Rng rng(1000 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect r = RandomRect(&rng, dim);
    const Point q = RandomPoint(dim, &rng);
    const double mindist = r.SquaredMinDist(q);
    for (int s = 0; s < 20; ++s) {
      const Point inside = RandomPointIn(r, &rng);
      EXPECT_LE(mindist, SquaredL2(q, inside) + 1e-9);
    }
  }
}

TEST_P(RectPropertyTest, MinMaxDistUpperBoundsNearestVertexFace) {
  // MINMAXDIST guarantees at least one point of the rectangle's boundary
  // within that distance; in particular it is >= MINDIST and it upper
  // bounds the distance to the nearest of the 2d face-center-adjacent
  // vertices used in its construction.
  const std::size_t dim = GetParam();
  Rng rng(2000 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect r = RandomRect(&rng, dim);
    const Point q = RandomPoint(dim, &rng);
    const double mindist = r.SquaredMinDist(q);
    const double minmaxdist = r.SquaredMinMaxDist(q);
    EXPECT_GE(minmaxdist, mindist - 1e-9);
    // And the farthest vertex is an upper bound on minmaxdist.
    double far = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double dlo = std::abs(static_cast<double>(q[i]) - r.lo(i));
      const double dhi = std::abs(static_cast<double>(q[i]) - r.hi(i));
      const double d = std::max(dlo, dhi);
      far += d * d;
    }
    EXPECT_LE(minmaxdist, far + 1e-9);
  }
}

TEST_P(RectPropertyTest, MinMaxDistGuaranteeAgainstStoredPoints) {
  // Roussopoulos et al.'s use: if a rectangle is the MBR of a point set,
  // at least one stored point lies within MINMAXDIST of the query.
  const std::size_t dim = GetParam();
  Rng rng(3000 + dim);
  for (int trial = 0; trial < 30; ++trial) {
    // Generate points, build their MBR.
    std::vector<Point> points;
    Rect mbr = Rect::Empty(dim);
    for (int s = 0; s < 15; ++s) {
      Point p(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        p[i] = static_cast<Scalar>(rng.NextDouble());
      }
      mbr.ExtendToInclude(p);
      points.push_back(std::move(p));
    }
    const Point q = RandomPoint(dim, &rng);
    const double bound = mbr.SquaredMinMaxDist(q);
    // The guarantee holds for MBRs: every face of the MBR touches a
    // stored point. Verify that some point is within the bound, with a
    // small epsilon: the guarantee needs a point on each face, which an
    // MBR provides per dimension (possibly different points).
    double best = std::numeric_limits<double>::infinity();
    for (const Point& p : points) best = std::min(best, SquaredL2(q, p));
    EXPECT_LE(best, bound + 1e-9);
  }
}

TEST_P(RectPropertyTest, UnionContainsBoth) {
  const std::size_t dim = GetParam();
  Rng rng(4000 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect a = RandomRect(&rng, dim);
    const Rect b = RandomRect(&rng, dim);
    const Rect u = Rect::Union(a, b);
    EXPECT_TRUE(u.ContainsRect(a));
    EXPECT_TRUE(u.ContainsRect(b));
    EXPECT_GE(u.Volume(), std::max(a.Volume(), b.Volume()) - 1e-12);
  }
}

TEST_P(RectPropertyTest, IntersectionContainedInBoth) {
  const std::size_t dim = GetParam();
  Rng rng(5000 + dim);
  for (int trial = 0; trial < 50; ++trial) {
    const Rect a = RandomRect(&rng, dim);
    const Rect b = RandomRect(&rng, dim);
    const Rect i = Rect::Intersection(a, b);
    if (i.IsEmpty()) {
      EXPECT_EQ(a.OverlapVolume(b), 0.0);
      continue;
    }
    EXPECT_TRUE(a.ContainsRect(i));
    EXPECT_TRUE(b.ContainsRect(i));
    EXPECT_DOUBLE_EQ(a.OverlapVolume(b), i.Volume());
  }
}

TEST_P(RectPropertyTest, IntersectsBallAgreesWithMinDist) {
  const std::size_t dim = GetParam();
  Rng rng(6000 + dim);
  for (int trial = 0; trial < 100; ++trial) {
    const Rect r = RandomRect(&rng, dim);
    const Point q = RandomPoint(dim, &rng);
    const double radius = rng.NextDouble();
    EXPECT_EQ(r.IntersectsBall(q, radius),
              r.SquaredMinDist(q) <= radius * radius);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RectPropertyTest,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 16),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace parsim
