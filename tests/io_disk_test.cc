#include "src/io/disk.h"

#include <gtest/gtest.h>

#include "src/io/disk_array.h"
#include "src/io/disk_model.h"

namespace parsim {
namespace {

TEST(DiskModelTest, PageAccessCostIsSumOfComponents) {
  DiskParameters params;
  params.avg_seek_ms = 8.0;
  params.avg_rotational_ms = 4.0;
  params.transfer_ms_per_page = 0.8;
  EXPECT_DOUBLE_EQ(params.PageAccessMs(), 12.8);
}

TEST(DiskModelTest, ElapsedCombinesIoAndCpu) {
  DiskParameters params;
  params.avg_seek_ms = 10.0;
  params.avg_rotational_ms = 0.0;
  params.transfer_ms_per_page = 0.0;
  params.cpu_ms_per_distance = 0.5;
  DiskStats stats;
  stats.data_pages_read = 3;
  stats.directory_pages_read = 2;
  stats.distance_computations = 4;
  EXPECT_DOUBLE_EQ(ElapsedMs(stats, params), 5 * 10.0 + 4 * 0.5);
}

TEST(DiskStatsTest, Accumulation) {
  DiskStats a, b;
  a.data_pages_read = 1;
  a.directory_pages_read = 2;
  a.pages_written = 3;
  a.distance_computations = 4;
  b.data_pages_read = 10;
  b.directory_pages_read = 20;
  b.pages_written = 30;
  b.distance_computations = 40;
  a += b;
  EXPECT_EQ(a.data_pages_read, 11u);
  EXPECT_EQ(a.directory_pages_read, 22u);
  EXPECT_EQ(a.pages_written, 33u);
  EXPECT_EQ(a.distance_computations, 44u);
  EXPECT_EQ(a.TotalPagesRead(), 33u);
}

TEST(SimulatedDiskTest, CountersStartAtZero) {
  SimulatedDisk d(0);
  EXPECT_EQ(d.stats().TotalPagesRead(), 0u);
  EXPECT_EQ(d.ElapsedMs(), 0.0);
}

TEST(SimulatedDiskTest, ChargesAccumulate) {
  SimulatedDisk d(3);
  EXPECT_EQ(d.id(), 3u);
  d.ReadDataPages();
  d.ReadDataPages(4);
  d.ReadDirectoryPages(2);
  d.WritePages(7);
  d.ChargeDistanceComputations(10);
  EXPECT_EQ(d.stats().data_pages_read, 5u);
  EXPECT_EQ(d.stats().directory_pages_read, 2u);
  EXPECT_EQ(d.stats().pages_written, 7u);
  EXPECT_EQ(d.stats().distance_computations, 10u);
  EXPECT_EQ(d.stats().TotalPagesRead(), 7u);
  EXPECT_GT(d.ElapsedMs(), 0.0);
}

TEST(SimulatedDiskTest, ResetClearsCounters) {
  SimulatedDisk d(0);
  d.ReadDataPages(5);
  d.ResetStats();
  EXPECT_EQ(d.stats().TotalPagesRead(), 0u);
  EXPECT_EQ(d.ElapsedMs(), 0.0);
}

TEST(DiskArrayTest, SizeAndIds) {
  DiskArray array(4);
  EXPECT_EQ(array.size(), 4u);
  for (DiskId i = 0; i < 4; ++i) EXPECT_EQ(array.disk(i).id(), i);
}

TEST(DiskArrayTest, ParallelElapsedIsMax) {
  DiskArray array(3);
  array.disk(0).ReadDataPages(1);
  array.disk(1).ReadDataPages(10);
  array.disk(2).ReadDataPages(5);
  const double per_page = array.disk(0).parameters().PageAccessMs();
  EXPECT_DOUBLE_EQ(array.ParallelElapsedMs(), 10 * per_page);
  EXPECT_DOUBLE_EQ(array.SequentialElapsedMs(), 16 * per_page);
  EXPECT_EQ(array.BusiestDisk(), 1u);
  EXPECT_EQ(array.MaxPagesRead(), 10u);
  EXPECT_EQ(array.TotalPagesRead(), 16u);
}

TEST(DiskArrayTest, BalanceRatio) {
  DiskArray array(4);
  // Perfectly balanced: 5 pages each.
  for (DiskId i = 0; i < 4; ++i) array.disk(i).ReadDataPages(5);
  EXPECT_DOUBLE_EQ(array.BalanceRatio(), 1.0);
  array.ResetStats();
  // All on one disk of four: avg/max = (20/4)/20 = 0.25.
  array.disk(2).ReadDataPages(20);
  EXPECT_DOUBLE_EQ(array.BalanceRatio(), 0.25);
}

TEST(DiskArrayTest, BalanceRatioOfIdleArrayIsOne) {
  DiskArray array(8);
  EXPECT_DOUBLE_EQ(array.BalanceRatio(), 1.0);
}

TEST(DiskArrayTest, TotalStatsAggregates) {
  DiskArray array(2);
  array.disk(0).ReadDataPages(3);
  array.disk(1).ReadDirectoryPages(4);
  array.disk(1).ChargeDistanceComputations(5);
  const DiskStats total = array.TotalStats();
  EXPECT_EQ(total.data_pages_read, 3u);
  EXPECT_EQ(total.directory_pages_read, 4u);
  EXPECT_EQ(total.distance_computations, 5u);
}

TEST(DiskArrayTest, ResetStatsClearsAllDisks) {
  DiskArray array(3);
  for (DiskId i = 0; i < 3; ++i) array.disk(i).ReadDataPages(i + 1);
  array.ResetStats();
  EXPECT_EQ(array.TotalPagesRead(), 0u);
  EXPECT_DOUBLE_EQ(array.ParallelElapsedMs(), 0.0);
}

TEST(DiskArrayDeathTest, ZeroDisksForbidden) {
  EXPECT_DEATH(DiskArray(0), "PARSIM_CHECK");
}

TEST(DiskArrayDeathTest, OutOfRangeDiskId) {
  DiskArray array(2);
  EXPECT_DEATH(array.disk(2), "PARSIM_CHECK");
}

TEST(DiskModelTest, PageSizeMatchesPaper) {
  EXPECT_EQ(kPageSizeBytes, 4096u);
}

}  // namespace
}  // namespace parsim
