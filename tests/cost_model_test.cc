#include "src/cost/model.h"

#include "src/index/knn.h"
#include "src/index/xtree.h"
#include "src/workload/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace parsim {
namespace {

TEST(SurfaceProbabilityTest, MatchesEquationOne) {
  // p = 1 - (1 - 2*eps)^d with eps = 0.1.
  EXPECT_NEAR(SurfaceProbability(1), 0.2, 1e-12);
  EXPECT_NEAR(SurfaceProbability(2), 1.0 - 0.64, 1e-12);
  EXPECT_NEAR(SurfaceProbability(16), 1.0 - std::pow(0.8, 16), 1e-12);
}

TEST(SurfaceProbabilityTest, PaperHeadlineNumber) {
  // "reaches more than 97% for a dimensionality of 16" (Figure 5).
  EXPECT_GT(SurfaceProbability(16, 0.1), 0.97);
}

TEST(SurfaceProbabilityTest, MonotoneInDimensionAndEps) {
  for (std::size_t d = 1; d < 30; ++d) {
    EXPECT_LT(SurfaceProbability(d), SurfaceProbability(d + 1));
  }
  EXPECT_LT(SurfaceProbability(8, 0.05), SurfaceProbability(8, 0.1));
  EXPECT_EQ(SurfaceProbability(8, 0.5), 1.0);
  EXPECT_EQ(SurfaceProbability(8, 0.0), 0.0);
}

TEST(SurfaceProbabilityTest, MonteCarloAgreesWithAnalytic) {
  Rng rng(3);
  for (std::size_t d : {2u, 8u, 16u}) {
    const double analytic = SurfaceProbability(d);
    const double simulated = MonteCarloSurfaceProbability(d, 0.1, 200000, &rng);
    EXPECT_NEAR(simulated, analytic, 0.01) << "d=" << d;
  }
}

TEST(UnitBallVolumeTest, KnownValues) {
  EXPECT_NEAR(UnitBallVolume(1), 2.0, 1e-12);             // segment
  EXPECT_NEAR(UnitBallVolume(2), M_PI, 1e-12);            // disc
  EXPECT_NEAR(UnitBallVolume(3), 4.0 / 3.0 * M_PI, 1e-9);  // ball
}

TEST(UnitBallVolumeTest, VanishesInHighDimensions) {
  // The curse of dimensionality driver: V(d) -> 0.
  EXPECT_LT(UnitBallVolume(20), UnitBallVolume(5));
  EXPECT_LT(UnitBallVolume(30), 1e-2);
}

TEST(ExpectedNnDistanceTest, GrowsWithDimension) {
  // The paper's key effect: the NN radius explodes with d at fixed N.
  const std::uint64_t n = 1000000;
  double prev = 0.0;
  for (std::size_t d = 2; d <= 30; d += 2) {
    const double r = ExpectedNnDistance(n, d);
    EXPECT_GT(r, prev);
    prev = r;
  }
  // At d=2 with a million points the radius is tiny...
  EXPECT_LT(ExpectedNnDistance(n, 2), 0.001);
  // ...at d=20 it approaches the scale of the whole data space.
  EXPECT_GT(ExpectedNnDistance(n, 20), 0.5);
}

TEST(ExpectedNnDistanceTest, ShrinksWithMorePoints) {
  for (std::size_t d : {2u, 8u, 16u}) {
    EXPECT_GT(ExpectedNnDistance(1000, d), ExpectedNnDistance(1000000, d));
  }
}

TEST(ExpectedNnDistanceTest, GrowsWithK) {
  EXPECT_GT(ExpectedNnDistance(100000, 8, 10),
            ExpectedNnDistance(100000, 8, 1));
}

TEST(ExpectedNnDistanceTest, MatchesSimulationInLowDimensions) {
  // Monte Carlo check of the Poisson model at d=2 (negligible boundary
  // effects there).
  Rng rng(5);
  const std::size_t n = 20000;
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.NextDouble();
    ys[i] = rng.NextDouble();
  }
  double sum = 0.0;
  const int queries = 300;
  for (int q = 0; q < queries; ++q) {
    const double qx = rng.NextUniform(0.2, 0.8);
    const double qy = rng.NextUniform(0.2, 0.8);
    double best = 1e18;
    for (std::size_t i = 0; i < n; ++i) {
      const double dx = xs[i] - qx, dy = ys[i] - qy;
      best = std::min(best, dx * dx + dy * dy);
    }
    sum += std::sqrt(best);
  }
  const double simulated = sum / queries;
  const double model = ExpectedNnDistance(n, 2);
  // The model is the radius at which the expected count is 1; the mean NN
  // distance differs by a Gamma-function factor close to 1. 25% slack.
  EXPECT_NEAR(simulated, model, model * 0.25);
}

TEST(MinkowskiVolumeTest, DegenerateCases) {
  // Zero radius: the cube's own volume. Zero edge: the ball's volume.
  EXPECT_NEAR(MinkowskiCubeBallVolume(3, 0.5, 0.0), 0.125, 1e-12);
  EXPECT_NEAR(MinkowskiCubeBallVolume(3, 0.0, 1.0), UnitBallVolume(3), 1e-9);
  EXPECT_NEAR(MinkowskiCubeBallVolume(2, 0.0, 2.0), M_PI * 4.0, 1e-9);
}

TEST(MinkowskiVolumeTest, TwoDimensionalClosedForm) {
  // Square a=1 grown by r: a^2 + 4*a*r/2*2 ... = a^2 + 4 a r + pi r^2
  // (sum form: C(2,0) a^2 + C(2,1) a V_1 r + C(2,2) V_2 r^2 with V_1=2).
  const double a = 0.3, r = 0.1;
  EXPECT_NEAR(MinkowskiCubeBallVolume(2, a, r),
              a * a + 2.0 * a * 2.0 * r + M_PI * r * r, 1e-12);
}

TEST(MinkowskiVolumeTest, MonotoneInBothArguments) {
  for (std::size_t d : {2u, 8u, 15u}) {
    EXPECT_LT(MinkowskiCubeBallVolume(d, 0.1, 0.1),
              MinkowskiCubeBallVolume(d, 0.2, 0.1));
    EXPECT_LT(MinkowskiCubeBallVolume(d, 0.1, 0.1),
              MinkowskiCubeBallVolume(d, 0.1, 0.2));
  }
}

TEST(ExpectedPageAccessesTest, GrowsWithDimensionUntilSaturation) {
  const double total = 100000.0 / 64.0;
  double prev = 0.0;
  for (std::size_t d = 2; d <= 16; d += 2) {
    const double pages = ExpectedNnPageAccesses(100000, d, 64);
    if (prev < total) {
      EXPECT_GT(pages, prev) << "d=" << d;
    } else {
      EXPECT_DOUBLE_EQ(pages, total) << "saturated at every page, d=" << d;
    }
    prev = pages;
  }
  EXPECT_DOUBLE_EQ(prev, total) << "d=16 must saturate the whole index";
}

TEST(ExpectedPageAccessesTest, AtLeastOnePageAndAtMostAllPages) {
  for (std::size_t d : {2u, 8u, 16u, 24u}) {
    const double pages = ExpectedNnPageAccesses(100000, d, 64);
    const double total = 100000.0 / 64.0;
    EXPECT_GE(pages, 0.9) << "d=" << d;
    EXPECT_LE(pages, total + 1e-9) << "d=" << d;
  }
}

TEST(ExpectedPageAccessesTest, LowDimensionalModelMatchesMeasurementScale) {
  // At d=2 the model should be within a small factor of an actual
  // measurement against the X-tree.
  const std::size_t d = 2;
  const std::size_t n = 50000;
  const PointSet data = GenerateUniform(n, d, 881);
  SimulatedDisk disk(0);
  XTree tree(d, &disk);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const PointSet queries = GenerateUniformQueries(30, d, 883);
  std::uint64_t measured = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    disk.ResetStats();
    (void)HsKnn(tree, queries[qi], 1);
    measured += disk.stats().data_pages_read;
  }
  const double measured_avg =
      static_cast<double>(measured) / static_cast<double>(queries.size());
  const auto per_page = static_cast<std::size_t>(
      0.7 * static_cast<double>(LeafCapacityPerPage(d)));
  const double model = ExpectedNnPageAccesses(n, d, per_page, 1);
  EXPECT_GT(model, measured_avg / 4.0);
  EXPECT_LT(model, measured_avg * 4.0);
}

TEST(QuadrantsIntersectedTest, SmallRadiusTouchesOneBucket) {
  Rng rng(7);
  const double avg = MonteCarloQuadrantsIntersected(4, 1e-6, 500, &rng);
  EXPECT_NEAR(avg, 1.0, 1e-9);
}

TEST(QuadrantsIntersectedTest, HugeRadiusTouchesAllBuckets) {
  Rng rng(9);
  const double avg = MonteCarloQuadrantsIntersected(4, 10.0, 100, &rng);
  EXPECT_NEAR(avg, 16.0, 1e-9);
}

TEST(QuadrantsIntersectedTest, MonotoneInRadius) {
  Rng rng(11);
  double prev = 0.0;
  for (double r : {0.01, 0.1, 0.3, 0.6, 1.0}) {
    Rng local(11);  // same queries for each radius
    const double avg = MonteCarloQuadrantsIntersected(6, r, 500, &local);
    EXPECT_GE(avg, prev);
    prev = avg;
  }
  (void)rng;
}

TEST(QuadrantsIntersectedTest, HighDimensionalNnSphereTouchesMany) {
  // The declustering motivation quantified: at d=12 with the model NN
  // radius of a 100k-point data set, the sphere touches many quadrants.
  Rng rng(13);
  const double radius = ExpectedNnDistance(100000, 12);
  const double avg = MonteCarloQuadrantsIntersected(12, radius, 300, &rng);
  EXPECT_GT(avg, 16.0) << "NN-sphere must span many quadrants in high-d";
}

}  // namespace
}  // namespace parsim
