// QueryService: the production front-end around ParallelSearchEngine.
// Pins the service contract — bit-identity with QueryBatch when no
// deadline fires, kResourceExhausted backpressure on a full admission
// queue, page budgets / wall deadlines resolving to kDeadlineExceeded
// with a true top-m prefix, weighted priority admission (interactive
// first, bulk not starved), and determinism at any worker-thread count.
// The threaded Start/Submit/Stop test doubles as the TSAN target.

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/parsim/parsim.h"

namespace parsim {
namespace {

constexpr std::size_t kK = 10;

std::unique_ptr<ParallelSearchEngine> MakeEngine(const PointSet& data,
                                                 std::uint32_t disks = 8) {
  EngineOptions options;
  options.architecture = Architecture::kSharedTree;
  options.bulk_load = true;
  options.coalesced_batch = true;
  auto engine = std::make_unique<ParallelSearchEngine>(
      data.dim(), std::make_unique<NearOptimalDeclusterer>(data.dim(), disks),
      options);
  EXPECT_TRUE(engine->Build(data).ok());
  return engine;
}

TEST(QueryServiceTest, BitIdenticalToQueryBatchWhenNoDeadline) {
  const PointSet data = GenerateUniform(5000, 8, 9001);
  const PointSet queries = GenerateUniformQueries(32, 8, 9002);
  const auto engine = MakeEngine(data);

  std::vector<QueryStats> batch_stats;
  const std::vector<KnnResult> batch =
      engine->QueryBatch(queries, kK, &batch_stats);

  // Width covers the whole submission, so the service admits everything
  // into one closed schedule — per-query stats must match QueryBatch's
  // coalesced numbers exactly, not just the answers.
  ServiceOptions service_options;
  service_options.min_batch = queries.size();
  service_options.max_batch = queries.size();
  QueryService service(*engine, service_options);
  std::vector<std::future<ServedResult>> futures(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(service.Submit(queries[i], {}, &futures[i]).ok());
  }
  EXPECT_EQ(service.Drain(), queries.size());

  for (std::size_t q = 0; q < queries.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const ServedResult served = futures[q].get();
    ASSERT_TRUE(served.status.ok()) << served.status.ToString();
    ASSERT_EQ(served.neighbors.size(), batch[q].size());
    for (std::size_t i = 0; i < batch[q].size(); ++i) {
      EXPECT_EQ(served.neighbors[i].id, batch[q][i].id);
      EXPECT_EQ(served.neighbors[i].distance, batch[q][i].distance);
    }
    EXPECT_EQ(served.stats.parallel_ms, batch_stats[q].parallel_ms);
    EXPECT_EQ(served.stats.total_pages, batch_stats[q].total_pages);
    EXPECT_EQ(served.stats.directory_pages, batch_stats[q].directory_pages);
    EXPECT_EQ(served.stats.coalesced_reads, batch_stats[q].coalesced_reads);
    EXPECT_EQ(served.stats.pages_per_disk, batch_stats[q].pages_per_disk);
    EXPECT_GT(served.finish_seq, 0u);
    EXPECT_GT(served.rounds, 0u);
  }

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, queries.size());
  EXPECT_EQ(metrics.completed, queries.size());
  EXPECT_EQ(metrics.rejected, 0u);
  EXPECT_EQ(metrics.expired, 0u);
  EXPECT_GT(metrics.rounds, 0u);
  EXPECT_GE(metrics.ema_prune_rate, 0.0);
  EXPECT_LE(metrics.ema_prune_rate, 1.0);
}

TEST(QueryServiceTest, AdaptiveAdmissionStillExactAnswers) {
  const PointSet data = GenerateUniform(4000, 6, 9011);
  const PointSet queries = GenerateUniformQueries(48, 6, 9012);
  const auto engine = MakeEngine(data);

  const std::vector<KnnResult> batch = engine->QueryBatch(queries, kK);

  // Narrow adaptive widths: queries join and leave rounds continuously,
  // so round composition differs completely from the closed batch — the
  // answers must not.
  ServiceOptions service_options;
  service_options.min_batch = 2;
  service_options.max_batch = 7;
  QueryService service(*engine, service_options);
  std::vector<std::future<ServedResult>> futures(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(service.Submit(queries[i], {}, &futures[i]).ok());
  }
  service.Drain();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    const ServedResult served = futures[q].get();
    ASSERT_TRUE(served.status.ok());
    ASSERT_EQ(served.neighbors.size(), batch[q].size());
    for (std::size_t i = 0; i < batch[q].size(); ++i) {
      EXPECT_EQ(served.neighbors[i].id, batch[q][i].id);
      EXPECT_EQ(served.neighbors[i].distance, batch[q][i].distance);
    }
  }
}

TEST(QueryServiceTest, BackpressureRejectsWhenQueueFull) {
  const PointSet data = GenerateUniform(1000, 4, 9021);
  const PointSet queries = GenerateUniformQueries(10, 4, 9022);
  const auto engine = MakeEngine(data, 4);

  ServiceOptions service_options;
  service_options.max_queue = 4;
  QueryService service(*engine, service_options);
  std::vector<std::future<ServedResult>> futures(queries.size());
  std::size_t accepted = 0, rejected = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Status s = service.Submit(queries[i], {}, &futures[i]);
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(rejected, 6u);
  EXPECT_EQ(service.Drain(), 4u);
  for (std::size_t i = 0; i < accepted; ++i) {
    EXPECT_TRUE(futures[i].get().status.ok());
  }
  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, 4u);
  EXPECT_EQ(metrics.rejected, 6u);
  EXPECT_EQ(metrics.completed, 4u);
}

TEST(QueryServiceTest, PageBudgetStopsEarlyWithTruePrefix) {
  const PointSet data = GenerateUniform(20000, 8, 9031);
  const PointSet queries = GenerateUniformQueries(4, 8, 9032);
  const auto engine = MakeEngine(data);

  for (std::size_t q = 0; q < queries.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    // Unbudgeted reference run.
    QueryService full_service(*engine);
    std::future<ServedResult> full_future;
    ASSERT_TRUE(full_service.Submit(queries[q], {}, &full_future).ok());
    full_service.Drain();
    const ServedResult full = full_future.get();
    ASSERT_TRUE(full.status.ok());
    ASSERT_EQ(full.neighbors.size(), kK);

    // Tight page budget: must expire, must have read strictly fewer
    // pages, and whatever it did return must be the true best-first
    // prefix of the full answer.
    QueryService budget_service(*engine);
    ServiceQueryOptions opts;
    opts.max_pages = 8;
    std::future<ServedResult> budget_future;
    ASSERT_TRUE(budget_service.Submit(queries[q], opts, &budget_future).ok());
    budget_service.Drain();
    const ServedResult budgeted = budget_future.get();
    EXPECT_EQ(budgeted.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_LT(budgeted.stats.total_pages, full.stats.total_pages);
    EXPECT_LE(budgeted.neighbors.size(), full.neighbors.size());
    for (std::size_t i = 0; i < budgeted.neighbors.size(); ++i) {
      EXPECT_EQ(budgeted.neighbors[i].id, full.neighbors[i].id);
      EXPECT_EQ(budgeted.neighbors[i].distance, full.neighbors[i].distance);
    }
    EXPECT_EQ(budget_service.metrics().expired, 1u);

    // A generous budget never fires and stays bit-identical.
    QueryService loose_service(*engine);
    // Upper bound on TotalPagesTouched: total_pages misses the host
    // slot's directory reads, so add directory_pages (which double
    // counts the disks' share — fine for a bound that must not fire).
    opts.max_pages = full.stats.total_pages + full.stats.directory_pages +
                     full.stats.buffer_hit_pages + full.stats.coalesced_reads +
                     1;
    std::future<ServedResult> loose_future;
    ASSERT_TRUE(loose_service.Submit(queries[q], opts, &loose_future).ok());
    loose_service.Drain();
    const ServedResult loose = loose_future.get();
    ASSERT_TRUE(loose.status.ok());
    ASSERT_EQ(loose.neighbors.size(), full.neighbors.size());
    for (std::size_t i = 0; i < loose.neighbors.size(); ++i) {
      EXPECT_EQ(loose.neighbors[i].id, full.neighbors[i].id);
      EXPECT_EQ(loose.neighbors[i].distance, full.neighbors[i].distance);
    }
  }
}

TEST(QueryServiceTest, ExpiredWallDeadlineResolvesBeforeAnyRound) {
  const PointSet data = GenerateUniform(2000, 4, 9041);
  const PointSet queries = GenerateUniformQueries(1, 4, 9042);
  const auto engine = MakeEngine(data, 4);

  QueryService service(*engine);
  ServiceQueryOptions opts;
  opts.deadline_ms = 1e-9;  // already past by the first round check
  std::future<ServedResult> future;
  ASSERT_TRUE(service.Submit(queries[0], opts, &future).ok());
  service.Drain();
  const ServedResult served = future.get();
  EXPECT_EQ(served.status.code(), StatusCode::kDeadlineExceeded);
  // Expired before reading any data page: only the already-paid root
  // access can appear.
  EXPECT_LE(served.stats.total_pages, 1u);
}

TEST(QueryServiceTest, InteractiveQueriesFinishBeforeBulk) {
  const PointSet data = GenerateUniform(4000, 6, 9051);
  const PointSet queries = GenerateUniformQueries(8, 6, 9052);
  const auto engine = MakeEngine(data);

  // Width 1: strictly one query in service at a time, so admission
  // order IS completion order. Bulk submitted first, interactive second
  // — the weighted dequeue must still serve all interactive first.
  ServiceOptions service_options;
  service_options.min_batch = 1;
  service_options.max_batch = 1;
  service_options.interactive_weight = 100;  // no bulk preemption here
  QueryService service(*engine, service_options);
  std::vector<std::future<ServedResult>> bulk_futures(4);
  std::vector<std::future<ServedResult>> interactive_futures(4);
  ServiceQueryOptions bulk_opts;
  bulk_opts.priority = QueryClass::kBulk;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Submit(queries[i], bulk_opts, &bulk_futures[i]).ok());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        service.Submit(queries[4 + i], {}, &interactive_futures[i]).ok());
  }
  service.Drain();
  std::uint64_t max_interactive_seq = 0;
  std::uint64_t min_bulk_seq = ~0ull;
  for (auto& f : interactive_futures) {
    max_interactive_seq = std::max(max_interactive_seq, f.get().finish_seq);
  }
  for (auto& f : bulk_futures) {
    min_bulk_seq = std::min(min_bulk_seq, f.get().finish_seq);
  }
  EXPECT_LT(max_interactive_seq, min_bulk_seq);
}

TEST(QueryServiceTest, BulkNotStarvedUnderWeight) {
  const PointSet data = GenerateUniform(2000, 4, 9061);
  const PointSet queries = GenerateUniformQueries(8, 4, 9062);
  const auto engine = MakeEngine(data, 4);

  // interactive_weight 1: the dequeue alternates I, B, I, B — a bulk
  // query finishes before the last interactive one.
  ServiceOptions service_options;
  service_options.min_batch = 1;
  service_options.max_batch = 1;
  service_options.interactive_weight = 1;
  QueryService service(*engine, service_options);
  std::vector<std::future<ServedResult>> bulk_futures(4);
  std::vector<std::future<ServedResult>> interactive_futures(4);
  ServiceQueryOptions bulk_opts;
  bulk_opts.priority = QueryClass::kBulk;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Submit(queries[i], bulk_opts, &bulk_futures[i]).ok());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        service.Submit(queries[4 + i], {}, &interactive_futures[i]).ok());
  }
  service.Drain();
  std::uint64_t max_interactive_seq = 0;
  std::uint64_t min_bulk_seq = ~0ull;
  for (auto& f : interactive_futures) {
    max_interactive_seq = std::max(max_interactive_seq, f.get().finish_seq);
  }
  for (auto& f : bulk_futures) {
    min_bulk_seq = std::min(min_bulk_seq, f.get().finish_seq);
  }
  EXPECT_LT(min_bulk_seq, max_interactive_seq);
}

TEST(QueryServiceTest, DeterministicAcrossWorkerThreads) {
  const PointSet data = GenerateUniform(5000, 8, 9071);
  const PointSet queries = GenerateUniformQueries(24, 8, 9072);
  const auto engine = MakeEngine(data);

  auto run = [&](unsigned threads) {
    ServiceOptions service_options;
    service_options.min_batch = 3;
    service_options.max_batch = 9;
    service_options.threads = threads;
    QueryService service(*engine, service_options);
    std::vector<std::future<ServedResult>> futures(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(service.Submit(queries[i], {}, &futures[i]).ok());
    }
    service.Drain();
    std::vector<ServedResult> out;
    out.reserve(queries.size());
    for (auto& f : futures) out.push_back(f.get());
    return out;
  };

  const std::vector<ServedResult> serial = run(0);
  const std::vector<ServedResult> threaded = run(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t q = 0; q < serial.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    ASSERT_EQ(serial[q].neighbors.size(), threaded[q].neighbors.size());
    for (std::size_t i = 0; i < serial[q].neighbors.size(); ++i) {
      EXPECT_EQ(serial[q].neighbors[i].id, threaded[q].neighbors[i].id);
      EXPECT_EQ(serial[q].neighbors[i].distance,
                threaded[q].neighbors[i].distance);
    }
    EXPECT_EQ(serial[q].stats.parallel_ms, threaded[q].stats.parallel_ms);
    EXPECT_EQ(serial[q].stats.total_pages, threaded[q].stats.total_pages);
    EXPECT_EQ(serial[q].stats.coalesced_reads,
              threaded[q].stats.coalesced_reads);
    EXPECT_EQ(serial[q].stats.pages_per_disk,
              threaded[q].stats.pages_per_disk);
    EXPECT_EQ(serial[q].finish_seq, threaded[q].finish_seq);
    EXPECT_EQ(serial[q].rounds, threaded[q].rounds);
  }
}

// TSAN target: concurrent Submit from many threads against a running
// dispatcher, then graceful Stop.
TEST(QueryServiceTest, ConcurrentSubmitWithDispatcher) {
  const PointSet data = GenerateUniform(3000, 6, 9081);
  const PointSet queries = GenerateUniformQueries(32, 6, 9082);
  const auto engine = MakeEngine(data);

  ServiceOptions service_options;
  service_options.max_queue = 1024;
  service_options.threads = 4;
  QueryService service(*engine, service_options);
  service.Start();

  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerThread = 8;
  std::vector<std::vector<std::future<ServedResult>>> futures(kSubmitters);
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    futures[s].resize(kPerThread);
    submitters.emplace_back([&, s] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        ServiceQueryOptions opts;
        opts.priority =
            (i % 2 == 0) ? QueryClass::kInteractive : QueryClass::kBulk;
        if (i % 4 == 3) opts.max_pages = 4;  // a few expire mid-flight
        const Status st = service.Submit(queries[s * kPerThread + i], opts,
                                         &futures[s][i]);
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  std::size_t completed = 0, expired = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const ServedResult served = f.get();
      ++completed;
      if (served.status.code() == StatusCode::kDeadlineExceeded) ++expired;
      EXPECT_TRUE(served.status.ok() ||
                  served.status.code() == StatusCode::kDeadlineExceeded)
          << served.status.ToString();
    }
  }
  service.Stop();
  EXPECT_EQ(completed, kSubmitters * kPerThread);
  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.submitted, kSubmitters * kPerThread);
  EXPECT_EQ(metrics.completed, kSubmitters * kPerThread);
  EXPECT_EQ(metrics.expired, expired);
  EXPECT_GT(expired, 0u);
}

TEST(QueryServiceTest, StopDrainsOutstandingWork) {
  const PointSet data = GenerateUniform(2000, 4, 9091);
  const PointSet queries = GenerateUniformQueries(12, 4, 9092);
  const auto engine = MakeEngine(data, 4);

  QueryService service(*engine);
  std::vector<std::future<ServedResult>> futures(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(service.Submit(queries[i], {}, &futures[i]).ok());
  }
  service.Start();
  service.Stop();  // must drain everything submitted before returning
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_EQ(service.metrics().completed, queries.size());
}

}  // namespace
}  // namespace parsim
