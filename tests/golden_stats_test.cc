// Golden-file regression test of the simulated accounting: a fixed
// workload's per-query stats — healthy and degraded — must stay
// bit-identical across refactors. Doubles are printed with %.17g, which
// round-trips IEEE binary64 exactly, so any drift in the cost formulas
// shows up as a diff.
//
// Regenerate after an *intentional* accounting change with
//   PARSIM_UPDATE_GOLDEN=1 ./golden_stats_test
// and commit the updated tests/golden/query_stats.golden alongside it.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/parsim/parsim.h"

namespace parsim {
namespace {

#ifndef PARSIM_TEST_SRCDIR
#error "PARSIM_TEST_SRCDIR must point at the tests/ source directory"
#endif

std::string GoldenPath() {
  return std::string(PARSIM_TEST_SRCDIR) + "/golden/query_stats.golden";
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendQueryStats(std::ostringstream* out, const QueryStats& stats) {
  *out << "parallel_ms=" << FormatDouble(stats.parallel_ms)
       << " healthy_parallel_ms=" << FormatDouble(stats.healthy_parallel_ms)
       << " sum_ms=" << FormatDouble(stats.sum_ms)
       << " balance=" << FormatDouble(stats.balance)
       << " max_pages=" << stats.max_pages
       << " total_pages=" << stats.total_pages
       << " directory_pages=" << stats.directory_pages
       << " degraded=" << (stats.degraded ? 1 : 0)
       << " replica_pages=" << stats.replica_pages
       << " failed_read_attempts=" << stats.failed_read_attempts
       << " unavailable_pages=" << stats.unavailable_pages
       << " coalesced_reads=" << stats.coalesced_reads
       << " block_kernel_invocations=" << stats.block_kernel_invocations
       << " quantized_pruned=" << stats.quantized_pruned
       << " base_pruned=" << stats.base_pruned
       << " prefix_pruned=" << stats.prefix_pruned
       << " sq8_pruned=" << stats.sq8_pruned
       << " reranked=" << stats.reranked
       << " leaf_bytes_scanned=" << stats.leaf_bytes_scanned
       << " frontier_pushes=" << stats.frontier_pushes
       << " frontier_pops=" << stats.frontier_pops
       << " cutoff_skipped_nodes=" << stats.cutoff_skipped_nodes
       << " approx_skipped_nodes=" << stats.approx_skipped_nodes
       << " approx_pruned_exactly=" << stats.approx_pruned_exactly
       << " pages_per_disk=";
  for (std::size_t d = 0; d < stats.pages_per_disk.size(); ++d) {
    *out << (d == 0 ? "" : ",") << stats.pages_per_disk[d];
  }
  *out << "\n";
}

std::string RenderActualStats() {
  const std::size_t dim = 6;
  const std::uint32_t disks = 8;
  const std::size_t k = 10;
  const PointSet data = GenerateUniform(2500, dim, 3301);
  const PointSet queries = GenerateUniformQueries(4, dim, 3303);

  EngineOptions options;
  options.architecture = Architecture::kSharedTree;
  options.bulk_load = true;
  options.enable_replicas = true;
  ParallelSearchEngine engine(
      dim, std::make_unique<NearOptimalDeclusterer>(dim, disks), options);
  EXPECT_TRUE(engine.Build(data).ok());

  std::ostringstream out;
  out << "# golden simulated accounting: uniform d=6 n=2500 disks=8 k=10\n";
  out << "[healthy]\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    (void)engine.Query(queries[qi], k, &stats);
    out << "query " << qi << ": ";
    AppendQueryStats(&out, stats);
  }

  out << "[degraded disk0_failed replicas_on]\n";
  FaultPlan plan(disks);
  plan.FailDisk(0);
  engine.SetFaultPlan(plan);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    (void)engine.Query(queries[qi], k, &stats);
    out << "query " << qi << ": ";
    AppendQueryStats(&out, stats);
  }

  out << "[degraded disk2_slow_x3]\n";
  FaultPlan slow_plan(disks);
  slow_plan.SlowDisk(2, 3.0);
  engine.SetFaultPlan(slow_plan);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    (void)engine.Query(queries[qi], k, &stats);
    out << "query " << qi << ": ";
    AppendQueryStats(&out, stats);
  }
  engine.ClearFaults();

  const ThroughputResult batch = SimulateThroughput(engine, queries, k);
  out << "[throughput healthy]\n";
  out << "makespan_ms=" << FormatDouble(batch.makespan_ms)
      << " healthy_makespan_ms=" << FormatDouble(batch.healthy_makespan_ms)
      << " throughput_qps=" << FormatDouble(batch.throughput_qps)
      << " avg_latency_ms=" << FormatDouble(batch.avg_latency_ms)
      << " degraded_queries=" << batch.degraded_queries << "\n";

  // Buffered accounting in deterministic mode: the sharded page-buffer
  // pool is order-dependent by design, so QueryBatch replays the batch
  // serially (whatever thread count is requested) and per-query hit /
  // miss numbers stay golden-able.
  EngineOptions buffered = options;
  buffered.buffer_pages_per_disk = 32;
  buffered.deterministic_batch = true;
  ParallelSearchEngine buffered_engine(
      dim, std::make_unique<NearOptimalDeclusterer>(dim, disks), buffered);
  EXPECT_TRUE(buffered_engine.Build(data).ok());
  std::vector<QueryStats> batch_stats;
  unsigned effective_threads = 0;
  (void)buffered_engine.QueryBatch(queries, k, &batch_stats,
                                   /*threads=*/8, &effective_threads);
  out << "[buffered deterministic pages_per_disk=32 threads_requested=8]\n";
  out << "effective_threads=" << effective_threads
      << " pool_hit_pages=" << buffered_engine.buffer_pool()->TotalHitPages()
      << " pool_miss_pages=" << buffered_engine.buffer_pool()->TotalMissPages()
      << "\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    out << "query " << qi << ": hits=" << batch_stats[qi].buffer_hit_pages
        << " ";
    AppendQueryStats(&out, batch_stats[qi]);
  }

  // Coalesced batched execution over the same buffered workload: the
  // round scheduler shares page fetches across the batch, so per-query
  // coalesced_reads / block_kernel_invocations (and the pool ledger it
  // leaves behind) are pinned here. Deterministic at any thread count by
  // construction — threads=8 must reproduce these numbers bit for bit.
  EngineOptions co_options = buffered;
  co_options.coalesced_batch = true;
  ParallelSearchEngine co_engine(
      dim, std::make_unique<NearOptimalDeclusterer>(dim, disks), co_options);
  EXPECT_TRUE(co_engine.Build(data).ok());
  std::vector<QueryStats> co_stats;
  unsigned co_threads = 0;
  (void)co_engine.QueryBatch(queries, k, &co_stats, /*threads=*/8,
                             &co_threads);
  out << "[coalesced buffered pages_per_disk=32 threads_requested=8]\n";
  out << "effective_threads=" << co_threads
      << " pool_hit_pages=" << co_engine.buffer_pool()->TotalHitPages()
      << " pool_miss_pages=" << co_engine.buffer_pool()->TotalMissPages()
      << "\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    out << "query " << qi << ": hits=" << co_stats[qi].buffer_hit_pages
        << " ";
    AppendQueryStats(&out, co_stats[qi]);
  }

  // Quantized leaf blocks: results must be bit-identical to the exact
  // engine (checked here, outside the golden text), while the pinned
  // stats pick up the prune/re-rank/bytes counters and the reduced
  // distance CPU share in parallel_ms.
  EngineOptions quant = options;
  quant.quantized_leaf_blocks = true;
  ParallelSearchEngine quant_engine(
      dim, std::make_unique<NearOptimalDeclusterer>(dim, disks), quant);
  EXPECT_TRUE(quant_engine.Build(data).ok());
  out << "[quantized healthy]\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    const KnnResult got = quant_engine.Query(queries[qi], k, &stats);
    const KnnResult want = engine.Query(queries[qi], k);
    EXPECT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
      EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
    }
    out << "query " << qi << ": ";
    AppendQueryStats(&out, stats);
  }

  // Approximate tier at a pinned epsilon: the relaxed-skip and
  // exact-attribution counters, page counts, and the scored recall@k
  // against the linear-scan oracle are all deterministic, so the whole
  // quality/work tradeoff at eps=0.25 is golden-able. Any change to the
  // skip conditions — however plausible — shows up as a diff here.
  EngineOptions approx = options;
  approx.quantized_leaf_blocks = true;
  approx.cascade_prefix_stage = true;
  approx.approx.enabled = true;
  approx.approx.epsilon = 0.25;
  ParallelSearchEngine approx_engine(
      dim, std::make_unique<NearOptimalDeclusterer>(dim, disks), approx);
  EXPECT_TRUE(approx_engine.Build(data).ok());
  const std::vector<KnnResult> truth = ComputeGroundTruth(data, queries, k);
  std::vector<KnnResult> approx_results;
  out << "[approx eps=0.25 quantized cascade]\n";
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    approx_results.push_back(approx_engine.Query(queries[qi], k, &stats));
    out << "query " << qi
        << ": recall=" << FormatDouble(RecallAtK(approx_results[qi],
                                                 truth[qi], k))
        << " ";
    AppendQueryStats(&out, stats);
  }
  const RecallStats recall = ScoreRecall(approx_results, truth, k);
  out << "recall_mean=" << FormatDouble(recall.mean)
      << " recall_min=" << FormatDouble(recall.min)
      << " hits=" << recall.hits << " wanted=" << recall.wanted << "\n";

  // All-pairs self-join at a pinned epsilon, exact and quantized: block
  // pair enumeration, leader-pays page coalescing, the codebook triage
  // counters, and the simulated-time split are all deterministic. The
  // two engines must emit identical pair lists (checked outside the
  // golden text); the counters pin each path's work separately.
  const auto append_join_stats = [&out](const JoinStats& stats) {
    out << "leaf_blocks=" << stats.leaf_blocks
        << " considered=" << stats.block_pairs_considered
        << " pruned=" << stats.block_pairs_pruned
        << " swept=" << stats.block_pairs_swept
        << " pairs=" << stats.pairs_emitted
        << " total_pages=" << stats.total_pages
        << " directory_pages=" << stats.directory_pages
        << " max_pages=" << stats.max_pages
        << " coalesced_reads=" << stats.coalesced_reads
        << " exact_distances=" << stats.exact_distances
        << " quantized_pruned=" << stats.quantized_pruned
        << " base_pruned=" << stats.base_pruned
        << " prefix_pruned=" << stats.prefix_pruned
        << " sq8_pruned=" << stats.sq8_pruned
        << " reranked=" << stats.reranked
        << " leaf_bytes_scanned=" << stats.leaf_bytes_scanned
        << " block_kernel_invocations=" << stats.block_kernel_invocations
        << " parallel_ms=" << FormatDouble(stats.parallel_ms)
        << " sum_ms=" << FormatDouble(stats.sum_ms)
        << " balance=" << FormatDouble(stats.balance) << "\n";
  };
  const double join_eps = 0.2;
  const JoinResult join_exact = engine.SelfJoin(join_eps);
  const JoinResult join_quant = quant_engine.SelfJoin(join_eps);
  EXPECT_EQ(join_exact.pairs.size(), join_quant.pairs.size());
  for (std::size_t i = 0;
       i < join_exact.pairs.size() && i < join_quant.pairs.size(); ++i) {
    EXPECT_TRUE(join_exact.pairs[i] == join_quant.pairs[i]) << "pair " << i;
  }
  out << "[join eps=0.2 exact]\n";
  append_join_stats(join_exact.stats);
  out << "[join eps=0.2 quantized]\n";
  append_join_stats(join_quant.stats);

  // Bulk-load accounting: per-level node/page/entry counts of the packed
  // tree plus the build's write ledger, for both packing orders. Pins
  // the pack_groups math and the batched AllocateNodes page accounting —
  // the parallel build is asserted bit-identical to this serial layout
  // in index_bulk_load_parallel_test, so one golden section covers both.
  const auto append_tree_levels = [&out](const TreeBase& tree) {
    std::vector<std::size_t> level_nodes, level_pages, level_entries;
    for (NodeId id = 0; id < tree.num_nodes(); ++id) {
      const Node& node = tree.PeekNode(id);
      const auto level = static_cast<std::size_t>(node.level);
      if (level_nodes.size() <= level) {
        level_nodes.resize(level + 1, 0);
        level_pages.resize(level + 1, 0);
        level_entries.resize(level + 1, 0);
      }
      level_nodes[level] += 1;
      level_pages[level] += node.pages;
      level_entries[level] += node.entries.size();
    }
    for (std::size_t level = 0; level < level_nodes.size(); ++level) {
      out << "level " << level << ": nodes=" << level_nodes[level]
          << " pages=" << level_pages[level]
          << " entries=" << level_entries[level] << "\n";
    }
  };
  out << "[bulk load hilbert d=6 n=2500]\n";
  out << "build_pages_written=" << engine.BuildStats().pages_written
      << " height=" << engine.tree().height()
      << " data_pages=" << engine.tree().DataPages() << "\n";
  append_tree_levels(engine.tree());

  SimulatedDisk str_disk(0);
  TreeOptions str_options;
  str_options.bulk_load_order = BulkLoadOrder::kStr;
  RStarTree str_tree(dim, &str_disk, str_options);
  EXPECT_TRUE(str_tree.BulkLoad(data).ok());
  out << "[bulk load str d=6 n=2500]\n";
  out << "build_pages_written=" << str_disk.stats().pages_written
      << " height=" << str_tree.height()
      << " data_pages=" << str_tree.DataPages() << "\n";
  append_tree_levels(str_tree);
  return out.str();
}

TEST(GoldenStatsTest, SimulatedAccountingMatchesGoldenFile) {
  const std::string actual = RenderActualStats();
  const std::string path = GoldenPath();

  if (const char* update = std::getenv("PARSIM_UPDATE_GOLDEN");
      update != nullptr && *update != '\0' && *update != '0') {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — regenerate with PARSIM_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "simulated accounting drifted from " << path
      << "\nIf the change is intentional, regenerate with "
         "PARSIM_UPDATE_GOLDEN=1 and commit the diff.";
}

}  // namespace
}  // namespace parsim
