// End-to-end integration tests: miniature versions of the paper's
// experiments, executed with small data so they run in seconds. The
// benchmarks in bench/ run the full-size counterparts.

#include <gtest/gtest.h>

#include "src/parsim/parsim.h"

namespace parsim {
namespace {

TEST(IntegrationTest, UmbrellaHeaderExposesTheApi) {
  // Compile-time check, mostly: one object of each major type.
  const NearOptimalDeclusterer dec(4, 4);
  const HilbertCurve curve(4, 4);
  const DiskAssignmentGraph graph(4);
  const Metric metric;
  EXPECT_EQ(dec.num_disks(), 4u);
  EXPECT_EQ(curve.dim(), 4u);
  EXPECT_EQ(graph.num_vertices(), 16u);
  EXPECT_EQ(metric.kind(), MetricKind::kL2);
}

TEST(IntegrationTest, MiniFigure12SpeedupGrowsWithDisks) {
  // Speed-up of the near-optimal engine vs the sequential engine grows
  // with the number of disks (shape check of Figure 12).
  const std::size_t d = 12;
  const PointSet data = GenerateUniform(16000, d, 501);
  const PointSet queries = GenerateUniformQueries(12, d, 503);

  auto sequential =
      BuildEngine(data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 1));
  const WorkloadResult seq = RunKnnWorkload(*sequential, queries, 1);

  double previous = 1.0;
  for (std::uint32_t disks : {4u, 16u}) {
    auto engine = BuildEngine(
        data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, disks));
    const double speedup = Speedup(seq, RunKnnWorkload(*engine, queries, 1));
    EXPECT_GT(speedup, previous) << disks << " disks";
    previous = speedup;
  }
}

TEST(IntegrationTest, MiniFigure13NearOptimalBeatsHilbertHighD) {
  // On high-dimensional Fourier data with many disks, the near-optimal
  // declustering (with the paper's α-quantile split and recursive
  // extensions, used for its real-data experiments) outperforms the
  // bucket-level Hilbert declustering (Figures 13/14). Configuration
  // mirrors the fig13/fig14 benchmark at reduced size.
  const std::size_t d = 15;
  const std::uint32_t disks = 16;
  FourierOptions fopts;
  fopts.base_shapes = 16;
  fopts.variation = 0.15;
  const PointSet data = GenerateFourierPoints(60000, d, 505, fopts);
  const PointSet queries = SampleQueriesFromData(data, 10, 0.02, 507);
  EngineOptions options;
  options.architecture = Architecture::kFederatedTrees;
  options.bulk_load = true;

  RecursiveOptions ropts;
  ropts.overload_threshold = 1.2;
  auto our_dec = std::make_unique<RecursiveDeclusterer>(
      Bucketizer(EstimateQuantileSplits(data)), disks, ropts);
  our_dec->Fit(data);
  auto ours = BuildEngine(data, std::move(our_dec), options);
  auto hilbert = BuildEngine(
      data, std::make_unique<HilbertDeclusterer>(d, disks, /*grid_bits=*/1),
      options);
  const WorkloadResult r_ours = RunKnnWorkload(*ours, queries, 10);
  const WorkloadResult r_hil = RunKnnWorkload(*hilbert, queries, 10);
  // Shape target: an improvement factor clearly above parity.
  EXPECT_GT(ImprovementFactor(r_hil, r_ours), 1.3);
}

TEST(IntegrationTest, MiniFigure15ScaleUpRoughlyConstant) {
  // Growing disks and data together keeps the simulated search time
  // roughly constant (Figure 15). Allow generous slack at this size.
  const std::size_t d = 10;
  const PointSet small_data = GenerateUniform(4000, d, 509);
  const PointSet big_data = GenerateUniform(16000, d, 511);
  const PointSet queries = GenerateUniformQueries(10, d, 513);

  auto small_engine = BuildEngine(
      small_data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 4));
  auto big_engine = BuildEngine(
      big_data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 16));
  const double t_small =
      RunKnnWorkload(*small_engine, queries, 1).avg_parallel_ms;
  const double t_big = RunKnnWorkload(*big_engine, queries, 1).avg_parallel_ms;
  EXPECT_LT(t_big, 3.0 * t_small);
  EXPECT_GT(t_big, t_small / 3.0);
}

TEST(IntegrationTest, MiniFigure16RecursiveDeclusteringHelps) {
  // Clustered data: recursive declustering reduces the simulated search
  // time of the near-optimal engine (Figure 16).
  const std::size_t d = 8;
  const std::uint32_t disks = 8;
  const PointSet data = GenerateClusteredGaussian(16000, d, 1, 0.05, 515);
  const PointSet queries = SampleQueriesFromData(data, 10, 0.02, 517);

  auto flat = BuildEngine(
      data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, disks));

  auto recursive_dec = std::make_unique<RecursiveDeclusterer>(d, disks);
  recursive_dec->Fit(data);
  auto recursive = BuildEngine(data, std::move(recursive_dec));

  const WorkloadResult r_flat = RunKnnWorkload(*flat, queries, 10);
  const WorkloadResult r_rec = RunKnnWorkload(*recursive, queries, 10);
  EXPECT_GT(ImprovementFactor(r_flat, r_rec), 1.5)
      << "recursive declustering must clearly beat flat on 1 cluster";
}

TEST(IntegrationTest, QuantileSplitsImproveTextWorkload) {
  // Text descriptors are heavily skewed; quantile split values balance
  // the disks far better than midpoints.
  const std::size_t d = 15;
  const PointSet data = GenerateTextDescriptors(12000, d, 519);
  const auto splits = EstimateQuantileSplits(data);

  const NearOptimalDeclusterer midpoint(d, 16);
  const NearOptimalDeclusterer quantile(Bucketizer(splits), 16);
  EXPECT_LT(LoadImbalance(DiskLoads(quantile, data)),
            LoadImbalance(DiskLoads(midpoint, data)));
}

TEST(IntegrationTest, FullPipelineCadExample) {
  // The cad_retrieval example's flow, compressed: build, query, verify
  // answers against brute force, inspect the simulated cost.
  const std::size_t d = 14;
  const PointSet data = GenerateFourierPoints(8000, d, 521);
  auto engine = BuildEngine(
      data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 8));
  const PointSet queries = SampleQueriesFromData(data, 5, 0.01, 523);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    QueryStats stats;
    const KnnResult got = engine->Query(queries[qi], 8, &stats);
    const KnnResult expected = BruteForceKnn(data, queries[qi], 8);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].distance, expected[i].distance, 1e-9);
    }
    EXPECT_GT(stats.total_pages, 0u);
  }
}

TEST(IntegrationTest, SequentialXTreeDegenerationWithDimension) {
  // Figure 1's effect at miniature scale: the sequential X-tree reads a
  // rapidly growing share of its pages as the dimension grows.
  const std::size_t n = 8000;
  double low_d_fraction = 0.0, high_d_fraction = 0.0;
  for (std::size_t d : {4u, 14u}) {
    const PointSet data = GenerateUniform(n, d, 525 + d);
    auto engine = BuildEngine(
        data, MakeDeclusterer(DeclustererKind::kNearOptimal, d, 1));
    const PointSet queries = GenerateUniformQueries(10, d, 527);
    const WorkloadResult r = RunKnnWorkload(*engine, queries, 10);
    const double total_pages =
        static_cast<double>(engine->tree(0).ComputeStats().total_pages);
    const double fraction = r.avg_total_pages / total_pages;
    if (d == 4u) {
      low_d_fraction = fraction;
    } else {
      high_d_fraction = fraction;
    }
  }
  EXPECT_GT(high_d_fraction, 3.0 * low_d_fraction);
}

}  // namespace
}  // namespace parsim
