#include "src/core/neighborhood.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/util/bits.h"

namespace parsim {
namespace {

TEST(NeighborhoodTest, DirectNeighborPredicates) {
  EXPECT_TRUE(AreDirectNeighbors(0b000, 0b001));
  EXPECT_TRUE(AreDirectNeighbors(0b101, 0b111));
  EXPECT_FALSE(AreDirectNeighbors(0b000, 0b000));
  EXPECT_FALSE(AreDirectNeighbors(0b000, 0b011));
}

TEST(NeighborhoodTest, IndirectNeighborPredicates) {
  EXPECT_TRUE(AreIndirectNeighbors(0b000, 0b011));
  EXPECT_TRUE(AreIndirectNeighbors(0b110, 0b000));
  EXPECT_FALSE(AreIndirectNeighbors(0b000, 0b001));
  EXPECT_FALSE(AreIndirectNeighbors(0b000, 0b111));
}

TEST(NeighborhoodTest, NeighborsAreHamming1Or2) {
  for (BucketId a = 0; a < 32; ++a) {
    for (BucketId b = 0; b < 32; ++b) {
      const int h = HammingDistance(a, b);
      EXPECT_EQ(AreNeighbors(a, b), h == 1 || h == 2);
    }
  }
}

TEST(NeighborhoodTest, DirectNeighborsCountIsD) {
  for (std::size_t dim : {1u, 2u, 5u, 16u}) {
    const auto n = DirectNeighbors(0, dim);
    EXPECT_EQ(n.size(), dim);
    // All distinct and all direct.
    const std::set<BucketId> unique(n.begin(), n.end());
    EXPECT_EQ(unique.size(), dim);
    for (BucketId b : n) EXPECT_TRUE(AreDirectNeighbors(0, b));
  }
}

TEST(NeighborhoodTest, IndirectNeighborsCountIsChooseTwo) {
  for (std::size_t dim : {2u, 3u, 5u, 16u}) {
    const auto n = IndirectNeighbors(0b1, dim);
    EXPECT_EQ(n.size(), dim * (dim - 1) / 2);
    const std::set<BucketId> unique(n.begin(), n.end());
    EXPECT_EQ(unique.size(), n.size());
    for (BucketId b : n) EXPECT_TRUE(AreIndirectNeighbors(0b1, b));
  }
}

TEST(NeighborhoodTest, AllNeighborsIsUnionWithoutOverlap) {
  const std::size_t dim = 6;
  for (BucketId b : {BucketId{0}, BucketId{0b101010}, BucketId{0b111111}}) {
    const auto all = AllNeighbors(b, dim);
    EXPECT_EQ(all.size(), dim + dim * (dim - 1) / 2);
    const std::set<BucketId> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), all.size());
    EXPECT_EQ(unique.count(b), 0u) << "a bucket is not its own neighbor";
  }
}

TEST(NeighborhoodTest, NeighborhoodIsSymmetric) {
  const std::size_t dim = 5;
  for (BucketId a = 0; a < 32; ++a) {
    const auto na = AllNeighbors(a, dim);
    for (BucketId b : na) {
      const auto nb = AllNeighbors(b, dim);
      EXPECT_NE(std::find(nb.begin(), nb.end(), a), nb.end());
    }
  }
}

TEST(NeighborhoodTest, DirectNeighborsShareD1Surface) {
  // Direct neighbors differ in exactly one dimension; in space this means
  // their quadrant regions share a (d-1)-dimensional face.
  const std::size_t dim = 4;
  for (BucketId b = 0; b < 16; ++b) {
    for (BucketId c : DirectNeighbors(b, dim)) {
      EXPECT_EQ(HammingDistance(b, c), 1);
    }
  }
}

TEST(NeighborhoodSizeTest, MatchesPaperExample) {
  // Section 3.2: two levels of indirection in a 16-dimensional space give
  // 1 + C(16,1) + C(16,2) = 1 + 16 + 120 = 137 buckets.
  EXPECT_EQ(NeighborhoodSize(16, 2), 137u);
}

TEST(NeighborhoodSizeTest, LevelsZeroAndOne) {
  EXPECT_EQ(NeighborhoodSize(10, 0), 1u);
  EXPECT_EQ(NeighborhoodSize(10, 1), 11u);
}

TEST(NeighborhoodSizeTest, FullLevelsCoverWholeSpace) {
  // Summing all levels gives 2^d.
  for (std::size_t d : {1u, 4u, 10u}) {
    EXPECT_EQ(NeighborhoodSize(d, static_cast<int>(d)), std::uint64_t{1} << d);
  }
}

TEST(NeighborhoodSizeTest, GrowthMakesDeepIndirectionInfeasible) {
  // The paper's argument for stopping at 2 levels: the count explodes.
  EXPECT_GT(NeighborhoodSize(16, 4), 2000u);
  EXPECT_GT(NeighborhoodSize(16, 8), 30000u);
}

}  // namespace
}  // namespace parsim
